#include "src/engine/lock_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace dbscale::engine {
namespace {

TEST(LockManagerTest, UncontendedGrantIsImmediate) {
  EventQueue events;
  LockManager locks(&events, 4, Duration::Seconds(10));
  bool granted = false;
  locks.Acquire(0, [&](bool acquired, Duration wait) {
    granted = acquired;
    EXPECT_EQ(wait, Duration::Zero());
  });
  EXPECT_TRUE(granted);  // synchronous grant
  EXPECT_TRUE(locks.IsHeld(0));
  EXPECT_EQ(locks.grants(), 1u);
}

TEST(LockManagerTest, IndependentRows) {
  EventQueue events;
  LockManager locks(&events, 4, Duration::Seconds(10));
  int grants = 0;
  locks.Acquire(0, [&](bool, Duration) { ++grants; });
  locks.Acquire(1, [&](bool, Duration) { ++grants; });
  EXPECT_EQ(grants, 2);
}

TEST(LockManagerTest, FifoWaitersGrantedOnRelease) {
  EventQueue events;
  LockManager locks(&events, 2, Duration::Seconds(10));
  std::vector<int> order;
  locks.Acquire(0, [&](bool, Duration) { order.push_back(0); });
  locks.Acquire(0, [&](bool a, Duration) {
    ASSERT_TRUE(a);
    order.push_back(1);
    locks.Release(0);
  });
  locks.Acquire(0, [&](bool a, Duration) {
    ASSERT_TRUE(a);
    order.push_back(2);
  });
  EXPECT_EQ(locks.QueueLength(0), 2u);
  locks.Release(0);  // grants waiter 1, whose callback releases -> waiter 2
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LockManagerTest, WaitTimeMeasured) {
  EventQueue events;
  LockManager locks(&events, 1, Duration::Seconds(10));
  locks.Acquire(0, [](bool, Duration) {});
  Duration waited;
  locks.Acquire(0, [&](bool a, Duration w) {
    EXPECT_TRUE(a);
    waited = w;
  });
  events.ScheduleAt(SimTime::Zero() + Duration::Seconds(2),
                    [&] { locks.Release(0); });
  events.RunAll();
  EXPECT_DOUBLE_EQ(waited.ToSeconds(), 2.0);
}

TEST(LockManagerTest, TimeoutAbortsWaiter) {
  EventQueue events;
  LockManager locks(&events, 1, Duration::Seconds(5));
  locks.Acquire(0, [](bool, Duration) {});  // holder, never releases
  bool acquired = true;
  Duration waited;
  locks.Acquire(0, [&](bool a, Duration w) {
    acquired = a;
    waited = w;
  });
  events.RunAll();
  EXPECT_FALSE(acquired);
  EXPECT_DOUBLE_EQ(waited.ToSeconds(), 5.0);
  EXPECT_EQ(locks.timeouts(), 1u);
  EXPECT_EQ(locks.QueueLength(0), 0u);
}

TEST(LockManagerTest, GrantBeforeTimeoutCancelsIt) {
  EventQueue events;
  LockManager locks(&events, 1, Duration::Seconds(5));
  locks.Acquire(0, [](bool, Duration) {});
  int outcomes = 0;
  bool acquired = false;
  locks.Acquire(0, [&](bool a, Duration) {
    ++outcomes;
    acquired = a;
  });
  events.ScheduleAt(SimTime::Zero() + Duration::Seconds(1),
                    [&] { locks.Release(0); });
  events.RunAll();  // runs past the timeout event
  EXPECT_EQ(outcomes, 1);  // exactly one outcome
  EXPECT_TRUE(acquired);
  EXPECT_EQ(locks.timeouts(), 0u);
}

TEST(LockManagerTest, TimeoutSkipsToNextWaiter) {
  EventQueue events;
  LockManager locks(&events, 1, Duration::Seconds(5));
  locks.Acquire(0, [](bool, Duration) {});
  bool first_acquired = true;
  bool second_acquired = false;
  locks.Acquire(0, [&](bool a, Duration) { first_acquired = a; });
  // Second waiter enqueued after 3s; holder releases at 7s. First waiter
  // times out at 5s; second (timeout at 8s) gets the lock at 7s.
  events.ScheduleAt(SimTime::Zero() + Duration::Seconds(3), [&] {
    locks.Acquire(0, [&](bool a, Duration) { second_acquired = a; });
  });
  events.ScheduleAt(SimTime::Zero() + Duration::Seconds(7),
                    [&] { locks.Release(0); });
  events.RunAll();
  EXPECT_FALSE(first_acquired);
  EXPECT_TRUE(second_acquired);
}

TEST(LockManagerTest, ReleaseWithEmptyQueueFreesRow) {
  EventQueue events;
  LockManager locks(&events, 1, Duration::Seconds(5));
  locks.Acquire(0, [](bool, Duration) {});
  locks.Release(0);
  EXPECT_FALSE(locks.IsHeld(0));
  bool granted = false;
  locks.Acquire(0, [&](bool a, Duration) { granted = a; });
  EXPECT_TRUE(granted);
}

}  // namespace
}  // namespace dbscale::engine
