// Unit tests of the AutoScaler closed-loop decision logic against synthetic
// signal snapshots (the end-to-end behaviour is covered by simulation
// integration tests).

#include "src/scaler/autoscaler.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace dbscale::scaler {
namespace {

using container::Catalog;
using container::ResourceKind;

class AutoScalerTest : public ::testing::Test {
 protected:
  AutoScalerTest() : catalog_(Catalog::MakeLockStep()) {}

  std::unique_ptr<AutoScaler> MakeScaler(
      TenantKnobs knobs, AutoScalerOptions options = {}) {
    auto result = AutoScaler::Create(catalog_, knobs, options);
    DBSCALE_CHECK_OK(result.status());
    return std::move(result).value();
  }

  TenantKnobs GoalKnobs(double target_ms,
                        Sensitivity sensitivity = Sensitivity::kMedium) {
    TenantKnobs knobs;
    knobs.latency_goal =
        LatencyGoal{telemetry::LatencyAggregate::kP95, target_ms};
    knobs.sensitivity = sensitivity;
    return knobs;
  }

  /// A healthy snapshot at the given rung: moderate everything.
  telemetry::SignalSnapshot Snapshot(int rung, double latency_ms) {
    telemetry::SignalSnapshot s;
    s.valid = true;
    s.latency_ms = latency_ms;
    s.allocation = catalog_.rung(rung).resources;
    s.throughput_rps = 50.0;
    for (ResourceKind kind : container::kAllResources) {
      auto& r = s.resources[static_cast<size_t>(kind)];
      r.utilization_pct = 50.0;
      r.wait_ms_per_request = 5.0;
      r.wait_pct = 25.0;
    }
    return s;
  }

  void SetCpuBottleneck(telemetry::SignalSnapshot* s) {
    auto& cpu = s->resources[static_cast<size_t>(ResourceKind::kCpu)];
    cpu.utilization_pct = 85.0;
    cpu.wait_ms_per_request = 50.0;
    cpu.wait_pct = 70.0;
    s->wait_pct_by_class[static_cast<size_t>(telemetry::WaitClass::kCpu)] =
        70.0;
  }

  void SetAllIdle(telemetry::SignalSnapshot* s) {
    for (ResourceKind kind : container::kAllResources) {
      auto& r = s->resources[static_cast<size_t>(kind)];
      r.utilization_pct = kind == ResourceKind::kMemory ? 80.0 : 5.0;
      r.wait_ms_per_request = 0.1;
      r.wait_pct = 10.0;
    }
  }

  void SetLockBound(telemetry::SignalSnapshot* s) {
    SetAllIdle(s);
    s->wait_pct_by_class[static_cast<size_t>(
        telemetry::WaitClass::kLock)] = 93.0;
    s->total_wait_ms = 5000.0;
  }

  PolicyInput Input(const telemetry::SignalSnapshot& signals, int rung,
                    int interval) {
    PolicyInput input;
    input.now = SimTime::Zero() + Duration::Seconds(20.0 * (interval + 1));
    input.signals = signals;
    input.current = catalog_.rung(rung);
    input.interval_index = interval;
    return input;
  }

  Catalog catalog_;
};

TEST_F(AutoScalerTest, HoldsWhileWarmingUp) {
  auto scaler = MakeScaler(GoalKnobs(200));
  telemetry::SignalSnapshot invalid;
  invalid.valid = false;
  auto d = scaler->Decide(Input(invalid, 3, 0));
  EXPECT_EQ(d.target.id, catalog_.rung(3).id);
}

TEST_F(AutoScalerTest, ScalesUpOnBadLatencyWithDemand) {
  auto scaler = MakeScaler(GoalKnobs(200));
  auto s = Snapshot(3, /*latency=*/400);
  SetCpuBottleneck(&s);
  auto d = scaler->Decide(Input(s, 3, 0));
  EXPECT_GT(d.target.base_rung, 3);
  EXPECT_NE(d.explanation.ToString().find("cpu"), std::string::npos);
}

TEST_F(AutoScalerTest, NoScaleUpWhenGoalMet) {
  // Demand high but latency within goal: hold for cost (Section 6).
  auto scaler = MakeScaler(GoalKnobs(1000));
  auto s = Snapshot(3, /*latency=*/300);
  SetCpuBottleneck(&s);
  auto d = scaler->Decide(Input(s, 3, 0));
  EXPECT_EQ(d.target.id, catalog_.rung(3).id);
  EXPECT_NE(d.explanation.ToString().find("goal"), std::string::npos);
}

TEST_F(AutoScalerTest, NoScaleUpWithoutResourceDemand) {
  // Lock-bound latency violation: scaling would not help (Figure 13).
  auto scaler = MakeScaler(GoalKnobs(200));
  auto s = Snapshot(3, /*latency=*/900);
  SetLockBound(&s);
  auto d = scaler->Decide(Input(s, 3, 0));
  EXPECT_EQ(d.target.id, catalog_.rung(3).id);
  EXPECT_NE(d.explanation.ToString().find("Lock"), std::string::npos);
}

TEST_F(AutoScalerTest, UpCooldownPreventsConsecutiveJumps) {
  AutoScalerOptions options;
  options.up_cooldown_intervals = 2;
  auto scaler = MakeScaler(GoalKnobs(200), options);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);
  auto d1 = scaler->Decide(Input(s, 3, 0));
  int rung1 = d1.target.base_rung;
  ASSERT_GT(rung1, 3);
  // Next interval still looks bad (stale backlog): held by cooldown.
  auto s2 = Snapshot(rung1, 400);
  SetCpuBottleneck(&s2);
  auto d2 = scaler->Decide(Input(s2, rung1, 1));
  EXPECT_EQ(d2.target.base_rung, rung1);
  EXPECT_NE(d2.explanation.ToString().find("cooldown"), std::string::npos);
  // After the cooldown it may scale again.
  auto d3 = scaler->Decide(Input(s2, rung1, 2));
  EXPECT_GT(d3.target.base_rung, rung1);
}

TEST_F(AutoScalerTest, ScaleDownAfterPatience) {
  auto scaler = MakeScaler(GoalKnobs(1000));
  auto s = Snapshot(5, /*latency=*/100);
  SetAllIdle(&s);
  // Medium sensitivity: 3 consecutive low intervals, then the memory
  // shrink is validated by a balloon pass before the rung drops.
  auto d0 = scaler->Decide(Input(s, 5, 0));
  EXPECT_EQ(d0.target.base_rung, 5);
  EXPECT_FALSE(d0.memory_limit_mb.has_value());
  auto d1 = scaler->Decide(Input(s, 5, 1));
  EXPECT_EQ(d1.target.base_rung, 5);
  EXPECT_FALSE(d1.memory_limit_mb.has_value());
  auto d2 = scaler->Decide(Input(s, 5, 2));
  EXPECT_EQ(d2.target.base_rung, 5);
  EXPECT_TRUE(d2.memory_limit_mb.has_value());  // balloon started
  int rung_after = 5;
  for (int i = 3; i < 12 && rung_after == 5; ++i) {
    rung_after = scaler->Decide(Input(s, 5, i)).target.base_rung;
  }
  EXPECT_EQ(rung_after, 4);
}

TEST_F(AutoScalerTest, SensitivityControlsDownPatience) {
  for (auto [sensitivity, expected_intervals] :
       std::vector<std::pair<Sensitivity, int>>{
           {Sensitivity::kLow, 1},
           {Sensitivity::kMedium, 3},
           {Sensitivity::kHigh, 5}}) {
    auto scaler = MakeScaler(GoalKnobs(1000, sensitivity));
    auto s = Snapshot(5, 100);
    SetAllIdle(&s);
    // The first scale-down action (the balloon start) lands exactly when
    // the sensitivity's patience is satisfied.
    int acted_at = -1;
    for (int i = 0; i < 8; ++i) {
      auto d = scaler->Decide(Input(s, 5, i));
      if (d.memory_limit_mb.has_value() || d.target.base_rung < 5) {
        acted_at = i;
        break;
      }
    }
    EXPECT_EQ(acted_at, expected_intervals - 1)
        << SensitivityToString(sensitivity);
  }
}

TEST_F(AutoScalerTest, LowSensitivityNeedsPersistentViolation) {
  auto scaler = MakeScaler(GoalKnobs(200, Sensitivity::kLow));
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);
  auto d0 = scaler->Decide(Input(s, 3, 0));
  EXPECT_EQ(d0.target.base_rung, 3);  // first violation ignored
  auto d1 = scaler->Decide(Input(s, 3, 1));
  EXPECT_GT(d1.target.base_rung, 3);  // second fires
}

TEST_F(AutoScalerTest, MemoryShrinkGoesThroughBalloon) {
  AutoScalerOptions options;
  options.down_patience_medium = 1;
  auto scaler = MakeScaler(GoalKnobs(1000), options);
  auto s = Snapshot(5, 100);
  SetAllIdle(&s);
  s.physical_reads_per_sec = 10.0;
  // First decision: patience satisfied, but memory blocks the lock-step
  // shrink -> a balloon starts instead of a resize.
  auto d = scaler->Decide(Input(s, 5, 0));
  EXPECT_EQ(d.target.base_rung, 5);
  ASSERT_TRUE(d.memory_limit_mb.has_value());
  EXPECT_LT(*d.memory_limit_mb, catalog_.rung(5).resources.memory_mb);
  EXPECT_TRUE(scaler->balloon().active());
  // Healthy I/O through the shrink: balloon completes, then the container
  // steps down.
  int rung_after = 5;
  for (int i = 1; i < 10; ++i) {
    auto di = scaler->Decide(Input(s, 5, i));
    if (di.target.base_rung < 5) {
      rung_after = di.target.base_rung;
      break;
    }
  }
  EXPECT_EQ(rung_after, 4);
}

TEST_F(AutoScalerTest, BalloonAbortBlocksMemoryShrink) {
  AutoScalerOptions options;
  options.down_patience_medium = 1;
  options.balloon.cooldown_ticks = 100;
  auto scaler = MakeScaler(GoalKnobs(1000), options);
  auto s = Snapshot(5, 100);
  SetAllIdle(&s);
  s.physical_reads_per_sec = 10.0;
  // dbscale-lint: allow(discarded-status)
  (void)scaler->Decide(Input(s, 5, 0));  // balloon starts
  ASSERT_TRUE(scaler->balloon().active());
  // I/O explodes as memory shrinks: abort, restore, and no resize.
  auto bad = s;
  bad.physical_reads_per_sec = 5000.0;
  auto d = scaler->Decide(Input(bad, 5, 1));
  EXPECT_EQ(d.target.base_rung, 5);
  ASSERT_TRUE(d.memory_limit_mb.has_value());
  EXPECT_DOUBLE_EQ(*d.memory_limit_mb,
                   catalog_.rung(5).resources.memory_mb);
  for (int i = 2; i < 6; ++i) {
    auto di = scaler->Decide(Input(s, 5, i));
    EXPECT_EQ(di.target.base_rung, 5) << i;
  }
}

TEST_F(AutoScalerTest, DemandReturnMidBalloonRevertsMemory) {
  AutoScalerOptions options;
  options.down_patience_medium = 1;
  auto scaler = MakeScaler(GoalKnobs(200), options);
  auto idle = Snapshot(5, 100);
  SetAllIdle(&idle);
  // dbscale-lint: allow(discarded-status)
  (void)scaler->Decide(Input(idle, 5, 0));
  ASSERT_TRUE(scaler->balloon().active());
  auto busy = Snapshot(5, 400);
  SetCpuBottleneck(&busy);
  auto d = scaler->Decide(Input(busy, 5, 1));
  EXPECT_FALSE(scaler->balloon().active());
  ASSERT_TRUE(d.memory_limit_mb.has_value());
  EXPECT_DOUBLE_EQ(*d.memory_limit_mb,
                   catalog_.rung(5).resources.memory_mb);
  EXPECT_GT(d.target.base_rung, 5);
}

TEST_F(AutoScalerTest, SaturationGuardBlocksShrinkIntoCliff) {
  AutoScalerOptions options;
  options.down_patience_medium = 1;
  options.down_latency_slack_ratio = 0.9;  // slack wants to shrink
  auto scaler = MakeScaler(GoalKnobs(1000), options);
  auto s = Snapshot(5, 100);
  SetAllIdle(&s);
  // CPU busy enough that one rung down would exceed the 75% guard:
  // usage = 65% of 4 cores = 2.6; rung 4->3 gives 3 cores -> 87%.
  s.resources[static_cast<size_t>(ResourceKind::kCpu)].utilization_pct =
      65.0;
  for (int i = 0; i < 6; ++i) {
    auto d = scaler->Decide(Input(s, 4, i));
    EXPECT_EQ(d.target.base_rung, 4) << i;
  }
}

TEST_F(AutoScalerTest, LatencySlackShrinksDespiteSteadyDemand) {
  AutoScalerOptions options;
  options.down_patience_medium = 2;
  options.enable_ballooning = false;  // keep the test focused
  auto scaler = MakeScaler(GoalKnobs(1000), options);
  auto s = Snapshot(5, /*latency=*/100);  // 10% of goal: lots of slack
  // Utilization moderate-but-not-low: no low-demand estimate, and the
  // saturation guard has room (30% usage fits one rung down).
  for (container::ResourceKind kind : container::kAllResources) {
    s.resources[static_cast<size_t>(kind)].utilization_pct = 30.0;
  }
  // dbscale-lint: allow(discarded-status)
  (void)scaler->Decide(Input(s, 5, 0));
  auto d = scaler->Decide(Input(s, 5, 1));
  EXPECT_LT(d.target.base_rung, 5);
  EXPECT_NE(d.explanation.ToString().find("within goal"), std::string::npos);
}

TEST_F(AutoScalerTest, PureDemandModeWithoutGoal) {
  // No latency goal: scale on demand alone (Section 2.3).
  TenantKnobs knobs;  // no goal, no budget
  auto scaler = MakeScaler(knobs);
  auto busy = Snapshot(3, 1.0);
  SetCpuBottleneck(&busy);
  auto d = scaler->Decide(Input(busy, 3, 0));
  EXPECT_GT(d.target.base_rung, 3);
}

TEST_F(AutoScalerTest, BudgetConstrainsScaleUp) {
  TenantKnobs knobs = GoalKnobs(200);
  knobs.budget = BudgetKnob{/*total=*/7.0 * 100 + 53.0, /*intervals=*/100};
  AutoScalerOptions options;
  options.budget_strategy = BudgetStrategy::kAggressive;
  auto scaler = MakeScaler(knobs, options);
  ASSERT_NE(scaler->budget(), nullptr);
  // Available budget at start: D = B - 99*7 = 60 -> best affordable is S5.
  auto s = Snapshot(3, 800);
  SetCpuBottleneck(&s);
  auto& cpu = s.resources[static_cast<size_t>(ResourceKind::kCpu)];
  cpu.utilization_pct = 98.0;
  cpu.wait_ms_per_request = 200.0;  // extreme: wants +2 rungs (S6 = 90)
  auto d = scaler->Decide(Input(s, 3, 0));
  EXPECT_LE(d.target.price_per_interval, 60.0);
  EXPECT_NE(d.explanation.ToString().find("budget"), std::string::npos);
}

TEST_F(AutoScalerTest, BudgetChargingFlowsThroughManager) {
  TenantKnobs knobs = GoalKnobs(200);
  knobs.budget = BudgetKnob{1000.0, 10};
  auto scaler = MakeScaler(knobs);
  double before = scaler->budget()->available();
  // The decision cycle carries the just-ended interval's bill; Decide
  // charges it before deciding.
  PolicyInput input = Input(Snapshot(3, 100), 3, 0);
  input.charged_cost = 45.0;
  // dbscale-lint: allow(discarded-status)
  (void)scaler->Decide(input);
  EXPECT_DOUBLE_EQ(scaler->budget()->spent(), 45.0);
  EXPECT_LT(scaler->budget()->available(), before);
}

TEST_F(AutoScalerTest, CreateRejectsInvalidKnobs) {
  TenantKnobs bad;
  bad.latency_goal = LatencyGoal{telemetry::LatencyAggregate::kP95, -5.0};
  EXPECT_FALSE(AutoScaler::Create(catalog_, bad).ok());
  TenantKnobs bad_budget;
  bad_budget.budget = BudgetKnob{3.0, 100};  // below n * Cmin
  EXPECT_FALSE(AutoScaler::Create(catalog_, bad_budget).ok());
}

TEST_F(AutoScalerTest, ExplanationsAlwaysPresent) {
  auto scaler = MakeScaler(GoalKnobs(500));
  for (int i = 0; i < 5; ++i) {
    auto s = Snapshot(3, 100.0 * (i + 1));
    auto d = scaler->Decide(Input(s, 3, i));
    // Every decision carries a structured code, and the code renders text.
    EXPECT_TRUE(d.explanation.set());
    EXPECT_NE(d.explanation.code, ExplanationCode::kUnset);
    EXPECT_FALSE(d.explanation.ToString().empty());
  }
}

}  // namespace
}  // namespace dbscale::scaler
