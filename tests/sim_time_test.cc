#include "src/common/sim_time.h"

#include <gtest/gtest.h>

namespace dbscale {
namespace {

TEST(DurationTest, Conversions) {
  EXPECT_EQ(Duration::Millis(5).ToMicros(), 5000);
  EXPECT_DOUBLE_EQ(Duration::Seconds(2.5).ToMillis(), 2500.0);
  EXPECT_DOUBLE_EQ(Duration::Minutes(2).ToSeconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::Hours(1).ToMinutes(), 60.0);
  EXPECT_EQ(Duration::Zero().ToMicros(), 0);
}

TEST(DurationTest, Arithmetic) {
  Duration d = Duration::Seconds(1) + Duration::Millis(500);
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 1.5);
  d -= Duration::Millis(500);
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 1.0);
  EXPECT_DOUBLE_EQ((d * 3.0).ToSeconds(), 3.0);
  EXPECT_DOUBLE_EQ((d / 4.0).ToSeconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::Seconds(3) / Duration::Seconds(2), 1.5);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Seconds(1), Duration::Millis(1000));
  EXPECT_GT(Duration::Max(), Duration::Hours(10000));
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::Micros(5).ToString(), "5us");
  EXPECT_EQ(Duration::Millis(5).ToString(), "5.00ms");
  EXPECT_EQ(Duration::Seconds(5).ToString(), "5.00s");
  EXPECT_EQ(Duration::Minutes(5).ToString(), "5.00min");
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::Zero() + Duration::Seconds(10);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 10.0);
  SimTime u = t + Duration::Seconds(5);
  EXPECT_DOUBLE_EQ((u - t).ToSeconds(), 5.0);
  EXPECT_DOUBLE_EQ((u - Duration::Seconds(1)).ToSeconds(), 14.0);
  t += Duration::Minutes(1);
  EXPECT_DOUBLE_EQ(t.ToMinutes(), 1.0 + 10.0 / 60.0);
}

TEST(SimTimeTest, Ordering) {
  SimTime a = SimTime::FromMicros(100);
  SimTime b = SimTime::FromMicros(200);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, SimTime::FromMicros(100));
  EXPECT_GT(SimTime::Max(), b);
}

}  // namespace
}  // namespace dbscale
