// Integration tests of the DatabaseEngine: request lifecycle, wait
// attribution, telemetry samples, container resizes, ballooning hooks.

#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/container/catalog.h"

namespace dbscale::engine {
namespace {

using container::Catalog;
using container::ResourceKind;
using telemetry::TelemetrySample;
using telemetry::WaitClass;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : catalog_(Catalog::MakeLockStep()) {}

  EngineOptions BaseOptions() {
    EngineOptions options;
    options.working_set_mb = 64.0;
    options.database_mb = 1024.0;
    options.latch_probability = 0.0;
    options.system_wait_probability = 0.0;
    return options;
  }

  std::unique_ptr<DatabaseEngine> MakeEngine(const EngineOptions& options,
                                             int rung) {
    return std::make_unique<DatabaseEngine>(&events_, options,
                                            catalog_.rung(rung), Rng(99));
  }

  double WaitMs(const TelemetrySample& s, WaitClass wc) {
    return s.wait_ms[static_cast<size_t>(wc)];
  }

  Catalog catalog_;
  EventQueue events_;
};

TEST_F(EngineTest, CpuOnlyRequestCompletes) {
  auto engine = MakeEngine(BaseOptions(), 4);  // S5: 4 cores
  RequestSpec spec;
  spec.cpu_ms = 10.0;
  RequestResult result;
  bool done = false;
  engine->Submit(spec, [&](const RequestResult& r) {
    result = r;
    done = true;
  });
  events_.RunAll();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.error);
  EXPECT_NEAR(result.latency().ToMillis(), 10.0, 0.5);
  EXPECT_EQ(engine->requests_completed(), 1u);
}

TEST_F(EngineTest, SubCoreContainerStretchesAndCountsCpuWait) {
  auto engine = MakeEngine(BaseOptions(), 0);  // S1: 0.5 cores
  RequestSpec spec;
  spec.cpu_ms = 10.0;
  Duration latency;
  engine->Submit(spec, [&](const RequestResult& r) {
    latency = r.latency();
  });
  events_.RunAll();
  EXPECT_NEAR(latency.ToMillis(), 20.0, 0.5);
  TelemetrySample sample = engine->CollectSample();
  EXPECT_NEAR(WaitMs(sample, WaitClass::kCpu), 10.0, 1.0);
}

TEST_F(EngineTest, CpuOverloadAccumulatesSignalWaits) {
  auto engine = MakeEngine(BaseOptions(), 1);  // S2: 1 core
  RequestSpec spec;
  spec.cpu_ms = 20.0;
  for (int i = 0; i < 50; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  // 1 second of work on 1 core arriving at once: heavy queueing.
  EXPECT_GT(WaitMs(sample, WaitClass::kCpu), 5000.0);
  EXPECT_EQ(sample.requests_completed, 50);
}

TEST_F(EngineTest, WarmPoolServesHotReadsWithoutDisk) {
  auto engine = MakeEngine(BaseOptions(), 4);
  engine->PrewarmBufferPool();
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  spec.page_accesses = 50;
  spec.hot_access_fraction = 1.0;
  for (int i = 0; i < 20; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_EQ(sample.physical_reads, 0);
  EXPECT_DOUBLE_EQ(WaitMs(sample, WaitClass::kDiskIo), 0.0);
}

TEST_F(EngineTest, ColdReadsHitDiskAndCountWaits) {
  auto engine = MakeEngine(BaseOptions(), 4);
  engine->PrewarmBufferPool();
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  spec.page_accesses = 50;
  spec.hot_access_fraction = 0.0;  // all cold
  // Concurrent requests so the disk queue builds: waits are queueing-only.
  for (int i = 0; i < 20; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(sample.physical_reads, 600);
  EXPECT_GT(WaitMs(sample, WaitClass::kDiskIo), 0.0);
  EXPECT_DOUBLE_EQ(WaitMs(sample, WaitClass::kBufferPool), 0.0);
}

TEST_F(EngineTest, MemoryPressureMissesAttributedToBufferPool) {
  EngineOptions options = BaseOptions();
  options.working_set_mb = 8192.0;   // working set far above S1's pool
  options.database_mb = 16384.0;
  auto engine = MakeEngine(options, 0);
  engine->PrewarmBufferPool();
  ASSERT_TRUE(engine->buffer_pool().UnderMemoryPressure());
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  spec.page_accesses = 50;
  spec.hot_access_fraction = 1.0;
  for (int i = 0; i < 20; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(WaitMs(sample, WaitClass::kBufferPool), 0.0);
  EXPECT_DOUBLE_EQ(WaitMs(sample, WaitClass::kDiskIo), 0.0);
}

TEST_F(EngineTest, LogWritesCountLogWaits) {
  auto engine = MakeEngine(BaseOptions(), 0);  // S1: 2 MB/s log
  RequestSpec spec;
  spec.cpu_ms = 0.1;
  spec.log_kb = 1024.0;  // 1 MB -> 500ms at 2 MB/s
  Duration latency;
  engine->Submit(spec, [&](const RequestResult& r) {
    latency = r.latency();
  });
  events_.RunAll();
  EXPECT_GT(latency.ToMillis(), 400.0);
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(WaitMs(sample, WaitClass::kLogIo), 400.0);
}

TEST_F(EngineTest, LockContentionCountsLockWaits) {
  auto engine = MakeEngine(BaseOptions(), 4);
  RequestSpec spec;
  spec.cpu_ms = 10.0;
  spec.lock_row = 3;
  spec.lock_hold_extra_ms = 20.0;  // app-held lock
  for (int i = 0; i < 10; ++i) engine->Submit(spec);
  events_.RunAll();
  EXPECT_EQ(engine->requests_completed(), 10u);
  TelemetrySample sample = engine->CollectSample();
  // 10 transactions serialized on ~20ms holds: the later ones waited.
  EXPECT_GT(WaitMs(sample, WaitClass::kLock), 100.0);
}

TEST_F(EngineTest, LockHoldExtraTimeExtendsSerialization) {
  auto engine = MakeEngine(BaseOptions(), 10);  // plenty of resources
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  spec.lock_row = 0;
  spec.lock_hold_extra_ms = 50.0;
  SimTime last_completion;
  for (int i = 0; i < 4; ++i) {
    engine->Submit(spec, [&](const RequestResult& r) {
      last_completion = r.completion;
    });
  }
  events_.RunAll();
  // 4 transactions serialized on one row, each holding >= 50ms.
  EXPECT_GT(last_completion.ToSeconds(), 0.2);
}

TEST_F(EngineTest, LockTimeoutProducesError) {
  EngineOptions options = BaseOptions();
  options.lock_timeout = Duration::Millis(100);
  auto engine = MakeEngine(options, 4);
  RequestSpec blocker;
  blocker.cpu_ms = 1.0;
  blocker.lock_row = 0;
  blocker.lock_hold_extra_ms = 10000.0;  // holds ~10s
  engine->Submit(blocker);
  RequestSpec victim;
  victim.cpu_ms = 1.0;
  victim.lock_row = 0;
  bool error = false;
  engine->Submit(victim, [&](const RequestResult& r) { error = r.error; });
  events_.RunUntil(SimTime::Zero() + Duration::Seconds(1));
  EXPECT_TRUE(error);
  EXPECT_EQ(engine->requests_errored(), 1u);
}

TEST_F(EngineTest, MemoryGrantWaitsCounted) {
  auto engine = MakeEngine(BaseOptions(), 0);  // S1: tiny workspace
  RequestSpec spec;
  spec.cpu_ms = 50.0;
  spec.grant_mb = 1000.0;  // clamps to full workspace
  for (int i = 0; i < 5; ++i) engine->Submit(spec);
  events_.RunAll();
  EXPECT_EQ(engine->requests_completed(), 5u);
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(WaitMs(sample, WaitClass::kMemory), 100.0);
}

TEST_F(EngineTest, UtilizationReflectsLoad) {
  auto engine = MakeEngine(BaseOptions(), 1);  // 1 core
  RequestSpec spec;
  spec.cpu_ms = 100.0;
  for (int i = 0; i < 5; ++i) engine->Submit(spec);  // 500ms of work
  events_.RunUntil(SimTime::Zero() + Duration::Seconds(1));
  TelemetrySample sample = engine->CollectSample();
  EXPECT_NEAR(sample.utilization_pct[static_cast<size_t>(ResourceKind::kCpu)],
              50.0, 5.0);
}

TEST_F(EngineTest, ResizeAppliesNewCapacity) {
  auto engine = MakeEngine(BaseOptions(), 1);
  ASSERT_TRUE(engine->BeginResize(catalog_.rung(8)).ok());
  EXPECT_TRUE(engine->resize_pending());
  ASSERT_TRUE(engine->CompleteResize().ok());
  EXPECT_FALSE(engine->resize_pending());
  EXPECT_EQ(engine->current_container().base_rung, 8);
  // Throughput reflects 16 cores now: 16 jobs of 100ms finish in ~100ms.
  RequestSpec spec;
  spec.cpu_ms = 100.0;
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    engine->Submit(spec, [&](const RequestResult&) { ++done; });
  }
  events_.RunUntil(SimTime::Zero() + Duration::Millis(150));
  EXPECT_EQ(done, 16);
}

TEST_F(EngineTest, BalloonLimitShrinksEffectiveMemory) {
  auto engine = MakeEngine(BaseOptions(), 4);  // S5: 8192 MB
  const double full = engine->effective_memory_mb();
  EXPECT_DOUBLE_EQ(full, 8192.0);
  engine->SetMemoryLimitMb(4096.0);
  EXPECT_DOUBLE_EQ(engine->effective_memory_mb(), 4096.0);
  EXPECT_LE(engine->buffer_pool().capacity_pages(),
            MbToPages(4096.0 * 0.8) + 1);
  engine->ClearMemoryLimit();
  EXPECT_DOUBLE_EQ(engine->effective_memory_mb(), 8192.0);
}

TEST_F(EngineTest, LimitAboveContainerIsNoOp) {
  auto engine = MakeEngine(BaseOptions(), 4);
  engine->SetMemoryLimitMb(99999.0);
  EXPECT_DOUBLE_EQ(engine->effective_memory_mb(), 8192.0);
}

TEST_F(EngineTest, ResizeClearsBalloonLimit) {
  auto engine = MakeEngine(BaseOptions(), 4);
  engine->SetMemoryLimitMb(4096.0);
  ASSERT_TRUE(engine->BeginResize(catalog_.rung(5)).ok());
  ASSERT_TRUE(engine->CompleteResize().ok());
  EXPECT_DOUBLE_EQ(engine->effective_memory_mb(),
                   catalog_.rung(5).resources.memory_mb);
}

TEST_F(EngineTest, SampleResetsBetweenPeriods) {
  auto engine = MakeEngine(BaseOptions(), 4);
  RequestSpec spec;
  spec.cpu_ms = 5.0;
  engine->Submit(spec);
  events_.RunAll();
  TelemetrySample first = engine->CollectSample();
  EXPECT_EQ(first.requests_completed, 1);
  TelemetrySample second = engine->CollectSample();
  EXPECT_EQ(second.requests_completed, 0);
  EXPECT_DOUBLE_EQ(second.total_wait_ms(), 0.0);
  EXPECT_EQ(second.period_start, first.period_end);
}

TEST_F(EngineTest, LatencyPercentilesInSample) {
  auto engine = MakeEngine(BaseOptions(), 10);
  // Spaced arrivals so requests never queue: latency == own CPU time.
  for (int i = 1; i <= 100; ++i) {
    RequestSpec spec;
    spec.cpu_ms = static_cast<double>(i);
    events_.ScheduleAt(SimTime::Zero() + Duration::Millis(15 * i),
                       [&, spec] { engine->Submit(spec); });
  }
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_NEAR(sample.latency_avg_ms, 50.5, 3.0);
  EXPECT_NEAR(sample.latency_p95_ms, 95.0, 6.0);
  EXPECT_NEAR(sample.latency_max_ms, 100.0, 1.0);
}

TEST_F(EngineTest, CompletionListenerSeesEveryRequest) {
  auto engine = MakeEngine(BaseOptions(), 4);
  int seen = 0;
  engine->SetCompletionListener([&](const RequestResult&) { ++seen; });
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  for (int i = 0; i < 25; ++i) engine->Submit(spec);
  events_.RunAll();
  EXPECT_EQ(seen, 25);
}

TEST_F(EngineTest, LatchAndSystemInterference) {
  EngineOptions options = BaseOptions();
  options.latch_probability = 1.0;
  options.latch_mean_ms = 2.0;
  options.system_wait_probability = 1.0;
  options.system_wait_mean_ms = 3.0;
  auto engine = MakeEngine(options, 4);
  RequestSpec spec;
  spec.cpu_ms = 1.0;
  spec.page_accesses = 1;
  spec.hot_access_fraction = 1.0;
  for (int i = 0; i < 50; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(WaitMs(sample, WaitClass::kLatch), 0.0);
  EXPECT_GT(WaitMs(sample, WaitClass::kSystem), 0.0);
}

TEST_F(EngineTest, MemoryActiveTracksWorkingSetNotPoolFill) {
  EngineOptions options = BaseOptions();
  options.working_set_mb = 64.0;
  options.database_mb = 8192.0;
  auto engine = MakeEngine(options, 6);  // big pool
  engine->PrewarmBufferPool();
  // Touch lots of cold pages: used memory grows, active set does not.
  RequestSpec spec;
  spec.cpu_ms = 0.1;
  spec.page_accesses = 200;
  spec.hot_access_fraction = 0.0;
  for (int i = 0; i < 100; ++i) engine->Submit(spec);
  events_.RunAll();
  TelemetrySample sample = engine->CollectSample();
  EXPECT_GT(sample.memory_used_mb, sample.memory_active_mb);
  EXPECT_NEAR(sample.memory_active_mb, 64.0 / 0.8, 16.0);
}

}  // namespace
}  // namespace dbscale::engine
