#include "src/stats/theil_sen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace dbscale::stats {
namespace {

TEST(TheilSenTest, PerfectLine) {
  TheilSenEstimator est;
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {1, 3, 5, 7, 9};  // y = 2x + 1
  auto r = est.Fit(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->slope, 2.0);
  EXPECT_DOUBLE_EQ(r->intercept, 1.0);
  EXPECT_TRUE(r->significant);
  EXPECT_EQ(r->direction, TrendDirection::kIncreasing);
  EXPECT_DOUBLE_EQ(r->fraction_positive, 1.0);
}

TEST(TheilSenTest, DecreasingLine) {
  TheilSenEstimator est;
  auto r = est.FitSequence({10, 8, 6, 4, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->slope, -2.0);
  EXPECT_EQ(r->direction, TrendDirection::kDecreasing);
  EXPECT_TRUE(r->significant);
}

TEST(TheilSenTest, ConstantSeriesNoTrend) {
  TheilSenEstimator est;
  auto r = est.FitSequence({5, 5, 5, 5, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->slope, 0.0);
  EXPECT_FALSE(r->significant);
  EXPECT_EQ(r->direction, TrendDirection::kNone);
}

TEST(TheilSenTest, BreakdownRobustness) {
  // ~29% breakdown point: with one gross outlier in 10 points the slope
  // barely moves, while least squares would be destroyed.
  TheilSenEstimator est;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) y.push_back(2.0 * i);
  y[5] = 1e6;  // outlier
  auto r = est.FitSequence(y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->slope, 2.0, 0.5);
  EXPECT_TRUE(r->significant);
  EXPECT_EQ(r->direction, TrendDirection::kIncreasing);
}

TEST(TheilSenTest, PureNoiseRejected) {
  TheilSenEstimator est;
  Rng rng(11);
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) y.push_back(rng.Normal(100.0, 10.0));
  auto r = est.FitSequence(y);
  ASSERT_TRUE(r.ok());
  // Alternating noise: neither sign reaches the 70% agreement bar.
  EXPECT_FALSE(r->significant);
}

TEST(TheilSenTest, NoisyTrendAccepted) {
  TheilSenEstimator est;
  Rng rng(13);
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    y.push_back(5.0 * i + rng.Normal(0.0, 8.0));
  }
  auto r = est.FitSequence(y);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->significant);
  EXPECT_EQ(r->direction, TrendDirection::kIncreasing);
  EXPECT_NEAR(r->slope, 5.0, 1.0);
}

TEST(TheilSenTest, FractionAccounting) {
  TheilSenEstimator est;
  auto r = est.FitSequence({0, 1, 0, 1, 0, 1});
  ASSERT_TRUE(r.ok());
  // Zero slopes (tied y at different x) count in neither fraction.
  EXPECT_LE(r->fraction_positive + r->fraction_negative, 1.0);
  EXPECT_GT(r->fraction_positive, 0.0);
  EXPECT_GT(r->fraction_negative, 0.0);
  EXPECT_FALSE(r->significant);
}

TEST(TheilSenTest, ErrorsOnBadInput) {
  TheilSenEstimator est;
  EXPECT_FALSE(est.Fit({1, 2}, {1, 2, 3}).ok());       // size mismatch
  EXPECT_FALSE(est.Fit({1, 2}, {1, 2}).ok());          // too few points
  EXPECT_FALSE(est.Fit({1, 1, 1}, {1, 2, 3}).ok());    // all-equal x
}

TEST(TheilSenTest, InvalidAcceptFraction) {
  TheilSenEstimator too_low(0.5);
  EXPECT_TRUE(
      too_low.FitSequence({1, 2, 3}).status().IsOutOfRange());
  TheilSenEstimator too_high(1.01);
  EXPECT_TRUE(
      too_high.FitSequence({1, 2, 3}).status().IsOutOfRange());
}

TEST(TheilSenTest, DuplicateXPairsIgnored) {
  TheilSenEstimator est;
  std::vector<double> x = {0, 0, 1, 2, 3};
  std::vector<double> y = {0, 100, 2, 4, 6};
  auto r = est.Fit(x, y);
  ASSERT_TRUE(r.ok());
  // The vertical pair contributes nothing; the remaining slopes include the
  // outlier's influence only through finite slopes.
  EXPECT_GT(r->slope, 0.0);
}

TEST(TheilSenTest, StricterAcceptanceRejectsWeakTrend) {
  // A trend where exactly ~73% of slopes are positive: accepted at 0.70,
  // rejected at 0.90.
  Rng rng(17);
  std::vector<double> y;
  for (int i = 0; i < 24; ++i) {
    y.push_back(1.0 * i + rng.Normal(0.0, 14.0));
  }
  TheilSenEstimator loose(0.70);
  TheilSenEstimator strict(0.95);
  auto rl = loose.FitSequence(y);
  auto rs = strict.FitSequence(y);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(rs->significant);
}

TEST(TheilSenTest, ValidateReportsConfigStatus) {
  EXPECT_TRUE(TheilSenEstimator().Validate().ok());
  EXPECT_TRUE(TheilSenEstimator(0.7).Validate().ok());
  EXPECT_TRUE(TheilSenEstimator(1.0).Validate().ok());
  EXPECT_TRUE(TheilSenEstimator(0.5).Validate().IsOutOfRange());
  EXPECT_TRUE(TheilSenEstimator(1.01).Validate().IsOutOfRange());
  EXPECT_TRUE(TheilSenEstimator(-2.0).Validate().IsOutOfRange());
}

TEST(TheilSenTest, ScratchPathMatchesScratchless) {
  TheilSenEstimator est;
  Rng rng(19);
  TheilSenScratch scratch;
  for (int round = 0; round < 5; ++round) {
    std::vector<double> y;
    for (int i = 0; i < 40; ++i) {
      y.push_back(0.3 * i + rng.Normal(0.0, 5.0));
    }
    auto plain = est.FitSequence(y);
    auto reused = est.FitSequence(y, &scratch);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reused.ok());
    // Reusing scratch across rounds must not leak state between fits.
    EXPECT_EQ(plain->slope, reused->slope);
    EXPECT_EQ(plain->intercept, reused->intercept);
    EXPECT_EQ(plain->fraction_positive, reused->fraction_positive);
    EXPECT_EQ(plain->fraction_negative, reused->fraction_negative);
    EXPECT_EQ(plain->significant, reused->significant);
    EXPECT_EQ(plain->direction, reused->direction);
  }
}

/// Property sweep: a clean linear trend of any slope/sign is recovered.
class TheilSenSlopeSweep : public ::testing::TestWithParam<double> {};

TEST_P(TheilSenSlopeSweep, RecoversSlope) {
  const double slope = GetParam();
  TheilSenEstimator est;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) y.push_back(slope * i + 3.0);
  auto r = est.FitSequence(y);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->slope, slope, 1e-9);
  if (slope > 0) {
    EXPECT_EQ(r->direction, TrendDirection::kIncreasing);
  } else if (slope < 0) {
    EXPECT_EQ(r->direction, TrendDirection::kDecreasing);
  } else {
    EXPECT_EQ(r->direction, TrendDirection::kNone);
  }
}

INSTANTIATE_TEST_SUITE_P(Slopes, TheilSenSlopeSweep,
                         ::testing::Values(-100.0, -2.5, -0.001, 0.0, 0.001,
                                           1.0, 42.0));

}  // namespace
}  // namespace dbscale::stats
