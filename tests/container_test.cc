#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "src/container/catalog.h"
#include "src/container/container.h"

namespace dbscale::container {
namespace {

TEST(ResourceVectorTest, GetSetRoundTrip) {
  ResourceVector v;
  for (ResourceKind kind : kAllResources) {
    v.Set(kind, 7.5);
    EXPECT_DOUBLE_EQ(v.Get(kind), 7.5);
  }
}

TEST(ResourceVectorTest, Dominates) {
  ResourceVector a{2, 100, 50, 4};
  ResourceVector b{1, 100, 50, 4};
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_TRUE(a.Dominates(a));
  ResourceVector c{3, 50, 10, 1};
  EXPECT_FALSE(a.Dominates(c));
  EXPECT_FALSE(c.Dominates(a));
}

TEST(ResourceVectorTest, MaxAndScale) {
  ResourceVector a{1, 200, 10, 8};
  ResourceVector b{2, 100, 50, 4};
  ResourceVector m = ResourceVector::Max(a, b);
  EXPECT_DOUBLE_EQ(m.cpu_cores, 2);
  EXPECT_DOUBLE_EQ(m.memory_mb, 200);
  EXPECT_DOUBLE_EQ(m.disk_iops, 50);
  EXPECT_DOUBLE_EQ(m.log_mbps, 8);
  ResourceVector s = a.Scaled(2.0);
  EXPECT_DOUBLE_EQ(s.memory_mb, 400);
}

TEST(CatalogTest, LockStepShape) {
  Catalog c = Catalog::MakeLockStep();
  EXPECT_EQ(c.size(), 11);
  EXPECT_EQ(c.num_rungs(), 11);
  // Paper's price span: 7 to 270 units.
  EXPECT_DOUBLE_EQ(c.smallest().price_per_interval, 7.0);
  EXPECT_DOUBLE_EQ(c.largest().price_per_interval, 270.0);
  // Half a core to tens of cores.
  EXPECT_DOUBLE_EQ(c.smallest().resources.cpu_cores, 0.5);
  EXPECT_GE(c.largest().resources.cpu_cores, 16.0);
}

TEST(CatalogTest, LockStepMonotone) {
  Catalog c = Catalog::MakeLockStep();
  for (int i = 1; i < c.num_rungs(); ++i) {
    EXPECT_GT(c.rung(i).price_per_interval,
              c.rung(i - 1).price_per_interval);
    EXPECT_TRUE(c.rung(i).resources.Dominates(c.rung(i - 1).resources));
  }
}

TEST(CatalogTest, IdsArePriceOrder) {
  Catalog c = Catalog::MakeLockStep();
  for (int i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.at(i).id, i);
    if (i > 0) {
      EXPECT_GE(c.at(i).price_per_interval,
                c.at(i - 1).price_per_interval);
    }
  }
}

TEST(CatalogTest, BallooningRungsBracket3GbWorkingSet) {
  // Figure 14 requires adjacent rungs bracketing a 3 GB working set.
  Catalog c = Catalog::MakeLockStep();
  bool found = false;
  for (int i = 1; i < c.num_rungs(); ++i) {
    if (c.rung(i - 1).resources.memory_mb < 3072.0 &&
        c.rung(i).resources.memory_mb > 3072.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CatalogTest, CheapestDominatingPicksExactFit) {
  Catalog c = Catalog::MakeLockStep();
  const ContainerSpec& s3 = c.rung(2);
  ContainerSpec got = c.CheapestDominating(s3.resources);
  EXPECT_EQ(got.id, s3.id);
}

TEST(CatalogTest, CheapestDominatingZeroDemandIsSmallest) {
  Catalog c = Catalog::MakeLockStep();
  EXPECT_EQ(c.CheapestDominating(ResourceVector{}).id, c.smallest().id);
}

TEST(CatalogTest, CheapestDominatingOversizedDemandIsLargest) {
  Catalog c = Catalog::MakeLockStep();
  ResourceVector huge{1000, 1e9, 1e6, 1e4};
  EXPECT_EQ(c.CheapestDominating(huge).id, c.largest().id);
}

TEST(CatalogTest, BudgetConstrainedFallsBackToMostExpensiveAffordable) {
  Catalog c = Catalog::MakeLockStep();
  ResourceVector huge{1000, 1e9, 1e6, 1e4};
  auto got = c.CheapestDominating(huge, 100.0);
  ASSERT_TRUE(got.ok());
  EXPECT_LE(got->price_per_interval, 100.0);
  // It is the *most expensive* affordable one.
  auto expected = c.MostExpensiveWithin(100.0);
  EXPECT_EQ(got->id, expected->id);
}

TEST(CatalogTest, BudgetBelowSmallestIsError) {
  Catalog c = Catalog::MakeLockStep();
  EXPECT_TRUE(c.CheapestDominating(ResourceVector{}, 1.0)
                  .status()
                  .IsResourceExhausted());
  EXPECT_FALSE(c.MostExpensiveWithin(6.9).ok());
}

TEST(CatalogTest, BudgetRespectedWhenDominatingExists) {
  Catalog c = Catalog::MakeLockStep();
  // Demand fits S1 but budget allows everything: still pick cheapest.
  auto got = c.CheapestDominating(ResourceVector{0.1, 10, 5, 0.5},
                                  std::numeric_limits<double>::infinity());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id, c.smallest().id);
}

TEST(CatalogTest, RungForDemand) {
  Catalog c = Catalog::MakeLockStep();
  EXPECT_EQ(c.RungForDemand(ResourceVector{}), 0);
  EXPECT_EQ(c.RungForDemand(c.rung(4).resources), 4);
  ResourceVector slightly_more = c.rung(4).resources;
  slightly_more.cpu_cores += 0.01;
  EXPECT_EQ(c.RungForDemand(slightly_more), 5);
  ResourceVector huge{1e5, 1e9, 1e7, 1e5};
  EXPECT_EQ(c.RungForDemand(huge), c.num_rungs() - 1);
}

TEST(CatalogTest, ClampRung) {
  Catalog c = Catalog::MakeLockStep();
  EXPECT_EQ(c.ClampRung(-5), 0);
  EXPECT_EQ(c.ClampRung(3), 3);
  EXPECT_EQ(c.ClampRung(100), c.num_rungs() - 1);
}

TEST(CatalogTest, FindByName) {
  Catalog c = Catalog::MakeLockStep();
  auto s5 = c.FindByName("S5");
  ASSERT_TRUE(s5.ok());
  EXPECT_EQ(s5->base_rung, 4);
  EXPECT_TRUE(c.FindByName("nope").status().IsNotFound());
}

TEST(CatalogTest, PerDimensionHasVariants) {
  Catalog c = Catalog::MakePerDimension(2);
  EXPECT_GT(c.size(), 11);
  EXPECT_EQ(c.num_rungs(), 11);
  // A cpu-boosted S1 exists and has S1's memory but more cores.
  auto variant = c.FindByName("S1-cpu+1");
  ASSERT_TRUE(variant.ok());
  Catalog lockstep = Catalog::MakeLockStep();
  EXPECT_DOUBLE_EQ(variant->resources.memory_mb,
                   lockstep.rung(0).resources.memory_mb);
  EXPECT_DOUBLE_EQ(variant->resources.cpu_cores,
                   lockstep.rung(1).resources.cpu_cores);
  // Priced between the rungs.
  EXPECT_GT(variant->price_per_interval,
            lockstep.rung(0).price_per_interval);
  EXPECT_LT(variant->price_per_interval,
            lockstep.rung(1).price_per_interval);
}

TEST(CatalogTest, PerDimensionVariantCheaperForSkewedDemand) {
  // The Figure 1 argument: demand in one dimension only is cheaper to meet
  // with a single-dimension variant than with the next full rung.
  Catalog per_dim = Catalog::MakePerDimension(2);
  Catalog lock = Catalog::MakeLockStep();
  ResourceVector demand = lock.rung(2).resources;
  demand.cpu_cores = lock.rung(3).resources.cpu_cores;  // cpu-only bump
  ContainerSpec with_variants = per_dim.CheapestDominating(demand);
  ContainerSpec lockstep_only = lock.CheapestDominating(demand);
  EXPECT_LT(with_variants.price_per_interval,
            lockstep_only.price_per_interval);
}

TEST(CatalogTest, PerDimensionLargestIsTopRung) {
  Catalog c = Catalog::MakePerDimension(2);
  EXPECT_EQ(c.largest().name, "S11");
  for (const ContainerSpec& spec : c.specs()) {
    EXPECT_TRUE(c.largest().resources.Dominates(spec.resources));
  }
}

TEST(CatalogTest, FromSpecs) {
  std::vector<ContainerSpec> specs(2);
  specs[0].name = "big";
  specs[0].resources = ResourceVector{4, 100, 10, 1};
  specs[0].price_per_interval = 20;
  specs[1].name = "small";
  specs[1].resources = ResourceVector{1, 50, 5, 1};
  specs[1].price_per_interval = 5;
  auto c = Catalog::FromSpecs(specs);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->size(), 2);
  EXPECT_EQ(c->smallest().name, "small");
  EXPECT_EQ(c->largest().name, "big");
  EXPECT_FALSE(Catalog::FromSpecs({}).ok());
}

}  // namespace
}  // namespace dbscale::container
