// End-to-end integration tests: the full closed loop of engine + workload +
// telemetry + policies, asserting the paper's qualitative behaviours.

#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include "src/baselines/static_policy.h"
#include "src/baselines/util_policy.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/experiment.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::sim {
namespace {

using container::Catalog;

SimulationOptions SmallCpuioOptions() {
  SimulationOptions options;
  options.workload = workload::MakeCpuioWorkload();
  // Short slice of trace 2 around its burst, for fast tests.
  workload::Trace full = workload::MakeTrace2LongBurst();
  std::vector<double> rps(full.values().begin() + 380,
                          full.values().begin() + 500);
  options.trace = workload::Trace("trace2-slice", rps);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 29;
  return options;
}

TEST(SimulationTest, ValidatesOptions) {
  SimulationOptions options = SmallCpuioOptions();
  options.trace = workload::Trace();
  baselines::StaticPolicy policy("Max", options.catalog.largest());
  EXPECT_FALSE(Simulation(options).Run(&policy).ok());

  options = SmallCpuioOptions();
  options.initial_rung = 99;
  EXPECT_FALSE(Simulation(options).Run(&policy).ok());

  options = SmallCpuioOptions();
  options.interval_duration = Duration::Seconds(1);  // < sample period
  EXPECT_FALSE(Simulation(options).Run(&policy).ok());

  options = SmallCpuioOptions();
  EXPECT_FALSE(Simulation(options).Run(nullptr).ok());
}

TEST(SimulationTest, StaticRunAccounting) {
  SimulationOptions options = SmallCpuioOptions();
  baselines::StaticPolicy policy("Max", options.catalog.largest());
  auto run = RunMax(options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->intervals.size(), options.trace.num_steps());
  EXPECT_EQ(run->container_changes, 0);
  EXPECT_DOUBLE_EQ(run->avg_cost_per_interval, 270.0);
  EXPECT_DOUBLE_EQ(run->total_cost, 270.0 * options.trace.num_steps());
  EXPECT_GT(run->total_completed, 1000u);
  EXPECT_GT(run->latency_p95_ms, run->latency_avg_ms);
  EXPECT_GE(run->latency_p99_ms, run->latency_p95_ms);
  EXPECT_GT(run->events_processed, run->total_completed);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  SimulationOptions options = SmallCpuioOptions();
  auto a = RunMax(options);
  auto b = RunMax(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_completed, b->total_completed);
  EXPECT_DOUBLE_EQ(a->latency_p95_ms, b->latency_p95_ms);
  EXPECT_DOUBLE_EQ(a->total_cost, b->total_cost);
}

TEST(SimulationTest, SeedChangesOutcomeSlightly) {
  SimulationOptions options = SmallCpuioOptions();
  auto a = RunMax(options);
  options.seed = 31;
  auto b = RunMax(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->total_completed, b->total_completed);
}

TEST(SimulationTest, KeepSamplesRetainsTelemetry) {
  SimulationOptions options = SmallCpuioOptions();
  options.keep_samples = true;
  auto run = RunMax(options);
  ASSERT_TRUE(run.ok());
  // 4 samples per 20s interval.
  EXPECT_EQ(run->samples.size(), options.trace.num_steps() * 4);
}

TEST(SimulationTest, BiggerContainerGivesBetterLatency) {
  SimulationOptions options = SmallCpuioOptions();
  auto max_run = RunMax(options);
  baselines::StaticPolicy small("S3", options.catalog.rung(2));
  auto small_run = RunWithPolicy(options, &small, 2);
  ASSERT_TRUE(max_run.ok());
  ASSERT_TRUE(small_run.ok());
  EXPECT_LT(max_run->latency_p95_ms, small_run->latency_p95_ms);
}

TEST(SimulationTest, AutoMeetsGoalCheaperThanPeakStatic) {
  // The paper's headline on a burst: Auto achieves the latency goal at a
  // fraction of static peak provisioning.
  SimulationOptions options = SmallCpuioOptions();
  auto max_run = RunMax(options);
  ASSERT_TRUE(max_run.ok());
  scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                           1.5 * max_run->latency_p95_ms};

  scaler::TenantKnobs knobs;
  knobs.latency_goal = goal;
  auto auto_scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  ASSERT_TRUE(auto_scaler.ok());
  SimulationOptions online = options;
  online.telemetry.latency_aggregate = goal.aggregate;
  auto auto_run = RunWithPolicy(online, auto_scaler->get(), 3);
  ASSERT_TRUE(auto_run.ok());
  EXPECT_LT(auto_run->avg_cost_per_interval, 270.0 * 0.8);
  EXPECT_LE(auto_run->latency_p95_ms, goal.target_ms * 1.35);
  EXPECT_GT(auto_run->container_changes, 0);
}

TEST(SimulationTest, AutoScalesUpDuringBurstAndDownAfter) {
  SimulationOptions options = SmallCpuioOptions();
  // Synthetic idle-burst-idle trace with a clean shape.
  std::vector<double> rps;
  for (int i = 0; i < 30; ++i) rps.push_back(8.0);
  for (int i = 0; i < 40; ++i) rps.push_back(120.0);
  for (int i = 0; i < 50; ++i) rps.push_back(8.0);
  options.trace = workload::Trace("idle-burst-idle", rps);
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 400.0};
  auto auto_scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  ASSERT_TRUE(auto_scaler.ok());
  auto run = RunWithPolicy(options, auto_scaler->get(), 2);
  ASSERT_TRUE(run.ok());
  int max_rung_burst = 0;
  for (int i = 35; i < 70; ++i) {
    max_rung_burst =
        std::max(max_rung_burst, run->intervals[(size_t)i].container.base_rung);
  }
  EXPECT_GT(max_rung_burst, 3);
  // Well after the burst it has come back down.
  EXPECT_LT(run->intervals.back().container.base_rung, max_rung_burst);
}

TEST(SimulationTest, BudgetedAutoNeverExceedsBudget) {
  SimulationOptions options = SmallCpuioOptions();
  const int n = static_cast<int>(options.trace.num_steps());
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 300.0};
  knobs.budget = scaler::BudgetKnob{
      /*total=*/7.0 * n + 800.0, /*intervals=*/n};
  auto auto_scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  ASSERT_TRUE(auto_scaler.ok());
  auto run = RunWithPolicy(options, auto_scaler->get(), 0);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->total_cost, knobs.budget->total_budget + 1e-6);
  // The budget actually bit: an unconstrained run costs more.
  scaler::TenantKnobs no_budget;
  no_budget.latency_goal = knobs.latency_goal;
  auto unconstrained =
      scaler::AutoScaler::Create(options.catalog, no_budget);
  auto free_run = RunWithPolicy(options, unconstrained->get(), 0);
  ASSERT_TRUE(free_run.ok());
  EXPECT_GT(free_run->total_cost, run->total_cost);
}

TEST(ExperimentTest, ComparisonRunsAllSixTechniques) {
  SimulationOptions options = SmallCpuioOptions();
  ComparisonOptions copts;
  copts.goal_factor = 1.5;
  auto cmp = RunComparison(options, copts);
  ASSERT_TRUE(cmp.ok());
  ASSERT_EQ(cmp->techniques.size(), 6u);
  EXPECT_NE(cmp->Find("Max"), nullptr);
  EXPECT_NE(cmp->Find("Peak"), nullptr);
  EXPECT_NE(cmp->Find("Avg"), nullptr);
  EXPECT_NE(cmp->Find("Trace"), nullptr);
  EXPECT_NE(cmp->Find("Util"), nullptr);
  EXPECT_NE(cmp->Find("Auto"), nullptr);
  EXPECT_EQ(cmp->Find("nope"), nullptr);
  // Goal derived from Max.
  EXPECT_NEAR(cmp->goal.target_ms,
              1.5 * cmp->Find("Max")->run.latency_p95_ms, 1e-6);
  // Max is the most expensive; every other technique is cheaper.
  for (const auto& t : cmp->techniques) {
    EXPECT_LE(t.run.avg_cost_per_interval, 270.0);
  }
  // Auto undercuts static peak provisioning.
  EXPECT_LT(cmp->Find("Auto")->run.avg_cost_per_interval,
            cmp->Find("Peak")->run.avg_cost_per_interval);
  // The table renders every technique.
  std::string table = cmp->ToTable();
  for (const auto& t : cmp->techniques) {
    EXPECT_NE(table.find(t.name), std::string::npos);
  }
}

TEST(ExperimentTest, TechniqueSubsetFilter) {
  SimulationOptions options = SmallCpuioOptions();
  ComparisonOptions copts;
  copts.goal_factor = 1.5;
  copts.techniques = {"Max", "Auto"};
  auto cmp = RunComparison(options, copts);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->techniques.size(), 2u);
}

TEST(SimulationTest, UsageSeriesFeedsProfiler) {
  SimulationOptions options = SmallCpuioOptions();
  auto run = RunMax(options);
  ASSERT_TRUE(run.ok());
  auto usage = run->UsageSeries();
  EXPECT_EQ(usage.size(), run->intervals.size());
  // Usage never exceeds the Max container's resources.
  for (const auto& u : usage) {
    EXPECT_LE(u.cpu_cores, 32.0 + 1e-9);
    EXPECT_LE(u.disk_iops, 10000.0 + 1e-9);
  }
}

}  // namespace
}  // namespace dbscale::sim
