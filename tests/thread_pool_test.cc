#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dbscale {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000,
                   [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RespectsBeginOffset) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 20, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](int64_t) { calls++; });
  pool.ParallelFor(5, 5, [&](int64_t) { calls++; });
  pool.ParallelFor(7, 3, [&](int64_t) { calls++; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(0, 5, [&](int64_t i) {
    order.push_back(static_cast<int>(i));  // no synchronization needed
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).num_threads(), 1);
  EXPECT_EQ(ThreadPool(-3).num_threads(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [](int64_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 10, [&](int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSerialPath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 3,
                                [](int64_t) {
                                  throw std::runtime_error("serial boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyAndCompletes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  pool.ParallelFor(0, 16, [&](int64_t outer) {
    // The workers are all busy with the outer job; a nested call must not
    // deadlock waiting for them.
    pool.ParallelFor(0, 16, [&](int64_t inner) {
      hits[static_cast<size_t>(outer * 16 + inner)]++;
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResultIndependentOfThreadCount) {
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(200);
    pool.ParallelFor(0, 200, [&](int64_t i) {
      double v = static_cast<double>(i);
      out[static_cast<size_t>(i)] = v * v + 1.0;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

TEST(ThreadPoolTest, DefaultNumThreadsReadsEnvVar) {
  ASSERT_EQ(setenv("DBSCALE_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  ASSERT_EQ(setenv("DBSCALE_NUM_THREADS", "1", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 1);
  unsetenv("DBSCALE_NUM_THREADS");
}

TEST(ThreadPoolTest, DefaultNumThreadsIgnoresInvalidEnvValues) {
  for (const char* bad : {"", "0", "-2", "abc", "4x", "99999"}) {
    ASSERT_EQ(setenv("DBSCALE_NUM_THREADS", bad, 1), 0);
    EXPECT_GE(ThreadPool::DefaultNumThreads(), 1) << "value: " << bad;
    if (*bad != '\0') {
      // Invalid values fall back to hardware concurrency, never parse.
      EXPECT_NE(ThreadPool::DefaultNumThreads(), -2);
    }
  }
  unsetenv("DBSCALE_NUM_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 50, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1225);
}

TEST(ThreadPoolTest, ConcurrentCallersSerialize) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      pool.ParallelFor(0, 100, [&](int64_t) { total++; });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 400);
}

}  // namespace
}  // namespace dbscale
