#include "src/scaler/demand_estimator.h"

#include <gtest/gtest.h>

namespace dbscale::scaler {
namespace {

using container::ResourceKind;

CategorizedSignals BaseSignals() {
  CategorizedSignals cats;
  cats.valid = true;
  return cats;
}

ResourceCategories& Res(CategorizedSignals& cats, ResourceKind kind) {
  return cats.resources[static_cast<size_t>(kind)];
}

TEST(DemandRuleTest, MatchingSemantics) {
  DemandRule rule;
  rule.utilization = Level::kHigh;
  rule.wait_magnitude = Level::kHigh;
  rule.wait_share = Significance::kSignificant;
  rule.steps = 1;

  ResourceCategories r;
  r.utilization = Level::kHigh;
  r.wait_magnitude = Level::kHigh;
  r.wait_share = Significance::kSignificant;
  EXPECT_TRUE(rule.Matches(r));
  r.wait_share = Significance::kNotSignificant;
  EXPECT_FALSE(rule.Matches(r));

  // Don't-care fields.
  DemandRule loose;
  loose.steps = 1;
  EXPECT_TRUE(loose.Matches(r));
}

TEST(DemandRuleTest, TrendConditions) {
  DemandRule needs_trend;
  needs_trend.require_increasing_trend = true;
  needs_trend.steps = 1;
  ResourceCategories r;
  EXPECT_FALSE(needs_trend.Matches(r));
  r.wait_trend = stats::TrendDirection::kIncreasing;
  EXPECT_TRUE(needs_trend.Matches(r));

  DemandRule forbids;
  forbids.forbid_increasing_trend = true;
  forbids.steps = -1;
  EXPECT_FALSE(forbids.Matches(r));
  r.wait_trend = stats::TrendDirection::kNone;
  EXPECT_TRUE(forbids.Matches(r));
}

TEST(EstimatorTest, InvalidSignalsGiveNoDemand) {
  DemandEstimator est;
  CategorizedSignals cats;
  cats.valid = false;
  auto d = est.Estimate(cats);
  EXPECT_FALSE(d.AnyIncrease());
  EXPECT_FALSE(d.AnyDecrease());
}

TEST(EstimatorTest, HighUtilAloneIsNotDemand) {
  // The paper's central claim: utilization alone does not imply demand.
  DemandEstimator est;
  auto cats = BaseSignals();
  Res(cats, ResourceKind::kCpu).utilization = Level::kHigh;
  Res(cats, ResourceKind::kCpu).wait_magnitude = Level::kLow;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 0);
}

TEST(EstimatorTest, RuleA_HighUtilHighWaitSignificantShare) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kHigh;
  cpu.wait_share = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 1);
  EXPECT_EQ(d.For(ResourceKind::kCpu).rule, "high-util-high-wait");
  EXPECT_NE(d.For(ResourceKind::kCpu).explanation.ToString().find("cpu"),
            std::string::npos);
}

TEST(EstimatorTest, SevereBottleneckIsTwoSteps) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.utilization_extreme = true;
  cpu.wait_magnitude = Level::kHigh;
  cpu.wait_extreme = true;
  cpu.wait_share = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 2);
  EXPECT_EQ(d.For(ResourceKind::kCpu).rule, "severe-bottleneck");
}

TEST(EstimatorTest, RuleB_TrendCompensatesInsignificantShare) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& disk = Res(cats, ResourceKind::kDiskIo);
  disk.utilization = Level::kHigh;
  disk.wait_magnitude = Level::kHigh;
  disk.wait_share = Significance::kNotSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).steps, 0);  // no trend yet
  disk.utilization_trend = stats::TrendDirection::kIncreasing;
  d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).steps, 1);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).rule, "high-util-high-wait-trend");
}

TEST(EstimatorTest, RuleC_MediumWaitNeedsShareAndTrend) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kMedium;
  cpu.wait_share = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 0);
  cpu.wait_trend = stats::TrendDirection::kIncreasing;
  d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 1);
}

TEST(EstimatorTest, RuleD_CorrelationIdentifiesBottleneck) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kMedium;
  cpu.wait_share = Significance::kSignificant;
  cpu.wait_latency_correlation = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 1);
  EXPECT_EQ(d.For(ResourceKind::kCpu).rule, "high-util-corr");
}

TEST(EstimatorTest, RuleE_WaitsLeadUtilization) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& disk = Res(cats, ResourceKind::kDiskIo);
  disk.utilization = Level::kMedium;
  disk.wait_magnitude = Level::kHigh;
  disk.wait_share = Significance::kSignificant;
  disk.wait_latency_correlation = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).steps, 1);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).rule, "wait-led-demand");
  // Without correlation it does not fire (utilization is only MEDIUM).
  disk.wait_latency_correlation = Significance::kNotSignificant;
  d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kDiskIo).steps, 0);
}

TEST(EstimatorTest, LowDemandRequiresCalmTrends) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kLow;
  cpu.wait_magnitude = Level::kLow;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, -1);
  cpu.utilization_trend = stats::TrendDirection::kIncreasing;
  d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 0);
}

TEST(EstimatorTest, IdleIsTwoStepsDown) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kLow;
  cpu.utilization_very_low = true;
  cpu.wait_magnitude = Level::kLow;
  cpu.wait_very_low = true;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, -2);
  EXPECT_EQ(d.For(ResourceKind::kCpu).rule, "idle");
}

TEST(EstimatorTest, MemoryNeverReportsLowDemand) {
  // Section 4.3: buffer pools keep memory "busy"; only ballooning may
  // conclude memory demand is low.
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& mem = Res(cats, ResourceKind::kMemory);
  mem.utilization = Level::kLow;
  mem.utilization_very_low = true;
  mem.wait_magnitude = Level::kLow;
  mem.wait_very_low = true;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kMemory).steps, 0);
}

TEST(EstimatorTest, MemoryHighDemandStillDetected) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& mem = Res(cats, ResourceKind::kMemory);
  mem.utilization = Level::kHigh;
  mem.wait_magnitude = Level::kHigh;
  mem.wait_share = Significance::kSignificant;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kMemory).steps, 1);
}

TEST(EstimatorTest, IndependentPerResourceDecisions) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kHigh;
  cpu.wait_share = Significance::kSignificant;
  auto& log = Res(cats, ResourceKind::kLogIo);
  log.utilization = Level::kLow;
  log.wait_magnitude = Level::kLow;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 1);
  EXPECT_EQ(d.For(ResourceKind::kLogIo).steps, -1);
  EXPECT_TRUE(d.AnyIncrease());
  EXPECT_TRUE(d.AnyDecrease());
  EXPECT_FALSE(d.SuggestsShrink());  // an increase blocks shrink
}

TEST(EstimatorTest, SummariesSplitBySign) {
  DemandEstimator est;
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kHigh;
  cpu.wait_share = Significance::kSignificant;
  auto& log = Res(cats, ResourceKind::kLogIo);
  log.utilization = Level::kLow;
  log.wait_magnitude = Level::kLow;
  auto d = est.Estimate(cats);
  EXPECT_NE(d.SummaryIncrease().find("cpu"), std::string::npos);
  EXPECT_EQ(d.SummaryIncrease().find("log"), std::string::npos);
  EXPECT_NE(d.SummaryDecrease().find("log"), std::string::npos);
  EXPECT_EQ(d.SummaryDecrease().find("cpu"), std::string::npos);
}

TEST(EstimatorTest, StepsAlwaysWithinPaperBound) {
  // Property: whatever the categorical combination, |steps| <= 2
  // (Section 4: 98% of real changes are <= 2 rungs).
  DemandEstimator est;
  const Level levels[] = {Level::kLow, Level::kMedium, Level::kHigh};
  const Significance sigs[] = {Significance::kNotSignificant,
                               Significance::kSignificant};
  const stats::TrendDirection trends[] = {
      stats::TrendDirection::kNone, stats::TrendDirection::kIncreasing,
      stats::TrendDirection::kDecreasing};
  for (Level util : levels) {
    for (Level wait : levels) {
      for (Significance share : sigs) {
        for (Significance corr : sigs) {
          for (auto trend : trends) {
            for (bool extreme : {false, true}) {
              auto cats = BaseSignals();
              for (ResourceKind kind : container::kAllResources) {
                auto& r = Res(cats, kind);
                r.utilization = util;
                r.wait_magnitude = wait;
                r.wait_share = share;
                r.wait_latency_correlation = corr;
                r.utilization_trend = trend;
                r.utilization_extreme = extreme;
                r.wait_extreme = extreme;
                r.utilization_very_low = extreme && util == Level::kLow;
                r.wait_very_low = extreme && wait == Level::kLow;
              }
              auto d = est.Estimate(cats);
              for (ResourceKind kind : container::kAllResources) {
                EXPECT_LE(std::abs(d.For(kind).steps), kMaxDemandSteps);
              }
            }
          }
        }
      }
    }
  }
}

TEST(EstimatorTest, AblationNoWaitsIsUtilizationOnly) {
  DemandEstimatorOptions options;
  options.use_waits = false;
  DemandEstimator est(options);
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kLow;  // waits say no...
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 1);  // ...but util-only fires
}

TEST(EstimatorTest, AblationNoTrendsDropsTrendRules) {
  DemandEstimatorOptions options;
  options.use_trends = false;
  DemandEstimator est(options);
  for (const auto& rule : est.high_rules()) {
    EXPECT_FALSE(rule.require_increasing_trend) << rule.name;
  }
  // Rule (b) pattern no longer fires.
  auto cats = BaseSignals();
  auto& cpu = Res(cats, ResourceKind::kCpu);
  cpu.utilization = Level::kHigh;
  cpu.wait_magnitude = Level::kHigh;
  cpu.wait_share = Significance::kNotSignificant;
  cpu.utilization_trend = stats::TrendDirection::kIncreasing;
  auto d = est.Estimate(cats);
  EXPECT_EQ(d.For(ResourceKind::kCpu).steps, 0);
}

TEST(EstimatorTest, AblationNoCorrelationDropsCorrelationRules) {
  DemandEstimatorOptions options;
  options.use_correlation = false;
  DemandEstimator est(options);
  for (const auto& rule : est.high_rules()) {
    EXPECT_FALSE(rule.correlation.has_value()) << rule.name;
  }
}

TEST(EstimatorTest, RuleTablesNonEmptyAndNamed) {
  DemandEstimator est;
  EXPECT_GE(est.high_rules().size(), 5u);
  EXPECT_GE(est.low_rules().size(), 2u);
  for (const auto& rule : est.high_rules()) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_GT(rule.steps, 0);
    EXPECT_NE(rule.code, ExplanationCode::kUnset);
  }
  for (const auto& rule : est.low_rules()) {
    EXPECT_LT(rule.steps, 0);
  }
}

}  // namespace
}  // namespace dbscale::scaler
