// Fault-injection layer tests: FaultPlan determinism, the resize actuation
// channel, the AutoScaler's retry/backoff/degradation handling, and closed
// loop + fleet behavior under fault profiles.

#include "src/fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.h"
#include "src/engine/engine.h"
#include "src/fault/actuator.h"
#include "src/fleet/fleet_sim.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/experiment.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::fault {
namespace {

using container::Catalog;
using container::ResourceKind;

FaultPlanOptions AcceptanceProfile() {
  // The headline resilience profile: 10% transient failures, 1-2 interval
  // actuation latency.
  FaultPlanOptions options;
  options.resize.failure_probability = 0.1;
  options.resize.min_latency_intervals = 1;
  options.resize.max_latency_intervals = 2;
  return options;
}

TEST(FaultPlanTest, NullPlanIsDisabledAndInjectsNothing) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (int i = 0; i < 10; ++i) {
    const ResizeFaultDraw draw = plan.NextResizeFault();
    EXPECT_EQ(draw.fate, ResizeFate::kApplied);
    EXPECT_EQ(draw.latency_intervals, 0);
    EXPECT_EQ(plan.NextSampleFault(), SampleFault::kNone);
  }
  EXPECT_FALSE(FaultPlanOptions{}.enabled());
  EXPECT_TRUE(FaultPlanOptions{}.Validate().ok());
}

TEST(FaultPlanTest, ValidateRejectsBadOptions) {
  FaultPlanOptions bad;
  bad.resize.failure_probability = 1.5;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultPlanOptions{};
  bad.resize.failure_probability = 0.6;
  bad.resize.rejection_probability = 0.6;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultPlanOptions{};
  bad.resize.min_latency_intervals = 3;
  bad.resize.max_latency_intervals = 1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultPlanOptions{};
  bad.telemetry.drop_probability = 0.5;
  bad.telemetry.nan_probability = 0.4;
  bad.telemetry.stale_probability = 0.3;
  EXPECT_FALSE(bad.Validate().ok());

  EXPECT_TRUE(AcceptanceProfile().Validate().ok());
}

TEST(FaultPlanTest, SameSeedSameFaultSequence) {
  FaultPlanOptions options = AcceptanceProfile();
  options.resize.rejection_probability = 0.05;
  options.telemetry.drop_probability = 0.1;
  options.telemetry.nan_probability = 0.05;
  options.telemetry.outlier_probability = 0.05;
  options.telemetry.stale_probability = 0.05;
  ASSERT_TRUE(options.Validate().ok());

  FaultPlan a(options, Rng(42));
  FaultPlan b(options, Rng(42));
  FaultPlan c(options, Rng(43));
  bool any_divergence_from_c = false;
  for (int i = 0; i < 500; ++i) {
    const ResizeFaultDraw da = a.NextResizeFault();
    const ResizeFaultDraw db = b.NextResizeFault();
    EXPECT_EQ(da.fate, db.fate);
    EXPECT_EQ(da.latency_intervals, db.latency_intervals);
    const SampleFault sa = a.NextSampleFault();
    EXPECT_EQ(sa, b.NextSampleFault());
    const ResizeFaultDraw dc = c.NextResizeFault();
    if (dc.fate != da.fate || dc.latency_intervals != da.latency_intervals ||
        c.NextSampleFault() != sa) {
      any_divergence_from_c = true;
    }
  }
  EXPECT_TRUE(any_divergence_from_c);
}

TEST(FaultPlanTest, NanCorruptionIsCaughtByIngestionGuard) {
  FaultPlanOptions options;
  options.telemetry.nan_probability = 1.0;
  FaultPlan plan(options, Rng(1));

  telemetry::TelemetrySample sample;
  sample.period_end = SimTime::Zero() + Duration::Seconds(5);
  sample.latency_avg_ms = 10.0;
  sample.latency_p95_ms = 20.0;
  EXPECT_TRUE(SampleLooksValid(sample));
  plan.CorruptSample(SampleFault::kNan, &sample);
  EXPECT_FALSE(SampleLooksValid(sample));
}

TEST(FaultPlanTest, OutlierCorruptionInflatesButStaysValid) {
  FaultPlanOptions options;
  options.telemetry.outlier_probability = 1.0;
  options.telemetry.outlier_factor = 8.0;
  FaultPlan plan(options, Rng(1));

  telemetry::TelemetrySample sample;
  sample.latency_p95_ms = 20.0;
  plan.CorruptSample(SampleFault::kOutlier, &sample);
  EXPECT_DOUBLE_EQ(sample.latency_p95_ms, 160.0);
  EXPECT_TRUE(SampleLooksValid(sample));
}

TEST(ResizeActuatorTest, NullPlanAppliesImmediately) {
  const Catalog catalog = Catalog::MakeLockStep();
  FaultPlan plan;
  ResizeActuator actuator(&plan);
  const ResizeEvent ev = actuator.Begin(catalog.rung(5));
  EXPECT_EQ(ev.kind, ResizeEventKind::kApplied);
  EXPECT_EQ(ev.target.base_rung, 5);
  EXPECT_EQ(ev.attempt, 1);
  EXPECT_FALSE(actuator.pending());
}

TEST(ResizeActuatorTest, LatencyDelaysApplication) {
  const Catalog catalog = Catalog::MakeLockStep();
  FaultPlanOptions options;
  options.resize.min_latency_intervals = 2;
  options.resize.max_latency_intervals = 2;
  FaultPlan plan(options, Rng(7));
  ResizeActuator actuator(&plan);

  EXPECT_EQ(actuator.Begin(catalog.rung(5)).kind, ResizeEventKind::kPending);
  EXPECT_TRUE(actuator.pending());
  EXPECT_EQ(actuator.Tick().kind, ResizeEventKind::kPending);
  const ResizeEvent done = actuator.Tick();
  EXPECT_EQ(done.kind, ResizeEventKind::kApplied);
  EXPECT_EQ(done.target.base_rung, 5);
  EXPECT_FALSE(actuator.pending());
  EXPECT_EQ(actuator.Tick().kind, ResizeEventKind::kNone);
  EXPECT_EQ(actuator.begins(), 1u);
  EXPECT_EQ(actuator.applied(), 1u);
}

TEST(ResizeActuatorTest, AttemptsCountPerTargetAndResetOnNewTarget) {
  const Catalog catalog = Catalog::MakeLockStep();
  FaultPlanOptions options;
  options.resize.failure_probability = 1.0;
  FaultPlan plan(options, Rng(3));
  ResizeActuator actuator(&plan);

  EXPECT_EQ(actuator.Begin(catalog.rung(5)).attempt, 1);
  EXPECT_EQ(actuator.Begin(catalog.rung(5)).attempt, 2);
  EXPECT_EQ(actuator.Begin(catalog.rung(5)).attempt, 3);
  // New target id: the attempt counter starts over.
  EXPECT_EQ(actuator.Begin(catalog.rung(6)).attempt, 1);
  EXPECT_EQ(actuator.failed(), 4u);
}

TEST(ResizeActuatorTest, RejectionIsImmediate) {
  const Catalog catalog = Catalog::MakeLockStep();
  FaultPlanOptions options;
  options.resize.rejection_probability = 1.0;
  options.resize.min_latency_intervals = 2;
  options.resize.max_latency_intervals = 2;
  FaultPlan plan(options, Rng(3));
  ResizeActuator actuator(&plan);

  const ResizeEvent ev = actuator.Begin(catalog.rung(5));
  EXPECT_EQ(ev.kind, ResizeEventKind::kRejected);
  EXPECT_FALSE(actuator.pending());
  EXPECT_EQ(actuator.rejected(), 1u);
}

TEST(EngineResizeApiTest, BeginCompleteAbortSemantics) {
  const Catalog catalog = Catalog::MakeLockStep();
  engine::EventQueue events;
  engine::EngineOptions options;
  engine::DatabaseEngine engine(&events, options, catalog.rung(3), Rng(1));

  // Nothing staged: Complete/Abort are precondition failures.
  EXPECT_FALSE(engine.CompleteResize().ok());
  EXPECT_FALSE(engine.AbortResize().ok());

  ASSERT_TRUE(engine.BeginResize(catalog.rung(5)).ok());
  EXPECT_TRUE(engine.resize_pending());
  // One actuation channel: a second Begin while staged is an error.
  EXPECT_FALSE(engine.BeginResize(catalog.rung(6)).ok());
  // The container does not change until CompleteResize.
  EXPECT_EQ(engine.current_container().base_rung, 3);
  ASSERT_TRUE(engine.CompleteResize().ok());
  EXPECT_EQ(engine.current_container().base_rung, 5);
  EXPECT_FALSE(engine.resize_pending());

  // Abort leaves the engine untouched.
  ASSERT_TRUE(engine.BeginResize(catalog.rung(8)).ok());
  ASSERT_TRUE(engine.AbortResize().ok());
  EXPECT_EQ(engine.current_container().base_rung, 5);
  EXPECT_FALSE(engine.resize_pending());
}

// ---------------------------------------------------------------------------
// AutoScaler resize-lifecycle handling (unit level, synthetic snapshots).

class AutoScalerFaultTest : public ::testing::Test {
 protected:
  AutoScalerFaultTest() : catalog_(Catalog::MakeLockStep()) {}

  std::unique_ptr<scaler::AutoScaler> MakeScaler(
      double goal_ms, scaler::AutoScalerOptions options = {}) {
    scaler::TenantKnobs knobs;
    knobs.latency_goal =
        scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, goal_ms};
    auto result = scaler::AutoScaler::Create(catalog_, knobs, options);
    DBSCALE_CHECK_OK(result.status());
    return std::move(result).value();
  }

  telemetry::SignalSnapshot Snapshot(int rung, double latency_ms) {
    telemetry::SignalSnapshot s;
    s.valid = true;
    s.latency_ms = latency_ms;
    s.allocation = catalog_.rung(rung).resources;
    s.throughput_rps = 50.0;
    for (ResourceKind kind : container::kAllResources) {
      auto& r = s.resources[static_cast<size_t>(kind)];
      r.utilization_pct = 50.0;
      r.wait_ms_per_request = 5.0;
      r.wait_pct = 25.0;
    }
    return s;
  }

  void SetCpuBottleneck(telemetry::SignalSnapshot* s) {
    auto& cpu = s->resources[static_cast<size_t>(ResourceKind::kCpu)];
    cpu.utilization_pct = 85.0;
    cpu.wait_ms_per_request = 50.0;
    cpu.wait_pct = 70.0;
    s->wait_pct_by_class[static_cast<size_t>(telemetry::WaitClass::kCpu)] =
        70.0;
  }

  void SetAllIdle(telemetry::SignalSnapshot* s) {
    for (ResourceKind kind : container::kAllResources) {
      auto& r = s->resources[static_cast<size_t>(kind)];
      r.utilization_pct = kind == ResourceKind::kMemory ? 80.0 : 5.0;
      r.wait_ms_per_request = 0.1;
      r.wait_pct = 10.0;
    }
  }

  scaler::PolicyInput Input(const telemetry::SignalSnapshot& signals,
                            int rung, int interval) {
    scaler::PolicyInput input;
    input.now = SimTime::Zero() + Duration::Seconds(20.0 * (interval + 1));
    input.signals = signals;
    input.current = catalog_.rung(rung);
    input.interval_index = interval;
    return input;
  }

  scaler::PolicyInput WithFeedback(scaler::PolicyInput input,
                                   scaler::ActuationPhase phase,
                                   int target_rung, int attempt) {
    input.actuation.phase = phase;
    input.actuation.target = catalog_.rung(target_rung);
    input.actuation.attempt = attempt;
    return input;
  }

  Catalog catalog_;
};

TEST_F(AutoScalerFaultTest, PendingResizeHoldsTheChannel) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);  // Would scale up if the channel were free.
  auto d = scaler->Decide(WithFeedback(
      Input(s, 3, 5), scaler::ActuationPhase::kPending, 4, 1));
  EXPECT_EQ(d.target.base_rung, 3);
  EXPECT_EQ(d.explanation.code,
            scaler::ExplanationCode::kHoldResizePending);
}

TEST_F(AutoScalerFaultTest, FailedResizeBacksOffThenRetries) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);

  // Attempt 1 toward rung 4 failed: back off one interval.
  auto hold = scaler->Decide(WithFeedback(
      Input(s, 3, 10), scaler::ActuationPhase::kFailed, 4, 1));
  EXPECT_EQ(hold.target.base_rung, 3);
  EXPECT_EQ(hold.explanation.code,
            scaler::ExplanationCode::kHoldResizeBackoff);

  // Next interval: the retry fires toward the SAME target.
  auto retry = scaler->Decide(Input(s, 3, 11));
  EXPECT_EQ(retry.explanation.code,
            scaler::ExplanationCode::kScaleRetryResize);
  EXPECT_EQ(retry.target.base_rung, 4);
  // The audit trail records the retried request with its attempt number.
  ASSERT_FALSE(scaler->audit().empty());
  EXPECT_EQ(scaler->audit().back().resize_attempt, 2);
  EXPECT_EQ(scaler->audit().back().resize_outcome,
            scaler::ResizeOutcome::kRequested);
}

TEST_F(AutoScalerFaultTest, ExponentialBackoffGrowsBetweenRetries) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);

  // Attempt 2 failed: backoff = base * multiplier^(2-1) = 2 intervals.
  auto hold = scaler->Decide(WithFeedback(
      Input(s, 3, 10), scaler::ActuationPhase::kFailed, 4, 2));
  EXPECT_EQ(hold.explanation.code,
            scaler::ExplanationCode::kHoldResizeBackoff);
  // Interval 11: still backing off.
  auto wait = scaler->Decide(Input(s, 3, 11));
  EXPECT_EQ(wait.explanation.code,
            scaler::ExplanationCode::kHoldResizeBackoff);
  EXPECT_EQ(wait.target.base_rung, 3);
  // Interval 12: retry due.
  auto retry = scaler->Decide(Input(s, 3, 12));
  EXPECT_EQ(retry.explanation.code,
            scaler::ExplanationCode::kScaleRetryResize);
}

TEST_F(AutoScalerFaultTest, AbandonsAfterMaxAttempts) {
  scaler::AutoScalerOptions options;
  options.resize_max_attempts = 2;
  auto scaler = MakeScaler(200, options);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);

  auto abandoned = scaler->Decide(WithFeedback(
      Input(s, 3, 10), scaler::ActuationPhase::kFailed, 4, 2));
  EXPECT_EQ(abandoned.target.base_rung, 3);
  EXPECT_EQ(abandoned.explanation.code,
            scaler::ExplanationCode::kHoldResizeAbandoned);
  // No retry is scheduled: the next cycle runs the normal logic (which may
  // request the resize afresh, attempt 1 — but never as kScaleRetryResize).
  auto next = scaler->Decide(Input(s, 3, 11));
  EXPECT_NE(next.explanation.code,
            scaler::ExplanationCode::kScaleRetryResize);
}

TEST_F(AutoScalerFaultTest, RejectedTargetCoolsDown) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);

  auto rejected = scaler->Decide(WithFeedback(
      Input(s, 3, 10), scaler::ActuationPhase::kRejected, 4, 1));
  EXPECT_EQ(rejected.target.base_rung, 3);
  EXPECT_EQ(rejected.explanation.code,
            scaler::ExplanationCode::kHoldResizeRejected);

  // During the cooldown the scale-up path refuses the rejected target.
  auto held = scaler->Decide(Input(s, 3, 12));
  EXPECT_EQ(held.target.base_rung, 3);
  EXPECT_EQ(held.explanation.code,
            scaler::ExplanationCode::kHoldResizeRejected);

  // After the cooldown (10 intervals by default) the target is fair game.
  auto scaled = scaler->Decide(Input(s, 3, 25));
  EXPECT_GT(scaled.target.base_rung, 3);
}

TEST_F(AutoScalerFaultTest, FailedResizeAbortsBallooning) {
  scaler::AutoScalerOptions options;
  options.down_patience_medium = 1;
  auto scaler = MakeScaler(1000, options);
  auto s = Snapshot(5, 100);
  SetAllIdle(&s);
  s.physical_reads_per_sec = 10.0;

  // Low demand with patience 1: a balloon pass starts immediately.
  auto d0 = scaler->Decide(Input(s, 5, 0));
  ASSERT_TRUE(scaler->balloon().active());
  ASSERT_TRUE(d0.memory_limit_mb.has_value());

  // A resize failure mid-balloon aborts the pass and restores the full
  // allocation.
  auto d1 = scaler->Decide(WithFeedback(
      Input(s, 5, 1), scaler::ActuationPhase::kFailed, 4, 1));
  EXPECT_FALSE(scaler->balloon().active());
  ASSERT_TRUE(d1.memory_limit_mb.has_value());
  EXPECT_DOUBLE_EQ(*d1.memory_limit_mb,
                   catalog_.rung(5).resources.memory_mb);
}

TEST_F(AutoScalerFaultTest, DegradedTelemetryForcesZeroDemandHold) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);  // Demand signals that would normally scale up.
  s.degraded = true;
  s.confidence = 0.4;

  for (int i = 0; i < 5; ++i) {
    auto d = scaler->Decide(Input(s, 3, i));
    // Degraded windows force demand 0: the container NEVER moves.
    EXPECT_EQ(d.target.base_rung, 3);
    EXPECT_EQ(d.explanation.code,
              scaler::ExplanationCode::kHoldDegradedTelemetry);
  }
}

TEST_F(AutoScalerFaultTest, AppliedFeedbackSettlesAuditOutcome) {
  auto scaler = MakeScaler(200);
  auto s = Snapshot(3, 400);
  SetCpuBottleneck(&s);
  auto up = scaler->Decide(Input(s, 3, 0));
  ASSERT_GT(up.target.base_rung, 3);
  ASSERT_EQ(scaler->audit().back().resize_outcome,
            scaler::ResizeOutcome::kRequested);

  auto healthy = Snapshot(up.target.base_rung, 100);
  // dbscale-lint: allow(discarded-status)
  (void)scaler->Decide(WithFeedback(Input(healthy, up.target.base_rung, 1),
                                    scaler::ActuationPhase::kApplied,
                                    up.target.base_rung, 1));
  const auto resizes = scaler->audit().Resizes();
  ASSERT_FALSE(resizes.empty());
  EXPECT_EQ(resizes.front()->resize_outcome,
            scaler::ResizeOutcome::kApplied);
}

// ---------------------------------------------------------------------------
// Closed-loop integration under fault profiles.

sim::SimulationOptions FaultSimOptions() {
  sim::SimulationOptions options;
  options.catalog = Catalog::MakeLockStep();
  options.workload = workload::MakeCpuioWorkload();
  options.trace = *workload::MakeTrace2LongBurst().Subsampled(8);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 17;
  options.telemetry.latency_aggregate = telemetry::LatencyAggregate::kP95;
  return options;
}

Result<sim::RunResult> RunAutoWithFaults(const sim::SimulationOptions& options,
                                         scaler::AuditLog const** audit_out) {
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  auto scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  DBSCALE_CHECK_OK(scaler.status());
  static std::unique_ptr<scaler::AutoScaler> keep_alive;
  keep_alive = std::move(scaler).value();
  if (audit_out != nullptr) *audit_out = &keep_alive->audit();
  return sim::RunWithPolicy(options, keep_alive.get(), 3);
}

/// Direction reversals in the rung series: up-move directly followed by a
/// down-move or vice versa (ignoring holds in between).
int DirectionReversals(const sim::RunResult& run) {
  int reversals = 0;
  int last_direction = 0;
  for (size_t i = 1; i < run.intervals.size(); ++i) {
    const int delta = run.intervals[i].container.base_rung -
                      run.intervals[i - 1].container.base_rung;
    if (delta == 0) continue;
    const int direction = delta > 0 ? 1 : -1;
    if (last_direction != 0 && direction != last_direction) ++reversals;
    last_direction = direction;
  }
  return reversals;
}

TEST(SimulationFaultTest, FaultyRunIsDeterministic) {
  sim::SimulationOptions options = FaultSimOptions();
  options.fault = AcceptanceProfile();
  options.fault.telemetry.drop_probability = 0.05;
  auto a = RunAutoWithFaults(options, nullptr);
  auto b = RunAutoWithFaults(options, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->total_cost, b->total_cost);
  EXPECT_DOUBLE_EQ(a->latency_p95_ms, b->latency_p95_ms);
  EXPECT_EQ(a->container_changes, b->container_changes);
  EXPECT_EQ(a->resize_attempts, b->resize_attempts);
  EXPECT_EQ(a->resize_failures, b->resize_failures);
  EXPECT_EQ(a->telemetry_dropped_samples, b->telemetry_dropped_samples);
}

TEST(SimulationFaultTest, ClosedLoopStableUnderAcceptanceProfile) {
  sim::SimulationOptions options = FaultSimOptions();
  options.fault = AcceptanceProfile();
  const scaler::AuditLog* audit = nullptr;
  auto run = RunAutoWithFaults(options, &audit);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // No oscillation: at most one direction reversal per 10 intervals.
  const int reversals = DirectionReversals(*run);
  EXPECT_LE(10 * reversals, static_cast<int>(run->intervals.size()))
      << "reversals=" << reversals;
  // The loop still scales (it does not deadlock into a permanent hold).
  EXPECT_GT(run->container_changes, 0);
  // Delayed actuation: requests outnumber (or equal) applied changes.
  EXPECT_GE(run->resize_attempts,
            static_cast<uint64_t>(run->container_changes));

  // Every failed resize shows up in the audit log with its retry trail.
  ASSERT_NE(audit, nullptr);
  if (run->resize_failures > 0) {
    int failed_or_abandoned = 0;
    for (const auto* record : audit->Resizes()) {
      if (record->resize_outcome == scaler::ResizeOutcome::kFailed ||
          record->resize_outcome == scaler::ResizeOutcome::kAbandoned) {
        ++failed_or_abandoned;
      }
    }
    EXPECT_GT(failed_or_abandoned, 0);
  }
}

TEST(SimulationFaultTest, AlwaysFailingResizesNeverApplyButNeverWedge) {
  sim::SimulationOptions options = FaultSimOptions();
  options.fault.resize.failure_probability = 1.0;
  options.fault.resize.min_latency_intervals = 1;
  options.fault.resize.max_latency_intervals = 1;
  const scaler::AuditLog* audit = nullptr;
  auto run = RunAutoWithFaults(options, &audit);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->container_changes, 0);
  EXPECT_GT(run->resize_failures, 0u);
  // Retries happened (attempt > 1 requests) and were eventually abandoned.
  bool saw_retry = false, saw_abandoned = false, saw_backoff = false;
  for (const auto& interval : run->intervals) {
    if (interval.decision_code ==
        scaler::ExplanationCode::kScaleRetryResize) {
      saw_retry = true;
    }
    if (interval.decision_code ==
        scaler::ExplanationCode::kHoldResizeAbandoned) {
      saw_abandoned = true;
    }
    if (interval.decision_code ==
        scaler::ExplanationCode::kHoldResizeBackoff) {
      saw_backoff = true;
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_backoff);
  EXPECT_TRUE(saw_abandoned);
  ASSERT_NE(audit, nullptr);
  bool audit_has_failed_trail = false;
  for (const auto* record : audit->Resizes()) {
    if ((record->resize_outcome == scaler::ResizeOutcome::kFailed ||
         record->resize_outcome == scaler::ResizeOutcome::kAbandoned) &&
        record->resize_attempt >= 1) {
      audit_has_failed_trail = true;
    }
  }
  EXPECT_TRUE(audit_has_failed_trail);
}

TEST(SimulationFaultTest, DroppedTelemetryDegradesWindowsAndHoldsDemand) {
  sim::SimulationOptions options = FaultSimOptions();
  options.fault.telemetry.drop_probability = 0.5;
  auto run = RunAutoWithFaults(options, nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_GT(run->telemetry_dropped_samples, 0u);
  EXPECT_GT(run->degraded_windows, 0u);
  int degraded_decisions = 0;
  for (const auto& interval : run->intervals) {
    if (interval.decision_code ==
        scaler::ExplanationCode::kHoldDegradedTelemetry) {
      ++degraded_decisions;
      // A degraded window never produces a demand step.
      EXPECT_FALSE(interval.resized);
    }
  }
  EXPECT_GT(degraded_decisions, 0);
}

// ---------------------------------------------------------------------------
// Fleet integration: determinism across thread counts under faults.

double FleetDigest(const fleet::FleetTelemetry& t) {
  double sum = 0.0, weight = 1.0;
  for (const auto& r : t.hourly) {
    weight = weight >= 1e9 ? 1.0 : weight + 1e-3;
    for (size_t ri = 0; ri < container::kNumResources; ++ri) {
      sum += weight * (r.utilization_pct[ri] + r.wait_ms_per_request[ri]);
    }
  }
  for (double m : t.inter_event_minutes) sum += m;
  for (size_t i = 0; i < t.step_size_counts.size(); ++i) {
    sum += static_cast<double>(i) *
           static_cast<double>(t.step_size_counts[i]);
  }
  return sum;
}

TEST(FleetFaultTest, FaultyDigestIsThreadCountInvariant) {
  const Catalog catalog = Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = 32;
  options.num_intervals = 288;
  options.seed = 7;
  options.fault.resize.failure_probability = 0.2;
  options.fault.resize.min_latency_intervals = 1;
  options.fault.resize.max_latency_intervals = 2;

  options.num_threads = 1;
  auto serial = fleet::FleetSimulator(catalog, options).Run();
  options.num_threads = 4;
  auto parallel = fleet::FleetSimulator(catalog, options).Run();
  ASSERT_TRUE(serial.ok() && parallel.ok());

  EXPECT_DOUBLE_EQ(FleetDigest(*serial), FleetDigest(*parallel));
  EXPECT_EQ(serial->resize_failures, parallel->resize_failures);
  EXPECT_EQ(serial->resize_retries, parallel->resize_retries);
  EXPECT_GT(serial->resize_failures, 0u);
  EXPECT_GT(serial->resize_retries, 0u);
}

TEST(FleetFaultTest, FaultyRunDiffersFromNullRun) {
  const Catalog catalog = Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = 16;
  options.num_intervals = 288;
  options.seed = 7;
  options.num_threads = 1;
  auto null_run = fleet::FleetSimulator(catalog, options).Run();
  options.fault = AcceptanceProfile();
  auto faulty = fleet::FleetSimulator(catalog, options).Run();
  ASSERT_TRUE(null_run.ok() && faulty.ok());
  EXPECT_EQ(null_run->resize_failures, 0u);
  EXPECT_NE(FleetDigest(*null_run), FleetDigest(*faulty));
}

}  // namespace
}  // namespace dbscale::fault
