#include <gtest/gtest.h>

#include "src/baselines/offline_profiler.h"
#include "src/baselines/static_policy.h"
#include "src/baselines/trace_policy.h"
#include "src/baselines/util_policy.h"

namespace dbscale::baselines {
namespace {

using container::Catalog;
using container::ContainerSpec;
using container::ResourceKind;
using container::ResourceVector;

scaler::PolicyInput MakeInput(const Catalog& catalog, int rung,
                              int interval) {
  scaler::PolicyInput input;
  input.signals.valid = true;
  input.current = catalog.rung(rung);
  input.interval_index = interval;
  return input;
}

TEST(StaticPolicyTest, AlwaysSameContainer) {
  Catalog catalog = Catalog::MakeLockStep();
  StaticPolicy policy("Max", catalog.largest());
  for (int i = 0; i < 5; ++i) {
    auto d = policy.Decide(MakeInput(catalog, 2, i));
    EXPECT_EQ(d.target.id, catalog.largest().id);
  }
  EXPECT_EQ(policy.name(), "Max");
}

TEST(TracePolicyTest, FollowsScheduleForNextInterval) {
  Catalog catalog = Catalog::MakeLockStep();
  std::vector<ContainerSpec> schedule = {catalog.rung(0), catalog.rung(3),
                                         catalog.rung(5)};
  TracePolicy policy(schedule);
  // Decide at the end of interval 0 picks schedule[1].
  auto d = policy.Decide(MakeInput(catalog, 0, 0));
  EXPECT_EQ(d.target.base_rung, 3);
  d = policy.Decide(MakeInput(catalog, 3, 1));
  EXPECT_EQ(d.target.base_rung, 5);
  // Past the end: clamps to the last entry.
  d = policy.Decide(MakeInput(catalog, 5, 10));
  EXPECT_EQ(d.target.base_rung, 5);
}

TEST(TracePolicyTest, EmptyScheduleHolds) {
  Catalog catalog = Catalog::MakeLockStep();
  TracePolicy policy({});
  auto d = policy.Decide(MakeInput(catalog, 2, 0));
  EXPECT_EQ(d.target.base_rung, 2);
}

class UtilPolicyTest : public ::testing::Test {
 protected:
  UtilPolicyTest()
      : catalog_(Catalog::MakeLockStep()),
        policy_(catalog_,
                scaler::LatencyGoal{telemetry::LatencyAggregate::kP95,
                                    200.0}) {}

  scaler::PolicyInput Input(int rung, double latency, double cpu_util,
                            double mem_util = 90.0) {
    scaler::PolicyInput input = MakeInput(catalog_, rung, 0);
    input.signals.latency_ms = latency;
    input.signals
        .resources[static_cast<size_t>(ResourceKind::kCpu)]
        .utilization_pct = cpu_util;
    input.signals
        .resources[static_cast<size_t>(ResourceKind::kMemory)]
        .utilization_pct = mem_util;
    return input;
  }

  Catalog catalog_;
  UtilPolicy policy_;
};

TEST_F(UtilPolicyTest, ScalesUpOnBadLatencyWithUtilization) {
  auto d = policy_.Decide(Input(3, /*latency=*/300, /*cpu=*/50));
  EXPECT_EQ(d.target.base_rung, 4);
}

TEST_F(UtilPolicyTest, BigViolationJumpsTwoRungs) {
  auto d = policy_.Decide(Input(3, /*latency=*/500, /*cpu=*/50));
  EXPECT_EQ(d.target.base_rung, 5);
}

TEST_F(UtilPolicyTest, MemoryUtilizationAlonePassesUpGate) {
  // The failure mode the paper highlights: the cache keeps memory "busy",
  // so Util scales on any latency violation.
  auto d = policy_.Decide(Input(3, /*latency=*/300, /*cpu=*/2,
                                /*mem=*/95));
  EXPECT_EQ(d.target.base_rung, 4);
}

TEST_F(UtilPolicyTest, ScaleDownNeedsGoodLatencyLowActivityAndPatience) {
  UtilPolicyOptions options;
  options.down_patience = 3;
  UtilPolicy policy(catalog_,
                    scaler::LatencyGoal{telemetry::LatencyAggregate::kP95,
                                        200.0},
                    options);
  auto idle = Input(5, /*latency=*/100, /*cpu=*/5);
  EXPECT_EQ(policy.Decide(idle).target.base_rung, 5);
  EXPECT_EQ(policy.Decide(idle).target.base_rung, 5);
  EXPECT_EQ(policy.Decide(idle).target.base_rung, 4);  // third fires
}

TEST_F(UtilPolicyTest, MemoryUtilizationDoesNotBlockScaleDown) {
  UtilPolicyOptions options;
  options.down_patience = 1;
  UtilPolicy policy(catalog_,
                    scaler::LatencyGoal{telemetry::LatencyAggregate::kP95,
                                        200.0},
                    options);
  auto d = policy.Decide(Input(5, 100, /*cpu=*/5, /*mem=*/100));
  EXPECT_EQ(d.target.base_rung, 4);
}

TEST_F(UtilPolicyTest, HoldsAtLargestAndSmallest) {
  auto top = Input(catalog_.num_rungs() - 1, 500, 50);
  EXPECT_EQ(policy_.Decide(top).target.base_rung,
            catalog_.num_rungs() - 1);
  UtilPolicyOptions options;
  options.down_patience = 1;
  UtilPolicy p2(catalog_,
                scaler::LatencyGoal{telemetry::LatencyAggregate::kP95,
                                    200.0},
                options);
  auto bottom = Input(0, 100, 1);
  EXPECT_EQ(p2.Decide(bottom).target.base_rung, 0);
}

TEST_F(UtilPolicyTest, LatencyBadButIdleHolds) {
  // Bad latency with *no* utilization anywhere: the up-gate fails.
  auto d = policy_.Decide(Input(3, 500, /*cpu=*/2, /*mem=*/5));
  EXPECT_EQ(d.target.base_rung, 3);
}

class OfflineProfilerTest : public ::testing::Test {
 protected:
  OfflineProfilerTest() : catalog_(Catalog::MakeLockStep()) {}

  std::vector<ResourceVector> UsageRamp() {
    // 100 intervals: usage ramps from near-zero to ~S8-sized.
    std::vector<ResourceVector> usage;
    for (int i = 0; i < 100; ++i) {
      double f = static_cast<double>(i) / 99.0;
      usage.push_back(ResourceVector{f * 10.0, f * 30000.0, f * 1500.0,
                                     f * 60.0});
    }
    return usage;
  }

  Catalog catalog_;
};

TEST_F(OfflineProfilerTest, PeakCoversP95) {
  OfflineProfiler profiler(catalog_, UsageRamp());
  auto peak = profiler.PeakContainer();
  ASSERT_TRUE(peak.ok());
  // p95 of the ramp * headroom: ~11.9 cores -> S8.
  EXPECT_GE(peak->resources.cpu_cores, 11.0);
  auto avg = profiler.AvgContainer();
  ASSERT_TRUE(avg.ok());
  EXPECT_LT(avg->price_per_interval, peak->price_per_interval);
  // Avg covers the mean (~5 cores * 1.25): S6-ish.
  EXPECT_GE(avg->resources.cpu_cores, 6.0);
}

TEST_F(OfflineProfilerTest, TraceScheduleHugsTheCurve) {
  OfflineProfiler profiler(catalog_, UsageRamp());
  auto schedule = profiler.TraceSchedule();
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->size(), 100u);
  // Non-decreasing for a ramp, small at the start, big at the end.
  EXPECT_EQ(schedule->front().base_rung, 0);
  EXPECT_GE(schedule->back().resources.cpu_cores, 11.0);
  for (size_t i = 1; i < schedule->size(); ++i) {
    EXPECT_GE((*schedule)[i].base_rung, (*schedule)[i - 1].base_rung);
  }
}

TEST_F(OfflineProfilerTest, EmptyUsageErrors) {
  OfflineProfiler profiler(catalog_, {});
  EXPECT_FALSE(profiler.PeakContainer().ok());
  EXPECT_FALSE(profiler.AvgContainer().ok());
  EXPECT_FALSE(profiler.TraceSchedule().ok());
}

TEST_F(OfflineProfilerTest, HeadroomRaisesChoice) {
  std::vector<ResourceVector> flat(
      10, ResourceVector{1.9, 1000.0, 150.0, 6.0});
  ProfilerOptions no_headroom;
  no_headroom.headroom = 1.0;
  OfflineProfiler tight(catalog_, flat, no_headroom);
  ProfilerOptions with_headroom;
  with_headroom.headroom = 1.5;
  OfflineProfiler roomy(catalog_, flat, with_headroom);
  EXPECT_LT(tight.PeakContainer()->price_per_interval,
            roomy.PeakContainer()->price_per_interval);
}

}  // namespace
}  // namespace dbscale::baselines
