// Diagonal scaling: optimizer exactness against brute force, fixed-path
// equivalence with Catalog::CheapestDominating, the catalog-backend
// equivalence contract (a coupled FlexibleCatalog is bit-identical to
// MakeLockStep under Auto), Validate() rejections, and determinism of full
// diagonal runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "src/container/catalog.h"
#include "src/scaler/diagonal.h"
#include "src/sim/experiment.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale {
namespace {

using container::Catalog;
using container::ContainerSpec;
using container::FlexibleCatalogOptions;
using container::GridLevels;
using container::ResourceKind;
using container::ResourceVector;
using scaler::DiagonalOptimizer;
using scaler::DiagonalOptions;
using scaler::DiagonalScaler;
using scaler::ExplanationCode;

// ---------------------------------------------------------------------------
// Optimizer exactness.
// ---------------------------------------------------------------------------

struct BruteResult {
  int shortfall = 0;
  double price = 0.0;
  bool feasible = false;
  bool budget_limited = false;
};

// Exhaustive reference: enumerate every grid combination, keep the
// cheapest dominating bundle within budget, else the affordable bundle
// minimizing (total shortfall steps, then price).
BruteResult BruteForce(const Catalog& catalog, const ResourceVector& demand,
                       double budget) {
  GridLevels need{};
  for (ResourceKind kind : container::kAllResources) {
    need[static_cast<size_t>(kind)] = catalog.GridLevelFor(
        kind, demand.Get(kind));
  }
  BruteResult best;
  int best_short = std::numeric_limits<int>::max();
  double best_price = std::numeric_limits<double>::infinity();
  const int n = catalog.GridSize(ResourceKind::kCpu);
  GridLevels levels{};
  for (levels[0] = 0; levels[0] < n; ++levels[0]) {
    for (levels[1] = 0; levels[1] < n; ++levels[1]) {
      for (levels[2] = 0; levels[2] < n; ++levels[2]) {
        for (levels[3] = 0; levels[3] < n; ++levels[3]) {
          const double price = catalog.BundlePrice(levels);
          if (price > budget) continue;
          int shortfall = 0;
          for (int d = 0; d < container::kNumResources; ++d) {
            shortfall += std::max(0, need[d] - levels[d]);
          }
          if (shortfall < best_short ||
              (shortfall == best_short && price < best_price)) {
            best_short = shortfall;
            best_price = price;
            best.feasible = true;
          }
        }
      }
    }
  }
  if (!best.feasible) return best;
  best.shortfall = best_short;
  best.price = best_price;
  best.budget_limited = best_short > 0;
  return best;
}

TEST(DiagonalOptimizerTest, MatchesBruteForceOnRandomizedGrids) {
  std::mt19937 rng(20260807u);
  for (const int max_rungs : {2, 3, 5}) {
    for (const int subdivisions : {0, 1, 2}) {
      FlexibleCatalogOptions fopts;
      fopts.max_rungs = max_rungs;
      fopts.subdivisions = subdivisions;
      auto catalog = Catalog::MakeFlexible(fopts);
      ASSERT_TRUE(catalog.ok()) << catalog.status().message();
      DiagonalOptimizer optimizer(*catalog);
      const double min_price = catalog->smallest().price_per_interval;
      const double max_price = catalog->largest().price_per_interval;
      std::uniform_real_distribution<double> budget_dist(0.5 * min_price,
                                                         1.3 * max_price);
      std::uniform_real_distribution<double> frac(0.0, 1.3);
      for (int trial = 0; trial < 60; ++trial) {
        ResourceVector demand;
        for (ResourceKind kind : container::kAllResources) {
          demand.Set(kind, frac(rng) * catalog->largest().resources.Get(kind));
        }
        const double budget = budget_dist(rng);
        const DiagonalOptimizer::Target got =
            optimizer.Solve(demand, budget);
        const BruteResult want = BruteForce(*catalog, demand, budget);
        ASSERT_EQ(got.feasible, want.feasible)
            << "rungs=" << max_rungs << " sub=" << subdivisions
            << " trial=" << trial;
        if (!want.feasible) continue;
        EXPECT_EQ(got.shortfall_steps, want.shortfall);
        EXPECT_DOUBLE_EQ(got.price, want.price);
        EXPECT_EQ(got.budget_limited, want.budget_limited);
        EXPECT_LE(got.price, budget);
      }
    }
  }
}

TEST(DiagonalOptimizerTest, FixedPathMatchesCheapestDominating) {
  std::mt19937 rng(7u);
  for (const Catalog& catalog :
       {Catalog::MakeLockStep(), Catalog::MakePerDimension()}) {
    DiagonalOptimizer optimizer(catalog);
    ASSERT_FALSE(optimizer.flexible());
    std::uniform_real_distribution<double> frac(0.0, 1.0);
    for (int trial = 0; trial < 200; ++trial) {
      ResourceVector demand;
      for (ResourceKind kind : container::kAllResources) {
        demand.Set(kind, frac(rng) * catalog.largest().resources.Get(kind));
      }
      const ContainerSpec want = catalog.CheapestDominating(demand);
      const DiagonalOptimizer::Target got = optimizer.Solve(
          demand, std::numeric_limits<double>::infinity());
      ASSERT_TRUE(got.feasible);
      EXPECT_EQ(optimizer.Materialize(got).id, want.id) << want.name;
      EXPECT_FALSE(got.budget_limited);
    }
    // Budgeted: whenever a dominating spec is affordable the two searches
    // agree exactly.
    for (int trial = 0; trial < 200; ++trial) {
      ResourceVector demand;
      for (ResourceKind kind : container::kAllResources) {
        demand.Set(kind,
                   0.6 * frac(rng) * catalog.largest().resources.Get(kind));
      }
      const double budget =
          catalog.smallest().price_per_interval +
          frac(rng) * (catalog.largest().price_per_interval -
                       catalog.smallest().price_per_interval);
      auto want = catalog.CheapestDominating(demand, budget);
      const DiagonalOptimizer::Target got = optimizer.Solve(demand, budget);
      if (want.ok() && want->resources.Dominates(demand)) {
        ASSERT_TRUE(got.feasible);
        EXPECT_EQ(got.shortfall_steps, 0);
        EXPECT_EQ(optimizer.Materialize(got).id, want->id);
      }
    }
  }
}

TEST(DiagonalOptimizerTest, ReportsBindingDimensionUnderTightBudget) {
  FlexibleCatalogOptions fopts;
  auto catalog = Catalog::MakeFlexible(fopts);
  ASSERT_TRUE(catalog.ok());
  DiagonalOptimizer optimizer(*catalog);
  // Demand the top of every dimension with only a mid-range budget: the
  // solve must be feasible, budget-limited, and attribute the shortfall.
  const ResourceVector demand = catalog->largest().resources;
  const DiagonalOptimizer::Target t = optimizer.Solve(demand, 60.0);
  ASSERT_TRUE(t.feasible);
  EXPECT_TRUE(t.budget_limited);
  EXPECT_GT(t.shortfall_steps, 0);
  EXPECT_LE(t.price, 60.0);
  // Not even the cheapest bundle fits: infeasible, never a crash.
  const DiagonalOptimizer::Target broke = optimizer.Solve(demand, 0.01);
  EXPECT_FALSE(broke.feasible);
}

TEST(DiagonalOptimizerTest, DiagonalBundlePricesMatchRungsExactly) {
  FlexibleCatalogOptions fopts;
  fopts.subdivisions = 2;
  auto catalog = Catalog::MakeFlexible(fopts);
  ASSERT_TRUE(catalog.ok());
  const Catalog lockstep = Catalog::MakeLockStep();
  const int step = 3;  // subdivisions + 1 grid levels per rung
  for (int r = 0; r < lockstep.num_rungs(); ++r) {
    GridLevels diag{};
    for (int d = 0; d < container::kNumResources; ++d) diag[d] = r * step;
    // Separable components re-sum to the rung price bit for bit, and the
    // diagonal bundle materializes as the listed rung spec.
    EXPECT_DOUBLE_EQ(catalog->BundlePrice(diag),
                     lockstep.rung(r).price_per_interval);
    const ContainerSpec bundle = catalog->BundleAt(diag);
    EXPECT_EQ(bundle.name, lockstep.rung(r).name);
    EXPECT_EQ(bundle.price_per_interval,
              lockstep.rung(r).price_per_interval);
  }
  // Off-diagonal bundles synthesize deterministic ids past the listed
  // specs and price as the sum of their components.
  GridLevels off{};
  off[0] = 4;
  off[1] = 1;
  off[2] = 0;
  off[3] = 2;
  const ContainerSpec a = catalog->BundleAt(off);
  const ContainerSpec b = catalog->BundleAt(off);
  EXPECT_EQ(a.id, b.id);
  EXPECT_GE(a.id, catalog->size());
  EXPECT_DOUBLE_EQ(a.price_per_interval, catalog->BundlePrice(off));
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

TEST(FlexibleCatalogOptionsTest, ValidateRejections) {
  FlexibleCatalogOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.max_rungs = 1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.max_rungs = 12;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.subdivisions = -1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.subdivisions = 4;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.price_markup = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  EXPECT_FALSE(Catalog::MakeFlexible(opts).ok());
}

TEST(DiagonalOptionsTest, ValidateRejections) {
  DiagonalOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.target_utilization_pct = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.target_utilization_pct = 101.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.down_latency_slack_ratio = 1.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.down_patience_medium = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.up_cooldown_intervals = -1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.down_projected_util_guard_pct = 0.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.resize_max_attempts = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.resize_backoff_multiplier = 0.5;
  EXPECT_FALSE(opts.Validate().ok());

  // Create surfaces the same rejections.
  scaler::TenantKnobs knobs;
  DiagonalOptions bad;
  bad.target_utilization_pct = -5.0;
  auto catalog = Catalog::MakeFlexible(FlexibleCatalogOptions{});
  ASSERT_TRUE(catalog.ok());
  EXPECT_FALSE(DiagonalScaler::Create(*catalog, knobs, bad).ok());
}

// ---------------------------------------------------------------------------
// Closed-loop contracts.
// ---------------------------------------------------------------------------

SimConfig BaseSimConfig() {
  SimConfig config;
  config.simulation.catalog = container::Catalog::MakeLockStep();
  config.simulation.workload = workload::MakeCpuioWorkload();
  config.simulation.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  config.simulation.interval_duration = Duration::Seconds(20);
  config.simulation.seed = 17;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  return config;
}

double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

// The catalog-backend equivalence contract: Auto over a coupled
// FlexibleCatalog (markup 1) is bit-identical to Auto over MakeLockStep —
// including the digest pinned before the Catalog API existed.
TEST(DiagonalSimTest, CoupledFlexibleCatalogReproducesLockStepDigest) {
  auto lockstep_run = BaseSimConfig().Run();
  ASSERT_TRUE(lockstep_run.ok()) << lockstep_run.status().message();
  EXPECT_DOUBLE_EQ(RunDigest(lockstep_run->result), 2094099.7125696521);

  FlexibleCatalogOptions coupled;
  coupled.coupled = true;
  auto coupled_catalog = Catalog::MakeFlexible(coupled);
  ASSERT_TRUE(coupled_catalog.ok());
  EXPECT_FALSE(coupled_catalog->flexible());
  SimConfig config = BaseSimConfig();
  config.simulation.catalog = *coupled_catalog;
  auto coupled_run = config.Run();
  ASSERT_TRUE(coupled_run.ok()) << coupled_run.status().message();
  EXPECT_DOUBLE_EQ(RunDigest(coupled_run->result), 2094099.7125696521);
}

sim::SimulationOptions DiagonalSimOptions(const Catalog& catalog) {
  SimConfig config = BaseSimConfig();
  config.simulation.catalog = catalog;
  return config.EffectiveSimulationOptions();
}

TEST(DiagonalSimTest, DiagonalRunIsDeterministicAndUsesDiagonalCodes) {
  FlexibleCatalogOptions fopts;
  fopts.subdivisions = 1;
  auto catalog = Catalog::MakeFlexible(fopts);
  ASSERT_TRUE(catalog.ok());
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};

  double first_digest = 0.0;
  for (int repeat = 0; repeat < 2; ++repeat) {
    auto policy = DiagonalScaler::Create(*catalog, knobs);
    ASSERT_TRUE(policy.ok()) << policy.status().message();
    auto run = sim::RunWithPolicy(DiagonalSimOptions(*catalog),
                                  policy->get(), 3);
    ASSERT_TRUE(run.ok()) << run.status().message();
    const double digest = RunDigest(*run);
    if (repeat == 0) {
      first_digest = digest;
      bool saw_diagonal_move = false;
      for (const auto& interval : run->intervals) {
        if (interval.decision_code == ExplanationCode::kScaleDiagonalUp ||
            interval.decision_code == ExplanationCode::kScaleDiagonalDown ||
            interval.decision_code ==
                ExplanationCode::kScaleDiagonalRebalance) {
          saw_diagonal_move = true;
          break;
        }
      }
      EXPECT_TRUE(saw_diagonal_move);
      // Every decision fills the demand vector once signals warm up.
      EXPECT_GT((*policy)->audit().size(), 0u);
    } else {
      EXPECT_DOUBLE_EQ(digest, first_digest);
    }
  }
}

// A diagonal run must never violate the budget: the hard clamp holds
// interval cost within the token bucket.
TEST(DiagonalSimTest, BudgetIsAHardConstraint) {
  FlexibleCatalogOptions fopts;
  auto catalog = Catalog::MakeFlexible(fopts);
  ASSERT_TRUE(catalog.ok());
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  const sim::SimulationOptions options = DiagonalSimOptions(*catalog);
  const int intervals = static_cast<int>(options.trace.num_steps());
  scaler::BudgetKnob budget;
  budget.num_intervals = intervals;
  // Enough for a mid-size bundle on average, far below the burst's demand.
  budget.total_budget = 40.0 * intervals;
  knobs.budget = budget;
  auto policy = DiagonalScaler::Create(*catalog, knobs);
  ASSERT_TRUE(policy.ok()) << policy.status().message();
  auto run = sim::RunWithPolicy(options, policy->get(), 3);
  ASSERT_TRUE(run.ok()) << run.status().message();
  double total_cost = 0.0;
  for (const auto& interval : run->intervals) total_cost += interval.cost;
  EXPECT_LE(total_cost, budget.total_budget + 1e-9);
}

TEST(RegisteredPolicyTest, MakesEveryRegisteredPolicy) {
  const Catalog catalog = Catalog::MakeLockStep();
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  for (const std::string& name : sim::RegisteredPolicyNames()) {
    auto policy = sim::MakeRegisteredPolicy(name, catalog, knobs);
    ASSERT_TRUE(policy.ok()) << name << ": " << policy.status().message();
    EXPECT_EQ((*policy)->name(), name);
  }
  EXPECT_FALSE(sim::MakeRegisteredPolicy("Peak", catalog, knobs).ok());
  scaler::TenantKnobs no_goal;
  EXPECT_FALSE(sim::MakeRegisteredPolicy("Util", catalog, no_goal).ok());
  EXPECT_TRUE(sim::MakeRegisteredPolicy("Auto", catalog, no_goal).ok());
}

}  // namespace
}  // namespace dbscale
