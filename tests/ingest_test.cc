// Tests of the scaler-as-a-service ingest stack: the MPSC ring, the wire
// format, producer-edge fault injection, and the ScalerService equivalence
// contract (service-mode decisions bit-identical to the direct-feed
// sim-loop reference at any batch size / thread count / producer
// interleaving). Suite names carry the Ingest prefix so ci/check.sh runs
// the multi-producer stress under TSan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/container/catalog.h"
#include "src/fault/fault_plan.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/producer.h"
#include "src/ingest/scaler_service.h"
#include "src/ingest/wire_sample.h"
#include "src/scaler/autoscaler.h"
#include "src/scaler/batch_eval.h"
#include "src/telemetry/sample.h"

namespace dbscale::ingest {
namespace {

using container::ContainerSpec;
using container::ResourceKind;
using telemetry::TelemetrySample;
using telemetry::WaitClass;

constexpr int64_t kPeriodUs = 5'000'000;  // 5 simulated seconds

constexpr size_t Ri(ResourceKind kind) { return static_cast<size_t>(kind); }
constexpr size_t Wi(WaitClass wc) { return static_cast<size_t>(wc); }

/// Deterministic, fully populated sample #i of `tenant`. Periods tile the
/// timeline so interval boundaries land exactly like the sim loop's.
TelemetrySample MakeSample(uint64_t tenant, int i) {
  TelemetrySample s;
  s.period_start = SimTime::FromMicros(i * kPeriodUs);
  s.period_end = SimTime::FromMicros((i + 1) * kPeriodUs);
  const double phase =
      static_cast<double>((static_cast<uint64_t>(i) * 37 + tenant * 13) % 100);
  s.utilization_pct[Ri(ResourceKind::kCpu)] = phase;
  s.utilization_pct[Ri(ResourceKind::kMemory)] = 100.0 - phase;
  s.utilization_pct[Ri(ResourceKind::kDiskIo)] = phase * 0.5;
  s.utilization_pct[Ri(ResourceKind::kLogIo)] = phase * 0.25;
  s.wait_ms[Wi(WaitClass::kCpu)] = phase * 2.0;
  s.wait_ms[Wi(WaitClass::kDiskIo)] = phase * 1.5;
  s.wait_ms[Wi(WaitClass::kLock)] = phase * 0.125;
  s.wait_ms[Wi(WaitClass::kSystem)] = 1.0;
  s.requests_started = 100 + i;
  s.requests_completed = 100 + i;
  s.latency_avg_ms = 5.0 + phase * 0.1;
  s.latency_p95_ms = 20.0 + phase * 0.4;
  s.latency_max_ms = 50.0 + phase;
  s.memory_used_mb = 1024.0 + phase;
  s.memory_active_mb = 512.0 + phase;
  s.physical_reads = 10 * i;
  s.allocation = {4.0, 8192.0, 1000.0, 50.0};
  s.container_id = 3;
  return s;
}

/// A deterministic stateful policy: the decision folds the signal window,
/// the interval index, the current container, and the applied-resize
/// history, so any routing or ordering bug perturbs the digest.
class StepPolicy : public scaler::ScalingPolicy {
 public:
  explicit StepPolicy(uint64_t salt) : salt_(salt) {}

  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    if (input.actuation.phase == scaler::ActuationPhase::kApplied) {
      ++applied_;
    }
    const double load =
        input.signals.valid
            ? input.signals.resource(ResourceKind::kCpu).utilization_pct
            : 0.0;
    const uint64_t mix = salt_ + static_cast<uint64_t>(input.interval_index) *
                                     2654435761ull +
                         static_cast<uint64_t>(load * 16.0) + applied_ * 7;
    scaler::ScalingDecision d;
    d.target = input.current;
    int id = input.current.id + static_cast<int>(mix % 3) - 1;
    if (id < 0) id = 0;
    if (id > 7) id = 7;
    d.target.id = id;
    d.target.price_per_interval = 1.0 + id;
    d.explanation = scaler::Explanation(scaler::ExplanationCode::kNote);
    if (mix % 5 == 0) {
      d.memory_limit_mb = 256.0 + static_cast<double>(mix % 7) * 64.0;
    }
    return d;
  }

  std::string name() const override { return "Step"; }

 private:
  uint64_t salt_;
  uint64_t applied_ = 0;
};

ContainerSpec InitialContainer() {
  ContainerSpec spec;
  spec.id = 3;
  spec.price_per_interval = 4.0;
  return spec;
}

ScalerServiceOptions SmallServiceOptions(size_t samples_per_interval = 4) {
  ScalerServiceOptions o;
  // Tiny windows so signals go valid quickly.
  o.telemetry.aggregation_samples = 3;
  o.telemetry.trend_samples = 4;
  o.telemetry.correlation_samples = 4;
  o.samples_per_interval = samples_per_interval;
  o.store_retention = 64;
  return o;
}

// ---------------------------------------------------------------------------
// IngestRing
// ---------------------------------------------------------------------------

WireSample NumberedWire(uint64_t n) {
  WireSample w;
  w.tenant_id = n;
  w.producer_seq = n;
  w.period_start_us = static_cast<int64_t>(n) * kPeriodUs;
  w.period_end_us = static_cast<int64_t>(n + 1) * kPeriodUs;
  return w;
}

TEST(IngestRingTest, PushPopRoundTrip) {
  IngestRing ring(IngestRingOptions{.capacity = 8});
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_TRUE(ring.TryPush(NumberedWire(42)));
  WireSample out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.tenant_id, 42u);
  EXPECT_FALSE(ring.TryPop(&out));  // empty again
}

TEST(IngestRingTest, WrapAroundAtCapacityBoundary) {
  IngestRing ring(IngestRingOptions{.capacity = 8});
  // Keep the ring near-full while cycling far past the capacity boundary;
  // FIFO order must survive every wrap.
  uint64_t pushed = 0, popped = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    while (ring.TryPush(NumberedWire(pushed))) ++pushed;
    EXPECT_EQ(ring.ApproxDepth(), ring.capacity());
    // Drain half, refill, drain all: exercises partially-wrapped states.
    for (int k = 0; k < 4; ++k) {
      WireSample out;
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_EQ(out.tenant_id, popped);
      ++popped;
    }
  }
  WireSample out;
  while (ring.TryPop(&out)) {
    EXPECT_EQ(out.tenant_id, popped);
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_GT(pushed, ring.capacity() * 50);  // genuinely wrapped many times
}

TEST(IngestRingTest, BackpressureRejectsWithCounter) {
  IngestRing ring(IngestRingOptions{.capacity = 4});
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(NumberedWire(i)));
  EXPECT_FALSE(ring.TryPush(NumberedWire(99)));
  EXPECT_FALSE(ring.TryPush(NumberedWire(99)));
  EXPECT_EQ(ring.rejected(), 2u);
  WireSample out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(NumberedWire(4)));  // slot freed -> accepted
  EXPECT_EQ(ring.rejected(), 2u);
  // FIFO resumes with no gap from the rejected pushes.
  for (uint64_t expect = 1; ring.TryPop(&out); ++expect) {
    EXPECT_EQ(out.tenant_id, expect);
  }
}

TEST(IngestRingTest, PopBatchMatchesOneAtATime) {
  IngestRing batch_ring(IngestRingOptions{.capacity = 64});
  IngestRing single_ring(IngestRingOptions{.capacity = 64});
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(batch_ring.TryPush(NumberedWire(i)));
    ASSERT_TRUE(single_ring.TryPush(NumberedWire(i)));
  }
  std::vector<uint64_t> via_batch, via_single;
  WireSample buf[7];
  for (size_t n = batch_ring.PopBatch(buf, 7); n > 0;
       n = batch_ring.PopBatch(buf, 7)) {
    for (size_t i = 0; i < n; ++i) via_batch.push_back(buf[i].tenant_id);
  }
  WireSample out;
  while (single_ring.TryPop(&out)) via_single.push_back(out.tenant_id);
  EXPECT_EQ(via_batch, via_single);
  EXPECT_EQ(via_batch.size(), 50u);
}

TEST(IngestRingTest, OptionsValidateRejectsBadCapacity) {
  EXPECT_FALSE(IngestRingOptions{.capacity = 0}.Validate().ok());
  EXPECT_FALSE(IngestRingOptions{.capacity = 1}.Validate().ok());
  EXPECT_FALSE(IngestRingOptions{.capacity = 12}.Validate().ok());
  EXPECT_TRUE(IngestRingOptions{.capacity = 2}.Validate().ok());
  EXPECT_TRUE(IngestRingOptions{.capacity = 1 << 16}.Validate().ok());
}

TEST(IngestRingTest, ApproxDepthTracksOccupancy) {
  IngestRing ring(IngestRingOptions{.capacity = 16});
  EXPECT_EQ(ring.ApproxDepth(), 0u);
  for (uint64_t i = 0; i < 5; ++i) ring.TryPush(NumberedWire(i));
  EXPECT_EQ(ring.ApproxDepth(), 5u);
  WireSample out;
  ring.TryPop(&out);
  ring.TryPop(&out);
  EXPECT_EQ(ring.ApproxDepth(), 3u);
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

TEST(IngestWireTest, RoundTripIsBitwiseIdentity) {
  const TelemetrySample s = MakeSample(7, 11);
  const WireSample w = MakeWireSample(7, s);
  EXPECT_EQ(w.tenant_id, 7u);
  const TelemetrySample back = ToTelemetrySample(w);
  EXPECT_EQ(back.period_start.ToMicros(), s.period_start.ToMicros());
  EXPECT_EQ(back.period_end.ToMicros(), s.period_end.ToMicros());
  for (size_t i = 0; i < s.utilization_pct.size(); ++i) {
    EXPECT_EQ(back.utilization_pct[i], s.utilization_pct[i]);
  }
  for (size_t i = 0; i < s.wait_ms.size(); ++i) {
    EXPECT_EQ(back.wait_ms[i], s.wait_ms[i]);
  }
  EXPECT_EQ(back.requests_started, s.requests_started);
  EXPECT_EQ(back.requests_completed, s.requests_completed);
  EXPECT_EQ(back.latency_avg_ms, s.latency_avg_ms);
  EXPECT_EQ(back.latency_p95_ms, s.latency_p95_ms);
  EXPECT_EQ(back.latency_max_ms, s.latency_max_ms);
  EXPECT_EQ(back.memory_used_mb, s.memory_used_mb);
  EXPECT_EQ(back.memory_active_mb, s.memory_active_mb);
  EXPECT_EQ(back.physical_reads, s.physical_reads);
  EXPECT_EQ(back.allocation.cpu_cores, s.allocation.cpu_cores);
  EXPECT_EQ(back.allocation.memory_mb, s.allocation.memory_mb);
  EXPECT_EQ(back.allocation.disk_iops, s.allocation.disk_iops);
  EXPECT_EQ(back.allocation.log_mbps, s.allocation.log_mbps);
  EXPECT_EQ(back.container_id, s.container_id);
}

// ---------------------------------------------------------------------------
// Producer
// ---------------------------------------------------------------------------

TEST(IngestProducerTest, StampsConsecutiveSequences) {
  IngestRing ring(IngestRingOptions{.capacity = 64});
  IngestProducer producer(&ring, /*producer_id=*/9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(producer.Publish(1, MakeSample(1, i)),
              PublishOutcome::kPublished);
  }
  EXPECT_EQ(producer.published(), 10u);
  WireSample out;
  for (uint64_t expect = 0; ring.TryPop(&out); ++expect) {
    EXPECT_EQ(out.producer_id, 9u);
    EXPECT_EQ(out.producer_seq, expect);
    EXPECT_EQ(out.tenant_id, 1u);
  }
}

TEST(IngestProducerTest, RejectionDoesNotConsumeSequence) {
  IngestRing ring(IngestRingOptions{.capacity = 2});
  IngestProducer producer(&ring, 0);
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 0)), PublishOutcome::kPublished);
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 1)), PublishOutcome::kPublished);
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 2)), PublishOutcome::kRejected);
  EXPECT_EQ(producer.rejected(), 1u);
  WireSample out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.producer_seq, 0u);
  // The rejected publish did not burn seq 2.
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 2)), PublishOutcome::kPublished);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.producer_seq, 1u);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out.producer_seq, 2u);
}

TEST(IngestProducerTest, DropFaultCountsWithoutPushing) {
  IngestRing ring(IngestRingOptions{.capacity = 64});
  fault::FaultPlanOptions fo;
  fo.telemetry.drop_probability = 1.0;
  ASSERT_TRUE(fo.Validate().ok());
  fault::FaultPlan plan(fo, Rng(123));
  IngestProducer producer(&ring, 0, &plan);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(producer.Publish(1, MakeSample(1, i)), PublishOutcome::kDropped);
  }
  EXPECT_EQ(producer.dropped(), 5u);
  EXPECT_EQ(producer.published(), 0u);
  EXPECT_EQ(ring.ApproxDepth(), 0u);
}

TEST(IngestProducerTest, StaleFaultReplaysLastGoodPayload) {
  IngestRing ring(IngestRingOptions{.capacity = 64});
  fault::FaultPlanOptions fo;
  fo.telemetry.stale_probability = 1.0;
  ASSERT_TRUE(fo.Validate().ok());
  fault::FaultPlan plan(fo, Rng(123));
  IngestProducer producer(&ring, 0, &plan);
  // First publish has no prior good sample: falls through to fresh.
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 0)), PublishOutcome::kPublished);
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 1)), PublishOutcome::kPublished);
  EXPECT_EQ(producer.stale(), 1u);
  WireSample fresh, stale;
  ASSERT_TRUE(ring.TryPop(&fresh));
  ASSERT_TRUE(ring.TryPop(&stale));
  // Stale payload repeats sample 0's figures under sample 1's periods.
  EXPECT_EQ(stale.period_end_us, 2 * kPeriodUs);
  EXPECT_EQ(stale.requests_started, fresh.requests_started);
  EXPECT_EQ(stale.latency_p95_ms, fresh.latency_p95_ms);
}

TEST(IngestProducerTest, NanFaultIsRejectedByServiceGuard) {
  IngestRing ring(IngestRingOptions{.capacity = 64});
  fault::FaultPlanOptions fo;
  fo.telemetry.nan_probability = 1.0;
  ASSERT_TRUE(fo.Validate().ok());
  fault::FaultPlan plan(fo, Rng(123));
  IngestProducer producer(&ring, 0, &plan);
  EXPECT_EQ(producer.Publish(1, MakeSample(1, 0)), PublishOutcome::kPublished);
  EXPECT_EQ(producer.corrupted(), 1u);

  ScalerService service(&ring, SmallServiceOptions());
  ASSERT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  EXPECT_EQ(service.DrainAll(), 1u);
  EXPECT_EQ(service.counters().invalid, 1u);
  EXPECT_EQ(service.counters().routed, 0u);
}

// ---------------------------------------------------------------------------
// ScalerService equivalence contract
// ---------------------------------------------------------------------------

struct FeedPlan {
  size_t num_tenants = 3;
  int samples_per_tenant = 24;
  size_t samples_per_interval = 4;
};

/// Direct-feed reference: per-tenant sample sequences offered in
/// round-robin order, each evaluated the instant its interval completes —
/// the sim-loop shape.
uint64_t DirectFeedDigest(const FeedPlan& plan, uint64_t* decisions = nullptr) {
  ScalerService service(nullptr,
                        SmallServiceOptions(plan.samples_per_interval));
  for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
    DBSCALE_CHECK(
        service.AddTenant(t, std::make_unique<StepPolicy>(t), InitialContainer())
            .ok());
  }
  uint64_t seq = 0;
  for (int i = 0; i < plan.samples_per_tenant; ++i) {
    for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
      WireSample w = MakeWireSample(t, MakeSample(t, i));
      w.producer_seq = seq++;
      service.OfferDirect(w);
    }
  }
  if (decisions != nullptr) *decisions = service.counters().decisions;
  return service.Digest();
}

/// Ring path: P producers split the tenants, samples interleaved
/// producer-major, drained in batches of `max_drain_batch` over `threads`.
uint64_t RingFeedDigest(const FeedPlan& plan, size_t max_drain_batch,
                        int threads, size_t num_producers,
                        uint64_t* decisions = nullptr) {
  IngestRing ring(IngestRingOptions{.capacity = 1 << 12});
  ScalerServiceOptions options =
      SmallServiceOptions(plan.samples_per_interval);
  options.max_drain_batch = max_drain_batch;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  ScalerService service(&ring, options, pool.get());
  for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
    DBSCALE_CHECK(
        service.AddTenant(t, std::make_unique<StepPolicy>(t), InitialContainer())
            .ok());
  }
  std::vector<IngestProducer> producers;
  producers.reserve(num_producers);
  for (size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back(&ring, static_cast<uint32_t>(p));
  }
  for (int i = 0; i < plan.samples_per_tenant; ++i) {
    for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
      IngestProducer& producer = producers[t % num_producers];
      DBSCALE_CHECK(producer.Publish(t, MakeSample(t, static_cast<int>(i))) ==
                    PublishOutcome::kPublished);
      // Uneven drain cadence: drain roughly every third publish so batches
      // straddle interval boundaries in irregular ways.
      if ((i + static_cast<int>(t)) % 3 == 0) service.DrainOnce();
    }
  }
  service.DrainAll();
  if (decisions != nullptr) *decisions = service.counters().decisions;
  return service.Digest();
}

TEST(IngestServiceTest, RingPathMatchesDirectFeedReference) {
  FeedPlan plan;
  uint64_t direct_decisions = 0;
  const uint64_t direct = DirectFeedDigest(plan, &direct_decisions);
  // Each tenant completes samples_per_tenant / samples_per_interval
  // intervals.
  EXPECT_EQ(direct_decisions, plan.num_tenants * 6u);
  uint64_t ring_decisions = 0;
  const uint64_t ring =
      RingFeedDigest(plan, /*max_drain_batch=*/7, /*threads=*/0,
                     /*num_producers=*/2, &ring_decisions);
  EXPECT_EQ(ring_decisions, direct_decisions);
  EXPECT_EQ(ring, direct);
}

TEST(IngestServiceTest, DigestInvariantToBatchSizeAndThreadCount) {
  FeedPlan plan;
  plan.num_tenants = 5;
  const uint64_t reference = DirectFeedDigest(plan);
  for (size_t batch : {size_t{1}, size_t{3}, size_t{64}, size_t{1024}}) {
    for (int threads : {0, 1, 2, 4}) {
      for (size_t producers : {size_t{1}, size_t{3}}) {
        EXPECT_EQ(RingFeedDigest(plan, batch, threads, producers), reference)
            << "batch=" << batch << " threads=" << threads
            << " producers=" << producers;
      }
    }
  }
}

TEST(IngestServiceTest, SingleBatchStraddlingManyIntervals) {
  // One tenant, 3-sample intervals, all 9 samples in ONE drained batch:
  // the rounds/carry machinery must evaluate 3 decisions with the store
  // frozen at each boundary, exactly like the serial reference.
  FeedPlan plan;
  plan.num_tenants = 1;
  plan.samples_per_tenant = 9;
  plan.samples_per_interval = 3;
  uint64_t direct_decisions = 0, ring_decisions = 0;
  const uint64_t direct = DirectFeedDigest(plan, &direct_decisions);
  IngestRing ring(IngestRingOptions{.capacity = 16});
  ScalerServiceOptions options = SmallServiceOptions(3);
  options.max_drain_batch = 16;
  ScalerService service(&ring, options);
  ASSERT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  IngestProducer producer(&ring, 0);
  for (int i = 0; i < 9; ++i) {
    ASSERT_EQ(producer.Publish(1, MakeSample(1, i)),
              PublishOutcome::kPublished);
  }
  EXPECT_EQ(service.DrainOnce(), 9u);  // one batch covers 3 intervals
  ring_decisions = service.counters().decisions;
  EXPECT_EQ(direct_decisions, 3u);
  EXPECT_EQ(ring_decisions, 3u);
  EXPECT_EQ(service.Digest(), direct);
  EXPECT_EQ(service.IntervalIndex(1), 3);
}

TEST(IngestServiceTest, AutoScalerPolicyDigestMatchesAcrossPaths) {
  // The real paper policy (AutoScaler) through both paths: exercises a
  // stateful allocating policy under batched evaluation.
  const container::Catalog catalog = container::Catalog::MakeLockStep();
  const ContainerSpec initial = catalog.at(2);
  const auto make_policy = [&catalog]() {
    scaler::TenantKnobs knobs;
    knobs.latency_goal =
        scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 40.0};
    auto result = scaler::AutoScaler::Create(catalog, knobs);
    DBSCALE_CHECK_OK(result.status());
    return std::move(result).value();
  };

  const auto run = [&](bool via_ring, int threads) {
    IngestRing ring(IngestRingOptions{.capacity = 1 << 10});
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    ScalerService service(&ring, SmallServiceOptions(6), pool.get());
    for (uint64_t t = 1; t <= 4; ++t) {
      DBSCALE_CHECK(service.AddTenant(t, make_policy(), initial).ok());
    }
    IngestProducer producer(&ring, 0);
    for (int i = 0; i < 36; ++i) {
      for (uint64_t t = 1; t <= 4; ++t) {
        if (via_ring) {
          DBSCALE_CHECK(producer.Publish(t, MakeSample(t, i)) ==
                        PublishOutcome::kPublished);
        } else {
          service.OfferDirect(MakeWireSample(t, MakeSample(t, i)));
        }
      }
      if (via_ring && i % 5 == 0) service.DrainAll();
    }
    if (via_ring) service.DrainAll();
    EXPECT_EQ(service.counters().decisions, 4u * 6u);
    return service.Digest();
  };

  const uint64_t direct = run(/*via_ring=*/false, /*threads=*/0);
  EXPECT_EQ(run(true, 0), direct);
  EXPECT_EQ(run(true, 4), direct);
}

TEST(IngestServiceTest, UnknownTenantAndSeqViolationCounted) {
  IngestRing ring(IngestRingOptions{.capacity = 16});
  ScalerService service(&ring, SmallServiceOptions());
  ASSERT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  WireSample w = MakeWireSample(99, MakeSample(99, 0));  // unknown tenant
  w.producer_seq = 0;
  ASSERT_TRUE(ring.TryPush(w));
  WireSample gap = MakeWireSample(1, MakeSample(1, 0));
  gap.producer_seq = 5;  // violates 0,1,2,... from producer 0
  ASSERT_TRUE(ring.TryPush(gap));
  service.DrainAll();
  EXPECT_EQ(service.counters().unknown_tenant, 1u);
  EXPECT_EQ(service.counters().seq_violations, 1u);
  EXPECT_EQ(service.counters().routed, 1u);
}

TEST(IngestServiceTest, OutOfOrderPeriodDropped) {
  IngestRing ring(IngestRingOptions{.capacity = 16});
  ScalerService service(&ring, SmallServiceOptions());
  ASSERT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  IngestProducer producer(&ring, 0);
  ASSERT_EQ(producer.Publish(1, MakeSample(1, 5)), PublishOutcome::kPublished);
  ASSERT_EQ(producer.Publish(1, MakeSample(1, 2)),  // period regresses
            PublishOutcome::kPublished);
  service.DrainAll();
  EXPECT_EQ(service.counters().routed, 1u);
  EXPECT_EQ(service.counters().out_of_order, 1u);
}

TEST(IngestServiceTest, UnknownProducerCounted) {
  IngestRing ring(IngestRingOptions{.capacity = 16});
  ScalerServiceOptions options = SmallServiceOptions();
  options.max_producers = 2;
  ScalerService service(&ring, options);
  ASSERT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  WireSample w = MakeWireSample(1, MakeSample(1, 0));
  w.producer_id = 7;  // >= max_producers
  ASSERT_TRUE(ring.TryPush(w));
  service.DrainAll();
  EXPECT_EQ(service.counters().unknown_producer, 1u);
  EXPECT_EQ(service.counters().routed, 1u);  // still routed, only the seq
                                             // table is out of range
}

TEST(IngestServiceTest, AddTenantValidation) {
  IngestRing ring(IngestRingOptions{.capacity = 16});
  ScalerService service(&ring, SmallServiceOptions());
  EXPECT_FALSE(service.AddTenant(1, nullptr, InitialContainer()).ok());
  EXPECT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .ok());
  EXPECT_TRUE(service
                  .AddTenant(1, std::make_unique<StepPolicy>(1),
                             InitialContainer())
                  .IsAlreadyExists());
  EXPECT_EQ(service.num_tenants(), 1u);
}

TEST(IngestServiceTest, OptionsValidate) {
  ScalerServiceOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.samples_per_interval = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ScalerServiceOptions{};
  o.max_drain_batch = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ScalerServiceOptions{};
  std::vector<uint64_t> sink;
  o.decision_latency_sink = &sink;  // sink without timer is rejected
  EXPECT_FALSE(o.Validate().ok());
}

namespace fake_clock {
uint64_t now = 0;
uint64_t Next() { return now += 7; }
}  // namespace fake_clock

TEST(IngestServiceTest, DecisionLatencySinkFillsPerDecision) {
  FeedPlan plan;
  IngestRing ring(IngestRingOptions{.capacity = 1 << 10});
  ScalerServiceOptions options =
      SmallServiceOptions(plan.samples_per_interval);
  std::vector<uint64_t> latencies;
  options.timer = &fake_clock::Next;
  options.decision_latency_sink = &latencies;
  ScalerService service(&ring, options);
  for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
    ASSERT_TRUE(service
                    .AddTenant(t, std::make_unique<StepPolicy>(t),
                               InitialContainer())
                    .ok());
  }
  IngestProducer producer(&ring, 0);
  for (int i = 0; i < plan.samples_per_tenant; ++i) {
    for (uint64_t t = 1; t <= plan.num_tenants; ++t) {
      ASSERT_EQ(producer.Publish(t, MakeSample(t, i)),
                PublishOutcome::kPublished);
    }
  }
  service.DrainAll();
  EXPECT_EQ(latencies.size(), service.counters().decisions);
  for (uint64_t ns : latencies) EXPECT_GT(ns, 0u);
  // Timing must not perturb results.
  EXPECT_EQ(service.Digest(), DirectFeedDigest(plan));
}

// ---------------------------------------------------------------------------
// Multi-producer stress (runs under TSan in CI)
// ---------------------------------------------------------------------------

TEST(IngestStressTest, ConcurrentProducersSingleDrainer) {
  constexpr size_t kProducers = 4;
  constexpr int kSamplesPerTenant = 1250;
  // Capacity exceeds the total sample count so backpressure never drops a
  // sample and the digest is deterministic even with a slow drainer.
  IngestRing ring(IngestRingOptions{.capacity = 1 << 13});
  ScalerServiceOptions options = SmallServiceOptions(5);
  options.max_drain_batch = 256;
  ScalerService service(&ring, options);
  for (uint64_t t = 1; t <= kProducers; ++t) {
    ASSERT_TRUE(service
                    .AddTenant(t, std::make_unique<StepPolicy>(t),
                               InitialContainer())
                    .ok());
  }

  std::atomic<size_t> producers_done{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, &producers_done, p] {
      // Producer p feeds tenant p+1 exclusively, preserving the per-tenant
      // sample order the equivalence contract requires.
      IngestProducer producer(&ring, static_cast<uint32_t>(p));
      const uint64_t tenant = static_cast<uint64_t>(p) + 1;
      for (int i = 0; i < kSamplesPerTenant; ++i) {
        ASSERT_EQ(producer.Publish(tenant, MakeSample(tenant, i)),
                  PublishOutcome::kPublished);
      }
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }
  // Drain concurrently with the producers (the actual MPSC interleaving).
  while (producers_done.load(std::memory_order_acquire) < kProducers) {
    service.DrainAll();
  }
  for (std::thread& t : threads) t.join();
  service.DrainAll();

  EXPECT_EQ(ring.rejected(), 0u);
  EXPECT_EQ(service.counters().routed, kProducers * kSamplesPerTenant);
  EXPECT_EQ(service.counters().seq_violations, 0u);
  EXPECT_EQ(service.counters().out_of_order, 0u);

  FeedPlan plan;
  plan.num_tenants = kProducers;
  plan.samples_per_tenant = kSamplesPerTenant;
  plan.samples_per_interval = 5;
  EXPECT_EQ(service.Digest(), DirectFeedDigest(plan));
}

// ---------------------------------------------------------------------------
// DecideBatch
// ---------------------------------------------------------------------------

TEST(IngestBatchEvalTest, SerialAndParallelProduceIdenticalSlots) {
  constexpr size_t kSlots = 37;
  const auto fill = [](std::vector<scaler::DecisionSlot>& slots,
                       std::vector<std::unique_ptr<StepPolicy>>& policies) {
    slots.resize(kSlots);
    for (size_t i = 0; i < kSlots; ++i) {
      policies.push_back(std::make_unique<StepPolicy>(i));
      slots[i].policy = policies.back().get();
      slots[i].input.current = InitialContainer();
      slots[i].input.interval_index = static_cast<int>(i);
    }
  };
  std::vector<scaler::DecisionSlot> serial, parallel;
  std::vector<std::unique_ptr<StepPolicy>> p1, p2;
  fill(serial, p1);
  fill(parallel, p2);
  scaler::DecideBatch(serial.data(), serial.size(), nullptr);
  ThreadPool pool(4);
  scaler::DecideBatch(parallel.data(), parallel.size(), &pool);
  for (size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(parallel[i].decision.target.id, serial[i].decision.target.id);
    EXPECT_EQ(parallel[i].decision.explanation.code,
              serial[i].decision.explanation.code);
    EXPECT_EQ(parallel[i].decision.memory_limit_mb.has_value(),
              serial[i].decision.memory_limit_mb.has_value());
  }
}

}  // namespace
}  // namespace dbscale::ingest
