// Heap-allocation counting for allocation-freedom regression tests.
//
// The counters are fed by replacement global operator new/delete defined in
// alloc_guard_test.cc; they must live in exactly one translation unit of a
// dedicated test binary (dbscale_alloc_guard_test) so the replacement does
// not leak into the main test executable. Counting is per-thread, so gtest
// bookkeeping on other threads can never pollute a measurement.

#ifndef DBSCALE_TESTS_ALLOC_GUARD_H_
#define DBSCALE_TESTS_ALLOC_GUARD_H_

#include <cstddef>

namespace dbscale::testing {

/// Number of operator-new invocations on the calling thread since it
/// started. Monotonic; only meaningful in a binary that links the counting
/// operator new replacement.
std::size_t ThreadAllocCount() noexcept;

/// Number of operator-delete invocations on the calling thread.
std::size_t ThreadDeallocCount() noexcept;

/// \brief RAII measurement span: how many heap allocations happened on this
/// thread since construction.
///
/// Usage:
///   AllocSpan span;
///   code_under_test();
///   EXPECT_EQ(span.allocations(), 0u);
class AllocSpan {
 public:
  AllocSpan() noexcept
      : start_allocs_(ThreadAllocCount()),
        start_frees_(ThreadDeallocCount()) {}

  std::size_t allocations() const noexcept {
    return ThreadAllocCount() - start_allocs_;
  }
  std::size_t deallocations() const noexcept {
    return ThreadDeallocCount() - start_frees_;
  }

 private:
  std::size_t start_allocs_;
  std::size_t start_frees_;
};

}  // namespace dbscale::testing

#endif  // DBSCALE_TESTS_ALLOC_GUARD_H_
