#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/fleet/checkpoint.h"
#include "src/fleet/fleet_aggregate.h"
#include "src/fleet/fleet_scale.h"
#include "src/fleet/fleet_sim.h"
#include "src/obs/pipeline.h"

namespace dbscale::fleet {
namespace {

using container::Catalog;

FleetScaleOptions SmallScale() {
  FleetScaleOptions options;
  options.num_tenants = 300;
  options.num_intervals = 2 * 288;
  options.seed = 11;
  options.num_threads = 2;
  options.block_size = 64;
  options.epoch_intervals = 288;
  return options;
}

fault::FaultPlanOptions SomeFaults() {
  fault::FaultPlanOptions fault;
  fault.resize.failure_probability = 0.08;
  fault.resize.rejection_probability = 0.02;
  fault.resize.min_latency_intervals = 0;
  fault.resize.max_latency_intervals = 3;
  return fault;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void ExpectIntegerCountsEqual(const FleetAggregate& a,
                              const FleetAggregate& b) {
  EXPECT_EQ(a.tenants, b.tenants);
  EXPECT_EQ(a.hourly_records, b.hourly_records);
  EXPECT_EQ(a.total_changes, b.total_changes);
  EXPECT_EQ(a.resize_failures, b.resize_failures);
  EXPECT_EQ(a.resize_retries, b.resize_retries);
  ASSERT_EQ(a.step_size_counts.size(), b.step_size_counts.size());
  EXPECT_EQ(a.step_size_counts, b.step_size_counts);
  ASSERT_EQ(a.inter_event_gap_counts.size(),
            b.inter_event_gap_counts.size());
  EXPECT_EQ(a.inter_event_gap_counts, b.inter_event_gap_counts);
  EXPECT_EQ(a.changes_per_tenant_counts, b.changes_per_tenant_counts);
  for (size_t ri = 0; ri < a.resources.size(); ++ri) {
    SCOPED_TRACE("resource " + std::to_string(ri));
    const FleetAggregate::ResourceAgg& ra = a.resources[ri];
    const FleetAggregate::ResourceAgg& rb = b.resources[ri];
    EXPECT_EQ(ra.util, rb.util);
    EXPECT_EQ(ra.wait_ms, rb.wait_ms);
    EXPECT_EQ(ra.wait_pct, rb.wait_pct);
    EXPECT_EQ(ra.wait_per_req, rb.wait_per_req);
    EXPECT_EQ(ra.wait_per_req_low_util, rb.wait_per_req_low_util);
    EXPECT_EQ(ra.wait_per_req_high_util, rb.wait_per_req_high_util);
    // Sums are fold-order dependent between the streaming and oracle
    // paths; bounded relative error, not bit equality.
    EXPECT_NEAR(ra.util_sum, rb.util_sum,
                1e-9 * (1.0 + std::abs(rb.util_sum)));
    EXPECT_NEAR(ra.wait_ms_sum, rb.wait_ms_sum,
                1e-9 * (1.0 + std::abs(rb.wait_ms_sum)));
  }
}

// The streaming aggregate over the SoA runner must match, count for
// count, an aggregate folded from the exact path's materialized
// telemetry for the same seed and fleet.
TEST(FleetScaleTest, StreamingMatchesExactOracle) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetScaleOptions scale = SmallScale();

  FleetOptions exact;
  exact.num_tenants = scale.num_tenants;
  exact.num_intervals = scale.num_intervals;
  exact.seed = scale.seed;
  exact.num_threads = 1;
  auto telemetry = FleetSimulator(catalog, exact).Run();
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().message();
  const FleetAggregate oracle =
      FleetAggregate::FromTelemetry(*telemetry, catalog.num_rungs());

  FleetScaleRunner runner(catalog, scale);
  auto outcome = runner.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_TRUE(outcome->complete);
  EXPECT_EQ(outcome->completed_intervals, scale.num_intervals);
  ExpectIntegerCountsEqual(outcome->aggregate, oracle);
  EXPECT_DOUBLE_EQ(outcome->aggregate.OneStepFraction(),
                   telemetry->OneStepFraction());
  EXPECT_DOUBLE_EQ(outcome->aggregate.AtMostTwoStepFraction(),
                   telemetry->AtMostTwoStepFraction());
}

TEST(FleetScaleTest, StreamingMatchesExactOracleUnderFaults) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetScaleOptions scale = SmallScale();
  scale.fault = SomeFaults();

  FleetOptions exact;
  exact.num_tenants = scale.num_tenants;
  exact.num_intervals = scale.num_intervals;
  exact.seed = scale.seed;
  exact.num_threads = 1;
  exact.fault = scale.fault;
  auto telemetry = FleetSimulator(catalog, exact).Run();
  ASSERT_TRUE(telemetry.ok());
  const FleetAggregate oracle =
      FleetAggregate::FromTelemetry(*telemetry, catalog.num_rungs());
  ASSERT_GT(telemetry->resize_failures, 0u);

  auto outcome = FleetScaleRunner(catalog, scale).Run();
  ASSERT_TRUE(outcome.ok());
  ExpectIntegerCountsEqual(outcome->aggregate, oracle);
}

// The digest must be bit-identical at any thread count and for any
// epoch slicing (block geometry held fixed).
TEST(FleetScaleTest, DigestInvariantAcrossThreadsAndEpochs) {
  Catalog catalog = Catalog::MakeLockStep();
  uint64_t reference = 0;
  bool have_reference = false;
  for (const int threads : {1, 2, 4, 8}) {
    for (const int epoch : {288, 96}) {
      FleetScaleOptions options = SmallScale();
      options.num_threads = threads;
      options.epoch_intervals = epoch;
      auto outcome = FleetScaleRunner(catalog, options).Run();
      ASSERT_TRUE(outcome.ok());
      if (!have_reference) {
        reference = outcome->aggregate.digest;
        have_reference = true;
        EXPECT_NE(reference, 0u);
      }
      EXPECT_EQ(outcome->aggregate.digest, reference)
          << "threads=" << threads << " epoch=" << epoch;
    }
  }
}

TEST(FleetScaleTest, CheckpointRoundTripBitIdentical) {
  Catalog catalog = Catalog::MakeLockStep();
  const std::string path = TempPath("fleet_scale_roundtrip.ckpt");

  FleetScaleOptions options;
  options.num_tenants = 10000;
  options.num_intervals = 96;
  options.seed = 23;
  options.num_threads = 2;
  options.block_size = 512;
  options.epoch_intervals = 24;
  options.fault = SomeFaults();

  // Uninterrupted reference run (no checkpointing).
  auto full = FleetScaleRunner(catalog, options).Run();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->complete);

  // Stop after two epochs, writing a checkpoint...
  FleetScaleOptions first_half = options;
  first_half.checkpoint_path = path;
  first_half.stop_after_intervals = 48;
  auto partial = FleetScaleRunner(catalog, first_half).Run();
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->complete);
  EXPECT_EQ(partial->completed_intervals, 48);

  // ...then resume at a DIFFERENT thread count: still bit-identical.
  FleetScaleOptions second_half = options;
  second_half.num_threads = 7;
  auto resumed = FleetScaleRunner::Resume(catalog, second_half, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->completed_intervals, options.num_intervals);
  EXPECT_EQ(resumed->aggregate.digest, full->aggregate.digest);
  ExpectIntegerCountsEqual(resumed->aggregate, full->aggregate);
  // Fold-order is identical here (same block/epoch geometry), so even the
  // floating sums must match bitwise.
  for (size_t ri = 0; ri < resumed->aggregate.resources.size(); ++ri) {
    EXPECT_EQ(resumed->aggregate.resources[ri].util_sum,
              full->aggregate.resources[ri].util_sum);  // dbscale-lint: allow(float-equality)
  }
  std::remove(path.c_str());
}

TEST(FleetScaleTest, ResumeAfterFinalEpochReturnsCompleteOutcome) {
  Catalog catalog = Catalog::MakeLockStep();
  const std::string path = TempPath("fleet_scale_final.ckpt");
  FleetScaleOptions options = SmallScale();
  options.num_tenants = 200;
  options.checkpoint_path = path;
  auto full = FleetScaleRunner(catalog, options).Run();
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->complete);

  options.checkpoint_path.clear();
  auto resumed = FleetScaleRunner::Resume(catalog, options, path);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->aggregate.digest, full->aggregate.digest);
  std::remove(path.c_str());
}

TEST(FleetScaleTest, RejectsTruncatedCorruptAndMismatchedCheckpoints) {
  Catalog catalog = Catalog::MakeLockStep();
  const std::string path = TempPath("fleet_scale_corrupt.ckpt");
  FleetScaleOptions options = SmallScale();
  options.num_tenants = 100;
  options.num_intervals = 48;
  options.epoch_intervals = 24;
  options.stop_after_intervals = 24;
  options.checkpoint_path = path;
  ASSERT_TRUE(FleetScaleRunner(catalog, options).Run().ok());

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  options.checkpoint_path.clear();
  options.stop_after_intervals = 0;

  // Truncation at several depths: clean IoError, no crash, no resume.
  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{21}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream(path, std::ios::binary).write(bytes.data(),
                                                static_cast<long>(keep));
    auto resumed = FleetScaleRunner::Resume(catalog, options, path);
    ASSERT_FALSE(resumed.ok()) << "keep=" << keep;
  }

  // Bit flip in the body: the footer hash catches it.
  {
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    std::ofstream(path, std::ios::binary)
        .write(corrupt.data(), static_cast<long>(corrupt.size()));
    auto resumed = FleetScaleRunner::Resume(catalog, options, path);
    ASSERT_FALSE(resumed.ok());
  }

  // Valid checkpoint, wrong run options: fingerprint mismatch.
  {
    std::ofstream(path, std::ios::binary)
        .write(bytes.data(), static_cast<long>(bytes.size()));
    FleetScaleOptions other = options;
    other.seed = 999;
    auto resumed = FleetScaleRunner::Resume(catalog, other, path);
    ASSERT_FALSE(resumed.ok());
    EXPECT_NE(resumed.status().message().find("fingerprint"),
              std::string::npos);
  }

  // A file that is not a checkpoint at all.
  {
    std::ofstream(path, std::ios::binary) << "not a checkpoint";
    auto resumed = FleetScaleRunner::Resume(catalog, options, path);
    ASSERT_FALSE(resumed.ok());
  }
  std::remove(path.c_str());
}

// The scale path's per-block metric shards must agree with per-tenant
// sharding (block_size = 1) bit for bit.
TEST(FleetScaleTest, PooledMetricShardsMatchPerTenantSharding) {
  Catalog catalog = Catalog::MakeLockStep();

  auto run = [&](int block_size, obs::Observability* obs) {
    FleetScaleOptions options = SmallScale();
    options.num_tenants = 120;
    options.block_size = block_size;
    options.obs = obs;
    auto outcome = FleetScaleRunner(catalog, options).Run();
    ASSERT_TRUE(outcome.ok());
  };

  obs::Observability per_tenant;
  run(1, &per_tenant);
  obs::Observability pooled;
  run(48, &pooled);

  const obs::PipelineMetrics& pm = per_tenant.pipeline();
  const obs::MetricShard& a = per_tenant.primary();
  const obs::MetricShard& b = pooled.primary();
  EXPECT_EQ(a.counter(pm.fleet_tenants_total), 120.0);
  EXPECT_EQ(a.counter(pm.fleet_tenants_total),
            b.counter(pm.fleet_tenants_total));  // dbscale-lint: allow(float-equality)
  EXPECT_EQ(a.counter(pm.fleet_tenant_intervals_total),
            b.counter(pm.fleet_tenant_intervals_total));  // dbscale-lint: allow(float-equality)
  EXPECT_EQ(a.counter(pm.fleet_container_changes_total),
            b.counter(pm.fleet_container_changes_total));  // dbscale-lint: allow(float-equality)
  EXPECT_EQ(a.hist_sum(pm.fleet_inter_event_minutes),
            b.hist_sum(pm.fleet_inter_event_minutes));  // dbscale-lint: allow(float-equality)
  EXPECT_EQ(a.hist_count(pm.fleet_change_step_rungs),
            b.hist_count(pm.fleet_change_step_rungs));  // dbscale-lint: allow(float-equality)
}

TEST(FleetScaleTest, ValidatesOptions) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetScaleOptions options = SmallScale();
  options.epoch_intervals = 30;  // not hour-aligned
  EXPECT_FALSE(FleetScaleRunner(catalog, options).Run().ok());
  options = SmallScale();
  options.block_size = 0;
  EXPECT_FALSE(FleetScaleRunner(catalog, options).Run().ok());
  options = SmallScale();
  options.num_tenants = 0;
  EXPECT_FALSE(FleetScaleRunner(catalog, options).Run().ok());
}

// Pre-refactor compatibility anchors: the exact path's fleet checksum at
// seed scale, captured before the SoA/block-sharding rework. The fleet
// checksum is the bench's order-sensitive digest; these values must never
// drift (they pin both the tenant-model draw order and the merge order).
double FleetChecksum(const FleetTelemetry& t) {
  double sum = 0.0;
  double weight = 1.0;
  for (const HourlyRecord& r : t.hourly) {
    weight = weight >= 1e9 ? 1.0 : weight + 1e-3;
    for (size_t ri = 0; ri < container::kNumResources; ++ri) {
      sum += weight * (r.utilization_pct[ri] + r.wait_ms_per_request[ri]);
    }
  }
  for (double m : t.inter_event_minutes) sum += m;
  for (size_t i = 0; i < t.step_size_counts.size(); ++i) {
    sum +=
        static_cast<double>(i) * static_cast<double>(t.step_size_counts[i]);
  }
  return sum;
}

TEST(FleetScaleTest, ExactPathSeedScaleDigestUnchangedByRefactor) {
  Catalog catalog = Catalog::MakeLockStep();
  {
    FleetOptions options;
    options.num_tenants = 2000;
    options.num_intervals = 288;
    options.seed = 7;
    options.num_threads = 2;
    auto telemetry = FleetSimulator(catalog, options).Run();
    ASSERT_TRUE(telemetry.ok());
    // Captured at the seed of this refactor (null-fault, obs off).
    EXPECT_DOUBLE_EQ(FleetChecksum(*telemetry), 438259649387.28192);
    EXPECT_EQ(telemetry->hourly.size(), 48000u);
    EXPECT_EQ(telemetry->inter_event_minutes.size(), 40704u);
  }
  {
    FleetOptions options;
    options.num_tenants = 150;
    options.num_intervals = 2 * 288;
    options.seed = 11;
    options.num_threads = 2;
    auto telemetry = FleetSimulator(catalog, options).Run();
    ASSERT_TRUE(telemetry.ok());
    EXPECT_DOUBLE_EQ(FleetChecksum(*telemetry), 43563447.131506711);
  }
}

}  // namespace
}  // namespace dbscale::fleet
