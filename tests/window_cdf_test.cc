#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/stats/cdf.h"
#include "src/stats/robust.h"
#include "src/stats/window.h"

namespace dbscale::stats {
namespace {

SimTime T(double sec) { return SimTime::Zero() + Duration::Seconds(sec); }

TEST(TimedWindowTest, FillsToCapacityThenEvictsOldest) {
  TimedWindow w(3);
  w.Add(T(1), 10);
  w.Add(T(2), 20);
  EXPECT_EQ(w.size(), 2u);
  w.Add(T(3), 30);
  w.Add(T(4), 40);  // evicts t=1
  EXPECT_EQ(w.size(), 3u);
  auto values = w.Values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 20);
  EXPECT_DOUBLE_EQ(values[2], 40);
}

TEST(TimedWindowTest, SnapshotPreservesTimeOrder) {
  TimedWindow w(4);
  for (int i = 0; i < 10; ++i) w.Add(T(i), i * 1.0);
  auto snap = w.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].time, snap[i].time);
  }
  EXPECT_DOUBLE_EQ(snap.back().value, 9.0);
}

TEST(TimedWindowTest, ValuesSinceFilters) {
  TimedWindow w(10);
  for (int i = 0; i < 10; ++i) w.Add(T(i), i * 1.0);
  auto recent = w.ValuesSince(T(7));
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0], 7.0);
}

TEST(TimedWindowTest, SeriesSinceShapesRegressionInput) {
  TimedWindow w(5);
  for (int i = 0; i < 5; ++i) w.Add(T(i * 5), 100.0 + i);
  std::vector<double> times, values;
  w.SeriesSince(T(0), &times, &values);
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
  EXPECT_DOUBLE_EQ(values[4], 104.0);
}

TEST(TimedWindowTest, Latest) {
  TimedWindow w(2);
  w.Add(T(1), 1);
  EXPECT_DOUBLE_EQ(w.Latest().value, 1.0);
  w.Add(T(2), 2);
  w.Add(T(3), 3);
  EXPECT_DOUBLE_EQ(w.Latest().value, 3.0);
}

TEST(TimedWindowTest, Clear) {
  TimedWindow w(2);
  w.Add(T(1), 1);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Add(T(2), 5);
  EXPECT_DOUBLE_EQ(w.Latest().value, 5.0);
}

TEST(EmpiricalCdfTest, FractionAtOrBelow) {
  EmpiricalCdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2).value(), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.5).value(), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(100).value(), 1.0);
}

TEST(EmpiricalCdfTest, AddThenQuery) {
  EmpiricalCdf cdf;
  EXPECT_FALSE(cdf.FractionAtOrBelow(1).ok());
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(50).value(), 0.5);
  EXPECT_NEAR(cdf.ValueAtPercentile(95).value(), 95.0, 1.0);
}

TEST(EmpiricalCdfTest, InterleavedAddAndQuery) {
  EmpiricalCdf cdf({5, 1});
  EXPECT_DOUBLE_EQ(cdf.ValueAtPercentile(0).value(), 1.0);
  cdf.Add(0.5);
  EXPECT_DOUBLE_EQ(cdf.ValueAtPercentile(0).value(), 0.5);
}

TEST(EmpiricalCdfTest, CurvePoints) {
  EmpiricalCdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  auto points = cdf.CurvePoints(5).value();
  ASSERT_EQ(points.size(), 5u);
  EXPECT_LE(points.front().first, points.back().first);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  EXPECT_FALSE(cdf.CurvePoints(1).ok());
}

TEST(LatencyHistogramTest, CountSumMeanMax) {
  LatencyHistogram h;
  h.Add(10);
  h.Add(20);
  h.Add(30);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 30.0);
}

TEST(LatencyHistogramTest, PercentileBoundedRelativeError) {
  Rng rng(21);
  LatencyHistogram h(0.01, 1e7, 48);
  std::vector<double> exact;
  for (int i = 0; i < 50000; ++i) {
    double v = rng.LogNormal(3.0, 1.5);
    h.Add(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    double approx = h.ValueAtPercentile(p);
    double truth = PercentileSorted(exact, p);
    EXPECT_NEAR(approx / truth, 1.0, 0.06) << "p" << p;
  }
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(95), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.Add(123.0);
  EXPECT_DOUBLE_EQ(h.ValueAtPercentile(100), 123.0);
  EXPECT_LE(h.ValueAtPercentile(99), 123.0);
}

TEST(LatencyHistogramTest, ClampsOutOfRangeValues) {
  LatencyHistogram h(1.0, 1000.0, 10);
  h.Add(0.0001);  // below min -> first bucket
  h.Add(1e9);     // above max -> last bucket
  EXPECT_EQ(h.count(), 2);
  EXPECT_GT(h.ValueAtPercentile(99), 100.0);
}

TEST(LatencyHistogramTest, MergeAccumulates) {
  LatencyHistogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.max_seen(), 1000.0);
  EXPECT_GT(a.ValueAtPercentile(99), 500.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);
}

}  // namespace
}  // namespace dbscale::stats
