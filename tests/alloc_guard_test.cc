// Enforces the PR-1 performance contract as a regression test: with scratch
// buffers, the per-interval signal path performs ZERO heap allocations in
// steady state. Previously this was only a bench observation
// (BENCH_perf.json); here any reintroduced allocation fails the suite.
//
// This translation unit replaces the global allocation functions with
// counting versions, which is why it links into its own test binary
// (dbscale_alloc_guard_test) — see tests/CMakeLists.txt.

#include "tests/alloc_guard.h"

#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/container/catalog.h"
#include "src/fault/actuator.h"
#include "src/fault/fault_plan.h"
#include "src/host/host_map.h"
#include "src/host/placement.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/producer.h"
#include "src/ingest/wire_sample.h"
#include "src/scaler/batch_eval.h"
#include "src/scaler/diagonal.h"
#include "src/obs/metrics.h"
#include "src/obs/pipeline.h"
#include "src/obs/trace.h"
#include "src/sim/report.h"
#include "src/stats/cdf.h"
#include "src/stats/incremental.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"
#include "src/stats/theil_sen.h"
#include "src/telemetry/manager.h"
#include "src/telemetry/sample.h"
#include "src/telemetry/store.h"

namespace {

thread_local std::size_t g_thread_allocs = 0;
thread_local std::size_t g_thread_frees = 0;

void* CountedAlloc(std::size_t size) {
  ++g_thread_allocs;
  if (size == 0) size = 1;
  void* p = std::malloc(size);  // NOLINT(cppcoreguidelines-no-malloc)
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++g_thread_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void CountedFree(void* p) noexcept {
  if (p == nullptr) return;
  ++g_thread_frees;
  std::free(p);  // NOLINT(cppcoreguidelines-no-malloc)
}

}  // namespace

namespace dbscale::testing {
std::size_t ThreadAllocCount() noexcept { return g_thread_allocs; }
std::size_t ThreadDeallocCount() noexcept { return g_thread_frees; }
}  // namespace dbscale::testing

// Replacement global allocation functions. All new/delete forms funnel into
// the counted helpers so no allocation path escapes the measurement.
void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_thread_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_thread_allocs;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}

namespace dbscale {
namespace {

using telemetry::SignalScratch;
using telemetry::TelemetryManager;
using telemetry::TelemetrySample;
using telemetry::TelemetryStore;
using testing::AllocSpan;

TelemetrySample MakeSample(int index) {
  TelemetrySample s;
  s.period_start = SimTime::Zero() + Duration::Seconds(index * 5.0);
  s.period_end = SimTime::Zero() + Duration::Seconds((index + 1) * 5.0);
  s.requests_completed = 10 + index % 7;
  s.latency_avg_ms = 20.0 + (index % 5) * 3.0;
  s.latency_p95_ms = 45.0 + (index % 9) * 4.0;
  s.memory_used_mb = 900.0 + index;
  s.physical_reads = 40 + index % 11;
  for (size_t r = 0; r < container::kNumResources; ++r) {
    s.utilization_pct[r] = 25.0 + static_cast<double>((index + r) % 60);
  }
  for (size_t wc = 0; wc < static_cast<size_t>(telemetry::kNumWaitClasses);
       ++wc) {
    s.wait_ms[wc] = static_cast<double>((index * 13 + wc * 7) % 40);
  }
  return s;
}

TelemetryStore MakeStore(int n) {
  TelemetryStore store;
  for (int i = 0; i < n; ++i) store.Append(MakeSample(i));
  return store;
}

// The guard itself must be live: if the replacement operator new silently
// stopped linking, every "zero allocations" assertion below would pass
// vacuously. A forced allocation proves the counter moves.
TEST(AllocGuardTest, CounterObservesAllocations) {
  AllocSpan span;
  auto* v = new std::vector<double>();
  v->resize(1024);
  delete v;
  EXPECT_GE(span.allocations(), 2u);
  EXPECT_GE(span.deallocations(), 2u);
}

TEST(AllocGuardTest, ComputeWithScratchIsAllocationFree) {
  TelemetryStore store = MakeStore(64);
  TelemetryManager manager;
  SignalScratch scratch;

  // Warm-up: first call grows scratch capacity to the high-water mark.
  auto warm = manager.Compute(store, store.back().period_end, &scratch);
  ASSERT_TRUE(warm.valid);

  AllocSpan span;
  for (int i = 0; i < 10; ++i) {
    auto snap = manager.Compute(store, store.back().period_end, &scratch);
    ASSERT_TRUE(snap.valid);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "TelemetryManager::Compute allocated on the scratch path";
}

// Negative control: without scratch, Compute falls back to call-local
// buffers and must allocate. Proves the measurement sees the difference
// the scratch path is claimed to make.
TEST(AllocGuardTest, ComputeWithoutScratchAllocates) {
  TelemetryStore store = MakeStore(64);
  TelemetryManager manager;
  // Warm-up discard: only the second call is measured.
  // dbscale-lint: allow(discarded-status)
  (void)manager.Compute(store, store.back().period_end, nullptr);

  AllocSpan span;
  auto snap = manager.Compute(store, store.back().period_end, nullptr);
  ASSERT_TRUE(snap.valid);
  EXPECT_GT(span.allocations(), 0u);
}

TEST(AllocGuardTest, InPlaceStatsAreAllocationFree) {
  std::vector<double> values;
  values.reserve(256);
  for (int i = 0; i < 256; ++i) {
    values.push_back(static_cast<double>((i * 37) % 101));
  }
  std::vector<double> work(values);

  AllocSpan span;
  work.assign(values.begin(), values.end());
  auto median = stats::MedianInPlace(work);
  work.assign(values.begin(), values.end());
  auto p95 = stats::PercentileInPlace(work, 95.0);
  work.assign(values.begin(), values.end());
  auto mad = stats::MadInPlace(work);
  EXPECT_EQ(span.allocations(), 0u)
      << "in-place robust stats allocated";

  ASSERT_TRUE(median.ok());
  ASSERT_TRUE(p95.ok());
  ASSERT_TRUE(mad.ok());
  EXPECT_GT(*mad, 0.0);
}

TEST(AllocGuardTest, TheilSenFitSequenceWithScratchIsAllocationFree) {
  std::vector<double> y;
  y.reserve(48);
  for (int i = 0; i < 48; ++i) {
    y.push_back(0.5 * i + ((i % 3) - 1) * 0.25);
  }
  stats::TheilSenEstimator estimator(0.70);
  stats::TheilSenScratch scratch;
  auto warm = estimator.FitSequence(y, &scratch);
  ASSERT_TRUE(warm.ok());

  AllocSpan span;
  auto fit = estimator.FitSequence(y, &scratch);
  EXPECT_EQ(span.allocations(), 0u)
      << "TheilSenEstimator::FitSequence allocated with warm scratch";
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->direction, stats::TrendDirection::kIncreasing);
}

TEST(AllocGuardTest, SpearmanWithScratchIsAllocationFree) {
  std::vector<double> x, y;
  x.reserve(48);
  y.reserve(48);
  for (int i = 0; i < 48; ++i) {
    x.push_back(static_cast<double>(i % 17));
    y.push_back(static_cast<double>((i * i) % 23));
  }
  stats::SpearmanScratch scratch;
  auto warm = stats::SpearmanCorrelation(x, y, &scratch);
  ASSERT_TRUE(warm.ok());

  AllocSpan span;
  auto rho = stats::SpearmanCorrelation(x, y, &scratch);
  EXPECT_EQ(span.allocations(), 0u)
      << "SpearmanCorrelation allocated with warm scratch";
  ASSERT_TRUE(rho.ok());
  EXPECT_GE(*rho, -1.0);
  EXPECT_LE(*rho, 1.0);
}

TEST(AllocGuardTest, RecentIntoWithWarmBufferIsAllocationFree) {
  TelemetryStore store = MakeStore(64);
  std::vector<const TelemetrySample*> buf;
  store.RecentInto(32, buf);

  AllocSpan span;
  store.RecentInto(32, buf);
  EXPECT_EQ(span.allocations(), 0u) << "TelemetryStore::RecentInto allocated";
  EXPECT_EQ(buf.size(), 32u);
}

// The tentpole contract: the incremental engine slides (one new sample per
// Compute) without allocating. The store's own Append may grow its deque,
// so it happens outside the measured span — only Compute is on trial.
TEST(AllocGuardTest, ComputeIncrementalSlidingIsAllocationFree) {
  TelemetryStore store = MakeStore(64);
  TelemetryManager manager;
  SignalScratch scratch;

  // Warm-up: configures the engine, replays the window, grows every ring,
  // arena, and scratch buffer to its high-water mark.
  auto warm = manager.Compute(store, store.back().period_end, &scratch);
  ASSERT_TRUE(warm.valid);

  for (int i = 0; i < 32; ++i) {
    store.Append(MakeSample(64 + i));
    AllocSpan span;
    auto snap = manager.Compute(store, store.back().period_end, &scratch);
    EXPECT_EQ(span.allocations(), 0u)
        << "incremental Compute allocated on slide " << i;
    ASSERT_TRUE(snap.valid);
  }
}

TEST(AllocGuardTest, SlidingOrderStatsSteadyStateIsAllocationFree) {
  stats::SlidingOrderStats win;
  win.Reset(32);
  for (int i = 0; i < 64; ++i) {
    if (i % 7 == 3) {
      win.PushAbsent();
    } else {
      win.Push(static_cast<double>((i * 37) % 101));
    }
  }
  auto warm_mad = win.Mad();  // grows the internal deviation scratch once
  ASSERT_TRUE(warm_mad.ok());

  AllocSpan span;
  for (int i = 0; i < 64; ++i) {
    win.Push(static_cast<double>((i * 53) % 97));
    const double median = win.Median();
    const double p95 = win.Percentile(95.0);
    auto mad = win.Mad();
    ASSERT_TRUE(mad.ok());
    EXPECT_LE(median, p95);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "SlidingOrderStats allocated in steady state";
}

TEST(AllocGuardTest, IncrementalTheilSenSteadyStateIsAllocationFree) {
  constexpr size_t kWindow = 24;
  stats::SlopeArena arena;
  arena.Reset(kWindow * (kWindow - 1) / 2);
  stats::IncrementalTheilSen trend;
  trend.Reset(kWindow, &arena);
  stats::TheilSenEstimator estimator(0.70);
  stats::TheilSenScratch scratch;
  for (int i = 0; i < 48; ++i) {
    trend.Push(0.5 * i + ((i % 3) - 1) * 0.25);
  }
  auto warm = trend.Fit(estimator, &scratch);
  ASSERT_TRUE(warm.ok());

  AllocSpan span;
  for (int i = 0; i < 64; ++i) {
    trend.Push(0.5 * i + ((i % 5) - 2) * 0.125);
    auto fit = trend.Fit(estimator, &scratch);
    ASSERT_TRUE(fit.ok());
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "IncrementalTheilSen allocated in steady state";
}

TEST(AllocGuardTest, SlidingRankWindowSteadyStateIsAllocationFree) {
  stats::SlidingRankWindow win;
  win.Reset(24);
  for (int i = 0; i < 48; ++i) {
    win.Push(static_cast<double>((i * i) % 23));
  }
  const auto& warm_ranks = win.Ranks();
  ASSERT_EQ(warm_ranks.size(), 24u);

  AllocSpan span;
  for (int i = 0; i < 64; ++i) {
    win.Push(static_cast<double>((i * 31) % 29));
    const auto& ranks = win.Ranks();
    ASSERT_EQ(ranks.size(), 24u);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "SlidingRankWindow allocated in steady state";
}

TEST(AllocGuardTest, LatencyHistogramSteadyOpsAreAllocationFree) {
  stats::LatencyHistogram hist(1.0, 1e6, 48);
  stats::LatencyHistogram other(1.0, 1e6, 48);
  for (int i = 0; i < 100; ++i) {
    hist.Add(1.0 + static_cast<double>((i * 97) % 5000));
    other.Add(1.0 + static_cast<double>((i * 41) % 5000));
  }

  AllocSpan span;
  for (int i = 0; i < 100; ++i) {
    hist.Add(1.0 + static_cast<double>((i * 61) % 5000));
  }
  const double p95 = hist.ValueAtPercentile(95.0);
  hist.Merge(other);
  const double merged_p95 = hist.ValueAtPercentile(95.0);
  hist.Reset();
  EXPECT_EQ(span.allocations(), 0u)
      << "LatencyHistogram steady-state ops allocated";
  EXPECT_GT(p95, 0.0);
  EXPECT_GT(merged_p95, 0.0);
}

TEST(AllocGuardTest, CurvePointsIntoWithWarmBufferIsAllocationFree) {
  stats::EmpiricalCdf cdf;
  for (int i = 0; i < 200; ++i) {
    cdf.Add(static_cast<double>((i * 37) % 101));
  }
  std::vector<std::pair<double, double>> points;
  ASSERT_TRUE(cdf.CurvePointsInto(50, points).ok());

  AllocSpan span;
  ASSERT_TRUE(cdf.CurvePointsInto(50, points).ok());
  EXPECT_EQ(span.allocations(), 0u)
      << "EmpiricalCdf::CurvePointsInto allocated with warm buffer";
  EXPECT_EQ(points.size(), 50u);
}

TEST(AllocGuardTest, TextTableAppendWithWarmBuffersIsAllocationFree) {
  sim::TextTable table({"metric", "value", "unit"});
  for (int i = 0; i < 8; ++i) {
    table.AddRow({"p95_latency", std::to_string(40 + i), "ms"});
  }
  sim::ReportScratch scratch;
  std::string out;
  std::string csv;
  table.AppendTo(out, &scratch);
  table.AppendCsvTo(csv);

  AllocSpan span;
  out.clear();
  table.AppendTo(out, &scratch);
  csv.clear();
  table.AppendCsvTo(csv);
  EXPECT_EQ(span.allocations(), 0u)
      << "TextTable::AppendTo/AppendCsvTo allocated with warm buffers";
  EXPECT_FALSE(out.empty());
  EXPECT_FALSE(csv.empty());
}

// The observability contract: once instruments are registered and the
// shard is attached (setup time), every record path — counter add, gauge
// set, histogram observe, and the null-sink disabled branch — is heap-free.
TEST(AllocGuardTest, MetricShardRecordPathsAreAllocationFree) {
  obs::MetricRegistry registry;
  const obs::MetricId c = registry.Counter("c_total", "c");
  const obs::MetricId g = registry.Gauge("g", "g");
  const obs::MetricId h = registry.Histogram(
      "h_ms", "h", obs::HistogramSpec::Exponential(0.05, 2.0, 16));
  obs::MetricShard shard;
  shard.Attach(&registry);
  obs::MetricSink sink{&shard};
  obs::MetricSink off;  // disabled: the runtime-toggle branch

  AllocSpan span;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    sink.Add(c, 1.0);
    sink.Set(g, v);
    sink.Observe(h, v);
    off.Add(c, 1.0);
    off.Observe(h, v);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "MetricShard record paths allocated";
  EXPECT_DOUBLE_EQ(shard.counter(c), 1000.0);
  EXPECT_DOUBLE_EQ(shard.hist_count(h), 1000.0);
}

// Span capture reuses the preallocated interval ring: after construction,
// whole interval trees (begin, spans, attrs, end) record without touching
// the heap — including overflow drops past the per-interval capacity.
TEST(AllocGuardTest, TraceCaptureSteadyStateIsAllocationFree) {
  obs::TraceRecorder::Options options;
  options.max_intervals = 8;
  options.max_spans_per_interval = 16;
  obs::TraceRecorder recorder(options);

  AllocSpan span;
  for (int i = 0; i < 64; ++i) {
    const SimTime t0 = SimTime::Zero() + Duration::Seconds(20.0 * i);
    recorder.BeginInterval(i, t0);
    for (int s = 0; s < 20; ++s) {  // 20 > capacity: exercises the drop path
      const obs::SpanId id = recorder.StartSpan("decide", t0,
                                                recorder.root());
      recorder.AddAttr(id, "target_rung", static_cast<double>(s));
      recorder.AddAttrStr(id, "code", "hold_demand_steady");
      recorder.EndSpan(id, t0 + Duration::Seconds(1));
    }
    recorder.EndInterval(t0 + Duration::Seconds(20));
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "TraceRecorder capture allocated in steady state";
  EXPECT_EQ(recorder.num_intervals(), 8u);
  EXPECT_GT(recorder.dropped_spans(), 0u);
}

// The fault-injection contract: fault draws and sample corruption sit on
// the per-sample ingestion path and the per-interval actuation path, so
// they must never touch the heap.
TEST(AllocGuardTest, FaultPlanDrawsAreAllocationFree) {
  fault::FaultPlanOptions options;
  options.resize.failure_probability = 0.2;
  options.resize.rejection_probability = 0.05;
  options.resize.min_latency_intervals = 1;
  options.resize.max_latency_intervals = 3;
  options.telemetry.drop_probability = 0.1;
  options.telemetry.nan_probability = 0.05;
  options.telemetry.outlier_probability = 0.05;
  options.telemetry.stale_probability = 0.05;
  fault::FaultPlan plan(options, Rng(11));
  TelemetrySample sample = MakeSample(0);

  AllocSpan span;
  for (int i = 0; i < 1000; ++i) {
    // dbscale-lint: allow(discarded-status)
    (void)plan.NextResizeFault();
    const fault::SampleFault f = plan.NextSampleFault();
    if (f != fault::SampleFault::kNone) plan.CorruptSample(f, &sample);
    // dbscale-lint: allow(discarded-status)
    (void)fault::SampleLooksValid(sample);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "FaultPlan draw/corrupt path allocated";
}

TEST(AllocGuardTest, ResizeActuatorLifecycleIsAllocationFree) {
  const container::Catalog catalog = container::Catalog::MakeLockStep();
  fault::FaultPlanOptions options;
  options.resize.failure_probability = 0.3;
  options.resize.min_latency_intervals = 1;
  options.resize.max_latency_intervals = 2;
  fault::FaultPlan plan(options, Rng(5));
  fault::ResizeActuator actuator(&plan);
  const container::ContainerSpec target = catalog.rung(5);

  AllocSpan span;
  for (int i = 0; i < 200; ++i) {
    if (!actuator.pending()) {
      // dbscale-lint: allow(discarded-status)
      (void)actuator.Begin(target);
    }
    // dbscale-lint: allow(discarded-status)
    (void)actuator.Tick();
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "ResizeActuator Begin/Tick allocated";
}

// Graceful degradation stays on the allocation-free path: Compute over a
// gappy window (dropped samples) flags degraded without heap traffic.
TEST(AllocGuardTest, DegradedComputeWithScratchIsAllocationFree) {
  TelemetryStore store;
  // Every third sample dropped: coverage ~0.66 < the 0.7 default floor.
  for (int i = 0; i < 64; ++i) {
    if (i % 3 != 2) store.Append(MakeSample(i));
  }
  TelemetryManager manager;
  SignalScratch scratch;
  auto warm = manager.Compute(store, store.back().period_end, &scratch);
  ASSERT_TRUE(warm.valid);
  ASSERT_TRUE(warm.degraded);

  AllocSpan span;
  for (int i = 0; i < 10; ++i) {
    auto snap = manager.Compute(store, store.back().period_end, &scratch);
    ASSERT_TRUE(snap.valid);
    EXPECT_TRUE(snap.degraded);
    EXPECT_LT(snap.confidence, 1.0);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "degraded-window Compute allocated on the scratch path";
}

// -------- PR-8 ingest legs: ring, store ring, batched evaluation --------

TEST(AllocGuardTest, IngestRingPushPopSteadyStateIsAllocationFree) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 64});
  ingest::WireSample sample;
  ingest::WireSample batch[16];

  AllocSpan span;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (uint64_t i = 0; i < 48; ++i) {
      sample.tenant_id = i;
      // dbscale-lint: allow(discarded-status)
      (void)ring.TryPush(sample);
    }
    ingest::WireSample out;
    for (int i = 0; i < 16; ++i) {
      // dbscale-lint: allow(discarded-status)
      (void)ring.TryPop(&out);
    }
    while (ring.PopBatch(batch, 16) > 0) {
    }
  }
  // Overflow the ring so the rejection path is measured too.
  for (uint64_t i = 0; i < 100; ++i) {
    // dbscale-lint: allow(discarded-status)
    (void)ring.TryPush(sample);
  }
  EXPECT_EQ(span.allocations(), 0u) << "IngestRing push/pop path allocated";
}

TEST(AllocGuardTest, IngestProducerPublishIsAllocationFree) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 256});
  fault::FaultPlanOptions options;
  options.telemetry.drop_probability = 0.1;
  options.telemetry.nan_probability = 0.05;
  options.telemetry.outlier_probability = 0.05;
  options.telemetry.stale_probability = 0.1;
  fault::FaultPlan plan(options, Rng(17));
  ingest::IngestProducer producer(&ring, 0, &plan);
  const TelemetrySample sample = MakeSample(3);
  ingest::WireSample drained[64];

  AllocSpan span;
  for (int i = 0; i < 1000; ++i) {
    // dbscale-lint: allow(discarded-status)
    (void)producer.Publish(1, sample);
    if (ring.ApproxDepth() > 128) {
      while (ring.PopBatch(drained, 64) > 0) {
      }
    }
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "producer publish path allocated (faults included)";
}

TEST(AllocGuardTest, StoreAppendSteadyStateIsAllocationFree) {
  TelemetryStore store(/*max_samples=*/32);
  // Growth phase: the backing vector expands up to retention.
  for (int i = 0; i < 32; ++i) store.Append(MakeSample(i));

  AllocSpan span;
  for (int i = 32; i < 532; ++i) store.Append(MakeSample(i));
  EXPECT_EQ(span.allocations(), 0u)
      << "TelemetryStore::Append allocated at capacity (ring should "
         "recycle slots in place)";
  EXPECT_EQ(store.size(), 32u);
}

TEST(AllocGuardTest, StoreAppendGrowthPhaseAllocates) {
  // Negative control for the leg above: while the ring is still growing
  // toward retention, Append IS expected to allocate.
  TelemetryStore store(/*max_samples=*/1024);
  AllocSpan span;
  for (int i = 0; i < 1024; ++i) store.Append(MakeSample(i));
  EXPECT_GT(span.allocations(), 0u);
}

namespace batch_eval_policies {

/// Alloc-free policy: echoes the current container with a code-only
/// explanation (empty SSO detail string, no heap traffic).
class FixedPolicy : public scaler::ScalingPolicy {
 public:
  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    scaler::ScalingDecision d;
    d.target = input.current;
    d.explanation = scaler::Explanation(scaler::ExplanationCode::kNote);
    return d;
  }
  std::string name() const override { return "Fixed"; }
};

/// Negative control: a policy that heap-allocates inside Decide.
class AllocatingPolicy : public scaler::ScalingPolicy {
 public:
  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    scaler::ScalingDecision d;
    d.target = input.current;
    d.explanation = scaler::Explanation(
        scaler::ExplanationCode::kNote,
        std::string(128, 'x'));  // forces a heap string
    return d;
  }
  std::string name() const override { return "Allocating"; }
};

}  // namespace batch_eval_policies

TEST(AllocGuardTest, DecideBatchMachineryIsAllocationFree) {
  constexpr size_t kSlots = 32;
  std::vector<batch_eval_policies::FixedPolicy> policies(kSlots);
  std::vector<scaler::DecisionSlot> slots(kSlots);
  for (size_t i = 0; i < kSlots; ++i) {
    slots[i].policy = &policies[i];
    slots[i].input.interval_index = static_cast<int>(i);
  }
  // Warm-up pass (first Decide may touch cold paths).
  scaler::DecideBatch(slots.data(), kSlots, nullptr);

  AllocSpan span;
  for (int round = 0; round < 100; ++round) {
    scaler::DecideBatch(slots.data(), kSlots, nullptr);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "DecideBatch machinery allocated with an alloc-free policy";
}

TEST(AllocGuardTest, DecideBatchAllocatingPolicyIsObserved) {
  // Proves the leg above is not vacuous: the same machinery with an
  // allocating policy shows heap traffic on this thread.
  constexpr size_t kSlots = 8;
  std::vector<batch_eval_policies::AllocatingPolicy> policies(kSlots);
  std::vector<scaler::DecisionSlot> slots(kSlots);
  for (size_t i = 0; i < kSlots; ++i) slots[i].policy = &policies[i];
  scaler::DecideBatch(slots.data(), kSlots, nullptr);

  AllocSpan span;
  scaler::DecideBatch(slots.data(), kSlots, nullptr);
  EXPECT_GT(span.allocations(), 0u);
}

// -------- PR-9 host legs: placement scans and interference kernel --------

// The host plane's per-interval kernels run once per interval per fleet
// (interference) and once per scale-up (fit checks, destination scans), so
// they must never touch the heap after construction.
TEST(AllocGuardTest, HostMapHotPathsAreAllocationFree) {
  host::HostOptions options;
  options.num_hosts = 64;
  options.background.cpu_cores = 2.0;
  options.hot_hosts = 16;
  options.hot_extra.cpu_cores = 6.0;
  host::HostMap map(options);
  const container::ResourceVector bundle{3.0, 4096.0, 300.0, 12.0};
  const container::ResourceVector big{6.0, 16384.0, 800.0, 32.0};
  const container::ResourceVector delta = host::UpDelta(bundle, big);
  for (int id = 0; id < map.num_hosts(); ++id) {
    map.Place(id % map.num_hosts(), bundle);
  }
  auto first = host::MakePlacementPolicy(host::PlacementPolicyKind::kFirstFit);
  auto best = host::MakePlacementPolicy(host::PlacementPolicyKind::kBestFit);
  std::vector<double> demand(static_cast<size_t>(map.num_hosts()), 9.0);

  AllocSpan span;
  for (int i = 0; i < 200; ++i) {
    const int id = i % map.num_hosts();
    // dbscale-lint: allow(discarded-status)
    (void)map.FitsOn(id, delta);
    // dbscale-lint: allow(discarded-status)
    (void)first->ChooseHost(map, big, id);
    // dbscale-lint: allow(discarded-status)
    (void)best->ChooseHost(map, big, id);
    map.ReserveLocal(id, delta);
    map.CommitLocal(id, delta, bundle, big);
    map.ReserveLocal(id, host::UpDelta(big, bundle));
    map.CommitLocal(id, host::UpDelta(big, bundle), big, bundle);
    map.UpdateInterference(demand);
    // dbscale-lint: allow(discarded-status)
    (void)map.Digest();
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "HostMap hot paths allocated in steady state";
}

TEST(AllocGuardTest, DiagonalOptimizerSolveIsAllocationFree) {
  container::FlexibleCatalogOptions fopts;
  fopts.subdivisions = 3;  // largest grid: worst case for the search
  auto flexible = container::Catalog::MakeFlexible(fopts);
  ASSERT_TRUE(flexible.ok());
  const container::Catalog fixed = container::Catalog::MakePerDimension();
  const scaler::DiagonalOptimizer flex_opt(*flexible);
  const scaler::DiagonalOptimizer fixed_opt(fixed);
  const container::ResourceVector top = flexible->largest().resources;

  AllocSpan span;
  for (int i = 0; i < 100; ++i) {
    container::ResourceVector demand;
    for (container::ResourceKind kind : container::kAllResources) {
      const double frac = 0.01 * static_cast<double>((i * 13) % 100);
      demand.Set(kind, frac * top.Get(kind));
    }
    // Unbudgeted fast path, tight-budget branch-and-bound, and the fixed
    // catalog's spec scan must all run without touching the heap.
    const auto unbudgeted =
        flex_opt.Solve(demand, std::numeric_limits<double>::infinity());
    const auto tight = flex_opt.Solve(demand, 20.0 + i);
    const auto listed = fixed_opt.Solve(demand, 20.0 + i);
    ASSERT_TRUE(unbudgeted.feasible);
    ASSERT_LE(tight.shortfall_steps + listed.shortfall_steps, 1000);
  }
  EXPECT_EQ(span.allocations(), 0u)
      << "DiagonalOptimizer::Solve allocated in steady state";
}

TEST(AllocGuardTest, AsciiChartIntoWithWarmBuffersIsAllocationFree) {
  std::vector<double> values;
  values.reserve(200);
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<double>((i * 13) % 50));
  }
  sim::ReportScratch scratch;
  std::string out;
  sim::AsciiChartInto(values, out, 8, 120, &scratch);

  AllocSpan span;
  out.clear();
  sim::AsciiChartInto(values, out, 8, 120, &scratch);
  EXPECT_EQ(span.allocations(), 0u)
      << "AsciiChartInto allocated with warm scratch";
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace dbscale
