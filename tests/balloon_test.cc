#include "src/scaler/balloon.h"

#include <gtest/gtest.h>

namespace dbscale::scaler {
namespace {

TEST(BalloonTest, StartValidation) {
  BalloonController b;
  EXPECT_TRUE(b.CanStart(0));
  EXPECT_TRUE(b.Start(4096, 4096, 10, 0).IsInvalidArgument());
  EXPECT_TRUE(b.Start(4096, 5000, 10, 0).IsInvalidArgument());
  EXPECT_TRUE(b.Start(4096, 0, 10, 0).IsInvalidArgument());
  ASSERT_TRUE(b.Start(4096, 2560, 10, 0).ok());
  EXPECT_TRUE(b.active());
  // No double start.
  EXPECT_TRUE(b.Start(4096, 2560, 10, 1).IsFailedPrecondition());
}

TEST(BalloonTest, GradualShrinkReachesTargetAndCompletes) {
  BalloonOptions options;
  options.shrink_step_fraction = 0.34;
  BalloonController b(options);
  ASSERT_TRUE(b.Start(4096, 2560, 10, 0).ok());
  int ticks = 0;
  double last_limit = 4096;
  while (b.active()) {
    auto advice = b.Tick(/*reads_per_sec=*/10, ticks);
    if (advice.completed) break;
    ASSERT_TRUE(advice.memory_limit_mb.has_value());
    // Monotone non-increasing, never below target.
    EXPECT_LE(*advice.memory_limit_mb, last_limit);
    EXPECT_GE(*advice.memory_limit_mb, 2560.0);
    last_limit = *advice.memory_limit_mb;
    ++ticks;
    ASSERT_LT(ticks, 20);
  }
  EXPECT_EQ(b.state(), BalloonController::State::kIdle);
  EXPECT_DOUBLE_EQ(last_limit, 2560.0);
  // Completion implies the target was held for a tick with healthy I/O.
  EXPECT_GE(ticks, 3);
}

TEST(BalloonTest, AbortsOnIoIncreaseAndRestores) {
  BalloonOptions options;
  options.io_abort_factor = 1.5;
  options.io_abort_margin_rps = 25.0;
  BalloonController b(options);
  ASSERT_TRUE(b.Start(4096, 2560, /*baseline=*/100, 0).ok());
  auto advice = b.Tick(/*reads=*/100, 1);  // fine: below 100*1.5+25
  EXPECT_FALSE(advice.aborted);
  advice = b.Tick(/*reads=*/500, 2);  // cliff hit
  EXPECT_TRUE(advice.aborted);
  ASSERT_TRUE(advice.memory_limit_mb.has_value());
  EXPECT_DOUBLE_EQ(*advice.memory_limit_mb, 4096.0);  // restore
  EXPECT_EQ(b.state(), BalloonController::State::kCooldown);
}

TEST(BalloonTest, CooldownBlocksRestart) {
  BalloonOptions options;
  options.cooldown_ticks = 10;
  BalloonController b(options);
  ASSERT_TRUE(b.Start(4096, 2560, 0, 0).ok());
  // dbscale-lint: allow(discarded-status)
  (void)b.Tick(1000, 1);  // abort at tick 1
  EXPECT_FALSE(b.CanStart(5));
  EXPECT_FALSE(b.Start(4096, 2560, 0, 5).ok());
  EXPECT_TRUE(b.CanStart(11));
  EXPECT_TRUE(b.Start(4096, 2560, 0, 11).ok());
}

TEST(BalloonTest, MarginOverrideScalesTolerance) {
  BalloonController b;
  // Huge margin: even a big absolute increase is tolerated.
  ASSERT_TRUE(b.Start(4096, 2560, /*baseline=*/10, 0,
                      /*abort_margin_rps=*/1000.0).ok());
  auto advice = b.Tick(/*reads=*/500, 1);
  EXPECT_FALSE(advice.aborted);
}

TEST(BalloonTest, BaselineScalesAbortThreshold) {
  BalloonOptions options;
  options.io_abort_factor = 2.0;
  options.io_abort_margin_rps = 0.0;
  BalloonController b(options);
  ASSERT_TRUE(b.Start(4096, 2560, /*baseline=*/200, 0,
                      /*abort_margin_rps=*/0.0).ok());
  EXPECT_FALSE(b.Tick(399, 1).aborted);
  EXPECT_TRUE(b.Tick(401, 2).aborted);
}

TEST(BalloonTest, ResetCancels) {
  BalloonController b;
  ASSERT_TRUE(b.Start(4096, 2560, 10, 0).ok());
  b.Reset();
  EXPECT_FALSE(b.active());
  EXPECT_TRUE(b.CanStart(0));
}

TEST(BalloonTest, AbortAtFirstStepStillRestoresFullAllocation) {
  BalloonController b;
  ASSERT_TRUE(b.Start(8192, 1024, 0, 0).ok());
  auto advice = b.Tick(1e6, 0);
  EXPECT_TRUE(advice.aborted);
  EXPECT_DOUBLE_EQ(*advice.memory_limit_mb, 8192.0);
  EXPECT_DOUBLE_EQ(b.current_limit_mb(), 8192.0);
}

}  // namespace
}  // namespace dbscale::scaler
