#include <gtest/gtest.h>

#include <algorithm>

#include "src/container/catalog.h"
#include "src/workload/generator.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"
#include "src/workload/trace.h"

namespace dbscale::workload {
namespace {

TEST(TraceTest, Basics) {
  Trace t("t", {10, 20, 30});
  EXPECT_EQ(t.num_steps(), 3u);
  EXPECT_DOUBLE_EQ(t.rate_at(0), 10);
  EXPECT_DOUBLE_EQ(t.rate_at(2), 30);
  EXPECT_DOUBLE_EQ(t.rate_at(99), 30);  // clamps to last
  EXPECT_DOUBLE_EQ(t.max_rate(), 30);
  EXPECT_DOUBLE_EQ(t.mean_rate(), 20);
}

TEST(TraceTest, Scaled) {
  Trace t("t", {10, 20});
  Trace s = t.Scaled(0.5);
  EXPECT_DOUBLE_EQ(s.rate_at(0), 5);
  EXPECT_DOUBLE_EQ(s.rate_at(1), 10);
}

TEST(TraceTest, Subsampled) {
  Trace t("t", {0, 1, 2, 3, 4, 5, 6});
  Trace s = t.Subsampled(3).value();
  ASSERT_EQ(s.num_steps(), 3u);
  EXPECT_DOUBLE_EQ(s.rate_at(1), 3);
  EXPECT_FALSE(t.Subsampled(0).ok());
}

TEST(TraceTest, Prefix) {
  Trace t("t", {1, 2, 3});
  EXPECT_EQ(t.Prefix(2).value().num_steps(), 2u);
  EXPECT_FALSE(t.Prefix(0).ok());
  EXPECT_FALSE(t.Prefix(4).ok());
}

TEST(TraceTest, CsvRoundTrip) {
  Trace t("orig", {1.5, 0.0, 42.25});
  auto parsed = Trace::FromCsv("copy", t.ToCsv());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_steps(), 3u);
  EXPECT_DOUBLE_EQ(parsed->rate_at(0), 1.5);
  EXPECT_DOUBLE_EQ(parsed->rate_at(2), 42.25);
}

TEST(TraceTest, CsvRejectsGarbage) {
  EXPECT_FALSE(Trace::FromCsv("x", "step,rps\n0,abc\n").ok());
  EXPECT_FALSE(Trace::FromCsv("x", "step,rps\n0\n").ok());
  EXPECT_FALSE(Trace::FromCsv("x", "step,rps\n0,-5\n").ok());
  EXPECT_FALSE(Trace::FromCsv("x", "").ok());
}

TEST(PaperTracesTest, AllFourHaveExpectedShape) {
  for (int i = 1; i <= 4; ++i) {
    auto t = MakePaperTrace(i);
    ASSERT_TRUE(t.ok()) << i;
    EXPECT_EQ(t->num_steps(), kPaperTraceSteps);
    EXPECT_LE(t->max_rate(), 200.0);  // Figure 8 axis cap
    EXPECT_GT(t->max_rate(), 50.0);
  }
  EXPECT_FALSE(MakePaperTrace(0).ok());
  EXPECT_FALSE(MakePaperTrace(5).ok());
}

TEST(PaperTracesTest, Deterministic) {
  Trace a = MakeTrace2LongBurst(7);
  Trace b = MakeTrace2LongBurst(7);
  EXPECT_EQ(a.values(), b.values());
  Trace c = MakeTrace2LongBurst(8);
  EXPECT_NE(a.values(), c.values());
}

TEST(PaperTracesTest, Trace1IsSteady) {
  Trace t = MakeTrace1Steady();
  // Coefficient of variation stays small: no deep idle, no huge bursts.
  EXPECT_GT(t.mean_rate(), 80.0);
  EXPECT_LT(t.max_rate() / t.mean_rate(), 2.0);
}

TEST(PaperTracesTest, Trace2HasOneLongBurst) {
  Trace t = MakeTrace2LongBurst();
  // Mostly idle: mean well below the burst plateau.
  EXPECT_LT(t.mean_rate(), 60.0);
  // The burst spans hours: many steps above 80 rps.
  int high = static_cast<int>(std::count_if(
      t.values().begin(), t.values().end(),
      [](double v) { return v > 80.0; }));
  EXPECT_GT(high, 250);
  EXPECT_LT(high, 500);
}

TEST(PaperTracesTest, Trace3BurstShorterThanTrace2) {
  auto count_high = [](const Trace& t) {
    return std::count_if(t.values().begin(), t.values().end(),
                         [](double v) { return v > 80.0; });
  };
  EXPECT_LT(count_high(MakeTrace3ShortBurst()),
            count_high(MakeTrace2LongBurst()) / 2);
}

TEST(PaperTracesTest, Trace4HasManyBursts) {
  Trace t = MakeTrace4ManyBursts();
  // Count rising edges across 60 rps.
  int edges = 0;
  const auto& v = t.values();
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] <= 60.0 && v[i] > 60.0) ++edges;
  }
  EXPECT_GE(edges, 8);
}

TEST(MixTest, BuildersValidate) {
  EXPECT_TRUE(MakeTpccWorkload().Validate().ok());
  EXPECT_TRUE(MakeDs2Workload().Validate().ok());
  EXPECT_TRUE(MakeCpuioWorkload().Validate().ok());
}

TEST(MixTest, ValidateRejectsBadSpecs) {
  WorkloadSpec spec = MakeTpccWorkload();
  spec.classes.clear();
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeTpccWorkload();
  spec.classes[0].weight = 0.0;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeTpccWorkload();
  spec.classes[0].lock_probability = 1.5;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeTpccWorkload();
  spec.working_set_mb = spec.database_mb + 1;
  EXPECT_FALSE(spec.Validate().ok());

  spec = MakeTpccWorkload();
  spec.num_hot_rows = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(MixTest, MeanCpuMsWeighted) {
  WorkloadSpec spec;
  spec.name = "w";
  spec.working_set_mb = 1;
  spec.database_mb = 1;
  spec.num_hot_rows = 1;
  TransactionClass a;
  a.name = "a";
  a.weight = 1.0;
  a.cpu_ms_mean = 10.0;
  TransactionClass b;
  b.name = "b";
  b.weight = 3.0;
  b.cpu_ms_mean = 2.0;
  spec.classes = {a, b};
  EXPECT_DOUBLE_EQ(spec.MeanCpuMs(), (10.0 + 3 * 2.0) / 4.0);
}

TEST(MixTest, SampleRespectsClassWeights) {
  WorkloadSpec spec = MakeTpccWorkload();
  Rng rng(5);
  std::vector<int> counts(spec.classes.size(), 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int cls = -1;
    spec.Sample(&rng, &cls);
    ASSERT_GE(cls, 0);
    ++counts[static_cast<size_t>(cls)];
  }
  // new-order 45%, payment 43%.
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.45, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.43, 0.02);
}

TEST(MixTest, TpccIsLockHeavy) {
  WorkloadSpec spec = MakeTpccWorkload();
  Rng rng(5);
  int locked = 0;
  const int n = 10000;
  double hold_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    auto req = spec.Sample(&rng);
    if (req.lock_row >= 0) {
      ++locked;
      hold_sum += req.lock_hold_extra_ms;
      EXPECT_LT(req.lock_row, spec.num_hot_rows);
    }
  }
  EXPECT_GT(locked, n / 4);  // a third-ish of transactions lock
  EXPECT_GT(hold_sum / locked, 10.0);  // app-held locks
}

TEST(MixTest, CpuioIsEffectivelyLockFree) {
  WorkloadSpec spec = MakeCpuioWorkload();
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(spec.Sample(&rng).lock_row, 0);
  }
}

TEST(MixTest, CpuioKnobsShiftTheMix) {
  CpuioOptions io_only;
  io_only.cpu_weight = 0.01;
  io_only.io_weight = 0.97;
  io_only.log_weight = 0.01;
  io_only.mixed_weight = 0.01;
  WorkloadSpec spec = MakeCpuioWorkload(io_only);
  EXPECT_LT(spec.MeanCpuMs(), 30.0);
  EXPECT_GT(spec.MeanPages(), 100.0);
}

TEST(MixTest, SampleValuesWithinCaps) {
  WorkloadSpec spec = MakeCpuioWorkload();
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    auto req = spec.Sample(&rng);
    EXPECT_GE(req.cpu_ms, 0.05);
    EXPECT_LE(req.cpu_ms, 10.0 * 120.0 + 1);
    EXPECT_GE(req.page_accesses, 0);
    EXPECT_GE(req.log_kb, 0.0);
  }
}

TEST(GeneratorTest, HitsTargetRate) {
  engine::EventQueue events;
  auto spec = MakeCpuioWorkload();
  engine::EngineOptions eo = spec.MakeEngineOptions();
  container::Catalog catalog = container::Catalog::MakeLockStep();
  engine::DatabaseEngine engine(&events, eo, catalog.largest(), Rng(3));
  GeneratorOptions go;
  go.step_duration = Duration::Seconds(10);
  Trace trace("t", {50.0});
  RequestGenerator generator(&engine, spec, trace, go, Rng(4));
  generator.Start();
  events.RunUntil(generator.end_time());
  // Poisson arrivals at 50 rps over 10s: ~500 +- noise.
  EXPECT_NEAR(static_cast<double>(generator.requests_issued()), 500.0,
              70.0);
}

TEST(GeneratorTest, FollowsRateChanges) {
  engine::EventQueue events;
  auto spec = MakeCpuioWorkload();
  container::Catalog catalog = container::Catalog::MakeLockStep();
  engine::DatabaseEngine engine(&events, spec.MakeEngineOptions(),
                                catalog.largest(), Rng(3));
  GeneratorOptions go;
  go.step_duration = Duration::Seconds(10);
  Trace trace("t", {100.0, 0.0, 100.0});
  RequestGenerator generator(&engine, spec, trace, go, Rng(4));
  generator.Start();
  events.RunUntil(SimTime::Zero() + Duration::Seconds(10));
  uint64_t after_step1 = generator.requests_issued();
  events.RunUntil(SimTime::Zero() + Duration::Seconds(20));
  uint64_t after_step2 = generator.requests_issued();
  events.RunUntil(generator.end_time());
  uint64_t after_step3 = generator.requests_issued();
  EXPECT_NEAR(static_cast<double>(after_step1), 1000.0, 150.0);
  // Idle step produces (almost) nothing: allow the one arrival already
  // scheduled across the boundary.
  EXPECT_LE(after_step2 - after_step1, 2u);
  EXPECT_NEAR(static_cast<double>(after_step3 - after_step2), 1000.0,
              150.0);
}

TEST(GeneratorTest, StopsAtTraceEnd) {
  engine::EventQueue events;
  auto spec = MakeCpuioWorkload();
  container::Catalog catalog = container::Catalog::MakeLockStep();
  engine::DatabaseEngine engine(&events, spec.MakeEngineOptions(),
                                catalog.largest(), Rng(3));
  GeneratorOptions go;
  go.step_duration = Duration::Seconds(5);
  Trace trace("t", {20.0, 20.0});
  RequestGenerator generator(&engine, spec, trace, go, Rng(4));
  generator.Start();
  events.RunAll();
  EXPECT_DOUBLE_EQ(generator.end_time().ToSeconds(), 10.0);
  uint64_t total = generator.requests_issued();
  EXPECT_NEAR(static_cast<double>(total), 200.0, 50.0);
}

TEST(GeneratorTest, RateScaleMultiplies) {
  engine::EventQueue events;
  auto spec = MakeCpuioWorkload();
  container::Catalog catalog = container::Catalog::MakeLockStep();
  engine::DatabaseEngine engine(&events, spec.MakeEngineOptions(),
                                catalog.largest(), Rng(3));
  GeneratorOptions go;
  go.step_duration = Duration::Seconds(10);
  go.rate_scale = 0.1;
  Trace trace("t", {100.0});
  RequestGenerator generator(&engine, spec, trace, go, Rng(4));
  generator.Start();
  events.RunAll();
  EXPECT_NEAR(static_cast<double>(generator.requests_issued()), 100.0,
              35.0);
}

TEST(GeneratorTest, InFlightCapDropsExcess) {
  engine::EventQueue events;
  auto spec = MakeCpuioWorkload();
  container::Catalog catalog = container::Catalog::MakeLockStep();
  // Tiny container: requests pile up immediately.
  engine::DatabaseEngine engine(&events, spec.MakeEngineOptions(),
                                catalog.smallest(), Rng(3));
  GeneratorOptions go;
  go.step_duration = Duration::Seconds(10);
  go.max_in_flight = 10;
  Trace trace("t", {200.0});
  RequestGenerator generator(&engine, spec, trace, go, Rng(4));
  generator.Start();
  events.RunUntil(generator.end_time());
  EXPECT_GT(generator.requests_dropped(), 100u);
  EXPECT_LE(engine.requests_in_flight(), 10u);
}

}  // namespace
}  // namespace dbscale::workload
