// Observability layer: registry/shard semantics, trace capture, exporter
// round-trips, and end-to-end determinism of the instrumented closed loop.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/engine_metrics.h"
#include "src/fleet/fleet_sim.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/pipeline.h"
#include "src/obs/trace.h"
#include "src/scaler/autoscaler.h"
#include "src/scaler/explanation.h"
#include "src/sim/simulation.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::obs {
namespace {

TEST(MetricRegistryTest, RegistrationIsIdempotentByName) {
  MetricRegistry registry;
  const MetricId a = registry.Counter("dbscale_x_total", "x");
  const MetricId b = registry.Counter("dbscale_x_total", "x again");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_instruments(), 1u);
  const MetricId g = registry.Gauge("dbscale_g", "g");
  EXPECT_NE(g, a);
  EXPECT_EQ(registry.num_instruments(), 2u);
}

TEST(MetricShardTest, RecordsCountersGaugesHistograms) {
  MetricRegistry registry;
  const MetricId c = registry.Counter("c_total", "c");
  const MetricId g = registry.Gauge("g", "g");
  const MetricId h = registry.Histogram(
      "h_ms", "h", HistogramSpec::Linear(10.0, 10.0, 3));  // 10,20,30
  MetricShard shard;
  shard.Attach(&registry);

  shard.Add(c, 2.0);
  shard.Add(c, 3.0);
  EXPECT_DOUBLE_EQ(shard.counter(c), 5.0);

  EXPECT_TRUE(std::isnan(shard.gauge(g)));  // unset sentinel
  shard.Set(g, 7.0);
  shard.Set(g, 9.0);
  EXPECT_DOUBLE_EQ(shard.gauge(g), 9.0);

  shard.Observe(h, 5.0);    // bucket 0 (le 10)
  shard.Observe(h, 25.0);   // bucket 2 (le 30)
  shard.Observe(h, 100.0);  // overflow
  EXPECT_DOUBLE_EQ(shard.hist_bucket(h, 0), 1.0);
  EXPECT_DOUBLE_EQ(shard.hist_bucket(h, 1), 0.0);
  EXPECT_DOUBLE_EQ(shard.hist_bucket(h, 2), 1.0);
  EXPECT_DOUBLE_EQ(shard.hist_overflow(h), 1.0);
  EXPECT_DOUBLE_EQ(shard.hist_sum(h), 130.0);
  EXPECT_DOUBLE_EQ(shard.hist_count(h), 3.0);
}

TEST(MetricShardTest, MergeAddsCountersAndOverwritesSetGauges) {
  MetricRegistry registry;
  const MetricId c = registry.Counter("c_total", "c");
  const MetricId g = registry.Gauge("g", "g");
  MetricShard a, b;
  a.Attach(&registry);
  b.Attach(&registry);

  a.Add(c, 1.0);
  a.Set(g, 5.0);
  b.Add(c, 2.0);
  a.MergeFrom(b);  // b never Set g: a's gauge survives
  EXPECT_DOUBLE_EQ(a.counter(c), 3.0);
  EXPECT_DOUBLE_EQ(a.gauge(g), 5.0);

  b.Set(g, 11.0);
  a.MergeFrom(b);  // now b's gauge wins (merge order defines outcome)
  EXPECT_DOUBLE_EQ(a.counter(c), 5.0);
  EXPECT_DOUBLE_EQ(a.gauge(g), 11.0);
}

TEST(MetricShardTest, LateRegistrationReattachPreservesValues) {
  MetricRegistry registry;
  const MetricId c1 = registry.Counter("c1_total", "c1");
  MetricShard shard;
  shard.Attach(&registry);
  shard.Add(c1, 4.0);

  const MetricId c2 = registry.Counter("c2_total", "c2");
  shard.Attach(&registry);  // re-size for the late registration
  EXPECT_DOUBLE_EQ(shard.counter(c1), 4.0);
  shard.Add(c2, 1.0);
  EXPECT_DOUBLE_EQ(shard.counter(c2), 1.0);
}

TEST(TraceRecorderTest, BuildsOneTreePerInterval) {
  TraceRecorder recorder;
  recorder.BeginInterval(0, SimTime::Zero());
  const SpanId root = recorder.root();
  ASSERT_EQ(root, 0u);
  const SpanId child = recorder.StartSpan(
      "decide", SimTime::Zero() + Duration::Seconds(1), root);
  recorder.AddAttr(child, "target_rung", 4.0);
  recorder.AddAttrStr(child, "code", "scale_up_demand");
  recorder.EndSpan(child, SimTime::Zero() + Duration::Seconds(2));
  recorder.EndInterval(SimTime::Zero() + Duration::Seconds(20));

  ASSERT_EQ(recorder.num_intervals(), 1u);
  const IntervalTrace& tree = recorder.interval(0);
  ASSERT_EQ(tree.spans.size(), 2u);
  EXPECT_EQ(tree.spans[0].parent, kNoSpan);
  EXPECT_STREQ(tree.spans[0].name, "interval");
  EXPECT_EQ(tree.spans[1].parent, 0u);
  EXPECT_STREQ(tree.spans[1].name, "decide");
  ASSERT_EQ(tree.spans[1].num_attrs, 2u);
  EXPECT_DOUBLE_EQ(tree.spans[1].attrs[0].num, 4.0);
  EXPECT_STREQ(tree.spans[1].attrs[1].str, "scale_up_demand");
  EXPECT_EQ(recorder.root(), kNoSpan);  // sealed
}

TEST(TraceRecorderTest, OverflowDropsDeterministically) {
  TraceRecorder::Options options;
  options.max_intervals = 2;
  options.max_spans_per_interval = 3;
  TraceRecorder recorder(options);
  recorder.BeginInterval(0, SimTime::Zero());
  for (int i = 0; i < 5; ++i) {
    // Only the drop accounting matters here, not the ids.
    // dbscale-lint: allow(discarded-status)
    (void)recorder.StartSpan("s", SimTime::Zero(), recorder.root());
  }
  recorder.EndInterval(SimTime::Zero());
  EXPECT_EQ(recorder.interval(0).spans.size(), 3u);
  EXPECT_EQ(recorder.interval(0).dropped_spans, 3u);
  EXPECT_EQ(recorder.dropped_spans(), 3u);

  // The ring keeps only the most recent max_intervals trees.
  for (int i = 1; i <= 2; ++i) {
    recorder.BeginInterval(i, SimTime::Zero());
    recorder.EndInterval(SimTime::Zero());
  }
  ASSERT_EQ(recorder.num_intervals(), 2u);
  EXPECT_EQ(recorder.interval(0).interval_index, 1);
  EXPECT_EQ(recorder.interval(1).interval_index, 2);
}

// -- Exporters -----------------------------------------------------------

/// Pulls the raw text of `"key":<value>` out of one JSONL line.
std::string JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  size_t end = at + needle.size();
  int depth = 0;
  bool in_string = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (in_string) {
      if (c == '\\') ++end;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
  }
  return line.substr(at + needle.size(), end - (at + needle.size()));
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

TEST(ExportTest, JsonlSpansParseBackToTheRecordedTree) {
  TraceRecorder recorder;
  recorder.BeginInterval(7, SimTime::Zero());
  const SpanId child = recorder.StartSpan(
      "decide", SimTime::Zero() + Duration::Millis(1500), recorder.root());
  recorder.AddAttrStr(child, "code", "hold_demand_steady");
  recorder.AddAttr(child, "target_rung", 3.0);
  recorder.EndSpan(child, SimTime::Zero() + Duration::Millis(1750));
  recorder.EndInterval(SimTime::Zero() + Duration::Seconds(20));

  std::string out;
  AppendSpansJsonl(recorder, out);
  const std::vector<std::string> lines = SplitLines(out);
  ASSERT_EQ(lines.size(), 2u);  // one line per span

  // Root line.
  EXPECT_EQ(JsonField(lines[0], "interval"), "7");
  EXPECT_EQ(JsonField(lines[0], "span"), "0");
  EXPECT_EQ(JsonField(lines[0], "parent"), "null");
  EXPECT_EQ(JsonField(lines[0], "name"), "\"interval\"");
  EXPECT_EQ(JsonField(lines[0], "start_us"), "0");
  EXPECT_EQ(JsonField(lines[0], "end_us"), "20000000");

  // Child line, attributes included.
  EXPECT_EQ(JsonField(lines[1], "span"), "1");
  EXPECT_EQ(JsonField(lines[1], "parent"), "0");
  EXPECT_EQ(JsonField(lines[1], "name"), "\"decide\"");
  EXPECT_EQ(JsonField(lines[1], "start_us"), "1500000");
  EXPECT_EQ(JsonField(lines[1], "end_us"), "1750000");
  const std::string attrs = JsonField(lines[1], "attrs");
  EXPECT_EQ(JsonField(attrs, "code"), "\"hold_demand_steady\"");
  EXPECT_EQ(JsonField(attrs, "target_rung"), "3");
}

TEST(ExportTest, PrometheusGolden) {
  MetricRegistry registry;
  const MetricId c = registry.Counter("dbscale_demo_total", "A counter.");
  const MetricId g = registry.Gauge("dbscale_demo_gauge", "A gauge.");
  const MetricId h = registry.Histogram(
      "dbscale_demo_ms", "A histogram.",
      HistogramSpec::Linear(10.0, 10.0, 2));
  MetricShard shard;
  shard.Attach(&registry);
  shard.Add(c, 3.0);
  shard.Set(g, 2.5);
  shard.Observe(h, 5.0);
  shard.Observe(h, 15.0);
  shard.Observe(h, 99.0);

  std::string out;
  AppendPrometheus(registry, shard, out);
  EXPECT_EQ(out,
            "# HELP dbscale_demo_total A counter.\n"
            "# TYPE dbscale_demo_total counter\n"
            "dbscale_demo_total 3\n"
            "# HELP dbscale_demo_gauge A gauge.\n"
            "# TYPE dbscale_demo_gauge gauge\n"
            "dbscale_demo_gauge 2.5\n"
            "# HELP dbscale_demo_ms A histogram.\n"
            "# TYPE dbscale_demo_ms histogram\n"
            "dbscale_demo_ms_bucket{le=\"10\"} 1\n"
            "dbscale_demo_ms_bucket{le=\"20\"} 2\n"
            "dbscale_demo_ms_bucket{le=\"+Inf\"} 3\n"
            "dbscale_demo_ms_sum 119\n"
            "dbscale_demo_ms_count 3\n");
}

TEST(ExportTest, PrometheusSharesOneHeaderPerLabeledFamily) {
  MetricRegistry registry;
  // Registration for the export side effect only; ids are unused.
  // dbscale-lint: allow(discarded-status)
  (void)registry.Counter("dbscale_jobs_total{queue=\"cpu\"}", "Jobs.");
  // dbscale-lint: allow(discarded-status)
  (void)registry.Counter("dbscale_jobs_total{queue=\"disk\"}", "Jobs.");
  MetricShard shard;
  shard.Attach(&registry);
  std::string out;
  AppendPrometheus(registry, shard, out);
  EXPECT_EQ(out,
            "# HELP dbscale_jobs_total Jobs.\n"
            "# TYPE dbscale_jobs_total counter\n"
            "dbscale_jobs_total{queue=\"cpu\"} 0\n"
            "dbscale_jobs_total{queue=\"disk\"} 0\n");
}

TEST(ExportTest, CsvExpandsHistogramsAndQuotesNames) {
  MetricRegistry registry;
  const MetricId c =
      registry.Counter("dbscale_x_total{label=\"a,b\"}", "x");
  const MetricId h = registry.Histogram(
      "dbscale_h_ms", "h", HistogramSpec::Linear(1.0, 1.0, 2));
  MetricShard shard;
  shard.Attach(&registry);
  shard.Add(c, 1.0);
  shard.Observe(h, 0.5);

  std::string out;
  AppendMetricsCsv(registry, shard, out);
  const std::vector<std::string> lines = SplitLines(out);
  // header + counter + 2 cumulative buckets + Inf + sum + count
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "metric,kind,le,value");
  // Label values with commas are RFC 4180-quoted (embedded quotes doubled).
  EXPECT_EQ(lines[1],
            "\"dbscale_x_total{label=\"\"a,b\"\"}\",counter,,1");
  EXPECT_EQ(lines[2], "dbscale_h_ms,histogram,1,1");
  EXPECT_EQ(lines[3], "dbscale_h_ms,histogram,2,1");
  EXPECT_EQ(lines[4], "dbscale_h_ms,histogram,+Inf,1");
  EXPECT_EQ(lines[5], "dbscale_h_ms,histogram,sum,0.5");
  EXPECT_EQ(lines[6], "dbscale_h_ms,histogram,count,1");
}

// -- End-to-end: the instrumented closed loop ----------------------------

sim::SimulationOptions SmallObservedOptions() {
  sim::SimulationOptions options;
  options.workload = workload::MakeCpuioWorkload();
  workload::Trace full = workload::MakeTrace2LongBurst();
  std::vector<double> rps(full.values().begin() + 400,
                          full.values().begin() + 440);
  options.trace = workload::Trace("trace2-slice", rps);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 17;
  return options;
}

std::unique_ptr<scaler::AutoScaler> MakeAuto(
    const container::Catalog& catalog) {
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 200.0};
  return scaler::AutoScaler::Create(catalog, knobs).value();
}

TEST(ObservedSimulationTest, CapturesSpansAndPipelineMetrics) {
  Observability ob;
  sim::SimulationOptions options = SmallObservedOptions();
  options.obs = &ob;
  auto policy = MakeAuto(options.catalog);
  auto run = sim::Simulation(options).Run(policy.get());
  ASSERT_TRUE(run.ok());
  const size_t steps = options.trace.num_steps();

  // One span tree per billing interval, each led by the root.
  ASSERT_EQ(ob.trace().num_intervals(), steps);
  EXPECT_EQ(ob.trace().total_intervals(), steps);
  EXPECT_EQ(ob.trace().dropped_spans(), 0u);
  bool saw_compute = false, saw_decide = false;
  for (const Span& s : ob.trace().interval(0).spans) {
    if (std::string(s.name) == "telemetry.compute") saw_compute = true;
    if (std::string(s.name) == "decide") saw_decide = true;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_decide);

  // Pipeline counters reconcile with the run result.
  const PipelineMetrics& pm = ob.pipeline();
  const MetricShard& shard = ob.primary();
  EXPECT_DOUBLE_EQ(shard.counter(pm.sim_intervals_total),
                   static_cast<double>(steps));
  EXPECT_DOUBLE_EQ(shard.counter(pm.sim_cost_total), run->total_cost);
  EXPECT_DOUBLE_EQ(shard.counter(pm.telemetry_computes_total),
                   static_cast<double>(steps));
  EXPECT_DOUBLE_EQ(
      shard.counter(pm.sim_resizes_total),
      static_cast<double>(run->container_changes));

  // Engine counters reconcile with engine-lifetime accounting.
  const engine::EngineMetrics em =
      engine::EngineMetrics::Register(&ob.registry());  // idempotent
  EXPECT_DOUBLE_EQ(shard.counter(em.requests_completed_total),
                   static_cast<double>(run->total_completed));
  EXPECT_GT(shard.counter(em.buffer_pool_hits_total), 0.0);
  EXPECT_GT(shard.counter(em.cpu_jobs_total), 0.0);

  // Every decision carries a non-default code, and the decision counters
  // sum to exactly one decision per interval.
  const MetricId decision_base =
      scaler::RegisterDecisionCounters(&ob.registry());  // idempotent
  double decisions = 0.0;
  for (size_t i = 0; i < scaler::kNumExplanationCodes; ++i) {
    decisions +=
        shard.counter(decision_base + static_cast<MetricId>(i));
  }
  EXPECT_DOUBLE_EQ(decisions, static_cast<double>(steps));
  EXPECT_DOUBLE_EQ(
      shard.counter(decision_base), 0.0);  // kUnset never recorded
  for (const sim::IntervalRecord& r : run->intervals) {
    EXPECT_NE(r.decision_code, scaler::ExplanationCode::kUnset);
    EXPECT_FALSE(r.decision_explanation.empty());
  }
}

TEST(ObservedSimulationTest, DigestsAreBitIdenticalAcrossRuns) {
  uint64_t metrics_digest[2] = {0, 1};
  uint64_t trace_digest[2] = {0, 1};
  for (int i = 0; i < 2; ++i) {
    Observability ob;
    sim::SimulationOptions options = SmallObservedOptions();
    options.obs = &ob;
    auto policy = MakeAuto(options.catalog);
    ASSERT_TRUE(sim::Simulation(options).Run(policy.get()).ok());
    metrics_digest[i] = MetricsDigest(ob.registry(), ob.primary());
    trace_digest[i] = TraceDigest(ob.trace());
  }
  EXPECT_EQ(metrics_digest[0], metrics_digest[1]);
  EXPECT_EQ(trace_digest[0], trace_digest[1]);
}

TEST(ObservedSimulationTest, ObservingDoesNotPerturbTheRun) {
  sim::SimulationOptions options = SmallObservedOptions();
  auto p1 = MakeAuto(options.catalog);
  auto plain = sim::Simulation(options).Run(p1.get());
  ASSERT_TRUE(plain.ok());

  Observability ob;
  options.obs = &ob;
  auto p2 = MakeAuto(options.catalog);
  auto observed = sim::Simulation(options).Run(p2.get());
  ASSERT_TRUE(observed.ok());

  EXPECT_EQ(plain->total_completed, observed->total_completed);
  EXPECT_DOUBLE_EQ(plain->total_cost, observed->total_cost);
  EXPECT_DOUBLE_EQ(plain->latency_p95_ms, observed->latency_p95_ms);
  EXPECT_EQ(plain->container_changes, observed->container_changes);
}

TEST(ObservedFleetTest, MetricsDigestIdenticalAtAnyThreadCount) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = 60;
  options.num_intervals = 288;  // one day
  options.seed = 11;

  uint64_t digests[2] = {0, 1};
  for (int i = 0; i < 2; ++i) {
    Observability ob;
    options.num_threads = i == 0 ? 1 : 4;
    options.obs = &ob;
    fleet::FleetSimulator sim(catalog, options);
    auto fleet = sim.Run();
    ASSERT_TRUE(fleet.ok());
    const MetricShard& shard = ob.primary();
    EXPECT_DOUBLE_EQ(shard.counter(ob.pipeline().fleet_tenants_total),
                     60.0);
    EXPECT_DOUBLE_EQ(
        shard.counter(ob.pipeline().fleet_tenant_intervals_total),
        60.0 * 288.0);
    digests[i] = MetricsDigest(ob.registry(), ob.primary());
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace dbscale::obs
