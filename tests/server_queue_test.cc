#include "src/engine/server_queue.h"

#include <gtest/gtest.h>

namespace dbscale::engine {
namespace {

TEST(ServerQueueTest, SingleJobServiceTime) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 100.0);  // 100 work units / sec
  Duration wait, service;
  bool done = false;
  q.Submit(50.0, [&](Duration w, Duration s) {
    wait = w;
    service = s;
    done = true;
  });
  events.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(wait, Duration::Zero());
  EXPECT_DOUBLE_EQ(service.ToSeconds(), 0.5);
}

TEST(ServerQueueTest, FifoQueueingDelay) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 1.0);  // 1 unit/sec
  std::vector<double> waits;
  for (int i = 0; i < 3; ++i) {
    q.Submit(1.0, [&](Duration w, Duration) {
      waits.push_back(w.ToSeconds());
    });
  }
  events.RunAll();
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_DOUBLE_EQ(waits[0], 0.0);
  EXPECT_DOUBLE_EQ(waits[1], 1.0);
  EXPECT_DOUBLE_EQ(waits[2], 2.0);
}

TEST(ServerQueueTest, MultiServerParallelism) {
  EventQueue events;
  ServerQueue q(&events, "cpu", 2, 1.0);
  std::vector<double> completion_times;
  for (int i = 0; i < 4; ++i) {
    q.Submit(1.0, [&](Duration, Duration) {
      completion_times.push_back(events.Now().ToSeconds());
    });
  }
  events.RunAll();
  ASSERT_EQ(completion_times.size(), 4u);
  // Two at t=1 (parallel), two at t=2.
  EXPECT_DOUBLE_EQ(completion_times[0], 1.0);
  EXPECT_DOUBLE_EQ(completion_times[1], 1.0);
  EXPECT_DOUBLE_EQ(completion_times[2], 2.0);
  EXPECT_DOUBLE_EQ(completion_times[3], 2.0);
}

TEST(ServerQueueTest, SubCoreSpeedStretchesService) {
  // A 0.5-core container: 10ms of work takes 20ms.
  EventQueue events;
  ServerQueue q(&events, "cpu", 1, 0.5);
  Duration service;
  q.Submit(0.010, [&](Duration, Duration s) { service = s; });
  events.RunAll();
  EXPECT_DOUBLE_EQ(service.ToMillis(), 20.0);
}

TEST(ServerQueueTest, CapacityIncreaseDrainsQueueFaster) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 1.0);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    q.Submit(1.0, [&](Duration, Duration) { ++completed; });
  }
  events.RunUntil(SimTime::Zero() + Duration::Seconds(2));
  EXPECT_EQ(completed, 2);
  q.SetCapacity(1, 10.0);  // 10x faster for queued jobs
  // The in-service job finishes at t=3 at the old speed; the remaining 7
  // queued jobs then take 0.1s each.
  events.RunUntil(SimTime::Zero() + Duration::Seconds(3.8));
  EXPECT_EQ(completed, 10);
}

TEST(ServerQueueTest, CapacityDecreaseAffectsOnlyNewDispatches) {
  EventQueue events;
  ServerQueue q(&events, "cpu", 2, 1.0);
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    q.Submit(1.0, [&](Duration, Duration) {
      times.push_back(events.Now().ToSeconds());
    });
  }
  // Two jobs are in service; shrink to one server.
  q.SetCapacity(1, 1.0);
  events.RunAll();
  ASSERT_EQ(times.size(), 3u);
  // In-service jobs finish at t=1 unaffected; the queued one runs after.
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
}

TEST(ServerQueueTest, UtilizationAccounting) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 100.0);
  q.Submit(50.0, [](Duration, Duration) {});
  events.RunUntil(SimTime::Zero() + Duration::Seconds(1));
  auto usage = q.ConsumeUsage();
  EXPECT_DOUBLE_EQ(usage.work_done, 50.0);
  EXPECT_DOUBLE_EQ(usage.capacity, 100.0);
  EXPECT_DOUBLE_EQ(usage.utilization_pct(), 50.0);
  // Consumed: next window starts clean.
  events.RunUntil(SimTime::Zero() + Duration::Seconds(2));
  auto usage2 = q.ConsumeUsage();
  EXPECT_DOUBLE_EQ(usage2.work_done, 0.0);
  EXPECT_DOUBLE_EQ(usage2.capacity, 100.0);
}

TEST(ServerQueueTest, UtilizationWithCapacityChangeMidWindow) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 100.0);
  events.RunUntil(SimTime::Zero() + Duration::Seconds(1));
  q.SetCapacity(1, 300.0);
  events.RunUntil(SimTime::Zero() + Duration::Seconds(2));
  auto usage = q.ConsumeUsage();
  // 1s at 100/s plus 1s at 300/s.
  EXPECT_DOUBLE_EQ(usage.capacity, 400.0);
}

TEST(ServerQueueTest, SaturatedUtilizationIs100) {
  EventQueue events;
  ServerQueue q(&events, "disk", 1, 10.0);
  for (int i = 0; i < 100; ++i) q.Submit(1.0, [](Duration, Duration) {});
  events.RunUntil(SimTime::Zero() + Duration::Seconds(5));
  auto usage = q.ConsumeUsage();
  EXPECT_NEAR(usage.utilization_pct(), 100.0, 2.5);
  EXPECT_GT(q.queue_length(), 0u);
}

TEST(ServerQueueTest, JobsCompletedCounter) {
  EventQueue events;
  ServerQueue q(&events, "log", 1, 1000.0);
  for (int i = 0; i < 7; ++i) q.Submit(1.0, [](Duration, Duration) {});
  events.RunAll();
  EXPECT_EQ(q.jobs_completed(), 7u);
  EXPECT_EQ(q.busy_servers(), 0);
}

}  // namespace
}  // namespace dbscale::engine
