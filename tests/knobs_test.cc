#include "src/scaler/knobs.h"

#include <gtest/gtest.h>

#include "src/container/catalog.h"
#include "src/scaler/policy.h"

namespace dbscale::scaler {
namespace {

TEST(KnobsTest, DefaultsAreValid) {
  TenantKnobs knobs;
  EXPECT_TRUE(knobs.Validate().ok());
  EXPECT_FALSE(knobs.budget.has_value());
  EXPECT_FALSE(knobs.latency_goal.has_value());
  EXPECT_EQ(knobs.sensitivity, Sensitivity::kMedium);
}

TEST(KnobsTest, ValidateRejectsBadValues) {
  TenantKnobs knobs;
  knobs.budget = BudgetKnob{-1.0, 10};
  EXPECT_FALSE(knobs.Validate().ok());
  knobs.budget = BudgetKnob{100.0, 0};
  EXPECT_FALSE(knobs.Validate().ok());
  knobs.budget.reset();
  knobs.latency_goal =
      LatencyGoal{telemetry::LatencyAggregate::kP95, 0.0};
  EXPECT_FALSE(knobs.Validate().ok());
}

TEST(KnobsTest, ValidCombination) {
  TenantKnobs knobs;
  knobs.budget = BudgetKnob{5000.0, 720};
  knobs.latency_goal =
      LatencyGoal{telemetry::LatencyAggregate::kAverage, 250.0};
  knobs.sensitivity = Sensitivity::kHigh;
  EXPECT_TRUE(knobs.Validate().ok());
  std::string s = knobs.ToString();
  EXPECT_NE(s.find("budget=5000"), std::string::npos);
  EXPECT_NE(s.find("average"), std::string::npos);
  EXPECT_NE(s.find("HIGH"), std::string::npos);
}

TEST(KnobsTest, SensitivityNames) {
  EXPECT_STREQ(SensitivityToString(Sensitivity::kLow), "LOW");
  EXPECT_STREQ(SensitivityToString(Sensitivity::kMedium), "MEDIUM");
  EXPECT_STREQ(SensitivityToString(Sensitivity::kHigh), "HIGH");
}

TEST(PolicyDecisionTest, ChangedComparesIds) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  ScalingDecision d;
  d.target = catalog.rung(3);
  EXPECT_FALSE(d.Changed(catalog.rung(3)));
  EXPECT_TRUE(d.Changed(catalog.rung(4)));
}

}  // namespace
}  // namespace dbscale::scaler
