#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace dbscale {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 501u);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrSplitTest, NoDelimiter) {
  auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, TrailingDelimiter) {
  auto parts = StrSplit("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrTrimTest, TrimsWhitespace) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\r\n a b \n"), "a b");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -7 ", &v));
  EXPECT_DOUBLE_EQ(v, -7.0);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
}

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("with space"), "with space");
  EXPECT_EQ(CsvEscape("semi;colon"), "semi;colon");
}

TEST(CsvEscapeTest, QuotesDelimitersAndNewlines) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscapeTest, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
}

TEST(CsvEscapeTest, AppendVariantAppends) {
  std::string out = "row,";
  CsvEscapeTo("a,b", out);
  EXPECT_EQ(out, "row,\"a,b\"");
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("--3", &v));
}

}  // namespace
}  // namespace dbscale
