#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace dbscale {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123, 7);
  Rng b(123, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint32(), b.NextUint32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(1, 0);
  Rng b(1, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint32() == b.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    ss += v * v;
  }
  double mean = sum / n;
  double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 10001; ++i) values.push_back(rng.LogNormal(1.0, 0.7));
  std::nth_element(values.begin(), values.begin() + 5000, values.end());
  // Median of lognormal(mu, sigma) = exp(mu).
  EXPECT_NEAR(values[5000], std::exp(1.0), 0.15);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Poisson(200.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(42);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Zipf(100, 0.8);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ZipfZeroThetaIsUniform) {
  Rng rng(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 0.0))];
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(42);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.9) < 10) ++low;
  }
  // With strong skew the lowest decile gets far more than 10% of the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint32() == child.NextUint32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ca.NextUint32(), cb.NextUint32());
  }
}

}  // namespace
}  // namespace dbscale
