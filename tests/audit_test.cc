#include "src/scaler/audit.h"

#include <gtest/gtest.h>

#include "src/scaler/autoscaler.h"

namespace dbscale::scaler {
namespace {

using container::Catalog;

PolicyInput MakeInput(const Catalog& catalog, int rung, int interval,
                      double latency) {
  PolicyInput input;
  input.now = SimTime::Zero() + Duration::Seconds(20.0 * (interval + 1));
  input.signals.valid = true;
  input.signals.latency_ms = latency;
  input.current = catalog.rung(rung);
  input.interval_index = interval;
  return input;
}

TEST(AuditLogTest, RecordsDecisions) {
  Catalog catalog = Catalog::MakeLockStep();
  AuditLog log;
  CategorizedSignals cats;
  cats.valid = true;
  DemandEstimate estimate;
  ScalingDecision decision;
  decision.target = catalog.rung(4);
  decision.explanation = Explanation(ExplanationCode::kScaleUpDemand,
                                     "Scale-up: cpu bottleneck");

  log.Record(MakeInput(catalog, 3, 7, 150.0), cats, estimate, decision);
  ASSERT_EQ(log.size(), 1u);
  const AuditRecord& r = log.back();
  EXPECT_EQ(r.interval_index, 7);
  EXPECT_EQ(r.from_container, "S4");
  EXPECT_EQ(r.to_container, "S5");
  EXPECT_TRUE(r.resized);
  EXPECT_DOUBLE_EQ(r.latency_ms, 150.0);
  EXPECT_NE(r.ToString().find("Scale-up"), std::string::npos);
  EXPECT_NE(r.ToString().find("->"), std::string::npos);
}

TEST(AuditLogTest, HoldIsNotAResize) {
  Catalog catalog = Catalog::MakeLockStep();
  AuditLog log;
  ScalingDecision hold;
  hold.target = catalog.rung(3);
  hold.explanation = Explanation(ExplanationCode::kHoldDemandSteady);
  log.Record(MakeInput(catalog, 3, 0, 100.0), CategorizedSignals{},
             DemandEstimate{}, hold);
  EXPECT_FALSE(log.back().resized);
  EXPECT_TRUE(log.Resizes().empty());
  EXPECT_NE(log.back().ToString().find("=="), std::string::npos);
}

TEST(AuditLogTest, BoundedRetention) {
  Catalog catalog = Catalog::MakeLockStep();
  AuditLog log(4);
  ScalingDecision hold;
  hold.target = catalog.rung(3);
  for (int i = 0; i < 10; ++i) {
    log.Record(MakeInput(catalog, 3, i, 100.0), CategorizedSignals{},
               DemandEstimate{}, hold);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.at(0).interval_index, 6);
}

TEST(AuditLogTest, CsvEscapesDelimiters) {
  Catalog catalog = Catalog::MakeLockStep();
  AuditLog log;
  ScalingDecision d;
  d.target = catalog.rung(3);
  d.explanation = Explanation(ExplanationCode::kNote, "Hold: a, b\nc");
  log.Record(MakeInput(catalog, 3, 0, 100.0), CategorizedSignals{},
             DemandEstimate{}, d);
  std::string csv = log.ToCsv();
  // The field carrying delimiters is RFC 4180-quoted, not mangled.
  EXPECT_NE(csv.find("\"Hold: a, b\nc\""), std::string::npos);
  // The stable code column precedes the rendered text.
  EXPECT_NE(csv.find(",code,explanation"), std::string::npos);
  EXPECT_NE(csv.find(",note,"), std::string::npos);
}

TEST(AuditLogTest, ToStringTailsLastN) {
  Catalog catalog = Catalog::MakeLockStep();
  AuditLog log;
  ScalingDecision hold;
  hold.target = catalog.rung(3);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeInput(catalog, 3, i, 100.0), CategorizedSignals{},
               DemandEstimate{}, hold);
  }
  std::string tail = log.ToString(2);
  EXPECT_EQ(std::count(tail.begin(), tail.end(), '\n'), 2);
  EXPECT_NE(tail.find("[   3]"), std::string::npos);
  EXPECT_NE(tail.find("[   4]"), std::string::npos);
}

TEST(AuditLogTest, AutoScalerPopulatesAudit) {
  Catalog catalog = Catalog::MakeLockStep();
  TenantKnobs knobs;
  knobs.latency_goal =
      LatencyGoal{telemetry::LatencyAggregate::kP95, 200.0};
  auto scaler = AutoScaler::Create(catalog, knobs).value();
  for (int i = 0; i < 3; ++i) {
    // Decisions only feed the audit log here; outputs are irrelevant.
    (void)scaler->Decide(  // dbscale-lint: allow(discarded-status)
        MakeInput(catalog, 3, i, 100.0));
  }
  EXPECT_EQ(scaler->audit().size(), 3u);
  EXPECT_FALSE(scaler->audit().back().explanation.empty());
  EXPECT_FALSE(scaler->audit().back().categories.empty());
}

}  // namespace
}  // namespace dbscale::scaler
