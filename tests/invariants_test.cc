// Cross-module property tests: conservation and sanity invariants that must
// hold for any workload, container, and policy combination.

#include <gtest/gtest.h>

#include "src/baselines/static_policy.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/experiment.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale {
namespace {

using Params = std::tuple<int /*workload*/, int /*rung*/, int /*seed*/>;

workload::WorkloadSpec PickWorkload(int index) {
  switch (index) {
    case 0:
      return workload::MakeTpccWorkload();
    case 1:
      return workload::MakeDs2Workload();
    default:
      return workload::MakeCpuioWorkload();
  }
}

/// Sweep: any workload on any container at any seed satisfies the engine's
/// accounting invariants.
class EngineInvariantSweep : public ::testing::TestWithParam<Params> {};

TEST_P(EngineInvariantSweep, ConservationHolds) {
  auto [workload_index, rung, seed] = GetParam();

  sim::SimulationOptions options;
  options.workload = PickWorkload(workload_index);
  options.trace =
      workload::Trace("probe", std::vector<double>(20, 40.0));
  options.interval_duration = Duration::Seconds(20);
  options.seed = static_cast<uint64_t>(seed);
  options.keep_samples = true;

  baselines::StaticPolicy policy("fixed", options.catalog.rung(rung));
  auto run = sim::RunWithPolicy(options, &policy, rung);
  ASSERT_TRUE(run.ok());

  // Requests complete and none are double-counted.
  EXPECT_GT(run->total_completed, 100u);
  uint64_t interval_sum = 0;
  for (const auto& r : run->intervals) {
    interval_sum += static_cast<uint64_t>(r.completed);
    EXPECT_GE(r.latency_p95_ms, r.latency_avg_ms * 0.5);
    EXPECT_GE(r.latency_avg_ms, 0.0);
    EXPECT_EQ(r.cost, options.catalog.rung(rung).price_per_interval);
  }
  EXPECT_EQ(interval_sum, run->total_completed);

  // Telemetry sample invariants.
  for (const auto& s : run->samples) {
    for (int r = 0; r < container::kNumResources; ++r) {
      EXPECT_GE(s.utilization_pct[static_cast<size_t>(r)], 0.0);
      EXPECT_LE(s.utilization_pct[static_cast<size_t>(r)], 100.0);
    }
    for (int w = 0; w < telemetry::kNumWaitClasses; ++w) {
      EXPECT_GE(s.wait_ms[static_cast<size_t>(w)], 0.0);
    }
    EXPECT_GE(s.memory_used_mb, 0.0);
    EXPECT_LE(s.memory_used_mb,
              options.catalog.rung(rung).resources.memory_mb * 1.01);
    EXPECT_GE(s.requests_completed, 0);
    EXPECT_GE(s.physical_reads, 0);
    EXPECT_GT(s.period_end, s.period_start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariantSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 4, 9),
                       ::testing::Values(3, 77)));

/// Auto never violates its own invariants on any paper trace.
class AutoInvariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(AutoInvariantSweep, DecisionsStayWithinCatalogAndBudget) {
  const int trace_index = GetParam();
  sim::SimulationOptions options;
  options.workload = workload::MakeCpuioWorkload();
  options.trace =
      workload::MakePaperTrace(trace_index).value().Subsampled(16).value();
  options.interval_duration = Duration::Seconds(20);
  options.seed = 13;

  const int n = static_cast<int>(options.trace.num_steps());
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 400.0};
  knobs.budget = scaler::BudgetKnob{90.0 * n, n};
  auto scaler = scaler::AutoScaler::Create(options.catalog, knobs).value();
  auto run = sim::RunWithPolicy(options, scaler.get(), 3);
  ASSERT_TRUE(run.ok());

  // Budget is a hard constraint on every prefix, not just the total.
  double prefix_cost = 0.0;
  for (size_t i = 0; i < run->intervals.size(); ++i) {
    const auto& r = run->intervals[i];
    prefix_cost += r.cost;
    EXPECT_GE(r.container.base_rung, 0);
    EXPECT_LT(r.container.base_rung, options.catalog.num_rungs());
    EXPECT_FALSE(r.decision_explanation.empty());
  }
  EXPECT_LE(run->total_cost, knobs.budget->total_budget + 1e-6);
  // The audit log saw every decision.
  EXPECT_EQ(scaler->audit().size(), run->intervals.size());
  // Container changes match resize records.
  EXPECT_EQ(static_cast<int>(scaler->audit().Resizes().size()),
            run->container_changes);
}

INSTANTIATE_TEST_SUITE_P(Traces, AutoInvariantSweep,
                         ::testing::Values(1, 2, 3, 4));

TEST(PerDimensionIntegrationTest, AutoUsesVariantsForSkewedDemand) {
  // An I/O-skewed mix on the per-dimension catalog: Auto should land on a
  // single-dimension variant at some point, and never overspend vs the
  // lock-step equivalent.
  workload::CpuioOptions skew;
  skew.cpu_weight = 0.05;
  skew.io_weight = 0.85;
  skew.log_weight = 0.05;
  skew.mixed_weight = 0.05;

  sim::SimulationOptions options;
  options.catalog = container::Catalog::MakePerDimension(2);
  options.workload = workload::MakeCpuioWorkload(skew);
  options.trace = workload::Trace(
      "ramp", {10, 10, 10, 40, 80, 120, 120, 120, 120, 120, 120, 120,
               120, 120, 40, 10, 10, 10, 10, 10});
  options.interval_duration = Duration::Seconds(20);
  options.seed = 3;

  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 600.0};
  auto scaler = scaler::AutoScaler::Create(options.catalog, knobs).value();
  auto run = sim::RunWithPolicy(options, scaler.get(), 3);
  ASSERT_TRUE(run.ok());
  bool used_variant = false;
  for (const auto& r : run->intervals) {
    if (r.container.name.find('-') != std::string::npos) {
      used_variant = true;
    }
  }
  EXPECT_TRUE(used_variant);
}

}  // namespace
}  // namespace dbscale
