#include "src/stats/robust.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace dbscale::stats {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
}

TEST(StdDevTest, KnownValue) {
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}).value(), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}).value(), 7.0);
}

TEST(MedianTest, EmptyIsError) {
  EXPECT_TRUE(Median({}).status().IsInvalidArgument());
}

TEST(MedianTest, RobustToOutliers) {
  // The defining property (breakdown point): one arbitrarily large value
  // cannot move the median, while it destroys the mean.
  std::vector<double> clean = {1, 2, 3, 4, 5};
  std::vector<double> dirty = {1, 2, 3, 4, 1e12};
  EXPECT_DOUBLE_EQ(Median(clean).value(), 3.0);
  EXPECT_DOUBLE_EQ(Median(dirty).value(), 3.0);
  EXPECT_GT(Mean(dirty), 1e11);
}

TEST(PercentileTest, Interpolation) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0).value(), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100).value(), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50).value(), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25).value(), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5).value(), 15.0);
}

TEST(PercentileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({50, 10, 40, 20, 30}, 50).value(), 30.0);
}

TEST(PercentileTest, Errors) {
  EXPECT_TRUE(Percentile({}, 50).status().IsInvalidArgument());
  EXPECT_TRUE(Percentile({1.0}, -1).status().IsOutOfRange());
  EXPECT_TRUE(Percentile({1.0}, 101).status().IsOutOfRange());
}

TEST(PercentileSortedTest, SingleElement) {
  std::vector<double> v = {42};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 95), 42.0);
}

TEST(MadTest, KnownValue) {
  // Values 1..9: median 5, |dev| = {4,3,2,1,0,1,2,3,4}, median dev = 2.
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NEAR(Mad(v).value(), 2.0 * 1.4826, 1e-9);
}

TEST(MadTest, RobustToOutliers) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 1e9};
  EXPECT_LT(Mad(v).value(), 10.0);
}

TEST(MadTest, EmptyIsError) {
  EXPECT_FALSE(Mad({}).ok());
}

TEST(TrimmedMeanTest, TrimsTails) {
  std::vector<double> v = {1, 2, 3, 4, 100};
  // 20% trim drops 1 value from each side: mean of {2,3,4}.
  EXPECT_DOUBLE_EQ(TrimmedMean(v, 0.2).value(), 3.0);
}

TEST(TrimmedMeanTest, ZeroTrimIsMean) {
  EXPECT_DOUBLE_EQ(TrimmedMean({1, 2, 3}, 0.0).value(), 2.0);
}

TEST(TrimmedMeanTest, Errors) {
  EXPECT_FALSE(TrimmedMean({}, 0.1).ok());
  EXPECT_TRUE(TrimmedMean({1, 2}, 0.5).status().IsOutOfRange());
  EXPECT_TRUE(TrimmedMean({1, 2}, -0.1).status().IsOutOfRange());
}

TEST(InPlaceSelectionTest, MedianInPlaceMatchesMedian) {
  Rng rng(21);
  for (size_t n : {1u, 2u, 3u, 10u, 11u, 100u, 101u}) {
    std::vector<double> values;
    for (size_t i = 0; i < n; ++i) values.push_back(rng.LogNormal(2.0, 1.5));
    std::vector<double> scratch = values;
    // Bit-identical to the sort-based path, not merely close.
    EXPECT_EQ(MedianInPlace(scratch).value(), Median(values).value());
  }
}

TEST(InPlaceSelectionTest, PercentileInPlaceMatchesSortedPath) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 257; ++i) values.push_back(rng.Normal(50.0, 20.0));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 5.0, 12.5, 25.0, 50.0, 75.0, 90.0, 95.0, 100.0}) {
    std::vector<double> scratch = values;
    EXPECT_EQ(PercentileInPlace(scratch, p).value(),
              PercentileSorted(sorted, p))
        << "p = " << p;
  }
}

TEST(InPlaceSelectionTest, PermutesButPreservesMultiset) {
  std::vector<double> values = {9, 1, 8, 2, 7, 3, 6, 4, 5};
  std::vector<double> scratch = values;
  EXPECT_DOUBLE_EQ(MedianInPlace(scratch).value(), 5.0);
  std::sort(values.begin(), values.end());
  std::sort(scratch.begin(), scratch.end());
  EXPECT_EQ(values, scratch);
}

TEST(InPlaceSelectionTest, Errors) {
  std::vector<double> empty;
  EXPECT_TRUE(MedianInPlace(empty).status().IsInvalidArgument());
  std::vector<double> one = {1.0};
  EXPECT_TRUE(PercentileInPlace(one, -1).status().IsOutOfRange());
  EXPECT_TRUE(PercentileInPlace(one, 101).status().IsOutOfRange());
}

TEST(MadInPlaceTest, MatchesMad) {
  Rng rng(25);
  std::vector<double> values;
  for (int i = 0; i < 101; ++i) values.push_back(rng.LogNormal(3.0, 1.0));
  const double expected = Mad(values).value();
  std::vector<double> consumed = values;
  EXPECT_EQ(MadInPlace(consumed).value(), expected);
}

TEST(MadInPlaceTest, EmptyIsError) {
  std::vector<double> empty;
  EXPECT_FALSE(MadInPlace(empty).ok());
}

TEST(RunningStatsTest, MatchesBatch) {
  Rng rng(7);
  RunningStats rs;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(5.0, 3.0);
    values.push_back(v);
    rs.Add(v);
  }
  EXPECT_EQ(rs.count(), 1000);
  EXPECT_NEAR(rs.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(rs.stddev(), StdDev(values), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(values.begin(), values.end()));
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  Rng rng(9);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    double v = rng.Exponential(2.0);
    a.Add(v);
    all.Add(v);
  }
  for (int i = 0; i < 300; ++i) {
    double v = rng.Exponential(10.0);
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats rs;
  rs.Add(5.0);
  rs.Reset();
  EXPECT_EQ(rs.count(), 0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
}

}  // namespace
}  // namespace dbscale::stats
