#include "src/stats/spearman.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace dbscale::stats {
namespace {

TEST(RankTest, SimpleRanks) {
  auto r = RankWithTies({30, 10, 20});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(RankTest, TiesGetAverageRank) {
  auto r = RankWithTies({5, 5, 1, 9});
  // sorted: 1(rank1), 5, 5 (ranks 2,3 -> 2.5), 9(rank4)
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(RankTest, AllEqual) {
  auto r = RankWithTies({7, 7, 7});
  for (double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}).value(), 1.0,
              1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}).value(), -1.0,
              1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).value(), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}).value(), 0.0);
}

TEST(PearsonTest, Errors) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1, 2}).ok());
}

TEST(SpearmanTest, PerfectMonotoneNonlinear) {
  // Spearman detects any monotone relation; Pearson on raw values would be
  // below 1 for this convex curve.
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y).value(), 1.0);
}

TEST(SpearmanTest, PerfectNegativeMonotone) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {100, 50, 20, 5, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), -1.0, 1e-12);
}

TEST(SpearmanTest, IndependentSeriesNearZero) {
  Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.NextDouble());
    y.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 0.0, 0.05);
}

TEST(SpearmanTest, OutlierResistance) {
  // Pearson is destroyed by one gross outlier; Spearman bounds its effect
  // through ranking.
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<double> y = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  y[9] = -1e9;
  double rho = SpearmanCorrelation(x, y).value();
  double pearson = PearsonCorrelation(x, y).value();
  // Ranking bounds the outlier to one displaced rank (rho stays positive
  // and moderate); Pearson is dragged to ~0.
  EXPECT_GT(rho, 0.4);
  EXPECT_LT(pearson, 0.3);
  EXPECT_GT(rho, pearson + 0.3);
}

TEST(SpearmanTest, InvariantUnderMonotoneTransform) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.NextDouble() * 10.0;
    x.push_back(v);
    y.push_back(v + rng.Normal(0.0, 2.0));
  }
  double base = SpearmanCorrelation(x, y).value();
  std::vector<double> x_log;
  for (double v : x) x_log.push_back(std::log1p(v));
  double transformed = SpearmanCorrelation(x_log, y).value();
  EXPECT_NEAR(base, transformed, 1e-12);
}

TEST(SpearmanTest, Errors) {
  EXPECT_FALSE(SpearmanCorrelation({1, 2}, {1, 2}).ok());
  EXPECT_FALSE(SpearmanCorrelation({1, 2, 3}, {1, 2}).ok());
}

/// Property: rho is always within [-1, 1] for random data of any size.
class SpearmanRangeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpearmanRangeSweep, RhoInRange) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> x, y;
  for (int i = 0; i < GetParam(); ++i) {
    x.push_back(rng.Normal(0, 1));
    y.push_back(rng.Exponential(3.0));
  }
  double rho = SpearmanCorrelation(x, y).value();
  EXPECT_GE(rho, -1.0);
  EXPECT_LE(rho, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpearmanRangeSweep,
                         ::testing::Values(3, 5, 10, 50, 500));

}  // namespace
}  // namespace dbscale::stats
