#include "src/scaler/budget_manager.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace dbscale::scaler {
namespace {

BudgetManagerOptions Options(double budget, int n,
                             BudgetStrategy strategy =
                                 BudgetStrategy::kAggressive,
                             int k = 4) {
  BudgetManagerOptions o;
  o.total_budget = budget;
  o.num_intervals = n;
  o.min_cost = 7.0;
  o.max_cost = 270.0;
  o.strategy = strategy;
  o.conservative_k = k;
  return o;
}

TEST(BudgetManagerTest, CreateValidates) {
  EXPECT_FALSE(BudgetManager::Create(Options(100, 0)).ok());
  EXPECT_FALSE(BudgetManager::Create(Options(-5, 10)).ok());
  // Budget below n * Cmin cannot even afford the smallest container.
  EXPECT_FALSE(BudgetManager::Create(Options(69, 10)).ok());
  EXPECT_TRUE(BudgetManager::Create(Options(70, 10)).ok());
  auto bad_costs = Options(1000, 10);
  bad_costs.min_cost = 0.0;
  EXPECT_FALSE(BudgetManager::Create(bad_costs).ok());
  auto bad_k = Options(1000, 10, BudgetStrategy::kConservative, 0);
  EXPECT_FALSE(BudgetManager::Create(bad_k).ok());
}

TEST(BudgetManagerTest, AggressiveConfiguration) {
  // Paper Section 5: D = B - (n-1)*Cmin, TI = D, TR = Cmin.
  auto m = BudgetManager::Create(Options(1000, 10)).value();
  EXPECT_DOUBLE_EQ(m.depth(), 1000 - 9 * 7.0);
  EXPECT_DOUBLE_EQ(m.initial_tokens(), m.depth());
  EXPECT_DOUBLE_EQ(m.fill_rate(), 7.0);
  EXPECT_DOUBLE_EQ(m.available(), m.depth());
}

TEST(BudgetManagerTest, ConservativeConfiguration) {
  // TI = K * Cmax, TR = (B - TI) / (n - 1).
  auto m = BudgetManager::Create(
               Options(10000, 30, BudgetStrategy::kConservative, 4))
               .value();
  EXPECT_DOUBLE_EQ(m.initial_tokens(), 4 * 270.0);
  EXPECT_DOUBLE_EQ(m.fill_rate(), (10000 - 1080.0) / 29.0);
  EXPECT_GE(m.fill_rate(), 7.0);
}

TEST(BudgetManagerTest, ConservativeInitialClampedToDepth) {
  // With a tight budget K*Cmax would exceed D; TI clamps so TR >= Cmin.
  auto m = BudgetManager::Create(
               Options(100, 10, BudgetStrategy::kConservative, 4))
               .value();
  EXPECT_LE(m.initial_tokens(), m.depth());
  EXPECT_GE(m.fill_rate(), 7.0 - 1e-9);
}

TEST(BudgetManagerTest, ChargeReducesAndRefills) {
  auto m = BudgetManager::Create(Options(1000, 10)).value();
  double before = m.available();
  ASSERT_TRUE(m.ChargeAndRefill(100.0).ok());
  EXPECT_DOUBLE_EQ(m.available(), before - 100.0 + 7.0);
  EXPECT_DOUBLE_EQ(m.spent(), 100.0);
  EXPECT_EQ(m.intervals_charged(), 1);
}

TEST(BudgetManagerTest, RefillClampsAtDepth) {
  auto m = BudgetManager::Create(Options(1000, 10)).value();
  // Spending nothing: tokens would exceed depth without the clamp.
  ASSERT_TRUE(m.ChargeAndRefill(0.0).ok());
  EXPECT_DOUBLE_EQ(m.available(), m.depth());
}

TEST(BudgetManagerTest, OverchargeRejected) {
  auto m = BudgetManager::Create(Options(100, 10)).value();
  EXPECT_TRUE(m.ChargeAndRefill(m.available() + 1.0)
                  .IsResourceExhausted());
  EXPECT_TRUE(m.ChargeAndRefill(-1.0).IsInvalidArgument());
}

TEST(BudgetManagerTest, PeriodEndsAfterNIntervals) {
  auto m = BudgetManager::Create(Options(100, 3)).value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(m.ChargeAndRefill(7.0).ok());
  }
  EXPECT_TRUE(m.ChargeAndRefill(7.0).IsFailedPrecondition());
}

TEST(BudgetManagerTest, HardInvariantNeverExceedsBudget) {
  // The paper's guarantee: sum(C_i) <= B whatever the spend pattern, for
  // both strategies. Spend greedily every interval.
  for (BudgetStrategy strategy :
       {BudgetStrategy::kAggressive, BudgetStrategy::kConservative}) {
    auto m =
        BudgetManager::Create(Options(2000, 50, strategy)).value();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(m.ChargeAndRefill(std::min(m.available(), 270.0)).ok());
    }
    EXPECT_LE(m.spent(), 2000.0 + 1e-9) << BudgetStrategyToString(strategy);
  }
}

TEST(BudgetManagerTest, SmallestContainerAlwaysAffordable) {
  // Invariant: B_i >= Cmin at every interval, any spend pattern.
  Rng rng(5);
  for (BudgetStrategy strategy :
       {BudgetStrategy::kAggressive, BudgetStrategy::kConservative}) {
    auto m =
        BudgetManager::Create(Options(1500, 100, strategy)).value();
    for (int i = 0; i < 100; ++i) {
      EXPECT_GE(m.available(), 7.0 - 1e-9);
      double cost = std::min(m.available(),
                             rng.Bernoulli(0.2) ? 270.0
                                                : rng.Uniform(7.0, 60.0));
      ASSERT_TRUE(m.ChargeAndRefill(cost).ok());
    }
  }
}

TEST(BudgetManagerTest, AggressiveBurstsEarlierThanConservative) {
  // With the same budget, the aggressive bucket can afford the largest
  // container for more *initial* intervals.
  auto agg = BudgetManager::Create(Options(3000, 100)).value();
  auto con = BudgetManager::Create(
                 Options(3000, 100, BudgetStrategy::kConservative, 2))
                 .value();
  int agg_bursts = 0, con_bursts = 0;
  for (int i = 0; i < 20; ++i) {
    if (agg.available() >= 270.0) {
      ++agg_bursts;
      ASSERT_TRUE(agg.ChargeAndRefill(270.0).ok());
    } else {
      ASSERT_TRUE(agg.ChargeAndRefill(7.0).ok());
    }
    if (con.available() >= 270.0) {
      ++con_bursts;
      ASSERT_TRUE(con.ChargeAndRefill(270.0).ok());
    } else {
      ASSERT_TRUE(con.ChargeAndRefill(7.0).ok());
    }
  }
  EXPECT_GT(agg_bursts, con_bursts);
}

TEST(BudgetManagerTest, ConservativeSavesForLateBursts) {
  // After a quiet first half, the conservative bucket accumulated enough
  // for a late burst.
  auto m = BudgetManager::Create(
               Options(5000, 40, BudgetStrategy::kConservative, 2))
               .value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(m.ChargeAndRefill(7.0).ok());
  }
  int late_bursts = 0;
  for (int i = 20; i < 40; ++i) {
    if (m.available() >= 270.0) {
      ++late_bursts;
      ASSERT_TRUE(m.ChargeAndRefill(270.0).ok());
    } else {
      ASSERT_TRUE(m.ChargeAndRefill(7.0).ok());
    }
  }
  EXPECT_GE(late_bursts, 10);
  EXPECT_LE(m.spent(), 5000.0);
}

TEST(BudgetManagerTest, SingleIntervalPeriod) {
  auto m = BudgetManager::Create(Options(300, 1)).value();
  EXPECT_DOUBLE_EQ(m.available(), 300.0);
  ASSERT_TRUE(m.ChargeAndRefill(270.0).ok());
  EXPECT_TRUE(m.ChargeAndRefill(7.0).IsFailedPrecondition());
}

/// Property sweep over budgets and period lengths: total issuance
/// TI + (n-1)*TR equals B exactly, so a tenant spending every token spends
/// the whole budget and no more.
class BudgetIssuanceSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(BudgetIssuanceSweep, IssuanceEqualsBudget) {
  auto [budget, n] = GetParam();
  for (BudgetStrategy strategy :
       {BudgetStrategy::kAggressive, BudgetStrategy::kConservative}) {
    BudgetManagerOptions o = Options(budget, n, strategy);
    auto created = BudgetManager::Create(o);
    if (budget < n * o.min_cost) {
      EXPECT_FALSE(created.ok());
      continue;
    }
    ASSERT_TRUE(created.ok());
    auto m = std::move(created).value();
    double issuance =
        m.initial_tokens() + (n - 1) * m.fill_rate();
    EXPECT_NEAR(issuance, budget, 1e-6);
    // Greedy spend exhausts exactly the budget.
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(m.ChargeAndRefill(m.available()).ok());
    }
    EXPECT_NEAR(m.spent(), budget, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, BudgetIssuanceSweep,
    ::testing::Combine(::testing::Values(100.0, 720.0, 5000.0, 1e6),
                       ::testing::Values(2, 10, 144, 1000)));

}  // namespace
}  // namespace dbscale::scaler
