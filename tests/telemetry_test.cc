#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/telemetry/manager.h"
#include "src/telemetry/sample.h"
#include "src/telemetry/store.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::telemetry {
namespace {

using container::ResourceKind;

TelemetrySample MakeSample(double start_sec, double end_sec) {
  TelemetrySample s;
  s.period_start = SimTime::Zero() + Duration::Seconds(start_sec);
  s.period_end = SimTime::Zero() + Duration::Seconds(end_sec);
  s.requests_completed = 10;
  return s;
}

TEST(WaitClassTest, NamesAreUnique) {
  std::set<std::string> names;
  for (WaitClass wc : kAllWaitClasses) {
    names.insert(WaitClassToString(wc));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumWaitClasses));
}

TEST(WaitClassTest, ResourceMapping) {
  EXPECT_EQ(WaitClassResource(WaitClass::kCpu), ResourceKind::kCpu);
  EXPECT_EQ(WaitClassResource(WaitClass::kDiskIo), ResourceKind::kDiskIo);
  EXPECT_EQ(WaitClassResource(WaitClass::kLogIo), ResourceKind::kLogIo);
  EXPECT_EQ(WaitClassResource(WaitClass::kMemory), ResourceKind::kMemory);
  // Buffer pool waits are relieved by memory, not disk.
  EXPECT_EQ(WaitClassResource(WaitClass::kBufferPool),
            ResourceKind::kMemory);
  // Lock, latch and system waits cannot be fixed by scaling.
  EXPECT_FALSE(WaitClassResource(WaitClass::kLock).has_value());
  EXPECT_FALSE(WaitClassResource(WaitClass::kLatch).has_value());
  EXPECT_FALSE(WaitClassResource(WaitClass::kSystem).has_value());
}

TEST(WaitClassTest, InverseMappingConsistent) {
  for (ResourceKind kind : container::kAllResources) {
    auto mask = WaitClassesForResource(kind);
    for (WaitClass wc : kAllWaitClasses) {
      bool in_mask = mask[static_cast<size_t>(wc)];
      auto mapped = WaitClassResource(wc);
      EXPECT_EQ(in_mask, mapped.has_value() && *mapped == kind);
    }
  }
}

TEST(SampleTest, WaitSharesSumTo100) {
  TelemetrySample s = MakeSample(0, 5);
  s.wait_ms[static_cast<size_t>(WaitClass::kCpu)] = 30;
  s.wait_ms[static_cast<size_t>(WaitClass::kLock)] = 70;
  EXPECT_DOUBLE_EQ(s.total_wait_ms(), 100.0);
  EXPECT_DOUBLE_EQ(s.wait_pct(WaitClass::kCpu), 30.0);
  EXPECT_DOUBLE_EQ(s.wait_pct(WaitClass::kLock), 70.0);
  double total = 0;
  for (WaitClass wc : kAllWaitClasses) total += s.wait_pct(wc);
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(SampleTest, NoWaitsGivesZeroShares) {
  TelemetrySample s = MakeSample(0, 5);
  EXPECT_DOUBLE_EQ(s.wait_pct(WaitClass::kCpu), 0.0);
}

TEST(SampleTest, Throughput) {
  TelemetrySample s = MakeSample(0, 5);
  s.requests_completed = 50;
  EXPECT_DOUBLE_EQ(s.throughput_rps(), 10.0);
}

TEST(StoreTest, AppendAndRecent) {
  TelemetryStore store(100);
  for (int i = 0; i < 10; ++i) {
    store.Append(MakeSample(i * 5, (i + 1) * 5));
  }
  EXPECT_EQ(store.size(), 10u);
  auto recent = store.Recent(3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0]->period_start.ToSeconds(), 35.0);
  EXPECT_DOUBLE_EQ(recent[2]->period_end.ToSeconds(), 50.0);
}

TEST(StoreTest, RecentMoreThanAvailable) {
  TelemetryStore store;
  store.Append(MakeSample(0, 5));
  EXPECT_EQ(store.Recent(10).size(), 1u);
}

TEST(StoreTest, BoundedRetention) {
  TelemetryStore store(4);
  for (int i = 0; i < 10; ++i) {
    store.Append(MakeSample(i * 5, (i + 1) * 5));
  }
  EXPECT_EQ(store.size(), 4u);
  EXPECT_DOUBLE_EQ(store.at(0).period_start.ToSeconds(), 30.0);
}

TEST(StoreTest, Range) {
  TelemetryStore store;
  for (int i = 0; i < 10; ++i) {
    store.Append(MakeSample(i * 5, (i + 1) * 5));
  }
  auto range = store.Range(SimTime::Zero() + Duration::Seconds(10),
                           SimTime::Zero() + Duration::Seconds(25));
  ASSERT_EQ(range.size(), 3u);  // samples ending at 15, 20, 25
  EXPECT_DOUBLE_EQ(range[0]->period_end.ToSeconds(), 15.0);
}

TEST(StoreTest, Extract) {
  TelemetryStore store;
  for (int i = 0; i < 5; ++i) {
    TelemetrySample s = MakeSample(i * 5, (i + 1) * 5);
    s.latency_p95_ms = 100.0 + i;
    store.Append(std::move(s));
  }
  auto values = store.Extract(
      3, [](const TelemetrySample& s) { return s.latency_p95_ms; });
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 102.0);
  EXPECT_DOUBLE_EQ(values[2], 104.0);
}

class ManagerTest : public ::testing::Test {
 protected:
  TelemetrySample Sample(int i) {
    TelemetrySample s = MakeSample(i * 5.0, (i + 1) * 5.0);
    s.requests_completed = 20;
    s.latency_avg_ms = 50;
    s.latency_p95_ms = 150;
    s.allocation = container::ResourceVector{2, 2560, 200, 8};
    return s;
  }
};

TEST_F(ManagerTest, InvalidWithTooFewSamples) {
  TelemetryStore store;
  TelemetryManager manager;
  auto snap = manager.Compute(store, SimTime::Zero());
  EXPECT_FALSE(snap.valid);
  store.Append(Sample(0));
  snap = manager.Compute(store, SimTime::Zero() + Duration::Seconds(5));
  EXPECT_FALSE(snap.valid);
}

TEST_F(ManagerTest, RobustAggregates) {
  TelemetryStore store;
  TelemetryManager manager;
  for (int i = 0; i < 12; ++i) {
    TelemetrySample s = Sample(i);
    s.utilization_pct[0] = 40.0;  // cpu
    s.wait_ms[static_cast<size_t>(WaitClass::kCpu)] = 200.0;
    s.wait_ms[static_cast<size_t>(WaitClass::kLock)] = 600.0;
    store.Append(std::move(s));
  }
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(60));
  ASSERT_TRUE(snap.valid);
  const auto& cpu = snap.resource(ResourceKind::kCpu);
  EXPECT_DOUBLE_EQ(cpu.utilization_pct, 40.0);
  EXPECT_DOUBLE_EQ(cpu.wait_ms, 200.0);
  EXPECT_DOUBLE_EQ(cpu.wait_ms_per_request, 10.0);
  EXPECT_NEAR(cpu.wait_pct, 25.0, 1e-9);  // 200 of 800 total
  EXPECT_NEAR(
      snap.wait_pct_by_class[static_cast<size_t>(WaitClass::kLock)],
      75.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.latency_ms, 150.0);  // p95 aggregate default
}

TEST_F(ManagerTest, OutlierSampleDoesNotMoveSignals) {
  TelemetryStore store;
  TelemetryManager manager;
  for (int i = 0; i < 12; ++i) {
    TelemetrySample s = Sample(i);
    s.utilization_pct[0] = 30.0;
    s.wait_ms[static_cast<size_t>(WaitClass::kCpu)] =
        (i == 6) ? 1e9 : 100.0;  // checkpoint storm
    store.Append(std::move(s));
  }
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(60));
  EXPECT_DOUBLE_EQ(snap.resource(ResourceKind::kCpu).wait_ms, 100.0);
}

TEST_F(ManagerTest, LatencyAggregateSelection) {
  TelemetryManagerOptions options;
  options.latency_aggregate = LatencyAggregate::kAverage;
  TelemetryManager manager(options);
  TelemetryStore store;
  for (int i = 0; i < 6; ++i) store.Append(Sample(i));
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(30));
  EXPECT_DOUBLE_EQ(snap.latency_ms, 50.0);
}

TEST_F(ManagerTest, IdleSamplesIgnoredForLatency) {
  TelemetryManager manager;
  TelemetryStore store;
  for (int i = 0; i < 6; ++i) {
    TelemetrySample s = Sample(i);
    if (i % 2 == 0) {
      s.requests_completed = 0;
      s.latency_p95_ms = 0;
    }
    store.Append(std::move(s));
  }
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(30));
  EXPECT_DOUBLE_EQ(snap.latency_ms, 150.0);
}

TEST_F(ManagerTest, DetectsUtilizationTrend) {
  TelemetryManager manager;
  TelemetryStore store;
  for (int i = 0; i < 24; ++i) {
    TelemetrySample s = Sample(i);
    s.utilization_pct[0] = 10.0 + 3.0 * i;
    store.Append(std::move(s));
  }
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(120));
  const auto& cpu = snap.resource(ResourceKind::kCpu);
  EXPECT_TRUE(cpu.utilization_trend.significant);
  EXPECT_EQ(cpu.utilization_trend.direction,
            stats::TrendDirection::kIncreasing);
}

TEST_F(ManagerTest, DetectsWaitLatencyCorrelation) {
  TelemetryManager manager;
  TelemetryStore store;
  for (int i = 0; i < 24; ++i) {
    TelemetrySample s = Sample(i);
    // Latency rises exactly with cpu waits: strong rank correlation.
    s.wait_ms[static_cast<size_t>(WaitClass::kCpu)] = 10.0 * i;
    s.latency_p95_ms = 100.0 + 5.0 * i;
    store.Append(std::move(s));
  }
  auto snap =
      manager.Compute(store, SimTime::Zero() + Duration::Seconds(120));
  EXPECT_GT(snap.resource(ResourceKind::kCpu).wait_latency_correlation,
            0.9);
}

void ExpectTrendEqual(const stats::TrendResult& a,
                      const stats::TrendResult& b) {
  EXPECT_EQ(a.slope, b.slope);
  EXPECT_EQ(a.intercept, b.intercept);
  EXPECT_EQ(a.significant, b.significant);
  EXPECT_EQ(a.direction, b.direction);
}

TEST_F(ManagerTest, ScratchPathMatchesScratchless) {
  TelemetryManager manager;
  TelemetryStore store;
  SignalScratch scratch;
  for (int i = 0; i < 48; ++i) {
    TelemetrySample s = Sample(i);
    s.utilization_pct[0] = 20.0 + 1.5 * i;
    s.wait_ms[static_cast<size_t>(WaitClass::kCpu)] = 8.0 * i;
    s.wait_ms[static_cast<size_t>(WaitClass::kDiskIo)] = 120.0;
    s.latency_p95_ms = 100.0 + 4.0 * i;
    store.Append(std::move(s));
    SimTime now = SimTime::Zero() + Duration::Seconds(5.0 * (i + 1));
    // Same scratch reused every interval: results must be bit-identical
    // to the scratch-free path at each step.
    SignalSnapshot plain = manager.Compute(store, now);
    SignalSnapshot reused = manager.Compute(store, now, &scratch);
    ASSERT_EQ(plain.valid, reused.valid);
    if (!plain.valid) continue;
    EXPECT_EQ(plain.latency_ms, reused.latency_ms);
    ExpectTrendEqual(plain.latency_trend, reused.latency_trend);
    EXPECT_EQ(plain.total_wait_ms, reused.total_wait_ms);
    EXPECT_EQ(plain.throughput_rps, reused.throughput_rps);
    EXPECT_EQ(plain.wait_pct_by_class, reused.wait_pct_by_class);
    for (ResourceKind kind : container::kAllResources) {
      const ResourceSignals& p = plain.resource(kind);
      const ResourceSignals& r = reused.resource(kind);
      EXPECT_EQ(p.utilization_pct, r.utilization_pct);
      EXPECT_EQ(p.wait_ms, r.wait_ms);
      EXPECT_EQ(p.wait_ms_per_request, r.wait_ms_per_request);
      EXPECT_EQ(p.wait_pct, r.wait_pct);
      ExpectTrendEqual(p.utilization_trend, r.utilization_trend);
      ExpectTrendEqual(p.wait_trend, r.wait_trend);
      EXPECT_EQ(p.wait_latency_correlation, r.wait_latency_correlation);
      EXPECT_EQ(p.utilization_latency_correlation,
                r.utilization_latency_correlation);
    }
  }
}

TEST_F(ManagerTest, ValidateRejectsBadOptions) {
  TelemetryManagerOptions bad;
  bad.trend_samples = 2;
  EXPECT_FALSE(TelemetryManager(bad).Validate().ok());
  bad = TelemetryManagerOptions();
  bad.aggregation_samples = 0;
  EXPECT_FALSE(TelemetryManager(bad).Validate().ok());
  bad = TelemetryManagerOptions();
  bad.trend_accept_fraction = 0.4;
  EXPECT_FALSE(TelemetryManager(bad).Validate().ok());
  EXPECT_TRUE(TelemetryManager().Validate().ok());
}

}  // namespace
}  // namespace dbscale::telemetry
