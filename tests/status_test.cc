#include "src/common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/result.h"

namespace dbscale {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(),
            "InvalidArgument: bad");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(a.IsInternal());  // source unchanged
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsInternal());
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::NotFound("gone");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsNotFound());
  Status c;
  c = std::move(b);
  EXPECT_TRUE(c.IsNotFound());
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status a = Status::Internal("x");
  Status& ref = a;
  a = ref;
  EXPECT_TRUE(a.IsInternal());
  EXPECT_EQ(a.message(), "x");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::OutOfRange("past end");
  EXPECT_EQ(os.str(), "OutOfRange: past end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    DBSCALE_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIoError());
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    DBSCALE_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(wrapper().IsAlreadyExists());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::Internal("no");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    DBSCALE_ASSIGN_OR_RETURN(int v, producer(ok));
    return v * 2;
  };
  EXPECT_EQ(consumer(true).value(), 10);
  EXPECT_TRUE(consumer(false).status().IsInternal());
}

}  // namespace
}  // namespace dbscale
