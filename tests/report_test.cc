#include "src/sim/report.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dbscale::sim {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "23456"});
  std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All lines equally wide (trailing pad makes columns align).
  size_t first_nl = out.find('\n');
  size_t second_nl = out.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(WriteFileTest, RoundTrip) {
  const std::string path = "/tmp/dbscale_report_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  ASSERT_GT(std::fread(buf, 1, sizeof(buf), f), 0u);
  std::fclose(f);
  EXPECT_STREQ(buf, "hello\n");
  std::remove(path.c_str());
}

TEST(WriteFileTest, BadPathErrors) {
  EXPECT_TRUE(WriteFile("/nonexistent-dir/x.txt", "x").IsIoError());
}

TEST(AsciiChartTest, RendersShape) {
  std::vector<double> values = {0, 0, 10, 10, 0, 0};
  std::string chart = AsciiChart(values, 4, 6);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // Top row has # only in the middle.
  std::string top = chart.substr(0, chart.find('\n'));
  EXPECT_EQ(top.find('#'), 12u);  // after "    10.0 |" prefix and 2 blanks
}

TEST(AsciiChartTest, EmptyAndFlatInputs) {
  EXPECT_EQ(AsciiChart({}, 4), "");
  std::string flat = AsciiChart({0, 0, 0}, 4);
  EXPECT_EQ(flat.find('#'), std::string::npos);  // nothing to draw
}

TEST(AsciiChartTest, DownsamplesWideInput) {
  std::vector<double> values(1000, 5.0);
  std::string chart = AsciiChart(values, 2, 50);
  // No line longer than prefix + 50 columns.
  size_t pos = 0;
  while (pos < chart.size()) {
    size_t nl = chart.find('\n', pos);
    EXPECT_LE(nl - pos, 62u);
    pos = nl + 1;
  }
}

}  // namespace
}  // namespace dbscale::sim
