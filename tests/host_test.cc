// Host plane: accounting round trips, placement policies, interference
// math, and the determinism contracts the layer ships with — a disabled
// host plane (num_hosts == 0) must leave sim and fleet digests bit-
// identical to the pinned pre-host baselines, and an enabled one must be
// bit-identical across thread counts and checkpoint/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/container/catalog.h"
#include "src/fleet/fleet_scale.h"
#include "src/host/host_map.h"
#include "src/host/placement.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale {
namespace {

using container::ResourceVector;

host::HostOptions TwoHosts() {
  host::HostOptions options;
  options.num_hosts = 2;
  options.capacity = ResourceVector{16.0, 65536.0, 20000.0, 400.0};
  return options;
}

TEST(HostOptionsTest, ValidatesFields) {
  host::HostOptions options;  // disabled
  EXPECT_TRUE(options.Validate().ok());
  options.num_hosts = -1;
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  EXPECT_TRUE(options.Validate().ok());

  options = TwoHosts();
  options.capacity.cpu_cores = 0.0;
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  options.overcommit_factor = 0.5;
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  options.migration_latency_intervals = 0;
  options.migration_downtime_intervals = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  options.background.memory_mb = -1.0;
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  options.hot_hosts = 3;  // > num_hosts
  EXPECT_FALSE(options.Validate().ok());

  options = TwoHosts();
  options.hot_hosts = 1;
  options.hot_extra.cpu_cores = -2.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(HostMapTest, UpDeltaClampsShrinkingDimensionsAtZero) {
  const ResourceVector old_bundle{2.0, 4096.0, 300.0, 12.0};
  const ResourceVector new_bundle{4.0, 2048.0, 500.0, 12.0};
  const ResourceVector delta = host::UpDelta(old_bundle, new_bundle);
  EXPECT_DOUBLE_EQ(delta.cpu_cores, 2.0);
  EXPECT_DOUBLE_EQ(delta.memory_mb, 0.0);
  EXPECT_DOUBLE_EQ(delta.disk_iops, 200.0);
  EXPECT_DOUBLE_EQ(delta.log_mbps, 0.0);
}

container::ContainerSpec Spec(const char* name, double cpu, double price) {
  container::ContainerSpec spec;
  spec.name = name;
  spec.resources = ResourceVector{cpu, 1024.0, 100.0, 4.0};
  spec.price_per_interval = price;
  return spec;
}

TEST(HostMapTest, SeedPlaceIsFirstFitDecreasing) {
  host::HostMap map(TwoHosts());
  // Price order: A (10 cores), B (8), C (6). A -> host 0, B no longer fits
  // on 0 (18 > 16) -> host 1, C tops host 0 off exactly (10 + 6 = 16).
  const std::vector<container::ContainerSpec> containers = {
      Spec("C", 6.0, 10.0), Spec("A", 10.0, 100.0), Spec("B", 8.0, 50.0)};
  auto host_of = map.SeedPlace(containers);
  ASSERT_TRUE(host_of.ok()) << host_of.status().message();
  EXPECT_EQ(*host_of, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(map.host(0).num_tenants, 2);
  EXPECT_EQ(map.host(1).num_tenants, 1);
  EXPECT_DOUBLE_EQ(map.host(0).alloc.cpu_cores, 16.0);
  EXPECT_DOUBLE_EQ(map.host(1).alloc.cpu_cores, 8.0);

  // A fourth tenant that fits nowhere is a clean error, not UB.
  host::HostMap fresh(TwoHosts());
  std::vector<container::ContainerSpec> too_big = containers;
  too_big.push_back(Spec("D", 12.0, 80.0));
  auto placed = fresh.SeedPlace(too_big);
  ASSERT_FALSE(placed.ok());
  EXPECT_NE(placed.status().message().find("fits on no host"),
            std::string::npos);
}

TEST(HostMapTest, LocalResizeReserveCommitAbortRoundTrip) {
  host::HostMap map(TwoHosts());
  const ResourceVector old_bundle{3.0, 4096.0, 300.0, 12.0};
  const ResourceVector new_bundle{4.0, 8192.0, 500.0, 20.0};
  const ResourceVector delta = host::UpDelta(old_bundle, new_bundle);
  map.Place(0, old_bundle);
  const uint64_t resident_digest = map.Digest();

  // Reserve blocks the capacity; FitsOn sees alloc + reserved.
  map.ReserveLocal(0, delta);
  EXPECT_NE(map.Digest(), resident_digest);
  EXPECT_FALSE(map.FitsOn(0, ResourceVector{13.0, 0.0, 0.0, 0.0}));
  EXPECT_TRUE(map.FitsOn(0, ResourceVector{12.0, 0.0, 0.0, 0.0}));

  // Abort restores the pre-reserve accounting bit for bit.
  map.AbortLocal(0, delta);
  EXPECT_EQ(map.Digest(), resident_digest);

  // Commit releases the reservation and swaps old -> new.
  map.ReserveLocal(0, delta);
  map.CommitLocal(0, delta, old_bundle, new_bundle);
  EXPECT_DOUBLE_EQ(map.host(0).alloc.cpu_cores, 4.0);
  EXPECT_DOUBLE_EQ(map.host(0).alloc.memory_mb, 8192.0);
  EXPECT_DOUBLE_EQ(map.host(0).reserved.cpu_cores, 0.0);
  EXPECT_EQ(map.host(0).num_tenants, 1);
}

TEST(HostMapTest, MigrationMovesResidencyAndAbortReleasesDest) {
  host::HostMap map(TwoHosts());
  const ResourceVector old_bundle{3.0, 4096.0, 300.0, 12.0};
  const ResourceVector new_bundle{6.0, 16384.0, 800.0, 32.0};
  map.Place(0, old_bundle);

  map.BeginMigration(1, new_bundle);
  EXPECT_DOUBLE_EQ(map.host(1).reserved.cpu_cores, 6.0);
  EXPECT_EQ(map.counters().migrations_begun, 1u);

  map.CompleteMigration(0, 1, old_bundle, new_bundle);
  EXPECT_EQ(map.host(0).num_tenants, 0);
  EXPECT_DOUBLE_EQ(map.host(0).alloc.cpu_cores, 0.0);
  EXPECT_EQ(map.host(1).num_tenants, 1);
  EXPECT_DOUBLE_EQ(map.host(1).alloc.cpu_cores, 6.0);
  EXPECT_DOUBLE_EQ(map.host(1).reserved.cpu_cores, 0.0);
  EXPECT_EQ(map.counters().migrations_completed, 1u);

  // A failed migration never touched the source: only the destination
  // reservation is released.
  map.BeginMigration(0, new_bundle);
  map.AbortMigration(0, new_bundle);
  EXPECT_DOUBLE_EQ(map.host(0).reserved.cpu_cores, 0.0);
  EXPECT_EQ(map.host(1).num_tenants, 1);
  EXPECT_EQ(map.counters().migrations_failed, 1u);
}

TEST(HostMapTest, InterferenceThrottleFollowsDemandPressure) {
  host::HostOptions options = TwoHosts();
  options.background.cpu_cores = 4.0;
  options.interference_start_ratio = 0.75;
  options.interference_slope = 4.0;
  host::HostMap map(options);

  map.UpdateInterference({6.0, 10.0});
  EXPECT_DOUBLE_EQ(map.cpu_pressure(0), 10.0 / 16.0);
  EXPECT_DOUBLE_EQ(map.throttle(0), 1.0);  // below the knee
  EXPECT_FALSE(map.saturated(0));
  EXPECT_DOUBLE_EQ(map.cpu_pressure(1), 14.0 / 16.0);
  EXPECT_DOUBLE_EQ(map.throttle(1), 1.0 + 4.0 * (14.0 / 16.0 - 0.75));
  EXPECT_TRUE(map.saturated(1));
  EXPECT_EQ(map.counters().saturated_host_intervals, 0u);

  // Pressure beyond 1.0 counts a saturated host interval.
  map.UpdateInterference({6.0, 14.0});
  EXPECT_DOUBLE_EQ(map.cpu_pressure(1), 18.0 / 16.0);
  EXPECT_EQ(map.counters().saturated_host_intervals, 1u);
}

TEST(HostMapTest, HotHostsCarryExtraBackgroundAndPressure) {
  host::HostOptions options = TwoHosts();
  options.hot_hosts = 1;
  options.hot_extra.cpu_cores = 12.0;
  host::HostMap map(options);

  // The skew counts against placement capacity on host 0 only...
  EXPECT_FALSE(map.FitsOn(0, ResourceVector{5.0, 0.0, 0.0, 0.0}));
  EXPECT_TRUE(map.FitsOn(0, ResourceVector{4.0, 0.0, 0.0, 0.0}));
  EXPECT_TRUE(map.FitsOn(1, ResourceVector{16.0, 0.0, 0.0, 0.0}));

  // ...and into host 0's demand pressure.
  map.UpdateInterference({2.0, 2.0});
  EXPECT_DOUBLE_EQ(map.cpu_pressure(0), 14.0 / 16.0);
  EXPECT_DOUBLE_EQ(map.cpu_pressure(1), 2.0 / 16.0);
}

TEST(PlacementPolicyTest, PoliciesChooseDeterministicDestinations) {
  host::HostOptions options = TwoHosts();
  options.num_hosts = 3;
  host::HostMap map(options);
  map.Place(0, ResourceVector{10.0, 0.0, 0.0, 0.0});
  map.Place(1, ResourceVector{4.0, 0.0, 0.0, 0.0});
  map.Place(2, ResourceVector{12.0, 0.0, 0.0, 0.0});
  const ResourceVector need{2.0, 0.0, 0.0, 0.0};

  auto first = host::MakePlacementPolicy(host::PlacementPolicyKind::kFirstFit);
  auto best = host::MakePlacementPolicy(host::PlacementPolicyKind::kBestFit);
  auto worst = host::MakePlacementPolicy(host::PlacementPolicyKind::kWorstFit);
  EXPECT_EQ(first->ChooseHost(map, need, -1), 0);
  EXPECT_EQ(best->ChooseHost(map, need, -1), 2);   // tightest headroom
  EXPECT_EQ(worst->ChooseHost(map, need, -1), 1);  // loosest headroom

  // The tenant's own host is never chosen, and "no host fits" is -1.
  EXPECT_EQ(first->ChooseHost(map, need, 0), 1);
  EXPECT_EQ(best->ChooseHost(map, need, 2), 0);
  const ResourceVector huge{20.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(first->ChooseHost(map, huge, -1), -1);
  EXPECT_EQ(best->ChooseHost(map, huge, -1), -1);
}

// ---------------------------------------------------------------------------
// Closed-loop sim integration.
// ---------------------------------------------------------------------------

SimConfig BaseSimConfig() {
  SimConfig config;
  config.simulation.catalog = container::Catalog::MakeLockStep();
  config.simulation.workload = workload::MakeCpuioWorkload();
  config.simulation.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  config.simulation.interval_duration = Duration::Seconds(20);
  config.simulation.seed = 17;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  return config;
}

// The digest formula the pre-host baselines were captured with
// (examples/faulty_resize.cpp); covers cost, latency, rung trajectory,
// resize timing, and utilization of every interval.
double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

// A SimConfig that never mentions hosts must reproduce the digests pinned
// before the host layer existed, null-fault and faulty alike.
TEST(HostSimTest, NullHostPlanReproducesPreHostDigests) {
  auto null_run = BaseSimConfig().Run();
  ASSERT_TRUE(null_run.ok()) << null_run.status().message();
  EXPECT_DOUBLE_EQ(RunDigest(null_run->result), 2094099.7125696521);
  EXPECT_EQ(null_run->result.host_digest, 0u);
  EXPECT_EQ(null_run->result.migrations_begun, 0u);

  SimConfig faulty = BaseSimConfig();
  faulty.simulation.fault.resize.failure_probability = 0.1;
  faulty.simulation.fault.resize.min_latency_intervals = 1;
  faulty.simulation.fault.resize.max_latency_intervals = 2;
  faulty.simulation.fault.telemetry.drop_probability = 0.05;
  auto faulty_run = faulty.Run();
  ASSERT_TRUE(faulty_run.ok()) << faulty_run.status().message();
  EXPECT_DOUBLE_EQ(RunDigest(faulty_run->result), 2130223.0493377685);
}

SimConfig HotHostSimConfig() {
  SimConfig config = BaseSimConfig();
  // Two hosts; host 0 is hot enough that the tenant's container fits but
  // its first scale-up does not — the scale-up must become a migration to
  // the cold host.
  config.host.num_hosts = 2;
  config.host.hot_hosts = 1;
  config.host.hot_extra.cpu_cores = 12.5;
  config.host.migration_latency_intervals = 2;
  config.host.migration_downtime_intervals = 1;
  return config;
}

TEST(HostSimTest, ScaleUpOnHotHostBecomesBilledMigration) {
  auto run = HotHostSimConfig().Run();
  ASSERT_TRUE(run.ok()) << run.status().message();
  const sim::RunResult& r = run->result;
  EXPECT_GE(r.migrations_begun, 1u);
  EXPECT_EQ(r.migrations_completed, r.migrations_begun);
  EXPECT_EQ(r.migration_failures, 0u);
  // Downtime is billed exactly migration_downtime_intervals per migration.
  EXPECT_EQ(r.migration_downtime_intervals, r.migrations_completed);
  EXPECT_NE(r.host_digest, 0u);

  uint64_t downtime_marked = 0;
  bool saw_migration_decision = false;
  bool saw_pending_hold = false;
  double max_throttle = 0.0;
  for (const auto& interval : r.intervals) {
    if (interval.in_migration_downtime) ++downtime_marked;
    if (interval.decision_code ==
        scaler::ExplanationCode::kScaleTriggersMigration) {
      saw_migration_decision = true;
    }
    if (interval.decision_code ==
        scaler::ExplanationCode::kHoldMigrationPending) {
      saw_pending_hold = true;
    }
    max_throttle = std::max(max_throttle, interval.throttle_factor);
  }
  EXPECT_EQ(downtime_marked, r.migration_downtime_intervals);
  EXPECT_TRUE(saw_migration_decision);
  // latency 2 + downtime 1 means at least one interval holds mid-flight.
  EXPECT_TRUE(saw_pending_hold);
  // The blackout interval inflates observed waits well past neutral.
  EXPECT_GT(max_throttle, 1.0);

  // Deterministic: an identical config reproduces both digests bit for bit.
  auto again = HotHostSimConfig().Run();
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(RunDigest(again->result), RunDigest(r));
  EXPECT_EQ(again->result.host_digest, r.host_digest);
}

TEST(HostSimTest, FailedMigrationReleasesDestinationAndCountsFailure) {
  SimConfig config = HotHostSimConfig();
  config.host.migration_latency_intervals = 1;
  config.simulation.fault.resize.failure_probability = 1.0;
  auto run = config.Run();
  ASSERT_TRUE(run.ok()) << run.status().message();
  const sim::RunResult& r = run->result;
  EXPECT_GT(r.migrations_begun, 0u);
  EXPECT_EQ(r.migrations_completed, 0u);
  EXPECT_EQ(r.migration_failures, r.migrations_begun);
  // Failures surface at cutover: the blackout was already suffered.
  EXPECT_EQ(r.migration_downtime_intervals, r.migrations_begun);
  // Every migration failure is also a resize failure.
  EXPECT_GE(r.resize_failures, r.migration_failures);
}

// ---------------------------------------------------------------------------
// Fleet integration.
// ---------------------------------------------------------------------------

// Fleet digests pinned before the host layer existed. A host-free options
// struct must keep them at every thread count.
TEST(HostFleetTest, NullHostPlanReproducesPreHostFleetDigests) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  for (const int threads : {1, 2, 4}) {
    fleet::FleetScaleOptions options;
    options.num_tenants = 512;
    options.num_intervals = 288;
    options.seed = 7;
    options.block_size = 128;
    options.num_threads = threads;
    auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(outcome->aggregate.digest, 0xf8a4a039e6b0fee9ull)
        << "threads=" << threads;
    EXPECT_EQ(outcome->host_digest, 0u);
  }
  {
    fleet::FleetScaleOptions options;
    options.num_tenants = 2000;
    options.num_intervals = 288;
    options.seed = 7;
    options.block_size = 256;
    options.num_threads = 2;
    options.fault.resize.failure_probability = 0.05;
    options.fault.resize.min_latency_intervals = 1;
    options.fault.resize.max_latency_intervals = 2;
    auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_EQ(outcome->aggregate.digest, 0xf667503494730078ull);
  }
}

// 300 tenants on 64 hosts, half of them hot, with a 3x flash crowd hitting
// the hot half mid-day: dense enough that scale-ups migrate.
fleet::FleetScaleOptions HostFleetOptions() {
  fleet::FleetScaleOptions options;
  options.num_tenants = 300;
  options.num_intervals = 288;
  options.seed = 11;
  options.block_size = 64;
  options.num_threads = 2;
  options.host.num_hosts = 64;
  options.host.capacity =
      container::ResourceVector{64.0, 524288.0, 160000.0, 3200.0};
  options.host.hot_hosts = 32;
  options.host.hot_extra =
      container::ResourceVector{16.0, 131072.0, 40000.0, 800.0};
  options.flash_crowd.start_interval = 96;
  options.flash_crowd.duration_intervals = 24;
  options.flash_crowd.demand_multiplier = 3.0;
  options.flash_crowd.num_hosts_hit = 32;
  return options;
}

TEST(HostFleetTest, HostModeDigestInvariantAcrossThreads) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  uint64_t reference = 0;
  uint64_t reference_host = 0;
  bool have_reference = false;
  for (const int threads : {1, 2, 4}) {
    fleet::FleetScaleOptions options = HostFleetOptions();
    options.num_threads = threads;
    auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
    EXPECT_GE(outcome->host.migrations_begun, 1u);
    EXPECT_EQ(outcome->host.downtime_intervals,
              outcome->host.migrations_completed *
                  static_cast<uint64_t>(
                      options.host.migration_downtime_intervals));
    EXPECT_GT(outcome->host.saturated_host_intervals, 0u);
    if (!have_reference) {
      reference = outcome->aggregate.digest;
      reference_host = outcome->host_digest;
      have_reference = true;
      EXPECT_NE(reference_host, 0u);
    }
    EXPECT_EQ(outcome->aggregate.digest, reference) << "threads=" << threads;
    EXPECT_EQ(outcome->host_digest, reference_host) << "threads=" << threads;
  }
}

TEST(HostFleetTest, HostModeCheckpointResumeBitIdentical) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  const std::string path = testing::TempDir() + "/host_fleet_resume.ckpt";
  fleet::FleetScaleOptions options = HostFleetOptions();
  options.epoch_intervals = 96;

  auto full = fleet::FleetScaleRunner(catalog, options).Run();
  ASSERT_TRUE(full.ok()) << full.status().message();
  ASSERT_TRUE(full->complete);

  // Stop mid-run (inside the flash crowd, with migrations in flight)...
  fleet::FleetScaleOptions first_half = options;
  first_half.checkpoint_path = path;
  first_half.stop_after_intervals = 96;
  auto partial = fleet::FleetScaleRunner(catalog, first_half).Run();
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  EXPECT_FALSE(partial->complete);

  // ...and resume at a different thread count: digests, host digest, and
  // host counters all bit-identical to the uninterrupted run.
  fleet::FleetScaleOptions second_half = options;
  second_half.num_threads = 4;
  auto resumed = fleet::FleetScaleRunner::Resume(catalog, second_half, path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->aggregate.digest, full->aggregate.digest);
  EXPECT_EQ(resumed->host_digest, full->host_digest);
  EXPECT_EQ(resumed->host.migrations_begun, full->host.migrations_begun);
  EXPECT_EQ(resumed->host.migrations_completed,
            full->host.migrations_completed);
  EXPECT_EQ(resumed->host.downtime_intervals, full->host.downtime_intervals);
  EXPECT_EQ(resumed->host.saturated_host_intervals,
            full->host.saturated_host_intervals);
  std::remove(path.c_str());
}

TEST(HostFleetTest, ValidatesHostAndFlashCrowdOptions) {
  container::Catalog catalog = container::Catalog::MakeLockStep();

  // Flash crowd without a host plane is meaningless.
  fleet::FleetScaleOptions options = HostFleetOptions();
  options.host = host::HostOptions{};
  EXPECT_FALSE(fleet::FleetScaleRunner(catalog, options).Run().ok());

  // More crowd hosts than hosts.
  options = HostFleetOptions();
  options.flash_crowd.num_hosts_hit = options.host.num_hosts + 1;
  EXPECT_FALSE(fleet::FleetScaleRunner(catalog, options).Run().ok());

  // Hot hosts beyond the fleet.
  options = HostFleetOptions();
  options.host.hot_hosts = options.host.num_hosts + 1;
  EXPECT_FALSE(fleet::FleetScaleRunner(catalog, options).Run().ok());

  // A fleet too dense for its hosts is a clean seed-placement error.
  options = HostFleetOptions();
  options.host.num_hosts = 2;
  options.host.hot_hosts = 1;
  options.flash_crowd.num_hosts_hit = 1;
  auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("fits on no host"),
            std::string::npos);
}

}  // namespace
}  // namespace dbscale
