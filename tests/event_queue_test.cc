#include "src/engine/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dbscale::engine {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(SimTime::FromMicros(300), [&] { order.push_back(3); });
  q.ScheduleAt(SimTime::FromMicros(100), [&] { order.push_back(1); });
  q.ScheduleAt(SimTime::FromMicros(200), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(SimTime::FromMicros(100), [&, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NowAdvancesWithEvents) {
  EventQueue q;
  SimTime seen;
  q.ScheduleAt(SimTime::FromMicros(500), [&] { seen = q.Now(); });
  q.RunAll();
  EXPECT_EQ(seen, SimTime::FromMicros(500));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(SimTime::FromMicros(100), [&] { ++ran; });
  q.ScheduleAt(SimTime::FromMicros(200), [&] { ++ran; });
  q.ScheduleAt(SimTime::FromMicros(300), [&] { ++ran; });
  q.RunUntil(SimTime::FromMicros(200));  // inclusive
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), SimTime::FromMicros(200));
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(EventQueueTest, RunUntilAdvancesNowWhenIdle) {
  EventQueue q;
  q.RunUntil(SimTime::FromMicros(1000));
  EXPECT_EQ(q.Now(), SimTime::FromMicros(1000));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EventsScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      q.ScheduleAfter(Duration::Micros(10), recurse);
    }
  };
  q.ScheduleAt(SimTime::FromMicros(0), recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), SimTime::FromMicros(40));
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired;
  q.ScheduleAt(SimTime::FromMicros(100), [&] {
    q.ScheduleAfter(Duration::Micros(50), [&] { fired = q.Now(); });
  });
  q.RunAll();
  EXPECT_EQ(fired, SimTime::FromMicros(150));
}

}  // namespace
}  // namespace dbscale::engine
