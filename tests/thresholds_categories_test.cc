#include <gtest/gtest.h>

#include "src/scaler/categories.h"
#include "src/scaler/thresholds.h"

namespace dbscale::scaler {
namespace {

using container::ResourceKind;

TEST(ThresholdsTest, DefaultsValidate) {
  EXPECT_TRUE(SignalThresholds::Default().Validate().ok());
}

TEST(ThresholdsTest, ValidateCatchesBadRanges) {
  SignalThresholds t = SignalThresholds::Default();
  t.For(ResourceKind::kCpu).util_low_pct = 80.0;  // >= util_high
  EXPECT_FALSE(t.Validate().ok());

  t = SignalThresholds::Default();
  t.For(ResourceKind::kDiskIo).wait_high_ms_per_req = 0.5;  // < low
  EXPECT_FALSE(t.Validate().ok());

  t = SignalThresholds::Default();
  t.For(ResourceKind::kLogIo).wait_pct_significant = 0.0;
  EXPECT_FALSE(t.Validate().ok());

  t = SignalThresholds::Default();
  t.correlation_significant = 1.5;
  EXPECT_FALSE(t.Validate().ok());

  t = SignalThresholds::Default();
  t.extreme_factor = 0.9;
  EXPECT_FALSE(t.Validate().ok());
}

class CategorizeTest : public ::testing::Test {
 protected:
  telemetry::SignalSnapshot Snapshot() {
    telemetry::SignalSnapshot s;
    s.valid = true;
    s.latency_ms = 100.0;
    return s;
  }
  telemetry::ResourceSignals& Cpu(telemetry::SignalSnapshot& s) {
    return s.resources[static_cast<size_t>(ResourceKind::kCpu)];
  }
  SignalThresholds thresholds_ = SignalThresholds::Default();
};

TEST_F(CategorizeTest, InvalidSnapshotStaysInvalid) {
  telemetry::SignalSnapshot s;
  s.valid = false;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_FALSE(cats.valid);
}

TEST_F(CategorizeTest, UtilizationLevels) {
  auto s = Snapshot();
  Cpu(s).utilization_pct = 10.0;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).utilization, Level::kLow);
  EXPECT_TRUE(cats.resource(ResourceKind::kCpu).utilization_very_low);

  Cpu(s).utilization_pct = 50.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).utilization, Level::kMedium);

  Cpu(s).utilization_pct = 75.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).utilization, Level::kHigh);
  EXPECT_FALSE(cats.resource(ResourceKind::kCpu).utilization_extreme);

  Cpu(s).utilization_pct = 97.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_TRUE(cats.resource(ResourceKind::kCpu).utilization_extreme);
}

TEST_F(CategorizeTest, WaitMagnitudeLevels) {
  auto s = Snapshot();
  Cpu(s).wait_ms_per_request = 0.5;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_magnitude, Level::kLow);
  EXPECT_TRUE(cats.resource(ResourceKind::kCpu).wait_very_low);

  Cpu(s).wait_ms_per_request = 10.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_magnitude,
            Level::kMedium);

  Cpu(s).wait_ms_per_request = 40.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_magnitude, Level::kHigh);
  EXPECT_FALSE(cats.resource(ResourceKind::kCpu).wait_extreme);

  Cpu(s).wait_ms_per_request = 100.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_TRUE(cats.resource(ResourceKind::kCpu).wait_extreme);
}

TEST_F(CategorizeTest, WaitShareSignificance) {
  auto s = Snapshot();
  Cpu(s).wait_pct = 10.0;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_share,
            Significance::kNotSignificant);
  Cpu(s).wait_pct = 60.0;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_share,
            Significance::kSignificant);
}

TEST_F(CategorizeTest, TrendsOnlyWhenSignificant) {
  auto s = Snapshot();
  Cpu(s).utilization_trend.slope = 5.0;
  Cpu(s).utilization_trend.significant = false;
  Cpu(s).utilization_trend.direction = stats::TrendDirection::kIncreasing;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).utilization_trend,
            stats::TrendDirection::kNone);

  Cpu(s).utilization_trend.significant = true;
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).utilization_trend,
            stats::TrendDirection::kIncreasing);
  EXPECT_TRUE(cats.resource(ResourceKind::kCpu).AnyIncreasingTrend());
}

TEST_F(CategorizeTest, CorrelationSignificance) {
  auto s = Snapshot();
  Cpu(s).wait_latency_correlation = 0.3;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_latency_correlation,
            Significance::kNotSignificant);
  Cpu(s).wait_latency_correlation = -0.8;  // |rho| counts
  cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.resource(ResourceKind::kCpu).wait_latency_correlation,
            Significance::kSignificant);
}

TEST_F(CategorizeTest, LatencyVsGoal) {
  auto s = Snapshot();
  s.latency_ms = 100.0;
  LatencyGoal goal{telemetry::LatencyAggregate::kP95, 150.0};
  auto cats = Categorize(s, thresholds_, goal);
  EXPECT_EQ(cats.latency, LatencyCategory::kGood);
  EXPECT_TRUE(cats.has_latency_goal);
  EXPECT_NEAR(cats.latency_ratio, 100.0 / 150.0, 1e-9);

  s.latency_ms = 200.0;
  cats = Categorize(s, thresholds_, goal);
  EXPECT_EQ(cats.latency, LatencyCategory::kBad);
}

TEST_F(CategorizeTest, SafetyBufferTriggersBadBeforeGoal) {
  // Section 7.3: the scaler keeps a performance buffer — latency counts as
  // BAD slightly before the goal is actually crossed.
  auto s = Snapshot();
  LatencyGoal goal{telemetry::LatencyAggregate::kP95, 100.0};
  s.latency_ms = 95.0;  // within goal, above the 92% buffer
  auto cats = Categorize(s, thresholds_, goal);
  EXPECT_EQ(cats.latency, LatencyCategory::kBad);
  s.latency_ms = 90.0;  // under the buffer
  cats = Categorize(s, thresholds_, goal);
  EXPECT_EQ(cats.latency, LatencyCategory::kGood);
  CategorizeOptions no_buffer;
  no_buffer.latency_bad_fraction = 1.0;
  s.latency_ms = 95.0;
  cats = Categorize(s, thresholds_, goal, no_buffer);
  EXPECT_EQ(cats.latency, LatencyCategory::kGood);
}

TEST_F(CategorizeTest, NoGoalMeansGood) {
  auto s = Snapshot();
  s.latency_ms = 1e9;
  auto cats = Categorize(s, thresholds_, std::nullopt);
  EXPECT_EQ(cats.latency, LatencyCategory::kGood);
  EXPECT_FALSE(cats.has_latency_goal);
  EXPECT_FALSE(cats.latency_degrading);
}

TEST_F(CategorizeTest, DegradingWhenProjectionCrossesGoal) {
  auto s = Snapshot();
  s.latency_ms = 120.0;
  s.latency_trend.significant = true;
  s.latency_trend.direction = stats::TrendDirection::kIncreasing;
  s.latency_trend.slope = 5.0;  // ms per sample
  LatencyGoal goal{telemetry::LatencyAggregate::kP95, 150.0};
  auto cats = Categorize(s, thresholds_, goal);
  EXPECT_TRUE(cats.latency_degrading);

  // A flat-enough slope does not project over the goal.
  s.latency_trend.slope = 0.01;
  cats = Categorize(s, thresholds_, goal);
  EXPECT_FALSE(cats.latency_degrading);

  // A decreasing trend is never degrading.
  s.latency_trend.slope = -5.0;
  s.latency_trend.direction = stats::TrendDirection::kDecreasing;
  cats = Categorize(s, thresholds_, goal);
  EXPECT_FALSE(cats.latency_degrading);
}

TEST_F(CategorizeTest, BadLatencyIsNotAlsoDegrading) {
  auto s = Snapshot();
  s.latency_ms = 500.0;
  s.latency_trend.significant = true;
  s.latency_trend.direction = stats::TrendDirection::kIncreasing;
  s.latency_trend.slope = 50.0;
  LatencyGoal goal{telemetry::LatencyAggregate::kP95, 150.0};
  auto cats = Categorize(s, thresholds_, goal);
  EXPECT_EQ(cats.latency, LatencyCategory::kBad);
  EXPECT_FALSE(cats.latency_degrading);  // BAD subsumes it
}

}  // namespace
}  // namespace dbscale::scaler
