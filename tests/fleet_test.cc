#include <gtest/gtest.h>

#include "src/fleet/calibrator.h"
#include "src/fleet/demand_analysis.h"
#include "src/fleet/fleet_sim.h"
#include "src/fleet/tenant_model.h"
#include "src/fleet/wait_analysis.h"

namespace dbscale::fleet {
namespace {

using container::Catalog;
using container::ResourceKind;

FleetOptions SmallFleet() {
  FleetOptions options;
  options.num_tenants = 150;
  options.num_intervals = 2 * 288;  // two days
  options.seed = 11;
  return options;
}

TEST(TenantModelTest, DeterministicPerSeed) {
  Catalog catalog = Catalog::MakeLockStep();
  TenantModelOptions options;
  TenantModel a(0, &catalog, options, Rng(5));
  TenantModel b(0, &catalog, options, Rng(5));
  for (int t = 0; t < 50; ++t) {
    TenantInterval ia = a.Step(t);
    TenantInterval ib = b.Step(t);
    EXPECT_EQ(ia.assigned_rung, ib.assigned_rung);
    EXPECT_DOUBLE_EQ(ia.wait_ms[0], ib.wait_ms[0]);
  }
}

TEST(TenantModelTest, IntervalInvariants) {
  Catalog catalog = Catalog::MakeLockStep();
  TenantModelOptions options;
  Rng root(3);
  for (int tenant = 0; tenant < 20; ++tenant) {
    TenantModel model(tenant, &catalog, options, root.Fork());
    for (int t = 0; t < 200; ++t) {
      TenantInterval interval = model.Step(t);
      EXPECT_GE(interval.assigned_rung, 0);
      EXPECT_LT(interval.assigned_rung, catalog.num_rungs());
      EXPECT_GE(interval.completed, 1);
      double share_sum = 0.0;
      for (ResourceKind kind : container::kAllResources) {
        const size_t ri = static_cast<size_t>(kind);
        EXPECT_GE(interval.utilization_pct[ri], 0.0);
        EXPECT_LE(interval.utilization_pct[ri], 100.0);
        EXPECT_GE(interval.wait_ms[ri], 0.0);
        share_sum += interval.wait_pct[ri];
      }
      EXPECT_NEAR(share_sum, 100.0, 1e-6);
    }
  }
}

TEST(FleetSimTest, ProducesExpectedVolumes) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetOptions options = SmallFleet();
  FleetSimulator sim(catalog, options);
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet->num_tenants, 150);
  // One hourly record per tenant-hour.
  EXPECT_EQ(fleet->hourly.size(),
            static_cast<size_t>(150 * 2 * 24));
  EXPECT_EQ(fleet->tenant_changes.size(), 150u);
  EXPECT_GT(fleet->inter_event_minutes.size(), 100u);
}

void ExpectFleetTelemetryIdentical(const FleetTelemetry& a,
                                   const FleetTelemetry& b) {
  EXPECT_EQ(a.num_tenants, b.num_tenants);
  EXPECT_EQ(a.num_intervals, b.num_intervals);
  ASSERT_EQ(a.hourly.size(), b.hourly.size());
  for (size_t i = 0; i < a.hourly.size(); ++i) {
    const HourlyRecord& ra = a.hourly[i];
    const HourlyRecord& rb = b.hourly[i];
    ASSERT_EQ(ra.tenant_id, rb.tenant_id);
    ASSERT_EQ(ra.hour, rb.hour);
    for (ResourceKind kind : container::kAllResources) {
      const size_t ri = static_cast<size_t>(kind);
      // Bit-identical, not approximately equal: the parallel path must
      // reproduce the serial arithmetic exactly.
      ASSERT_EQ(ra.utilization_pct[ri], rb.utilization_pct[ri]);
      ASSERT_EQ(ra.wait_ms[ri], rb.wait_ms[ri]);
      ASSERT_EQ(ra.wait_pct[ri], rb.wait_pct[ri]);
      ASSERT_EQ(ra.wait_ms_per_request[ri], rb.wait_ms_per_request[ri]);
    }
  }
  ASSERT_EQ(a.inter_event_minutes, b.inter_event_minutes);
  ASSERT_EQ(a.step_size_counts, b.step_size_counts);
  ASSERT_EQ(a.tenant_changes.size(), b.tenant_changes.size());
  for (size_t i = 0; i < a.tenant_changes.size(); ++i) {
    ASSERT_EQ(a.tenant_changes[i].tenant_id, b.tenant_changes[i].tenant_id);
    ASSERT_EQ(a.tenant_changes[i].num_changes,
              b.tenant_changes[i].num_changes);
    ASSERT_EQ(a.tenant_changes[i].changes_per_day,
              b.tenant_changes[i].changes_per_day);
  }
}

TEST(FleetSimTest, ParallelRunBitIdenticalToSerial) {
  Catalog catalog = Catalog::MakeLockStep();
  for (uint64_t seed : {11u, 29u, 73u}) {
    FleetOptions options;
    options.num_tenants = 60;
    options.num_intervals = 288;  // one day
    options.seed = seed;

    options.num_threads = 1;
    auto serial = FleetSimulator(catalog, options).Run();
    ASSERT_TRUE(serial.ok());

    for (int threads : {2, 4, 8}) {
      options.num_threads = threads;
      auto parallel = FleetSimulator(catalog, options).Run();
      ASSERT_TRUE(parallel.ok());
      ExpectFleetTelemetryIdentical(*serial, *parallel);
    }
  }
}

TEST(FleetSimTest, RejectsBadOptions) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetOptions options;
  options.num_tenants = 0;
  EXPECT_FALSE(FleetSimulator(catalog, options).Run().ok());
}

TEST(FleetSimTest, MostChangesAreSmallSteps) {
  // Section 4: ~90% of demand-driven container changes are one rung; one
  // and two rungs together are ~98%.
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  EXPECT_GT(fleet->OneStepFraction(), 0.70);
  EXPECT_GT(fleet->AtMostTwoStepFraction(), 0.90);
}

TEST(DemandAnalysisTest, IeiCdfShapes) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  auto iei = AnalyzeInterEventIntervals(*fleet);
  ASSERT_TRUE(iei.ok());
  ASSERT_EQ(iei->reference_points.size(), 5u);
  // Cumulative at 60 min is large (paper: 86%), grows toward 1440.
  EXPECT_GT(iei->reference_points[0].second, 50.0);
  for (size_t i = 1; i < iei->reference_points.size(); ++i) {
    EXPECT_GE(iei->reference_points[i].second,
              iei->reference_points[i - 1].second);
  }
  EXPECT_GT(iei->reference_points.back().second, 95.0);
}

TEST(DemandAnalysisTest, ChangeFrequencyBuckets) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  auto freq = AnalyzeChangeFrequency(*fleet);
  ASSERT_TRUE(freq.ok());
  ASSERT_EQ(freq->bucket_pct.size(), 8u);
  double total = 0.0;
  for (double pct : freq->bucket_pct) total += pct;
  EXPECT_NEAR(total, 100.0, 1e-6);
  EXPECT_NEAR(freq->cumulative_pct.back(), 100.0, 1e-6);
  // Paper headline: the overwhelming majority change at least daily.
  EXPECT_GT(freq->fraction_at_least_1_per_day, 0.6);
  EXPECT_GE(freq->fraction_at_least_1_per_day,
            freq->fraction_at_least_6_per_day);
}

TEST(WaitAnalysisTest, ScatterShowsWeakPositiveCorrelation) {
  // Figure 4's shape: increasing trend but wide band (weak correlation).
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  for (ResourceKind kind : {ResourceKind::kCpu, ResourceKind::kDiskIo}) {
    auto scatter = AnalyzeWaitUtilScatter(*fleet, kind);
    ASSERT_TRUE(scatter.ok());
    EXPECT_GT(scatter->spearman_rho, 0.15);
    EXPECT_LT(scatter->spearman_rho, 0.85);  // weak, not tight
    // Wide band: p90/p10 spread within buckets is orders of magnitude.
    bool wide = false;
    for (size_t b = 0; b < scatter->wait_p90.size(); ++b) {
      if (scatter->wait_p10[b] > 0.0 &&
          scatter->wait_p90[b] / scatter->wait_p10[b] > 20.0) {
        wide = true;
      }
    }
    EXPECT_TRUE(wide);
  }
}

TEST(WaitAnalysisTest, SplitCdfsSeparate) {
  // Figure 6's property: high-utilization hours have clearly larger waits
  // than low-utilization hours at matched percentiles.
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  auto split = AnalyzeWaitSplit(*fleet, ResourceKind::kCpu);
  ASSERT_TRUE(split.ok());
  double low_p90 = split->wait_ms_low_util.ValueAtPercentile(90).value();
  double high_p75 =
      split->wait_ms_high_util.ValueAtPercentile(75).value();
  EXPECT_GT(high_p75, low_p90);
  // Wait *shares* separate too (Figure 6c/d).
  double share_low_p80 =
      split->wait_pct_low_util.ValueAtPercentile(80).value();
  double share_high_p50 =
      split->wait_pct_high_util.ValueAtPercentile(50).value();
  EXPECT_GT(share_high_p50, share_low_p80 * 0.9);
}

TEST(WaitAnalysisTest, SplitValidatesBounds) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  EXPECT_FALSE(
      AnalyzeWaitSplit(*fleet, ResourceKind::kCpu, 80.0, 30.0).ok());
}

TEST(CalibratorTest, ProducesValidOrderedThresholds) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  ThresholdCalibrator calibrator;
  auto thresholds = calibrator.Calibrate(*fleet);
  ASSERT_TRUE(thresholds.ok());
  EXPECT_TRUE(thresholds->Validate().ok());
  for (ResourceKind kind : container::kAllResources) {
    const auto& r = thresholds->For(kind);
    EXPECT_GT(r.wait_high_ms_per_req, r.wait_low_ms_per_req);
    EXPECT_GE(r.wait_pct_significant, 10.0);
    EXPECT_LE(r.wait_pct_significant, 60.0);
    // Utilization bounds inherited from the base (administrator rules).
    EXPECT_DOUBLE_EQ(r.util_low_pct, 30.0);
  }
}

TEST(CalibratorTest, DeterministicForSameFleet) {
  Catalog catalog = Catalog::MakeLockStep();
  FleetSimulator sim(catalog, SmallFleet());
  auto fleet = sim.Run();
  ASSERT_TRUE(fleet.ok());
  ThresholdCalibrator calibrator;
  auto a = calibrator.Calibrate(*fleet);
  auto b = calibrator.Calibrate(*fleet);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->For(ResourceKind::kCpu).wait_high_ms_per_req,
                   b->For(ResourceKind::kCpu).wait_high_ms_per_req);
}

}  // namespace
}  // namespace dbscale::fleet
