// Tests for the closed-loop arrival mode (trace value = concurrent client
// sessions, the literal reading of the paper's Figure 8 axis).

#include <gtest/gtest.h>

#include "src/baselines/static_policy.h"
#include "src/container/catalog.h"
#include "src/sim/experiment.h"
#include "src/workload/generator.h"
#include "src/workload/mix.h"

namespace dbscale::workload {
namespace {

struct ClosedLoopRig {
  engine::EventQueue events;
  container::Catalog catalog = container::Catalog::MakeLockStep();
  WorkloadSpec spec = MakeCpuioWorkload();
  std::unique_ptr<engine::DatabaseEngine> engine;
  std::unique_ptr<RequestGenerator> generator;

  ClosedLoopRig(int rung, Trace trace, Duration step) {
    engine = std::make_unique<engine::DatabaseEngine>(
        &events, spec.MakeEngineOptions(), catalog.rung(rung), Rng(3));
    engine->PrewarmBufferPool();
    GeneratorOptions options;
    options.step_duration = step;
    options.mode = ArrivalMode::kClosedLoop;
    options.think_time = Duration::Millis(50);
    generator = std::make_unique<RequestGenerator>(
        engine.get(), spec, std::move(trace), options, Rng(4));
  }
};

TEST(ClosedLoopTest, InFlightBoundedBySessions) {
  // Even on the tiniest container, in-flight never exceeds the session
  // count — the defining closed-loop property.
  ClosedLoopRig rig(0, Trace("t", {30.0}), Duration::Seconds(20));
  rig.generator->Start();
  SimTime t = SimTime::Zero();
  while (t < rig.generator->end_time()) {
    t += Duration::Seconds(1);
    rig.events.RunUntil(t);
    EXPECT_LE(rig.engine->requests_in_flight(), 30u);
  }
}

TEST(ClosedLoopTest, ThroughputAdaptsToCapacity) {
  // The same 60 sessions complete far fewer requests on S1 than on S11,
  // with no unbounded queue on either.
  auto run = [](int rung) {
    ClosedLoopRig rig(rung, Trace("t", {60.0}), Duration::Seconds(30));
    rig.generator->Start();
    rig.events.RunUntil(rig.generator->end_time());
    return rig.engine->requests_completed();
  };
  const uint64_t small = run(3);
  const uint64_t large = run(10);
  EXPECT_GT(large, (3 * small) / 2);
  EXPECT_GT(small, 300u);  // the small container still makes progress
}

TEST(ClosedLoopTest, SessionsFollowTraceSteps) {
  ClosedLoopRig rig(10, Trace("t", {40.0, 0.0, 40.0}),
                    Duration::Seconds(10));
  rig.generator->Start();
  rig.events.RunUntil(SimTime::Zero() + Duration::Seconds(10));
  const uint64_t after_busy = rig.generator->requests_issued();
  EXPECT_GT(after_busy, 100u);
  rig.events.RunUntil(SimTime::Zero() + Duration::Seconds(20));
  const uint64_t after_idle = rig.generator->requests_issued();
  // Sessions retire within one completion of the idle step's start.
  EXPECT_LT(after_idle - after_busy, 60u);
  rig.events.RunUntil(rig.generator->end_time());
  EXPECT_GT(rig.generator->requests_issued(), after_idle + 100u);
}

TEST(ClosedLoopTest, LatencyBoundedUnderUnderprovisioning) {
  // Open-loop on a tiny container explodes; closed-loop stays near
  // sessions / throughput. This is the paper's graceful-degradation
  // behaviour (its Avg baseline missed the goal by ~3x, not ~1000x).
  sim::SimulationOptions options;
  CpuioOptions cpuio;
  cpuio.working_set_mb = 1024.0;  // fits S3's pool: CPU-bound saturation
  options.workload = MakeCpuioWorkload(cpuio);
  options.trace = Trace("burst", std::vector<double>(40, 120.0));
  options.interval_duration = Duration::Seconds(20);
  options.seed = 7;

  baselines::StaticPolicy tiny("S3", options.catalog.rung(2));
  options.arrival_mode = ArrivalMode::kOpenLoop;
  auto open = sim::RunWithPolicy(options, &tiny, 2);
  options.arrival_mode = ArrivalMode::kClosedLoop;
  auto closed = sim::RunWithPolicy(options, &tiny, 2);
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(closed.ok());
  EXPECT_LT(closed->latency_p95_ms, open->latency_p95_ms / 3.0);
  EXPECT_GT(closed->total_completed, 1000u);
}

}  // namespace
}  // namespace dbscale::workload
