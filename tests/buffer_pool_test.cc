#include "src/engine/buffer_pool.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace dbscale::engine {
namespace {

constexpr int64_t kWs = 1000;      // working-set pages
constexpr int64_t kDb = 10000;     // database pages

TEST(PageMathTest, MbPageRoundTrip) {
  EXPECT_EQ(MbToPages(8.0), 1024);
  EXPECT_DOUBLE_EQ(PagesToMb(1024), 8.0);
}

TEST(BufferPoolTest, StartsEmpty) {
  Rng rng(1);
  BufferPool pool(2000, kWs, kDb, &rng);
  EXPECT_EQ(pool.cached_pages(), 0);
  EXPECT_DOUBLE_EQ(pool.HotHitProbability(), 0.0);
  EXPECT_FALSE(pool.UnderMemoryPressure());
}

TEST(BufferPoolTest, WarmsUpOneMissAtATime) {
  Rng rng(1);
  BufferPool pool(2000, kWs, kDb, &rng);
  int misses = 0;
  for (int i = 0; i < 20000 && pool.hot_cached() < kWs; ++i) {
    if (!pool.Access(true)) ++misses;
  }
  EXPECT_EQ(pool.hot_cached(), kWs);
  EXPECT_EQ(misses, kWs);  // exactly one page admitted per miss
}

TEST(BufferPoolTest, WarmPoolHitsHotAccesses) {
  Rng rng(1);
  BufferPool pool(2000, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(pool.Access(true));
  }
}

TEST(BufferPoolTest, PressureWhenCapacityBelowWorkingSet) {
  Rng rng(1);
  BufferPool pool(600, kWs, kDb, &rng);
  EXPECT_TRUE(pool.UnderMemoryPressure());
  for (int i = 0; i < 50000; ++i) pool.Access(true);
  // Hot pages cap at capacity; miss rate ~ 1 - capacity/ws = 40%.
  EXPECT_EQ(pool.hot_cached(), 600);
  int misses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!pool.Access(true)) ++misses;
  }
  EXPECT_NEAR(static_cast<double>(misses) / n, 0.4, 0.03);
}

TEST(BufferPoolTest, ColdAccessesChurnInRemainingSpace) {
  Rng rng(1);
  BufferPool pool(1500, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  for (int i = 0; i < 100000; ++i) pool.Access(false);
  // Cold pages fill only capacity - hot = 500 pages.
  EXPECT_EQ(pool.cold_cached(), 500);
  EXPECT_EQ(pool.hot_cached(), kWs);  // hot set retained
  EXPECT_EQ(pool.cached_pages(), 1500);
}

TEST(BufferPoolTest, ColdHitRateMatchesCoverage) {
  Rng rng(1);
  BufferPool pool(5500, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  for (int i = 0; i < 200000; ++i) pool.Access(false);
  // Cold budget 4500 of 9000 cold pages: ~50% hit rate.
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (pool.Access(false)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.5, 0.05);
}

TEST(BufferPoolTest, ShrinkEvictsColdBeforeHot) {
  Rng rng(1);
  BufferPool pool(1500, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  for (int i = 0; i < 50000; ++i) pool.Access(false);
  ASSERT_EQ(pool.cold_cached(), 500);
  pool.SetCapacity(1200);
  EXPECT_EQ(pool.hot_cached(), kWs);     // hot untouched
  EXPECT_EQ(pool.cold_cached(), 200);    // cold evicted first
  pool.SetCapacity(800);
  EXPECT_EQ(pool.cold_cached(), 0);
  EXPECT_EQ(pool.hot_cached(), 800);     // hot evicted only when forced
}

TEST(BufferPoolTest, GrowKeepsCachedPages) {
  Rng rng(1);
  BufferPool pool(600, kWs, kDb, &rng);
  for (int i = 0; i < 20000; ++i) pool.Access(true);
  ASSERT_EQ(pool.hot_cached(), 600);
  pool.SetCapacity(2000);
  EXPECT_EQ(pool.hot_cached(), 600);  // no eviction on grow
  EXPECT_FALSE(pool.UnderMemoryPressure());
  // And it can now warm the rest of the working set.
  while (pool.hot_cached() < kWs) pool.Access(true);
  EXPECT_EQ(pool.hot_cached(), kWs);
}

TEST(BufferPoolTest, ShrinkBelowWorkingSetCausesMissCliff) {
  // The Figure 14 mechanism: a pool at the working set size serves hot
  // accesses with ~no misses; shrinking 40% below it produces a large,
  // sustained miss rate.
  Rng rng(1);
  BufferPool pool(1000, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  int misses_before = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!pool.Access(true)) ++misses_before;
  }
  EXPECT_EQ(misses_before, 0);
  pool.SetCapacity(600);
  int misses_after = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!pool.Access(true)) ++misses_after;
  }
  EXPECT_GT(misses_after, 3000);
}

TEST(BufferPoolTest, UsedMb) {
  Rng rng(1);
  BufferPool pool(1024, kWs, kDb, &rng);
  EXPECT_DOUBLE_EQ(pool.used_mb(), 0.0);
  while (pool.hot_cached() < 512) pool.Access(true);
  EXPECT_DOUBLE_EQ(pool.used_mb(), 4.0);  // 512 pages * 8KB
}

TEST(BufferPoolTest, SetWorkingSetClampsHotCached) {
  Rng rng(1);
  BufferPool pool(2000, kWs, kDb, &rng);
  while (pool.hot_cached() < kWs) pool.Access(true);
  pool.SetWorkingSet(400);
  EXPECT_EQ(pool.hot_cached(), 400);
  EXPECT_EQ(pool.working_set_pages(), 400);
}

}  // namespace
}  // namespace dbscale::engine
