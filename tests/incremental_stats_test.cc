// Randomized equivalence suite for the incremental sliding-window signal
// engine (stats/incremental.h, telemetry/manager.cc).
//
// The contract under test is *exact* equality: every comparison below uses
// EXPECT_EQ on raw doubles, never a tolerance. The incremental structures
// must reproduce the batch kernels bit for bit across tens of thousands of
// seeded slides covering ties, constant windows, absent (filtered) entries,
// regime changes, and rebuild/fallback transitions.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/stats/incremental.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"
#include "src/stats/theil_sen.h"
#include "src/telemetry/manager.h"
#include "src/telemetry/sample.h"
#include "src/telemetry/store.h"

namespace dbscale {
namespace {

using container::ResourceKind;
using stats::IncrementalTheilSen;
using stats::OrderStatMultiset;
using stats::SlidingOrderStats;
using stats::SlidingRankWindow;
using stats::SlopeArena;
using stats::TheilSenEstimator;
using stats::TheilSenScratch;
using stats::TrendResult;
using telemetry::LatencyAggregate;
using telemetry::SignalScratch;
using telemetry::SignalSnapshot;
using telemetry::TelemetryManager;
using telemetry::TelemetryManagerOptions;
using telemetry::TelemetrySample;
using telemetry::TelemetryStore;

// ---------------------------------------------------------------------------
// Value stream with adversarial regimes for order/rank/slope maintenance:
// smooth uniforms, heavily quantized values (ties), constant stretches,
// and steep trends. Occasionally emits "absent" entries for the filtered
// series.
// ---------------------------------------------------------------------------

class RegimeStream {
 public:
  explicit RegimeStream(uint64_t seed) : rng_(seed) {}

  // Returns {value, present}.
  std::pair<double, bool> Next() {
    if (step_ % 97 == 0) {
      regime_ = static_cast<int>(rng_.UniformInt(0, 3));
      base_ = rng_.Uniform(-50.0, 50.0);
    }
    ++step_;
    const bool present = !rng_.Bernoulli(0.15);
    double v = 0.0;
    switch (regime_) {
      case 0:  // smooth
        v = rng_.Uniform(-100.0, 100.0);
        break;
      case 1:  // quantized: guaranteed tie collisions within any window
        v = static_cast<double>(rng_.UniformInt(0, 6));
        break;
      case 2:  // constant window
        v = base_;
        break;
      default:  // trending with tie-prone noise
        v = base_ + 0.5 * static_cast<double>(step_ % 211) +
            static_cast<double>(rng_.UniformInt(0, 2));
        break;
    }
    return {v, present};
  }

 private:
  Rng rng_;
  uint64_t step_ = 0;
  int regime_ = 0;
  double base_ = 0.0;
};

void ExpectTrendEq(const TrendResult& batch, const TrendResult& inc) {
  EXPECT_EQ(batch.slope, inc.slope);
  EXPECT_EQ(batch.intercept, inc.intercept);
  EXPECT_EQ(batch.fraction_positive, inc.fraction_positive);
  EXPECT_EQ(batch.fraction_negative, inc.fraction_negative);
  EXPECT_EQ(batch.significant, inc.significant);
  EXPECT_EQ(batch.direction, inc.direction);
}

// ---------------------------------------------------------------------------
// OrderStatMultiset unit coverage.
// ---------------------------------------------------------------------------

TEST(OrderStatMultisetTest, InsertEraseKthAgainstSortedVector) {
  SlopeArena arena;
  arena.Reset(256);
  OrderStatMultiset set;
  set.Reset(&arena);

  Rng rng(7);
  std::vector<double> reference;
  for (int step = 0; step < 12000; ++step) {
    // Grow-then-drain bias: the population sweeps up past several thousand
    // entries (a multi-level tree, so splits/borrows/merges hit internal
    // nodes too) and back down to near empty.
    const double insert_p = step < 6000 ? 0.8 : 0.3;
    const bool insert = reference.empty() || rng.Bernoulli(insert_p);
    if (insert) {
      // Quantized so duplicates are common.
      double v = static_cast<double>(rng.UniformInt(-10, 10)) / 4.0;
      set.Insert(v);
      reference.insert(
          std::lower_bound(reference.begin(), reference.end(), v), v);
    } else {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(reference.size()) - 1));
      double v = reference[idx];
      EXPECT_TRUE(set.Erase(v));
      reference.erase(reference.begin() + static_cast<ptrdiff_t>(idx));
    }
    ASSERT_EQ(set.size(), reference.size());
    if (!reference.empty()) {
      // Spot-check three order statistics per step.
      for (size_t k : {size_t{0}, reference.size() / 2,
                       reference.size() - 1}) {
        EXPECT_EQ(set.Kth(k), reference[k]);
      }
    }
  }
  EXPECT_EQ(set.Erase(12345.0), false);
}

TEST(SlopeArenaTest, ReusesNodesWithoutGrowth) {
  SlopeArena arena;
  arena.Reset(256);
  OrderStatMultiset set;
  set.Reset(&arena);
  const size_t allocated = arena.allocated_nodes();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      set.Insert(static_cast<double>(i % 50));
    }
    EXPECT_EQ(set.size(), 256u);
    EXPECT_GE(arena.live_nodes(), 1u);
    for (int i = 0; i < 256; ++i) {
      EXPECT_TRUE(set.Erase(static_cast<double>(i % 50)));
    }
    EXPECT_EQ(set.size(), 0u);
    EXPECT_EQ(arena.live_nodes(), 0u);
  }
  // The pool sized at Reset never grows across churn rounds.
  EXPECT_EQ(arena.allocated_nodes(), allocated);
}

// ---------------------------------------------------------------------------
// Kernel-level randomized equivalence: every slide compared to the batch
// oracle. Parametrized over window size; the totals across the suite are
// well past 10k slides.
// ---------------------------------------------------------------------------

class KernelEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelEquivalenceTest, OrderStatsMatchBatchEverySlide) {
  const size_t kWindow = GetParam();
  const int kSlides = 4000;

  SlidingOrderStats inc;
  inc.Reset(kWindow);
  std::deque<std::pair<double, bool>> window;
  RegimeStream stream(kWindow * 1000 + 1);

  std::vector<double> batch;
  for (int slide = 0; slide < kSlides; ++slide) {
    auto [v, present] = stream.Next();
    if (present) {
      inc.Push(v);
    } else {
      inc.PushAbsent();
    }
    window.emplace_back(v, present);
    if (window.size() > kWindow) window.pop_front();

    batch.clear();
    for (const auto& [bv, bp] : window) {
      if (bp) batch.push_back(bv);
    }
    ASSERT_EQ(inc.count(), batch.size());
    if (batch.empty()) continue;
    SCOPED_TRACE(slide);

    std::vector<double> scratch = batch;
    ASSERT_EQ(inc.Median(), *stats::MedianInPlace(scratch));
    scratch = batch;
    ASSERT_EQ(inc.Percentile(95.0), *stats::PercentileInPlace(scratch, 95.0));
    scratch = batch;
    ASSERT_EQ(inc.Percentile(0.0), *stats::PercentileInPlace(scratch, 0.0));
    scratch = batch;
    ASSERT_EQ(*inc.Mad(), *stats::MadInPlace(scratch));
  }
}

TEST_P(KernelEquivalenceTest, TheilSenMatchesBatchEverySlide) {
  const size_t kWindow = GetParam();
  const int kSlides = 3000;

  SlopeArena arena;
  arena.Reset(kWindow * (kWindow - 1) / 2);
  IncrementalTheilSen inc;
  inc.Reset(kWindow, &arena);

  const TheilSenEstimator estimator(0.70);
  TheilSenScratch batch_scratch;
  TheilSenScratch inc_scratch;

  std::deque<std::pair<double, bool>> window;
  RegimeStream stream(kWindow * 1000 + 2);
  std::vector<double> batch;
  for (int slide = 0; slide < kSlides; ++slide) {
    auto [v, present] = stream.Next();
    if (present) {
      inc.Push(v);
    } else {
      inc.PushAbsent();
    }
    window.emplace_back(v, present);
    if (window.size() > kWindow) window.pop_front();

    batch.clear();
    for (const auto& [bv, bp] : window) {
      if (bp) batch.push_back(bv);
    }
    ASSERT_EQ(inc.count(), batch.size());
    if (batch.size() < 3) continue;
    SCOPED_TRACE(slide);

    auto batch_fit = estimator.FitSequence(batch, &batch_scratch);
    auto inc_fit = inc.Fit(estimator, &inc_scratch);
    ASSERT_TRUE(batch_fit.ok());
    ASSERT_TRUE(inc_fit.ok());
    ExpectTrendEq(*batch_fit, *inc_fit);
  }
}

TEST_P(KernelEquivalenceTest, SpearmanMatchesBatchEverySlide) {
  const size_t kWindow = GetParam();
  const int kSlides = 3000;

  SlidingRankWindow inc_x;
  SlidingRankWindow inc_y;
  inc_x.Reset(kWindow);
  inc_y.Reset(kWindow);

  std::deque<double> wx;
  std::deque<double> wy;
  RegimeStream sx(kWindow * 1000 + 3);
  RegimeStream sy(kWindow * 1000 + 4);
  stats::SpearmanScratch scratch;

  std::vector<double> bx;
  std::vector<double> by;
  for (int slide = 0; slide < kSlides; ++slide) {
    const double x = sx.Next().first;
    const double y = sy.Next().first;
    inc_x.Push(x);
    inc_y.Push(y);
    wx.push_back(x);
    wy.push_back(y);
    if (wx.size() > kWindow) {
      wx.pop_front();
      wy.pop_front();
    }
    if (wx.size() < 3) continue;
    SCOPED_TRACE(slide);

    bx.assign(wx.begin(), wx.end());
    by.assign(wy.begin(), wy.end());
    auto batch_rho = stats::SpearmanCorrelation(bx, by, &scratch);
    auto inc_rho = stats::PearsonCorrelation(inc_x.Ranks(), inc_y.Ranks());
    ASSERT_TRUE(batch_rho.ok());
    ASSERT_TRUE(inc_rho.ok());
    ASSERT_EQ(*batch_rho, *inc_rho);
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, KernelEquivalenceTest,
                         ::testing::Values(size_t{5}, size_t{12}, size_t{24},
                                           size_t{48}));

// ---------------------------------------------------------------------------
// Manager-level equivalence: the incremental Compute path against the batch
// oracle on the same store, snapshot field by snapshot field.
// ---------------------------------------------------------------------------

TelemetrySample RandomSample(Rng& rng, double start_sec, double period_sec) {
  TelemetrySample s;
  s.period_start = SimTime::Zero() + Duration::Seconds(start_sec);
  s.period_end = s.period_start + Duration::Seconds(period_sec);
  // ~10% idle samples exercise the latency filter's absent entries.
  s.requests_completed = rng.Bernoulli(0.1) ? 0 : rng.UniformInt(1, 500);
  s.requests_started = s.requests_completed;
  s.latency_avg_ms = rng.Uniform(0.5, 80.0);
  s.latency_p95_ms = s.latency_avg_ms * rng.Uniform(1.0, 4.0);
  s.memory_used_mb = rng.Uniform(100.0, 4000.0);
  s.memory_active_mb = s.memory_used_mb * rng.Uniform(0.3, 1.0);
  s.physical_reads = rng.UniformInt(0, 10000);
  for (size_t r = 0; r < container::kNumResources; ++r) {
    // Quantized utilization creates rank ties in the correlation windows.
    s.utilization_pct[r] = static_cast<double>(rng.UniformInt(0, 20)) * 5.0;
  }
  for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
    s.wait_ms[w] = rng.Bernoulli(0.3) ? 0.0 : rng.Uniform(0.0, 900.0);
  }
  return s;
}

void ExpectSnapshotEq(const SignalSnapshot& batch,
                      const SignalSnapshot& inc) {
  ASSERT_EQ(batch.valid, inc.valid);
  if (!batch.valid) return;
  EXPECT_EQ(batch.latency_ms, inc.latency_ms);
  ExpectTrendEq(batch.latency_trend, inc.latency_trend);
  EXPECT_EQ(batch.latency_aggregate, inc.latency_aggregate);
  EXPECT_EQ(batch.throughput_rps, inc.throughput_rps);
  EXPECT_EQ(batch.memory_used_mb, inc.memory_used_mb);
  EXPECT_EQ(batch.physical_reads_per_sec, inc.physical_reads_per_sec);
  EXPECT_EQ(batch.total_wait_ms, inc.total_wait_ms);
  for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
    EXPECT_EQ(batch.wait_pct_by_class[w], inc.wait_pct_by_class[w]);
  }
  for (ResourceKind kind : container::kAllResources) {
    SCOPED_TRACE(container::ResourceKindToString(kind));
    const auto& b = batch.resource(kind);
    const auto& i = inc.resource(kind);
    EXPECT_EQ(b.utilization_pct, i.utilization_pct);
    EXPECT_EQ(b.wait_ms, i.wait_ms);
    EXPECT_EQ(b.wait_ms_per_request, i.wait_ms_per_request);
    EXPECT_EQ(b.wait_pct, i.wait_pct);
    ExpectTrendEq(b.utilization_trend, i.utilization_trend);
    ExpectTrendEq(b.wait_trend, i.wait_trend);
    EXPECT_EQ(b.wait_latency_correlation, i.wait_latency_correlation);
    EXPECT_EQ(b.utilization_latency_correlation,
              i.utilization_latency_correlation);
  }
}

class ManagerEquivalenceTest
    : public ::testing::TestWithParam<LatencyAggregate> {};

TEST_P(ManagerEquivalenceTest, IncrementalMatchesBatchEveryInterval) {
  TelemetryManagerOptions inc_options;
  inc_options.latency_aggregate = GetParam();
  inc_options.incremental = true;
  TelemetryManagerOptions batch_options = inc_options;
  batch_options.incremental = false;

  const TelemetryManager inc_manager(inc_options);
  const TelemetryManager batch_manager(batch_options);
  SignalScratch inc_scratch;
  SignalScratch batch_scratch;

  TelemetryStore store;
  Rng rng(11);
  double t = 0.0;
  for (int interval = 0; interval < 1500; ++interval) {
    // Simulation appends several samples per Compute; vary the burst so
    // the engine's gap-replay path sees 1..4 new samples at a time.
    const int burst = static_cast<int>(rng.UniformInt(1, 4));
    for (int b = 0; b < burst; ++b) {
      store.Append(RandomSample(rng, t, 5.0));
      t += 5.0;
    }
    SCOPED_TRACE(interval);
    SimTime now = store.back().period_end;
    SignalSnapshot inc = inc_manager.Compute(store, now, &inc_scratch);
    SignalSnapshot batch = batch_manager.Compute(store, now, &batch_scratch);
    ExpectSnapshotEq(batch, inc);
  }
}

INSTANTIATE_TEST_SUITE_P(Aggregates, ManagerEquivalenceTest,
                         ::testing::Values(LatencyAggregate::kP95,
                                           LatencyAggregate::kAverage));

TEST(ManagerEquivalenceTest, RebuildAfterClearMatchesBatch) {
  const TelemetryManager manager(TelemetryManagerOptions{});
  TelemetryManagerOptions batch_options;
  batch_options.incremental = false;
  const TelemetryManager batch_manager(batch_options);
  SignalScratch scratch;
  SignalScratch batch_scratch;

  TelemetryStore store;
  Rng rng(13);
  double t = 0.0;
  for (int round = 0; round < 3; ++round) {
    store.Clear();
    for (int i = 0; i < 40; ++i) {
      store.Append(RandomSample(rng, t, 5.0));
      t += 5.0;
      SimTime now = store.back().period_end;
      ExpectSnapshotEq(batch_manager.Compute(store, now, &batch_scratch),
                       manager.Compute(store, now, &scratch));
    }
  }
}

TEST(ManagerEquivalenceTest, RebuildAfterRetentionGapMatchesBatch) {
  // More samples arrive between Computes than the store retains, forcing
  // the engine to rebuild from retained history instead of patching.
  const TelemetryManager manager(TelemetryManagerOptions{});
  TelemetryManagerOptions batch_options;
  batch_options.incremental = false;
  const TelemetryManager batch_manager(batch_options);
  SignalScratch scratch;
  SignalScratch batch_scratch;

  TelemetryStore store(/*max_samples=*/32);
  Rng rng(17);
  double t = 0.0;
  for (int round = 0; round < 10; ++round) {
    const int burst = round % 2 == 0 ? 50 : 1;  // 50 > retention
    for (int i = 0; i < burst; ++i) {
      store.Append(RandomSample(rng, t, 5.0));
      t += 5.0;
    }
    SimTime now = store.back().period_end;
    ExpectSnapshotEq(batch_manager.Compute(store, now, &batch_scratch),
                     manager.Compute(store, now, &scratch));
  }
}

TEST(ManagerEquivalenceTest, FallsBackToBatchWhenWindowExceedsRetention) {
  TelemetryManagerOptions options;
  options.trend_samples = 64;  // larger than the store retains
  const TelemetryManager manager(options);
  options.incremental = false;
  const TelemetryManager batch_manager(options);
  SignalScratch scratch;
  SignalScratch batch_scratch;

  TelemetryStore store(/*max_samples=*/16);
  Rng rng(19);
  double t = 0.0;
  for (int i = 0; i < 100; ++i) {
    store.Append(RandomSample(rng, t, 5.0));
    t += 5.0;
    SimTime now = store.back().period_end;
    SignalScratch* s = &scratch;
    ExpectSnapshotEq(batch_manager.Compute(store, now, &batch_scratch),
                     manager.Compute(store, now, s));
  }
  // The engine was never built: the fallback decision precedes creation
  // only of state, not of the engine object itself, so just assert the
  // snapshots agreed (above) — the fallback is observable purely as
  // batch-equal output.
}

TEST(ManagerEquivalenceTest, SharedScratchAcrossStoresStaysCorrect) {
  // One scratch alternating between two stores forces an identity rebuild
  // on every Compute; results must still match the batch oracle.
  const TelemetryManager manager(TelemetryManagerOptions{});
  TelemetryManagerOptions batch_options;
  batch_options.incremental = false;
  const TelemetryManager batch_manager(batch_options);
  SignalScratch scratch;
  SignalScratch batch_scratch;

  TelemetryStore store_a;
  TelemetryStore store_b;
  Rng rng(23);
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    TelemetryStore& store = i % 2 == 0 ? store_a : store_b;
    store.Append(RandomSample(rng, t, 5.0));
    t += 5.0;
    SimTime now = store.back().period_end;
    ExpectSnapshotEq(batch_manager.Compute(store, now, &batch_scratch),
                     manager.Compute(store, now, &scratch));
  }
}

}  // namespace
}  // namespace dbscale
