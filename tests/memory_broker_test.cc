#include "src/engine/memory_broker.h"

#include <gtest/gtest.h>

namespace dbscale::engine {
namespace {

TEST(MemoryBrokerTest, GrantWithinWorkspaceImmediate) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  double granted = 0.0;
  broker.Acquire(40.0, [&](Duration wait, double mb) {
    EXPECT_EQ(wait, Duration::Zero());
    granted = mb;
  });
  EXPECT_DOUBLE_EQ(granted, 40.0);
  EXPECT_DOUBLE_EQ(broker.in_use_mb(), 40.0);
}

TEST(MemoryBrokerTest, OversizedRequestClamped) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  double granted = 0.0;
  broker.Acquire(500.0, [&](Duration, double mb) { granted = mb; });
  EXPECT_DOUBLE_EQ(granted, 100.0);
}

TEST(MemoryBrokerTest, QueuesWhenExhausted) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  broker.Acquire(80.0, [](Duration, double) {});
  bool granted = false;
  Duration waited;
  broker.Acquire(50.0, [&](Duration w, double) {
    granted = true;
    waited = w;
  });
  EXPECT_FALSE(granted);
  EXPECT_EQ(broker.queue_length(), 1u);
  events.ScheduleAt(SimTime::Zero() + Duration::Seconds(3),
                    [&] { broker.Release(80.0); });
  events.RunAll();
  EXPECT_TRUE(granted);
  EXPECT_DOUBLE_EQ(waited.ToSeconds(), 3.0);
}

TEST(MemoryBrokerTest, FifoGrantOrder) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  broker.Acquire(100.0, [](Duration, double) {});
  std::vector<int> order;
  broker.Acquire(60.0, [&](Duration, double) { order.push_back(1); });
  broker.Acquire(10.0, [&](Duration, double) { order.push_back(2); });
  // Head-of-line: the small request does NOT jump the big one.
  broker.Release(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MemoryBrokerTest, WorkspaceShrinkClampsQueuedRequests) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  broker.Acquire(100.0, [](Duration, double) {});
  double granted = 0.0;
  broker.Acquire(90.0, [&](Duration, double mb) { granted = mb; });
  broker.SetWorkspace(50.0);  // shrink while request queued
  broker.Release(100.0);
  // The queued request is clamped to the new workspace instead of wedging.
  EXPECT_DOUBLE_EQ(granted, 50.0);
}

TEST(MemoryBrokerTest, WorkspaceGrowUnblocksQueue) {
  EventQueue events;
  MemoryBroker broker(&events, 50.0);
  broker.Acquire(50.0, [](Duration, double) {});
  bool granted = false;
  broker.Acquire(40.0, [&](Duration, double) { granted = true; });
  EXPECT_FALSE(granted);
  broker.SetWorkspace(200.0);
  EXPECT_TRUE(granted);
}

TEST(MemoryBrokerTest, ReleaseNeverUnderflows) {
  EventQueue events;
  MemoryBroker broker(&events, 100.0);
  broker.Release(50.0);
  EXPECT_DOUBLE_EQ(broker.in_use_mb(), 0.0);
}

}  // namespace
}  // namespace dbscale::engine
