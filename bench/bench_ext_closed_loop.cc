// Extension experiment: client model sensitivity (DESIGN.md deviation
// analysis).
//
// The paper's Figure 8 axis reads "number of concurrent requests" — a
// closed-loop client population. Our default harness is open-loop (trace =
// offered rps), which makes under-provisioning catastrophically worse than
// the paper's testbed: the paper's Avg baseline missed its goal by ~3x,
// ours by orders of magnitude. This bench quantifies that modeling choice
// by re-running the Figure 9(a) comparison under both client models.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Extension: client model",
                     "Figure 9(a) under open- vs closed-loop clients");

  for (workload::ArrivalMode mode :
       {workload::ArrivalMode::kOpenLoop,
        workload::ArrivalMode::kClosedLoop}) {
    sim::SimulationOptions options = bench::MakeSetup(
        workload::MakeCpuioWorkload(), workload::MakeTrace2LongBurst(),
        args);
    options.arrival_mode = mode;
    sim::ComparisonOptions copts;
    copts.goal_factor = 1.25;
    auto cmp = sim::RunComparison(options, copts);
    DBSCALE_CHECK_OK(cmp.status());
    std::printf("\n--- %s clients ---\n",
                mode == workload::ArrivalMode::kOpenLoop ? "open-loop"
                                                         : "closed-loop");
    bench::PrintComparison(*cmp);
    const auto* avg_t = cmp->Find("Avg");
    bench::PrintReference(
        "Avg misses the goal by", "~3x (paper's testbed)",
        StrFormat("%.1fx", avg_t->run.latency_p95_ms / cmp->goal.target_ms));
  }
  std::printf(
      "\nshape check: closed-loop clients bound saturation (throughput\n"
      "adapts), pulling the under-provisioned baselines' misses from\n"
      "orders of magnitude toward the paper's single-digit factors.\n");
  return 0;
}
