// Host-placement & noisy-neighbor benchmark.
//
// Three sections, written as a "host_placement" object merged into
// BENCH_perf.json (override with --out=PATH; a fresh file is created when
// the perf-pipeline bench has not run yet):
//
//   * null_plan: a SimConfig / FleetScaleOptions that never mentions hosts
//     must reproduce the digests pinned before the host layer existed —
//     the sim-loop interval digest and the fleet aggregate digest at
//     threads {1, 2, 4}. Any drift here means the disabled host plane is
//     not actually free.
//   * flash_crowd: 300 tenants dense on 64 hosts (half deliberately hot),
//     a 3x demand surge against the hot half mid-day. At least one
//     scale-up must turn into a migration, downtime must bill exactly
//     migration_downtime_intervals per completed migration, and the
//     aggregate + host digests must be bit-identical at every thread
//     count.
//   * policies: the same scenario under first-fit / best-fit / worst-fit
//     destination choice — wall time, migration counts, and saturated
//     host-intervals per policy (the knob's observable effect).
//
// --quick shrinks the scenario for smoke use; digests remain exact.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/container/catalog.h"
#include "src/fleet/fleet_scale.h"
#include "src/host/host_map.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::bench {
namespace {

// Pinned pre-host baselines (captured at the seed of this PR; see
// tests/host_test.cc for the unit-test twins of these constants).
constexpr double kNullSimDigest = 2094099.7125696521;
constexpr uint64_t kNullFleetDigest = 0xf8a4a039e6b0fee9ull;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SimConfig BaseSimConfig() {
  SimConfig config;
  config.simulation.catalog = container::Catalog::MakeLockStep();
  config.simulation.workload = workload::MakeCpuioWorkload();
  config.simulation.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  config.simulation.interval_duration = Duration::Seconds(20);
  config.simulation.seed = 17;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  return config;
}

double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

fleet::FleetScaleOptions FlashCrowdScenario(bool quick) {
  fleet::FleetScaleOptions options;
  options.num_tenants = quick ? 150 : 300;
  options.num_intervals = quick ? 96 : 288;
  options.seed = 11;
  options.block_size = 64;
  options.host.num_hosts = quick ? 32 : 64;
  options.host.capacity =
      container::ResourceVector{64.0, 524288.0, 160000.0, 3200.0};
  options.host.hot_hosts = options.host.num_hosts / 2;
  options.host.hot_extra =
      container::ResourceVector{16.0, 131072.0, 40000.0, 800.0};
  options.flash_crowd.start_interval = options.num_intervals / 3;
  options.flash_crowd.duration_intervals = 24;
  options.flash_crowd.demand_multiplier = 3.0;
  options.flash_crowd.num_hosts_hit = options.host.hot_hosts;
  return options;
}

struct HostRunStats {
  int num_threads = 0;
  double seconds = 0.0;
  uint64_t digest = 0;
  uint64_t host_digest = 0;
  host::HostMap::Counters host;
};

HostRunStats TimeHostRun(const container::Catalog& catalog,
                         fleet::FleetScaleOptions options, int num_threads) {
  options.num_threads = num_threads;
  fleet::FleetScaleRunner runner(catalog, options);
  const double start = NowSeconds();
  auto outcome = runner.Run();
  const double elapsed = NowSeconds() - start;
  if (!outcome.ok()) {
    std::fprintf(stderr, "host fleet run failed: %s\n",
                 outcome.status().message().c_str());
  }
  DBSCALE_CHECK(outcome.ok());
  HostRunStats stats;
  stats.num_threads = num_threads;
  stats.seconds = elapsed;
  stats.digest = outcome->aggregate.digest;
  stats.host_digest = outcome->host_digest;
  stats.host = outcome->host;
  return stats;
}

/// Merges the host_placement object into an existing BENCH_perf.json (or
/// creates a minimal file when the perf bench has not written one yet).
/// The existing file's closing brace is replaced with ", <section> }".
void WriteSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  // Drop trailing whitespace and the final '}' so the section can splice
  // in as the last member. Any previous host_placement section is dropped
  // by the splice only if it was last; re-running the perf bench rewrites
  // the file from scratch anyway.
  size_t end = existing.find_last_of('}');
  std::string merged;
  if (end == std::string::npos || existing.find('{') == std::string::npos) {
    merged = "{\n" + section + "\n}\n";
  } else {
    const size_t prior = existing.rfind("\"host_placement\"");
    if (prior != std::string::npos) {
      // Splice over a previous run of this bench: cut from the comma (or
      // brace) preceding the old section through the end of the object.
      size_t cut = existing.find_last_of(",{", prior);
      DBSCALE_CHECK(cut != std::string::npos);
      existing.erase(cut + 1);
      merged = existing + "\n" + section + "\n}\n";
    } else {
      merged = existing.substr(0, end);
      while (!merged.empty() &&
             (merged.back() == '\n' || merged.back() == ' ')) {
        merged.pop_back();
      }
      merged += ",\n" + section + "\n}\n";
    }
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  DBSCALE_CHECK(out != nullptr);
  std::fwrite(merged.data(), 1, merged.size(), out);
  std::fclose(out);
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  container::Catalog catalog = container::Catalog::MakeLockStep();
  const std::vector<int> thread_counts = quick ? std::vector<int>{1, 2}
                                               : std::vector<int>{1, 2, 4};

  // ---- Section 1: the disabled host plane is bit-free. -------------------
  std::printf("null plan (host layer disabled):\n");
  auto null_sim = BaseSimConfig().Run();
  DBSCALE_CHECK(null_sim.ok());
  const double sim_digest = RunDigest(null_sim->result);
  const bool sim_matches = sim_digest == kNullSimDigest;
  std::printf("  sim digest  %.10f  (baseline %.10f)  %s\n", sim_digest,
              kNullSimDigest, sim_matches ? "MATCH" : "DRIFT");
  DBSCALE_CHECK(sim_matches);

  std::vector<uint64_t> null_fleet_digests;
  for (int threads : thread_counts) {
    fleet::FleetScaleOptions options;
    options.num_tenants = 512;
    options.num_intervals = 288;
    options.seed = 7;
    options.block_size = 128;
    options.num_threads = threads;
    auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
    DBSCALE_CHECK(outcome.ok());
    null_fleet_digests.push_back(outcome->aggregate.digest);
    std::printf("  fleet digest threads=%d  %016llx  %s\n", threads,
                static_cast<unsigned long long>(outcome->aggregate.digest),
                outcome->aggregate.digest == kNullFleetDigest ? "MATCH"
                                                              : "DRIFT");
    DBSCALE_CHECK(outcome->aggregate.digest == kNullFleetDigest);
  }

  // ---- Section 2: flash crowd turns scale-ups into migrations. -----------
  const fleet::FleetScaleOptions scenario = FlashCrowdScenario(quick);
  std::printf("\nflash crowd (%d tenants, %d hosts, %d hot, x%.1f surge):\n",
              scenario.num_tenants, scenario.host.num_hosts,
              scenario.host.hot_hosts,
              scenario.flash_crowd.demand_multiplier);
  std::vector<HostRunStats> crowd_runs;
  for (int threads : thread_counts) {
    crowd_runs.push_back(TimeHostRun(catalog, scenario, threads));
    const HostRunStats& run = crowd_runs.back();
    std::printf(
        "  threads=%d  %.3fs  migrations %llu begun / %llu done / %llu "
        "failed, %llu downtime iv, %llu holds, %llu saturated host-iv\n",
        run.num_threads, run.seconds,
        static_cast<unsigned long long>(run.host.migrations_begun),
        static_cast<unsigned long long>(run.host.migrations_completed),
        static_cast<unsigned long long>(run.host.migrations_failed),
        static_cast<unsigned long long>(run.host.downtime_intervals),
        static_cast<unsigned long long>(run.host.placement_holds),
        static_cast<unsigned long long>(run.host.saturated_host_intervals));
    DBSCALE_CHECK(run.digest == crowd_runs.front().digest);
    DBSCALE_CHECK(run.host_digest == crowd_runs.front().host_digest);
  }
  const HostRunStats& crowd = crowd_runs.front();
  // The scenario's reason to exist: a scale-up that became a migration,
  // billed exactly migration_downtime_intervals per completed migration.
  DBSCALE_CHECK(crowd.host.migrations_begun >= 1);
  const uint64_t expected_downtime =
      crowd.host.migrations_completed *
      static_cast<uint64_t>(scenario.host.migration_downtime_intervals);
  DBSCALE_CHECK(crowd.host.downtime_intervals == expected_downtime);

  // ---- Section 3: placement-policy comparison. ---------------------------
  struct PolicyRow {
    const char* name;
    double seconds;
    HostRunStats stats;
  };
  std::printf("\nplacement policies (same scenario, threads=%d):\n",
              thread_counts.back());
  std::vector<PolicyRow> policy_rows;
  for (const auto kind : {host::PlacementPolicyKind::kFirstFit,
                          host::PlacementPolicyKind::kBestFit,
                          host::PlacementPolicyKind::kWorstFit}) {
    fleet::FleetScaleOptions options = scenario;
    options.host.placement = kind;
    const HostRunStats run =
        TimeHostRun(catalog, options, thread_counts.back());
    policy_rows.push_back(
        {host::PlacementPolicyKindToString(kind), run.seconds, run});
    std::printf(
        "  %-9s  %.3fs  %llu migrations, %llu holds, %llu saturated "
        "host-iv, host digest %016llx\n",
        policy_rows.back().name, run.seconds,
        static_cast<unsigned long long>(run.host.migrations_completed),
        static_cast<unsigned long long>(run.host.placement_holds),
        static_cast<unsigned long long>(run.host.saturated_host_intervals),
        static_cast<unsigned long long>(run.host_digest));
  }

  // ---- JSON. -------------------------------------------------------------
  std::string section = "  \"host_placement\": {\n";
  section += StrFormat("    \"quick\": %s,\n", quick ? "true" : "false");
  section += "    \"null_plan\": {\n";
  section += StrFormat(
      "      \"sim_digest\": %.10f, \"sim_baseline\": %.10f,\n"
      "      \"sim_matches_baseline\": %s,\n",
      sim_digest, kNullSimDigest, sim_matches ? "true" : "false");
  section += "      \"fleet_digests\": [";
  for (size_t i = 0; i < null_fleet_digests.size(); ++i) {
    section += StrFormat("\"%016llx\"%s",
                         static_cast<unsigned long long>(null_fleet_digests[i]),
                         i + 1 < null_fleet_digests.size() ? ", " : "");
  }
  section += StrFormat(
      "],\n      \"fleet_baseline\": \"%016llx\", "
      "\"fleet_matches_baseline\": true\n    },\n",
      static_cast<unsigned long long>(kNullFleetDigest));
  section += "    \"flash_crowd\": {\n";
  section += StrFormat(
      "      \"tenants\": %d, \"hosts\": %d, \"hot_hosts\": %d,\n"
      "      \"demand_multiplier\": %.1f,\n",
      scenario.num_tenants, scenario.host.num_hosts, scenario.host.hot_hosts,
      scenario.flash_crowd.demand_multiplier);
  section += StrFormat(
      "      \"migrations_begun\": %llu, \"migrations_completed\": %llu,\n"
      "      \"migrations_failed\": %llu, \"downtime_intervals\": %llu,\n"
      "      \"downtime_billing_exact\": %s,\n"
      "      \"placement_holds\": %llu, \"saturated_host_intervals\": %llu,\n",
      static_cast<unsigned long long>(crowd.host.migrations_begun),
      static_cast<unsigned long long>(crowd.host.migrations_completed),
      static_cast<unsigned long long>(crowd.host.migrations_failed),
      static_cast<unsigned long long>(crowd.host.downtime_intervals),
      crowd.host.downtime_intervals == expected_downtime ? "true" : "false",
      static_cast<unsigned long long>(crowd.host.placement_holds),
      static_cast<unsigned long long>(crowd.host.saturated_host_intervals));
  section += "      \"runs\": [";
  for (size_t i = 0; i < crowd_runs.size(); ++i) {
    const HostRunStats& run = crowd_runs[i];
    section += StrFormat(
        "{\"threads\": %d, \"seconds\": %.6f, \"digest\": \"%016llx\", "
        "\"host_digest\": \"%016llx\"}%s",
        run.num_threads, run.seconds,
        static_cast<unsigned long long>(run.digest),
        static_cast<unsigned long long>(run.host_digest),
        i + 1 < crowd_runs.size() ? ", " : "");
  }
  section += "],\n      \"digest_identical_across_threads\": true\n    },\n";
  section += "    \"policies\": [\n";
  for (size_t i = 0; i < policy_rows.size(); ++i) {
    const PolicyRow& row = policy_rows[i];
    section += StrFormat(
        "      {\"policy\": \"%s\", \"seconds\": %.6f, "
        "\"migrations_completed\": %llu, \"placement_holds\": %llu, "
        "\"saturated_host_intervals\": %llu, \"host_digest\": \"%016llx\"}%s\n",
        row.name, row.seconds,
        static_cast<unsigned long long>(row.stats.host.migrations_completed),
        static_cast<unsigned long long>(row.stats.host.placement_holds),
        static_cast<unsigned long long>(
            row.stats.host.saturated_host_intervals),
        static_cast<unsigned long long>(row.stats.host_digest),
        i + 1 < policy_rows.size() ? "," : "");
  }
  section += "    ]\n  }";
  WriteSection(out_path, section);
  std::printf("\nmerged host_placement section into %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dbscale::bench

int main(int argc, char** argv) { return dbscale::bench::Main(argc, argv); }
