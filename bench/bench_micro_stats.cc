// google-benchmark micro benchmarks for the statistics layer: the telemetry
// manager recomputes these on every decision, so their cost bounds how
// cheap the control loop can be.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/stats/cdf.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"
#include "src/stats/theil_sen.h"

namespace dbscale::stats {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.LogNormal(2.0, 1.0));
  }
  return values;
}

void BM_Median(benchmark::State& state) {
  auto values = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Median(values).value());
  }
}
BENCHMARK(BM_Median)->Arg(12)->Arg(64)->Arg(512);

void BM_Percentile(benchmark::State& state) {
  auto values = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Percentile(values, 95.0).value());
  }
}
BENCHMARK(BM_Percentile)->Arg(64)->Arg(4096);

void BM_Mad(benchmark::State& state) {
  auto values = RandomSeries(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Mad(values).value());
  }
}
BENCHMARK(BM_Mad)->Arg(64);

void BM_TheilSen(benchmark::State& state) {
  // O(n^2) pairwise slopes: the reason trend windows stay small.
  auto values = RandomSeries(static_cast<size_t>(state.range(0)), 4);
  TheilSenEstimator estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.FitSequence(values));
  }
}
BENCHMARK(BM_TheilSen)->Arg(12)->Arg(24)->Arg(96);

void BM_Spearman(benchmark::State& state) {
  auto x = RandomSeries(static_cast<size_t>(state.range(0)), 5);
  auto y = RandomSeries(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpearmanCorrelation(x, y));
  }
}
BENCHMARK(BM_Spearman)->Arg(12)->Arg(24)->Arg(96);

void BM_LatencyHistogramAdd(benchmark::State& state) {
  LatencyHistogram histogram;
  Rng rng(7);
  double v = rng.LogNormal(3.0, 1.0);
  for (auto _ : state) {
    histogram.Add(v);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_LatencyHistogramAdd);

void BM_LatencyHistogramPercentile(benchmark::State& state) {
  LatencyHistogram histogram;
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    histogram.Add(rng.LogNormal(3.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram.ValueAtPercentile(95.0));
  }
}
BENCHMARK(BM_LatencyHistogramPercentile);

void BM_EmpiricalCdfBuild(benchmark::State& state) {
  auto values = RandomSeries(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    EmpiricalCdf cdf(values);
    benchmark::DoNotOptimize(cdf.ValueAtPercentile(95.0));
  }
}
BENCHMARK(BM_EmpiricalCdfBuild)->Arg(4096);

}  // namespace
}  // namespace dbscale::stats

BENCHMARK_MAIN();
