// Figure 12 reproduction: Dell DVD Store (DS2) on Trace 1 (steady demand),
// goal 1.25x Max.
//
// Paper: Max 416/270, Peak 444/150, Avg 465/120, Trace 435/168.8,
// Util 458/151.2, Auto 518/101. Headline: even on a steady workload —
// the perfect case for a static container — Auto is cheapest: Peak 1.5x,
// Avg 1.2x, Util 1.5x of Auto's cost.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 12", "DS2 on Trace 1 (steady), goal 1.25x Max");

  sim::SimulationOptions options = bench::MakeSetup(
      workload::MakeDs2Workload(), workload::MakeTrace1Steady(), args);
  sim::ComparisonOptions copts;
  copts.goal_factor = 1.25;
  auto cmp = sim::RunComparison(options, copts);
  DBSCALE_CHECK_OK(cmp.status());
  bench::PrintComparison(*cmp);

  const auto* auto_t = cmp->Find("Auto");
  bench::PrintReference(
      "Peak cost / Auto cost", "1.5x",
      StrFormat("%.2fx", cmp->Find("Peak")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Avg cost / Auto cost", "1.2x",
      StrFormat("%.2fx", cmp->Find("Avg")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Util cost / Auto cost", "1.5x",
      StrFormat("%.2fx", cmp->Find("Util")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Auto meets the goal",
      "yes (518 <= 520)",
      StrFormat("%s (%.0f vs %.0f)",
                auto_t->run.latency_p95_ms <= cmp->goal.target_ms ? "yes"
                                                                  : "no",
                auto_t->run.latency_p95_ms, cmp->goal.target_ms));
  std::printf(
      "\nshape check: low demand variance still leaves slack — Auto uses\n"
      "the latency goal to sit below static utilization-based choices.\n");
  return 0;
}
