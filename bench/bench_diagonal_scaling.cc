// Diagonal-scaling evaluation: cost at equal-or-better latency-goal
// attainment versus the paper's Auto, the Util baseline, and Max.
//
// The setup mirrors the Figure 1 extension experiment (I/O-skewed CPUIO
// mix: demand concentrated in disk I/O, so every lock-step rung overbuys
// CPU and memory): per paper trace,
//
//   1. run Max on the lock-step catalog and set goal = 2 x Max p95;
//   2. run Auto and Util on the lock-step catalog, Diagonal on the
//      flexible per-dimension catalog (same rung span, subdivided grid,
//      prices that sum exactly to the rung prices on the diagonal);
//   3. compare average cost per interval and latency-goal attainment (the
//      fraction of intervals with interval p95 <= goal).
//
// The claim under test (PAPERS.md, arxiv 2511.21612): diagonal scaling is
// strictly cheaper than Auto at equal-or-better attainment. The bench
// CHECKs that the claim holds on at least two paper traces, re-pins the
// fixed-rung fleet digests at threads {1, 2, 4} (the Catalog API redesign
// must not move them), and CHECKs diagonal runs are digest-identical when
// repeated. Results merge into BENCH_perf.json as "diagonal_scaling"
// (--out=PATH overrides; --quick shrinks the sweep to two traces).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/container/catalog.h"
#include "src/fleet/fleet_scale.h"
#include "src/scaler/diagonal.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::bench {
namespace {

// Pinned fixed-rung baselines (tests/host_test.cc holds the unit-test
// twins); the first-class Catalog interface must keep them bit-identical.
constexpr uint64_t kNullFleetDigest = 0xf8a4a039e6b0fee9ull;

double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

/// Fraction of intervals whose p95 met the goal (intervals that completed
/// no requests count as meeting it: there was nothing to be late).
double Attainment(const sim::RunResult& run, double goal_ms) {
  if (run.intervals.empty()) return 0.0;
  int met = 0;
  for (const auto& interval : run.intervals) {
    if (interval.completed == 0 || interval.latency_p95_ms <= goal_ms) {
      ++met;
    }
  }
  return static_cast<double>(met) /
         static_cast<double>(run.intervals.size());
}

struct PolicyOutcome {
  std::string name;
  double p95_ms = 0.0;
  double attainment = 0.0;
  double cost = 0.0;
  double digest = 0.0;
};

struct TraceOutcome {
  std::string trace;
  double goal_ms = 0.0;
  std::vector<PolicyOutcome> policies;
  bool diagonal_beats_auto = false;
};

const PolicyOutcome& Find(const TraceOutcome& outcome,
                          const std::string& name) {
  for (const PolicyOutcome& p : outcome.policies) {
    if (p.name == name) return p;
  }
  DBSCALE_CHECK(false);
  return outcome.policies.front();
}

sim::SimulationOptions BaseOptions(const workload::Trace& trace, bool full) {
  // The Figure 1 I/O-skew: disk demand runs rungs ahead of CPU demand.
  workload::CpuioOptions skew;
  skew.cpu_weight = 0.08;
  skew.io_weight = 0.77;
  skew.log_weight = 0.05;
  skew.mixed_weight = 0.10;
  sim::SimulationOptions options;
  options.workload = workload::MakeCpuioWorkload(skew);
  options.trace = full ? trace : trace.Subsampled(4).value();
  options.interval_duration = Duration::Seconds(20);
  options.seed = 17;
  return options;
}

TraceOutcome EvaluateTrace(const workload::Trace& trace, bool full) {
  TraceOutcome outcome;
  outcome.trace = trace.name();

  sim::SimulationOptions base =
      BaseOptions(trace, full);
  base.catalog = container::Catalog::MakeLockStep();
  auto max_run = sim::RunMax(base);
  DBSCALE_CHECK_OK(max_run.status());
  const scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                                 2.0 * max_run->latency_p95_ms};
  outcome.goal_ms = goal.target_ms;
  base.telemetry.latency_aggregate = goal.aggregate;

  container::FlexibleCatalogOptions fopts;
  fopts.subdivisions = 1;
  auto flexible = container::Catalog::MakeFlexible(fopts);
  DBSCALE_CHECK_OK(flexible.status());

  PolicyOutcome max_outcome;
  max_outcome.name = "Max";
  max_outcome.p95_ms = max_run->latency_p95_ms;
  max_outcome.attainment = Attainment(*max_run, goal.target_ms);
  max_outcome.cost = max_run->avg_cost_per_interval;
  max_outcome.digest = RunDigest(*max_run);
  outcome.policies.push_back(max_outcome);

  for (const std::string& name : sim::RegisteredPolicyNames()) {
    sim::SimulationOptions options = base;
    // Diagonal shops the flexible per-dimension catalog; the lock-step
    // policies cannot (their rung arithmetic assumes coupled sizes).
    options.catalog = name == "Diagonal"
                          ? *flexible
                          : container::Catalog::MakeLockStep();
    scaler::TenantKnobs knobs;
    knobs.latency_goal = goal;
    auto policy =
        sim::MakeRegisteredPolicy(name, options.catalog, knobs);
    DBSCALE_CHECK_OK(policy.status());
    auto run = sim::RunWithPolicy(options, policy->get(), 3);
    DBSCALE_CHECK_OK(run.status());
    PolicyOutcome p;
    p.name = name;
    p.p95_ms = run->latency_p95_ms;
    p.attainment = Attainment(*run, goal.target_ms);
    p.cost = run->avg_cost_per_interval;
    p.digest = RunDigest(*run);
    outcome.policies.push_back(p);

    if (name == "Diagonal") {
      // Determinism: an identical diagonal run reproduces the digest.
      auto again_policy =
          sim::MakeRegisteredPolicy(name, options.catalog, knobs);
      DBSCALE_CHECK_OK(again_policy.status());
      auto again = sim::RunWithPolicy(options, again_policy->get(), 3);
      DBSCALE_CHECK_OK(again.status());
      DBSCALE_CHECK(RunDigest(*again) == p.digest);
    }
  }

  const PolicyOutcome& diagonal = Find(outcome, "Diagonal");
  const PolicyOutcome& auto_outcome = Find(outcome, "Auto");
  outcome.diagonal_beats_auto =
      diagonal.cost < auto_outcome.cost &&
      diagonal.attainment >= auto_outcome.attainment;
  return outcome;
}

/// Merges the diagonal_scaling object into BENCH_perf.json (same splice
/// contract as the host-placement bench).
void WriteSection(const std::string& path, const std::string& section) {
  std::string existing;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(in);
  }
  size_t end = existing.find_last_of('}');
  std::string merged;
  if (end == std::string::npos || existing.find('{') == std::string::npos) {
    merged = "{\n" + section + "\n}\n";
  } else {
    const size_t prior = existing.rfind("\"diagonal_scaling\"");
    if (prior != std::string::npos) {
      size_t cut = existing.find_last_of(",{", prior);
      DBSCALE_CHECK(cut != std::string::npos);
      existing.erase(cut + 1);
      merged = existing + "\n" + section + "\n}\n";
    } else {
      merged = existing.substr(0, end);
      while (!merged.empty() &&
             (merged.back() == '\n' || merged.back() == ' ')) {
        merged.pop_back();
      }
      merged += ",\n" + section + "\n}\n";
    }
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  DBSCALE_CHECK(out != nullptr);
  std::fwrite(merged.data(), 1, merged.size(), out);
  std::fclose(out);
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  bool quick = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    }
  }

  std::printf(
      "=== Diagonal scaling: per-dimension bundles vs the rung ladder ===\n"
      "I/O-skewed CPUIO mix; goal = 2 x Max p95 per trace; Diagonal shops\n"
      "the flexible catalog (1 subdivision), Auto/Util the lock-step one.\n\n");

  std::vector<workload::Trace> traces = {workload::MakeTrace2LongBurst(),
                                         workload::MakeTrace3ShortBurst()};
  if (!quick) {
    traces.push_back(workload::MakeTrace4ManyBursts());
  }

  std::vector<TraceOutcome> outcomes;
  int wins = 0;
  for (const workload::Trace& trace : traces) {
    outcomes.push_back(EvaluateTrace(trace, full));
    const TraceOutcome& outcome = outcomes.back();
    std::printf("%s (goal p95 <= %.0f ms):\n", outcome.trace.c_str(),
                outcome.goal_ms);
    sim::TextTable table(
        {"policy", "p95 ms", "attainment", "cost/interval", "vs Auto"});
    const double auto_cost = Find(outcome, "Auto").cost;
    for (const PolicyOutcome& p : outcome.policies) {
      table.AddRow({p.name, StrFormat("%.0f", p.p95_ms),
                    StrFormat("%.1f%%", 100.0 * p.attainment),
                    StrFormat("%.1f", p.cost),
                    StrFormat("%+.1f%%", 100.0 * (p.cost / auto_cost - 1.0))});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("  diagonal beats Auto (cheaper at >= attainment): %s\n\n",
                outcome.diagonal_beats_auto ? "yes" : "no");
    if (outcome.diagonal_beats_auto) ++wins;
  }
  // The acceptance bar: strictly cheaper at equal-or-better attainment on
  // at least two paper traces.
  DBSCALE_CHECK(wins >= 2);

  // The Catalog redesign must not move the fixed-rung fleet digests at any
  // thread count.
  container::Catalog lockstep = container::Catalog::MakeLockStep();
  std::printf("fixed-rung fleet digest pins:\n");
  std::vector<int> thread_counts = quick ? std::vector<int>{1, 2}
                                         : std::vector<int>{1, 2, 4};
  for (int threads : thread_counts) {
    fleet::FleetScaleOptions options;
    options.num_tenants = 512;
    options.num_intervals = 288;
    options.seed = 7;
    options.block_size = 128;
    options.num_threads = threads;
    auto fleet_outcome = fleet::FleetScaleRunner(lockstep, options).Run();
    DBSCALE_CHECK(fleet_outcome.ok());
    const bool match = fleet_outcome->aggregate.digest == kNullFleetDigest;
    std::printf("  threads=%d  %016llx  %s\n", threads,
                static_cast<unsigned long long>(
                    fleet_outcome->aggregate.digest),
                match ? "MATCH" : "DRIFT");
    DBSCALE_CHECK(match);
  }

  // ---- JSON. -------------------------------------------------------------
  std::string section = "  \"diagonal_scaling\": {\n";
  section += StrFormat("    \"quick\": %s,\n", quick ? "true" : "false");
  section += StrFormat("    \"wins_vs_auto\": %d,\n", wins);
  section += StrFormat(
      "    \"fleet_digest_baseline\": \"%016llx\",\n"
      "    \"fleet_digest_matches_at_threads_124\": true,\n",
      static_cast<unsigned long long>(kNullFleetDigest));
  section += "    \"traces\": [\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const TraceOutcome& outcome = outcomes[i];
    section += StrFormat(
        "      {\"trace\": \"%s\", \"goal_ms\": %.1f, "
        "\"diagonal_beats_auto\": %s,\n       \"policies\": [",
        outcome.trace.c_str(), outcome.goal_ms,
        outcome.diagonal_beats_auto ? "true" : "false");
    for (size_t j = 0; j < outcome.policies.size(); ++j) {
      const PolicyOutcome& p = outcome.policies[j];
      section += StrFormat(
          "\n        {\"policy\": \"%s\", \"p95_ms\": %.2f, "
          "\"attainment\": %.4f, \"cost_per_interval\": %.4f, "
          "\"digest\": %.10f}%s",
          p.name.c_str(), p.p95_ms, p.attainment, p.cost, p.digest,
          j + 1 < outcome.policies.size() ? "," : "");
    }
    section += StrFormat("]}%s\n", i + 1 < outcomes.size() ? "," : "");
  }
  section += "    ]\n  }";
  WriteSection(out_path, section);
  std::printf("\nmerged diagonal_scaling section into %s\n",
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dbscale::bench

int main(int argc, char** argv) { return dbscale::bench::Main(argc, argv); }
