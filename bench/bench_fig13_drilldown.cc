// Figure 13 reproduction: drill-down into WHY Util costs ~3x Auto on the
// lock-bound TPC-C workload (Trace 4, goal 1.25x Max).
//
//  (a) Util's container CPU reaches a large share of the server (paper: up
//      to 70%) while actual CPU utilization peaks around 10%.
//  (b) Auto's containers stay at 10-20% of the server.
//  (c) Lock waits dominate the wait breakdown (paper: >90%), so added
//      resources cannot improve latency — Auto reads this from the wait
//      statistics; Util cannot.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/baselines/util_policy.h"
#include "src/scaler/autoscaler.h"

using namespace dbscale;

namespace {

constexpr double kServerCores = 32.0;

struct Series {
  std::vector<double> container_cpu_pct;  // of server
  std::vector<double> cpu_util_pct;       // of server
  std::vector<double> performance_factor;
};

Series ExtractSeries(const sim::RunResult& run, double goal_ms) {
  Series s;
  for (const auto& r : run.intervals) {
    const double cores = r.container.resources.cpu_cores;
    s.container_cpu_pct.push_back(100.0 * cores / kServerCores);
    s.cpu_util_pct.push_back(
        r.utilization_pct[static_cast<size_t>(
            container::ResourceKind::kCpu)] *
        cores / kServerCores);
    s.performance_factor.push_back(
        r.completed > 0
            ? 100.0 * (goal_ms - r.latency_p95_ms) / goal_ms
            : 100.0);
  }
  return s;
}

void PrintSeries(const char* name, const Series& s) {
  std::printf("\n%s — container CPU as %% of server:\n%s", name,
              sim::AsciiChart(s.container_cpu_pct, 6, 110).c_str());
  std::printf("%s — actual CPU utilization as %% of server:\n%s", name,
              sim::AsciiChart(s.cpu_util_pct, 6, 110).c_str());
  const double max_container =
      *std::max_element(s.container_cpu_pct.begin(),
                        s.container_cpu_pct.end());
  const double max_util =
      *std::max_element(s.cpu_util_pct.begin(), s.cpu_util_pct.end());
  std::vector<double> factors = s.performance_factor;
  std::sort(factors.begin(), factors.end());
  std::printf(
      "%s: peak container CPU %.0f%% of server, peak CPU utilization "
      "%.0f%%, median performance factor %.0f\n",
      name, max_container, max_util,
      factors[factors.size() / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 13", "Util vs Auto drill-down on TPC-C");

  sim::SimulationOptions options = bench::MakeSetup(
      workload::MakeTpccWorkload(), workload::MakeTrace4ManyBursts(), args);
  sim::ComparisonOptions copts;
  copts.goal_factor = 1.25;
  copts.techniques = {"Max", "Util", "Auto"};
  auto cmp = sim::RunComparison(options, copts);
  DBSCALE_CHECK_OK(cmp.status());

  const auto* util_t = cmp->Find("Util");
  const auto* auto_t = cmp->Find("Auto");
  std::printf("goal: p95 <= %.0f ms\n", cmp->goal.target_ms);

  Series util_series = ExtractSeries(util_t->run, cmp->goal.target_ms);
  Series auto_series = ExtractSeries(auto_t->run, cmp->goal.target_ms);
  PrintSeries("Util (Fig 13a)", util_series);
  PrintSeries("Auto (Fig 13b)", auto_series);

  const double util_peak = *std::max_element(
      util_series.container_cpu_pct.begin(),
      util_series.container_cpu_pct.end());
  const double auto_peak = *std::max_element(
      auto_series.container_cpu_pct.begin(),
      auto_series.container_cpu_pct.end());
  bench::PrintReference("Util peak container CPU (% of server)", "~70%",
                        StrFormat("%.0f%%", util_peak));
  bench::PrintReference("Auto container CPU range", "10-20%",
                        StrFormat("up to %.0f%%", auto_peak));

  // --- Figure 13(c): wait breakdown during the Auto run ---
  std::printf("\nFigure 13(c): wait share by class (Auto run):\n");
  std::array<double, telemetry::kNumWaitClasses> totals{};
  double grand = 0.0;
  for (const auto& r : auto_t->run.intervals) {
    for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
      totals[w] += r.wait_ms[w];
      grand += r.wait_ms[w];
    }
  }
  sim::TextTable table({"wait class", "share %"});
  for (telemetry::WaitClass wc : telemetry::kAllWaitClasses) {
    table.AddRow({telemetry::WaitClassToString(wc),
                  StrFormat("%.1f", grand > 0 ? 100.0 *
                                                    totals[static_cast<
                                                        size_t>(wc)] /
                                                    grand
                                              : 0.0)});
  }
  std::printf("%s", table.ToString().c_str());
  const double lock_share =
      100.0 *
      totals[static_cast<size_t>(telemetry::WaitClass::kLock)] / grand;
  bench::PrintReference("lock share of all waits", ">90%",
                        StrFormat("%.0f%%", lock_share));
  bench::PrintReference(
      "cost: Util / Auto", "3.4x",
      StrFormat("%.2fx", util_t->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  std::printf(
      "\nshape check: Util chases lock-bound latency with capacity; Auto's\n"
      "wait-class signals identify the bottleneck as beyond resources.\n");
  return 0;
}
