// Extension experiment (paper Figure 1 / Section 6): per-dimension
// container scaling.
//
// "Workloads having demand in one resource can benefit if containers are
// scaled independently in each dimension", and the auto-scaling logic "can
// leverage that" because demand is estimated per resource. We run an
// I/O-skewed CPUIO mix under Auto twice — once against the lock-step
// catalog, once against the per-dimension catalog (single-dimension
// variants priced between rungs) — and measure the savings.

#include <cstring>

#include "bench/bench_common.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/experiment.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  // --policy=NAME runs the drilldown under any registered online policy
  // (Auto, Util, Diagonal); default Auto.
  std::string policy_name = "Auto";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy_name = argv[i] + 9;
    }
  }
  bench::PrintHeader("Extension: Figure 1",
                     "per-dimension vs lock-step container scaling");

  // An I/O-skewed mix: disk demand runs 2-3 rungs ahead of CPU demand.
  workload::CpuioOptions skew;
  skew.cpu_weight = 0.08;
  skew.io_weight = 0.77;
  skew.log_weight = 0.05;
  skew.mixed_weight = 0.10;
  sim::SimulationOptions base = bench::MakeSetup(
      workload::MakeCpuioWorkload(skew), workload::MakeTrace2LongBurst(),
      args);

  auto max_run = sim::RunMax(base);
  DBSCALE_CHECK_OK(max_run.status());
  scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                           2.0 * max_run->latency_p95_ms};
  base.telemetry.latency_aggregate = goal.aggregate;
  std::printf("I/O-skewed CPUIO on Trace 2; policy %s; goal p95 <= %.0f ms\n\n",
              policy_name.c_str(), goal.target_ms);

  sim::TextTable table({"catalog", "containers", "p95 ms", "p95/goal",
                        "cost/interval", "variant intervals"});
  double lockstep_cost = 0.0, perdim_cost = 0.0;
  for (bool per_dimension : {false, true}) {
    sim::SimulationOptions options = base;
    options.catalog = per_dimension
                          ? container::Catalog::MakePerDimension(2)
                          : container::Catalog::MakeLockStep();
    scaler::TenantKnobs knobs;
    knobs.latency_goal = goal;
    auto policy =
        sim::MakeRegisteredPolicy(policy_name, options.catalog, knobs);
    DBSCALE_CHECK_OK(policy.status());
    auto run = sim::RunWithPolicy(options, policy->get(), 3);
    DBSCALE_CHECK_OK(run.status());
    int variant_intervals = 0;
    for (const auto& r : run->intervals) {
      if (r.container.name.find('-') != std::string::npos) {
        ++variant_intervals;
      }
    }
    table.AddRow({per_dimension ? "per-dimension" : "lock-step",
                  StrFormat("%d", options.catalog.size()),
                  StrFormat("%.0f", run->latency_p95_ms),
                  StrFormat("%.2f", run->latency_p95_ms / goal.target_ms),
                  StrFormat("%.1f", run->avg_cost_per_interval),
                  StrFormat("%d", variant_intervals)});
    (per_dimension ? perdim_cost : lockstep_cost) =
        run->avg_cost_per_interval;
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::PrintReference(
      "per-dimension savings on skewed demand", "positive (Fig 1 claim)",
      StrFormat("%.0f%%", 100.0 * (1.0 - perdim_cost / lockstep_cost)));
  std::printf(
      "\nshape check: with demand concentrated in disk I/O, single-\n"
      "dimension variants hold comparable latency (the scaler converges to\n"
      "p95 near the goal either way) at lower cost — the paper's abstract\n"
      "phrasing: lower costs \"while achieving comparable query\n"
      "latencies\".\n");
  return 0;
}
