// Benchmark of the scaler-as-a-service ingest stack (src/ingest/): the
// allocation-free MPSC telemetry ring plus the ScalerService drain/route/
// batched-decision pipeline.
//
// Phases (single-core-container friendly — producer and drainer sides are
// timed separately so they do not fight over one core, plus one genuinely
// concurrent MPSC phase):
//   * push:    one producer filling the ring, samples/sec (alloc-checked);
//   * drain:   one drainer emptying the ring via PopBatch, samples/sec —
//     THE single-drainer capacity number, acceptance >= 1M samples/sec —
//     with the drain batch-size distribution (alloc-checked);
//   * mpsc:    2 producer threads + the drainer running concurrently
//     (scheduling-dependent on one core; reported, not asserted);
//   * route:   ScalerService end-to-end publish -> DrainOnce -> per-tenant
//     store routing with decisions disabled, samples/sec (alloc-checked:
//     the producer AND drainer paths make ZERO heap allocations in steady
//     state);
//   * decide:  the real AutoScaler policy under batched evaluation —
//     per-decision Compute+Decide latency percentiles (p50/p99/p999);
//   * equivalence: ring+batch digest vs the direct-feed serial reference
//     (hard CHECK, the service's bit-identity contract).
//
// Results merge into the "ingest_daemon" section of BENCH_perf.json
// (--out=PATH to override; other sections of an existing file are
// preserved). --quick shrinks the sample counts for smoke use.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/sim_time.h"
#include "src/container/catalog.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/producer.h"
#include "src/ingest/scaler_service.h"
#include "src/ingest/wire_sample.h"
#include "src/scaler/autoscaler.h"
#include "src/telemetry/sample.h"

namespace {

/// Heap allocations made by the calling thread. Thread-local so producer
/// threads never pollute the drainer's measurement and vice versa.
thread_local std::int64_t t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbscale::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr int64_t kPeriodUs = 5'000'000;

telemetry::TelemetrySample MakeSample(const container::Catalog& catalog,
                                      uint64_t tenant, int i) {
  telemetry::TelemetrySample s;
  s.period_start = SimTime::FromMicros(i * kPeriodUs);
  s.period_end = SimTime::FromMicros((i + 1) * kPeriodUs);
  const double phase =
      static_cast<double>((static_cast<uint64_t>(i) * 37 + tenant * 13) % 100);
  for (size_t r = 0; r < container::kNumResources; ++r) {
    s.utilization_pct[r] = 20.0 + phase * 0.6;
  }
  s.wait_ms[0] = phase * 2.0;
  s.wait_ms[1] = phase * 1.5;
  s.requests_started = 100 + i % 13;
  s.requests_completed = s.requests_started;
  s.latency_avg_ms = 5.0 + phase * 0.1;
  s.latency_p95_ms = 20.0 + phase * 0.4;
  s.latency_max_ms = 50.0 + phase;
  s.memory_used_mb = 1024.0 + phase;
  s.memory_active_mb = 512.0 + phase;
  s.physical_reads = 10 + i % 7;
  s.allocation = catalog.rung(4).resources;
  s.container_id = catalog.rung(4).id;
  return s;
}

double Percentile(std::vector<uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return static_cast<double>(sorted_ns[idx]);
}

struct RingPhaseStats {
  double push_per_sec = 0.0;
  double drain_per_sec = 0.0;
  int64_t push_allocs = 0;
  int64_t drain_allocs = 0;
  uint64_t samples = 0;
  size_t batch_p50 = 0;
  size_t batch_p99 = 0;
  size_t batch_max = 0;
};

/// Phase 1+2: alternate fill/drain cycles on one thread, timing each side
/// separately so the numbers are per-side capacity, not a blend.
RingPhaseStats RunRingPhases(const container::Catalog& catalog, int cycles,
                             size_t drain_batch) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 16});
  ingest::IngestProducer producer(&ring, 0);
  const telemetry::TelemetrySample sample = MakeSample(catalog, 1, 0);
  std::vector<ingest::WireSample> buf(drain_batch);
  std::vector<uint64_t> batch_sizes;
  batch_sizes.reserve(static_cast<size_t>(cycles) *
                      (ring.capacity() / drain_batch + 2));

  RingPhaseStats stats;
  double push_seconds = 0.0;
  double drain_seconds = 0.0;
  // Warm-up cycle so cold caches and lazy buffers do not skew cycle 0.
  for (int w = 0; w < 1000; ++w) {
    (void)producer.Publish(1, sample);
  }
  ingest::WireSample discard;
  while (ring.TryPop(&discard)) {
  }

  for (int c = 0; c < cycles; ++c) {
    const int64_t push_allocs_before = t_alloc_count;
    const double push_start = NowSeconds();
    uint64_t pushed = 0;
    while (producer.Publish(1, sample) == ingest::PublishOutcome::kPublished) {
      ++pushed;
    }
    push_seconds += NowSeconds() - push_start;
    stats.push_allocs += t_alloc_count - push_allocs_before;
    DBSCALE_CHECK(pushed == ring.capacity());  // stopped at backpressure

    const int64_t drain_allocs_before = t_alloc_count;
    const double drain_start = NowSeconds();
    uint64_t drained = 0;
    for (size_t n = ring.PopBatch(buf.data(), drain_batch); n > 0;
         n = ring.PopBatch(buf.data(), drain_batch)) {
      drained += n;
      batch_sizes.push_back(n);
    }
    drain_seconds += NowSeconds() - drain_start;
    stats.drain_allocs += t_alloc_count - drain_allocs_before;
    DBSCALE_CHECK(drained == pushed);
    stats.samples += drained;
  }
  stats.push_per_sec =
      push_seconds > 0.0 ? static_cast<double>(stats.samples) / push_seconds
                         : 0.0;
  stats.drain_per_sec =
      drain_seconds > 0.0 ? static_cast<double>(stats.samples) / drain_seconds
                          : 0.0;
  std::sort(batch_sizes.begin(), batch_sizes.end());
  stats.batch_p50 = static_cast<size_t>(Percentile(batch_sizes, 0.50));
  stats.batch_p99 = static_cast<size_t>(Percentile(batch_sizes, 0.99));
  stats.batch_max =
      batch_sizes.empty() ? 0 : static_cast<size_t>(batch_sizes.back());
  return stats;
}

struct MpscPhaseStats {
  int producers = 0;
  uint64_t samples = 0;
  uint64_t rejected = 0;
  double samples_per_sec = 0.0;
  int64_t drainer_allocs = 0;
};

/// Phase 3: real MPSC contention — producers and the drainer share the
/// machine (on one core this measures the scheduled blend, which is the
/// deployment shape on the smallest hosts).
MpscPhaseStats RunMpscPhase(const container::Catalog& catalog,
                            int num_producers, uint64_t samples_per_producer) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 14});
  std::atomic<int> producers_done{0};
  std::atomic<uint64_t> total_rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_producers));
  const telemetry::TelemetrySample sample = MakeSample(catalog, 1, 0);

  const double start = NowSeconds();
  for (int p = 0; p < num_producers; ++p) {
    threads.emplace_back([&, p] {
      ingest::IngestProducer producer(&ring, static_cast<uint32_t>(p));
      for (uint64_t i = 0; i < samples_per_producer;) {
        // Retry on backpressure: sustained load, nothing silently lost.
        if (producer.Publish(static_cast<uint64_t>(p) + 1, sample) ==
            ingest::PublishOutcome::kPublished) {
          ++i;
        }
      }
      total_rejected.fetch_add(producer.rejected(),
                               std::memory_order_relaxed);
      producers_done.fetch_add(1, std::memory_order_release);
    });
  }

  std::vector<ingest::WireSample> buf(1024);
  uint64_t drained = 0;
  const int64_t allocs_before = t_alloc_count;
  while (producers_done.load(std::memory_order_acquire) < num_producers ||
         ring.ApproxDepth() > 0) {
    drained += ring.PopBatch(buf.data(), buf.size());
  }
  const int64_t drainer_allocs = t_alloc_count - allocs_before;
  const double elapsed = NowSeconds() - start;
  for (std::thread& t : threads) t.join();

  MpscPhaseStats stats;
  stats.producers = num_producers;
  stats.samples = drained;
  stats.rejected = total_rejected.load();
  stats.samples_per_sec =
      elapsed > 0.0 ? static_cast<double>(drained) / elapsed : 0.0;
  stats.drainer_allocs = drainer_allocs;
  DBSCALE_CHECK(stats.samples ==
                static_cast<uint64_t>(num_producers) * samples_per_producer);
  return stats;
}

struct RoutePhaseStats {
  size_t tenants = 0;
  uint64_t samples = 0;
  double samples_per_sec = 0.0;
  int64_t allocs = 0;
};

/// Phase 4: the service's publish -> drain -> route pipeline with
/// decisions disabled (samples_per_interval larger than the feed), i.e.
/// the pure telemetry path a daemon runs between billing boundaries.
RoutePhaseStats RunRoutePhase(const container::Catalog& catalog,
                              size_t num_tenants, int samples_per_tenant) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 14});
  ingest::ScalerServiceOptions options;
  options.store_retention = 256;
  options.samples_per_interval = 1u << 30;  // never due: route path only
  options.max_drain_batch = 1024;
  ingest::ScalerService service(&ring, options);
  const container::ContainerSpec initial = catalog.rung(4);
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    // A policy must be present but never runs in this phase.
    scaler::TenantKnobs knobs;
    auto policy = scaler::AutoScaler::Create(catalog, knobs);
    DBSCALE_CHECK_OK(policy.status());
    DBSCALE_CHECK(
        service.AddTenant(t, std::move(policy).value(), initial).ok());
  }
  ingest::IngestProducer producer(&ring, 0);

  // Warm-up: fill every tenant store to retention so Append recycles
  // slots, and size the service's drain scratch.
  const int warm = static_cast<int>(options.store_retention) + 8;
  for (int i = 0; i < warm; ++i) {
    for (uint64_t t = 1; t <= num_tenants; ++t) {
      DBSCALE_CHECK(producer.Publish(t, MakeSample(catalog, t, i)) ==
                    ingest::PublishOutcome::kPublished);
    }
    (void)service.DrainAll();  // dbscale-lint: allow(discarded-status)
  }

  const int64_t allocs_before = t_alloc_count;
  const double start = NowSeconds();
  uint64_t fed = 0;
  for (int i = warm; i < warm + samples_per_tenant; ++i) {
    for (uint64_t t = 1; t <= num_tenants; ++t) {
      DBSCALE_CHECK(producer.Publish(t, MakeSample(catalog, t, i)) ==
                    ingest::PublishOutcome::kPublished);
      ++fed;
      if ((fed & 2047u) == 0) (void)service.DrainAll();
    }
  }
  (void)service.DrainAll();  // dbscale-lint: allow(discarded-status)
  const double elapsed = NowSeconds() - start;

  RoutePhaseStats stats;
  stats.tenants = num_tenants;
  stats.samples = fed;
  stats.samples_per_sec =
      elapsed > 0.0 ? static_cast<double>(fed) / elapsed : 0.0;
  stats.allocs = t_alloc_count - allocs_before;
  DBSCALE_CHECK(service.counters().routed >=
                static_cast<uint64_t>(samples_per_tenant) * num_tenants);
  return stats;
}

struct DecidePhaseStats {
  uint64_t decisions = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double decisions_per_sec = 0.0;
};

/// Phase 5: per-decision latency (TelemetryManager::Compute + the real
/// AutoScaler::Decide) under batched evaluation.
DecidePhaseStats RunDecidePhase(const container::Catalog& catalog,
                                size_t num_tenants, int num_intervals) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 14});
  ingest::ScalerServiceOptions options;
  options.store_retention = 256;
  options.samples_per_interval = 12;
  options.max_drain_batch = 1024;
  options.timer = &NowNs;
  std::vector<uint64_t> latencies_ns;
  latencies_ns.reserve(num_tenants * static_cast<size_t>(num_intervals));
  options.decision_latency_sink = &latencies_ns;
  ingest::ScalerService service(&ring, options);
  const container::ContainerSpec initial = catalog.rung(4);
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    scaler::TenantKnobs knobs;
    knobs.latency_goal =
        scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 40.0};
    auto policy = scaler::AutoScaler::Create(catalog, knobs);
    DBSCALE_CHECK_OK(policy.status());
    DBSCALE_CHECK(
        service.AddTenant(t, std::move(policy).value(), initial).ok());
  }
  ingest::IngestProducer producer(&ring, 0);

  const double start = NowSeconds();
  const int total_samples =
      num_intervals * static_cast<int>(options.samples_per_interval);
  for (int i = 0; i < total_samples; ++i) {
    for (uint64_t t = 1; t <= num_tenants; ++t) {
      DBSCALE_CHECK(producer.Publish(t, MakeSample(catalog, t, i)) ==
                    ingest::PublishOutcome::kPublished);
    }
    if (ring.ApproxDepth() >= 8192) (void)service.DrainAll();
  }
  (void)service.DrainAll();  // dbscale-lint: allow(discarded-status)
  const double elapsed = NowSeconds() - start;

  DecidePhaseStats stats;
  stats.decisions = service.counters().decisions;
  DBSCALE_CHECK(stats.decisions ==
                num_tenants * static_cast<uint64_t>(num_intervals));
  DBSCALE_CHECK(latencies_ns.size() == stats.decisions);
  std::sort(latencies_ns.begin(), latencies_ns.end());
  stats.p50_us = Percentile(latencies_ns, 0.50) / 1000.0;
  stats.p99_us = Percentile(latencies_ns, 0.99) / 1000.0;
  stats.p999_us = Percentile(latencies_ns, 0.999) / 1000.0;
  stats.decisions_per_sec =
      elapsed > 0.0 ? static_cast<double>(stats.decisions) / elapsed : 0.0;
  return stats;
}

/// Phase 6: the equivalence contract as a hard bench-time CHECK — the
/// ring+batch path must produce the exact digest of the direct-feed
/// serial reference with the real policy.
uint64_t RunEquivalenceCheck(const container::Catalog& catalog) {
  const auto run = [&catalog](bool via_ring) {
    ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 10});
    ingest::ScalerServiceOptions options;
    options.store_retention = 64;
    options.samples_per_interval = 6;
    options.max_drain_batch = 97;  // deliberately straddles boundaries
    ingest::ScalerService service(&ring, options);
    for (uint64_t t = 1; t <= 4; ++t) {
      scaler::TenantKnobs knobs;
      knobs.latency_goal =
          scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 40.0};
      auto policy = scaler::AutoScaler::Create(catalog, knobs);
      DBSCALE_CHECK_OK(policy.status());
      DBSCALE_CHECK(
          service.AddTenant(t, std::move(policy).value(), catalog.rung(2))
              .ok());
    }
    ingest::IngestProducer producer(&ring, 0);
    for (int i = 0; i < 48; ++i) {
      for (uint64_t t = 1; t <= 4; ++t) {
        if (via_ring) {
          DBSCALE_CHECK(producer.Publish(t, MakeSample(catalog, t, i)) ==
                        ingest::PublishOutcome::kPublished);
        } else {
          service.OfferDirect(
              ingest::MakeWireSample(t, MakeSample(catalog, t, i)));
        }
      }
    }
    if (via_ring) (void)service.DrainAll();
    return service.Digest();
  };
  const uint64_t direct = run(false);
  const uint64_t ring = run(true);
  DBSCALE_CHECK(ring == direct);
  return ring;
}

// ---------------------------------------------------------------------------
// JSON merge
// ---------------------------------------------------------------------------

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string content;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, n);
  }
  std::fclose(f);
  return content;
}

/// Removes an existing top-level "ingest_daemon" section (and the comma
/// that attached it) from a JSON document by brace matching.
void StripSection(std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const size_t key_pos = doc.find(needle);
  if (key_pos == std::string::npos) return;
  const size_t open = doc.find('{', key_pos);
  if (open == std::string::npos) return;
  size_t depth = 0;
  size_t close = open;
  for (; close < doc.size(); ++close) {
    if (doc[close] == '{') ++depth;
    if (doc[close] == '}' && --depth == 0) break;
  }
  // Swallow the comma and whitespace that attached the section (before
  // it, or after it when the section was first).
  size_t begin = key_pos;
  while (begin > 0 && (doc[begin - 1] == ' ' || doc[begin - 1] == '\n')) {
    --begin;
  }
  size_t end = close + 1;
  if (begin > 0 && doc[begin - 1] == ',') {
    --begin;
  } else if (end < doc.size() && doc[end] == ',') {
    ++end;
  }
  doc.erase(begin, end - begin);
}

void MergeSectionInto(const std::string& path, const std::string& section) {
  std::string doc = ReadFileOrEmpty(path);
  const size_t last_brace = doc.rfind('}');
  if (doc.empty() || doc.rfind('{', 0) != 0 || last_brace == std::string::npos) {
    doc = "{\n" + section + "\n}\n";
  } else {
    StripSection(doc, "ingest_daemon");
    const size_t tail = doc.rfind('}');
    // Anything before the final brace beyond the opening one needs a comma.
    const size_t last_content = doc.find_last_not_of(" \n\t", tail - 1);
    const bool need_comma =
        last_content != std::string::npos && doc[last_content] != '{';
    doc = doc.substr(0, last_content + 1) + (need_comma ? "," : "") + "\n" +
          section + "\n}\n";
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  DBSCALE_CHECK(out != nullptr);
  std::fwrite(doc.data(), 1, doc.size(), out);
  std::fclose(out);
}

}  // namespace
}  // namespace dbscale::bench

int main(int argc, char** argv) {
  using namespace dbscale;
  using namespace dbscale::bench;

  std::string out_path = "BENCH_perf.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const container::Catalog catalog = container::Catalog::MakeLockStep();

  std::printf("ingest daemon bench (%s)\n", quick ? "quick" : "full");

  const int ring_cycles = quick ? 4 : 32;
  const RingPhaseStats ring =
      RunRingPhases(catalog, ring_cycles, /*drain_batch=*/1024);
  std::printf("  push:  %12.0f samples/s  allocs=%lld\n", ring.push_per_sec,
              static_cast<long long>(ring.push_allocs));
  std::printf("  drain: %12.0f samples/s  allocs=%lld  "
              "batch p50/p99/max=%zu/%zu/%zu\n",
              ring.drain_per_sec, static_cast<long long>(ring.drain_allocs),
              ring.batch_p50, ring.batch_p99, ring.batch_max);
  DBSCALE_CHECK(ring.push_allocs == 0);
  DBSCALE_CHECK(ring.drain_allocs == 0);
  // Acceptance: a single drainer sustains >= 1M samples/sec.
  DBSCALE_CHECK(ring.drain_per_sec >= 1e6);

  const MpscPhaseStats mpsc =
      RunMpscPhase(catalog, /*num_producers=*/2,
                   /*samples_per_producer=*/quick ? 100'000 : 500'000);
  std::printf("  mpsc:  %12.0f samples/s  producers=%d  rejected=%llu  "
              "drainer allocs=%lld\n",
              mpsc.samples_per_sec, mpsc.producers,
              static_cast<unsigned long long>(mpsc.rejected),
              static_cast<long long>(mpsc.drainer_allocs));
  DBSCALE_CHECK(mpsc.drainer_allocs == 0);

  const RoutePhaseStats route =
      RunRoutePhase(catalog, /*num_tenants=*/64,
                    /*samples_per_tenant=*/quick ? 200 : 2000);
  std::printf("  route: %12.0f samples/s  tenants=%zu  allocs=%lld\n",
              route.samples_per_sec, route.tenants,
              static_cast<long long>(route.allocs));
  // The full publish+drain+route pipeline is allocation-free in steady
  // state (stores at retention, scratch warm).
  DBSCALE_CHECK(route.allocs == 0);

  const DecidePhaseStats decide =
      RunDecidePhase(catalog, /*num_tenants=*/64,
                     /*num_intervals=*/quick ? 10 : 50);
  std::printf("  decide: %llu decisions  p50=%.1fus p99=%.1fus p999=%.1fus  "
              "(%.0f decisions/s end-to-end)\n",
              static_cast<unsigned long long>(decide.decisions),
              decide.p50_us, decide.p99_us, decide.p999_us,
              decide.decisions_per_sec);

  const uint64_t digest = RunEquivalenceCheck(catalog);
  std::printf("  equivalence: service digest %016llx == direct-feed digest\n",
              static_cast<unsigned long long>(digest));

  char section[2048];
  std::snprintf(
      section, sizeof(section),
      "  \"ingest_daemon\": {\n"
      "    \"quick\": %s,\n"
      "    \"ring_capacity\": %d,\n"
      "    \"push\": {\"samples_per_sec\": %.0f, \"allocs\": %lld},\n"
      "    \"drain\": {\"samples_per_sec\": %.0f, \"allocs\": %lld,\n"
      "      \"batch_p50\": %zu, \"batch_p99\": %zu, \"batch_max\": %zu},\n"
      "    \"mpsc\": {\"producers\": %d, \"samples_per_sec\": %.0f, "
      "\"rejected\": %llu, \"drainer_allocs\": %lld},\n"
      "    \"service_route\": {\"tenants\": %zu, \"samples_per_sec\": %.0f, "
      "\"allocs\": %lld},\n"
      "    \"decision_latency\": {\"decisions\": %llu, \"p50_us\": %.2f, "
      "\"p99_us\": %.2f, \"p999_us\": %.2f, \"decisions_per_sec\": %.0f},\n"
      "    \"digest\": \"%016llx\",\n"
      "    \"digest_identical_service_vs_direct\": true\n"
      "  }",
      quick ? "true" : "false", 1 << 16, ring.push_per_sec,
      static_cast<long long>(ring.push_allocs), ring.drain_per_sec,
      static_cast<long long>(ring.drain_allocs), ring.batch_p50,
      ring.batch_p99, ring.batch_max, mpsc.producers, mpsc.samples_per_sec,
      static_cast<unsigned long long>(mpsc.rejected),
      static_cast<long long>(mpsc.drainer_allocs), route.tenants,
      route.samples_per_sec, static_cast<long long>(route.allocs),
      static_cast<unsigned long long>(decide.decisions), decide.p50_us,
      decide.p99_us, decide.p999_us, decide.decisions_per_sec,
      static_cast<unsigned long long>(digest));

  MergeSectionInto(out_path, section);
  std::printf("merged \"ingest_daemon\" into %s\n", out_path.c_str());
  return 0;
}
