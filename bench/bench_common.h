// Shared setup for the per-figure experiment binaries.
//
// Every binary accepts:
//   --full    run the full 1440-step traces (default: 4x subsampled, which
//             preserves shape and keeps each binary in seconds)
//   --seed=N  override the workload seed

#ifndef DBSCALE_BENCH_BENCH_COMMON_H_
#define DBSCALE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

namespace dbscale::bench {

struct BenchArgs {
  bool full = false;
  uint64_t seed = 17;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return args;
}

/// Builds the standard experiment setup for a workload/trace pair.
inline sim::SimulationOptions MakeSetup(const workload::WorkloadSpec& spec,
                                        const workload::Trace& trace,
                                        const BenchArgs& args) {
  sim::SimulationOptions options;
  options.catalog = container::Catalog::MakeLockStep();
  options.workload = spec;
  options.trace =
      args.full ? trace : trace.Subsampled(4).value();
  options.interval_duration = Duration::Seconds(20);
  options.seed = args.seed;
  return options;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==================================================\n");
}

/// Prints a "paper vs measured" reference line for EXPERIMENTS.md.
inline void PrintReference(const char* what, const char* paper,
                           const std::string& measured) {
  std::printf("  %-42s paper: %-18s measured: %s\n", what, paper,
              measured.c_str());
}

inline void PrintComparison(const sim::ComparisonResult& cmp) {
  std::printf("%s", cmp.ToTable().c_str());
  const auto* auto_t = cmp.Find("Auto");
  if (auto_t == nullptr) return;
  const double auto_cost = auto_t->run.avg_cost_per_interval;
  std::printf("cost ratios vs Auto:");
  for (const auto& t : cmp.techniques) {
    if (t.name == "Auto") continue;
    std::printf("  %s %.2fx", t.name.c_str(),
                t.run.avg_cost_per_interval / auto_cost);
  }
  std::printf("\n");
}

}  // namespace dbscale::bench

#endif  // DBSCALE_BENCH_BENCH_COMMON_H_
