// Figure 6 reproduction: distributions of wait magnitude and wait share for
// CPU and disk I/O, split by low (<30%) vs high (>70%) utilization — the
// separation that makes threshold calibration possible (Section 4.1).
//
// Paper reference points: at low utilization even the p90 of waits is ~20s
// per 5-minute interval; at high utilization the p75 is 500s (disk) to
// 1500s (CPU). Wait shares: low-util p80 is 20-30%, high-util 70-90%.
// We reproduce the *separation* (high-util p75 >> low-util p90), not the
// absolute testbed values.

#include "bench/bench_common.h"
#include "src/fleet/calibrator.h"
#include "src/fleet/fleet_sim.h"
#include "src/fleet/wait_analysis.h"

using namespace dbscale;

namespace {

void PrintCdf(const char* name, const stats::EmpiricalCdf& cdf) {
  std::printf("  %-28s", name);
  for (double p : {25.0, 50.0, 75.0, 90.0, 95.0}) {
    std::printf("  p%.0f=%-9.0f", p, cdf.ValueAtPercentile(p).value());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader(
      "Figure 6", "wait distributions split by low/high utilization");

  container::Catalog catalog = container::Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = args.full ? 2000 : 600;
  options.num_intervals = 7 * 288;
  options.seed = args.seed;
  auto fleet = fleet::FleetSimulator(catalog, options).Run();
  DBSCALE_CHECK_OK(fleet.status());

  for (auto kind :
       {container::ResourceKind::kCpu, container::ResourceKind::kDiskIo}) {
    auto split = fleet::AnalyzeWaitSplit(*fleet, kind);
    DBSCALE_CHECK_OK(split.status());
    std::printf("\n%s:\n", container::ResourceKindToString(kind));
    std::printf(" wait magnitude (ms per hourly-median interval):\n");
    PrintCdf("low utilization (<30%)", split->wait_ms_low_util);
    PrintCdf("high utilization (>70%)", split->wait_ms_high_util);
    std::printf(" wait share of total waits (%%):\n");
    PrintCdf("low utilization (<30%)", split->wait_pct_low_util);
    PrintCdf("high utilization (>70%)", split->wait_pct_high_util);

    const double low_p90 =
        split->wait_ms_low_util.ValueAtPercentile(90).value();
    const double high_p75 =
        split->wait_ms_high_util.ValueAtPercentile(75).value();
    bench::PrintReference(
        "separation: high-util p75 / low-util p90",
        "25x-75x (Fig 6a/b)", StrFormat("%.1fx", high_p75 / low_p90));
  }

  // The calibration the separation enables (Section 4.1).
  fleet::ThresholdCalibrator calibrator;
  auto thresholds = calibrator.Calibrate(*fleet);
  DBSCALE_CHECK_OK(thresholds.status());
  std::printf("\ncalibrated thresholds (Section 4.1 automation):\n%s\n",
              thresholds->ToString().c_str());
  return 0;
}
