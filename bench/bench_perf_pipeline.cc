// Performance benchmark for the parallel simulation pipeline (fleet
// fan-out) and the allocation-free per-interval signal path.
//
// Writes machine-readable results to BENCH_perf.json (override with
// --out=PATH):
//   * fleet wall time, serial vs 1/2/4/8 threads, with a determinism
//     checksum per run (must be identical across thread counts);
//   * TelemetryManager::Compute throughput and heap allocations per call,
//     with and without a reusable SignalScratch.
//
// Numbers are only meaningful relative to `hardware_concurrency`, which is
// recorded alongside them: on a single-core host the parallel runs cannot
// beat serial and the interesting result is the allocation counts.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/container/catalog.h"
#include "src/fleet/fleet_sim.h"
#include "src/telemetry/manager.h"

namespace {

/// Heap allocations made by the calling thread. Thread-local so worker
/// threads (and the global pool) never pollute single-threaded
/// measurements.
thread_local std::int64_t t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbscale::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Order-sensitive digest of a fleet run; identical inputs must produce
/// identical digests at every thread count.
double FleetChecksum(const fleet::FleetTelemetry& t) {
  double sum = 0.0;
  double weight = 1.0;
  for (const fleet::HourlyRecord& r : t.hourly) {
    weight = weight >= 1e9 ? 1.0 : weight + 1e-3;
    for (size_t ri = 0; ri < container::kNumResources; ++ri) {
      sum += weight * (r.utilization_pct[ri] + r.wait_ms_per_request[ri]);
    }
  }
  for (double m : t.inter_event_minutes) sum += m;
  for (size_t i = 0; i < t.step_size_counts.size(); ++i) {
    sum += static_cast<double>(i) * static_cast<double>(t.step_size_counts[i]);
  }
  return sum;
}

struct FleetRunStats {
  int num_threads = 0;
  double seconds = 0.0;
  double checksum = 0.0;
};

FleetRunStats TimeFleetRun(const container::Catalog& catalog,
                           fleet::FleetOptions options, int num_threads) {
  options.num_threads = num_threads;
  fleet::FleetSimulator sim(catalog, options);
  const double start = NowSeconds();
  auto telemetry = sim.Run();
  const double elapsed = NowSeconds() - start;
  if (!telemetry.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 telemetry.status().ToString().c_str());
  }
  DBSCALE_CHECK(telemetry.ok());
  return {num_threads, elapsed, FleetChecksum(*telemetry)};
}

telemetry::TelemetryStore MakeSignalStore(const container::Catalog& catalog) {
  telemetry::TelemetryStore store;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    telemetry::TelemetrySample sample;
    sample.period_start = SimTime::Zero() + Duration::Seconds(i * 5);
    sample.period_end = SimTime::Zero() + Duration::Seconds((i + 1) * 5);
    sample.requests_completed = 100;
    sample.latency_p95_ms = rng.LogNormal(5.0, 0.3);
    for (size_t r = 0; r < container::kNumResources; ++r) {
      sample.utilization_pct[r] = rng.Uniform(0, 100);
    }
    for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
      sample.wait_ms[w] = rng.LogNormal(4.0, 1.0);
    }
    sample.allocation = catalog.rung(4).resources;
    store.Append(std::move(sample));
  }
  return store;
}

struct ComputeStats {
  double calls_per_sec = 0.0;
  double allocs_per_call = 0.0;
};

ComputeStats TimeCompute(const telemetry::TelemetryManager& manager,
                         const telemetry::TelemetryStore& store,
                         telemetry::SignalScratch* scratch, int iterations) {
  const SimTime now = SimTime::Zero() + Duration::Seconds(64 * 5);
  // Warm up (first scratch call sizes the buffers; later calls must not
  // allocate).
  for (int i = 0; i < 16; ++i) manager.Compute(store, now, scratch);
  const std::int64_t allocs_before = t_alloc_count;
  const double start = NowSeconds();
  double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    sink += manager.Compute(store, now, scratch).latency_ms;
  }
  const double elapsed = NowSeconds() - start;
  const std::int64_t allocs = t_alloc_count - allocs_before;
  DBSCALE_CHECK(sink > 0.0);
  ComputeStats stats;
  stats.calls_per_sec = iterations / elapsed;
  stats.allocs_per_call =
      static_cast<double>(allocs) / static_cast<double>(iterations);
  return stats;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  fleet::FleetOptions fleet_options;
  fleet_options.num_tenants = 200;
  fleet_options.num_intervals = 288;  // one simulated day
  fleet_options.seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      fleet_options.num_tenants = 1000;
      fleet_options.num_intervals = 7 * 288;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n", hw);
  std::printf("default threads (DBSCALE_NUM_THREADS aware): %d\n\n",
              ThreadPool::DefaultNumThreads());

  container::Catalog catalog = container::Catalog::MakeLockStep();

  std::printf("fleet: %d tenants x %d intervals\n",
              fleet_options.num_tenants, fleet_options.num_intervals);
  std::vector<FleetRunStats> fleet_runs;
  for (int threads : {1, 2, 4, 8}) {
    fleet_runs.push_back(TimeFleetRun(catalog, fleet_options, threads));
    const FleetRunStats& run = fleet_runs.back();
    std::printf("  threads=%d  %.3fs  speedup=%.2fx  checksum=%.6f\n",
                run.num_threads, run.seconds,
                fleet_runs.front().seconds / run.seconds, run.checksum);
    // Bit-identical output is a hard guarantee, not a tolerance.
    DBSCALE_CHECK(run.checksum == fleet_runs.front().checksum);
  }

  telemetry::TelemetryStore store = MakeSignalStore(catalog);
  telemetry::TelemetryManager manager;
  telemetry::SignalScratch scratch;
  const int iterations = 20000;
  ComputeStats no_scratch = TimeCompute(manager, store, nullptr, iterations);
  ComputeStats with_scratch =
      TimeCompute(manager, store, &scratch, iterations);
  std::printf("\nTelemetryManager::Compute (64-sample store):\n");
  std::printf("  no scratch:   %10.0f calls/s  %6.1f allocs/call\n",
              no_scratch.calls_per_sec, no_scratch.allocs_per_call);
  std::printf("  with scratch: %10.0f calls/s  %6.1f allocs/call\n",
              with_scratch.calls_per_sec, with_scratch.allocs_per_call);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  DBSCALE_CHECK(out != nullptr);
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(out, "  \"fleet\": {\n");
  std::fprintf(out, "    \"num_tenants\": %d,\n", fleet_options.num_tenants);
  std::fprintf(out, "    \"num_intervals\": %d,\n",
               fleet_options.num_intervals);
  std::fprintf(out, "    \"runs\": [\n");
  for (size_t i = 0; i < fleet_runs.size(); ++i) {
    const FleetRunStats& run = fleet_runs[i];
    std::fprintf(out,
                 "      {\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup_vs_serial\": %.4f, \"checksum\": %.6f}%s\n",
                 run.num_threads, run.seconds,
                 fleet_runs.front().seconds / run.seconds, run.checksum,
                 i + 1 < fleet_runs.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"deterministic_across_threads\": true\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"telemetry_compute\": {\n");
  std::fprintf(out, "    \"iterations\": %d,\n", iterations);
  std::fprintf(out,
               "    \"no_scratch\": {\"calls_per_sec\": %.0f, "
               "\"allocs_per_call\": %.2f},\n",
               no_scratch.calls_per_sec, no_scratch.allocs_per_call);
  std::fprintf(out,
               "    \"with_scratch\": {\"calls_per_sec\": %.0f, "
               "\"allocs_per_call\": %.2f}\n",
               with_scratch.calls_per_sec, with_scratch.allocs_per_call);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dbscale::bench

int main(int argc, char** argv) { return dbscale::bench::Main(argc, argv); }
