// Performance benchmark for the parallel simulation pipeline (fleet
// fan-out) and the allocation-free per-interval signal path.
//
// Writes machine-readable results to BENCH_perf.json (override with
// --out=PATH):
//   * fleet wall time, serial vs 1/2/4/8 threads, with a determinism
//     digest per run (hex FNV-1a over the raw telemetry bit patterns;
//     must be identical across thread counts);
//   * fleet_scale: the SoA streaming runner (src/fleet/fleet_scale.*) at
//     10^4 and 10^5 tenants (10^6 with --full) — tenants/sec, state
//     bytes, and peak RSS per point — plus a thread-scaling curve whose
//     aggregate digest must be bit-identical at every thread count;
//   * TelemetryManager::Compute throughput and heap allocations per call
//     on a static store, with and without a reusable SignalScratch (both
//     rows use the batch path so they stay comparable to earlier runs);
//   * incremental vs batch Compute on a *sliding* store (one appended
//     sample per call — the deployment access pattern) at window sizes
//     W in {32, 128, 512}, with per-call allocation counts and an
//     order-sensitive snapshot digest that must match between the two
//     paths exactly (the incremental engine's bit-identity contract);
//   * observability overhead: Compute with metrics + span capture enabled
//     vs off, and the fleet run with per-tenant shards vs off — both with
//     a <2% overhead target and an unchanged-digest requirement.
//
// Numbers are only meaningful relative to `hardware_concurrency`, which is
// recorded alongside them (as is DBSCALE_NUM_THREADS when set): on a
// single-core host the parallel runs cannot beat serial and the
// interesting results are the allocation counts and the incremental
// speedups, which do not depend on core count.
//
// --quick shrinks every section to a few seconds total; ci/check.sh runs
// it as a smoke stage and asserts on the JSON (zero allocations on the
// scratch paths, digests match).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/container/catalog.h"
#include "src/fleet/fleet_aggregate.h"
#include "src/fleet/fleet_scale.h"
#include "src/fleet/fleet_sim.h"
#include "src/obs/pipeline.h"
#include "src/telemetry/manager.h"

namespace {

/// Heap allocations made by the calling thread. Thread-local so worker
/// threads (and the global pool) never pollute single-threaded
/// measurements.
thread_local std::int64_t t_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbscale::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Order-sensitive digest of a fleet run; identical inputs must produce
/// identical digests at every thread count. FNV-1a over the raw bit
/// patterns — unlike the old floating-point weighted sum, equal digests
/// mean bit-equal telemetry, and the hex string form survives the JSON
/// round trip losslessly (a %f double prints truncated).
uint64_t FleetDigest(const fleet::FleetTelemetry& t) {
  fleet::Fnv64Stream d;
  for (const fleet::HourlyRecord& r : t.hourly) {
    for (size_t ri = 0; ri < container::kNumResources; ++ri) {
      d.Dbl(r.utilization_pct[ri]);
      d.Dbl(r.wait_ms_per_request[ri]);
    }
  }
  for (double m : t.inter_event_minutes) d.Dbl(m);
  for (int64_t c : t.step_size_counts) d.U64(static_cast<uint64_t>(c));
  return d.value;
}

struct FleetRunStats {
  int num_threads = 0;
  double seconds = 0.0;
  uint64_t digest = 0;
};

FleetRunStats TimeFleetRun(const container::Catalog& catalog,
                           fleet::FleetOptions options, int num_threads) {
  options.num_threads = num_threads;
  fleet::FleetSimulator sim(catalog, options);
  const double start = NowSeconds();
  auto telemetry = sim.Run();
  const double elapsed = NowSeconds() - start;
  if (!telemetry.ok()) {
    std::fprintf(stderr, "fleet run failed: %s\n",
                 telemetry.status().ToString().c_str());
  }
  DBSCALE_CHECK(telemetry.ok());
  return {num_threads, elapsed, FleetDigest(*telemetry)};
}

/// Peak resident set size (VmHWM) in kB, or -1 where /proc is unavailable.
/// High-water mark, so later readings subsume earlier ones; the largest
/// fleet-scale point dominates the value recorded next to it.
long PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct FleetScaleRunStats {
  int num_tenants = 0;
  int num_threads = 0;
  double seconds = 0.0;
  double tenants_per_sec = 0.0;
  uint64_t digest = 0;
  uint64_t state_bytes = 0;
  long peak_rss_kb = -1;
};

FleetScaleRunStats TimeFleetScaleRun(const container::Catalog& catalog,
                                     fleet::FleetScaleOptions options) {
  fleet::FleetScaleRunner runner(catalog, options);
  const double start = NowSeconds();
  auto outcome = runner.Run();
  const double elapsed = NowSeconds() - start;
  if (!outcome.ok()) {
    std::fprintf(stderr, "fleet-scale run failed: %s\n",
                 outcome.status().ToString().c_str());
  }
  DBSCALE_CHECK(outcome.ok());
  FleetScaleRunStats stats;
  stats.num_tenants = options.num_tenants;
  stats.num_threads = options.num_threads;
  stats.seconds = elapsed;
  stats.tenants_per_sec =
      elapsed > 0.0 ? options.num_tenants / elapsed : 0.0;
  stats.digest = outcome->aggregate.digest;
  stats.state_bytes = runner.StateBytes();
  stats.peak_rss_kb = PeakRssKb();
  return stats;
}

telemetry::TelemetrySample MakeSlidingSample(
    const container::Catalog& catalog, int i, Rng& rng) {
  telemetry::TelemetrySample sample;
  sample.period_start = SimTime::Zero() + Duration::Seconds(i * 5);
  sample.period_end = SimTime::Zero() + Duration::Seconds((i + 1) * 5);
  sample.requests_completed = 100;
  sample.latency_p95_ms = rng.LogNormal(5.0, 0.3);
  sample.latency_avg_ms = sample.latency_p95_ms * 0.5;
  for (size_t r = 0; r < container::kNumResources; ++r) {
    sample.utilization_pct[r] = rng.Uniform(0, 100);
  }
  for (size_t w = 0; w < telemetry::kNumWaitClasses; ++w) {
    sample.wait_ms[w] = rng.LogNormal(4.0, 1.0);
  }
  sample.allocation = catalog.rung(4).resources;
  return sample;
}

telemetry::TelemetryStore MakeSignalStore(const container::Catalog& catalog) {
  telemetry::TelemetryStore store;
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    store.Append(MakeSlidingSample(catalog, i, rng));
  }
  return store;
}

struct ComputeStats {
  double calls_per_sec = 0.0;
  double allocs_per_call = 0.0;
};

ComputeStats TimeCompute(const telemetry::TelemetryManager& manager,
                         const telemetry::TelemetryStore& store,
                         telemetry::SignalScratch* scratch, int iterations) {
  const SimTime now = SimTime::Zero() + Duration::Seconds(64 * 5);
  // Warm up (first scratch call sizes the buffers; later calls must not
  // allocate).
  for (int i = 0; i < 16; ++i) manager.Compute(store, now, scratch);
  const std::int64_t allocs_before = t_alloc_count;
  const double start = NowSeconds();
  double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    sink += manager.Compute(store, now, scratch).latency_ms;
  }
  const double elapsed = NowSeconds() - start;
  const std::int64_t allocs = t_alloc_count - allocs_before;
  DBSCALE_CHECK(sink > 0.0);
  ComputeStats stats;
  stats.calls_per_sec = iterations / elapsed;
  stats.allocs_per_call =
      static_cast<double>(allocs) / static_cast<double>(iterations);
  return stats;
}

/// TimeCompute with the observability layer live: every call runs inside
/// its own span tree (the deployment shape — one Compute per billing
/// interval) and records through the primary-shard sink.
ComputeStats TimeComputeObserved(const telemetry::TelemetryManager& manager,
                                 const telemetry::TelemetryStore& store,
                                 telemetry::SignalScratch* scratch,
                                 int iterations, obs::Observability* ob) {
  const SimTime now = SimTime::Zero() + Duration::Seconds(64 * 5);
  const obs::Sink obs_sink = ob->PrimarySink();
  for (int i = 0; i < 16; ++i) {
    ob->trace().BeginInterval(i, now);
    manager.Compute(store, now, scratch,
                    obs_sink.Under(ob->trace().root()));
    ob->trace().EndInterval(now);
  }
  const std::int64_t allocs_before = t_alloc_count;
  const double start = NowSeconds();
  double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    ob->trace().BeginInterval(i, now);
    sink += manager
                .Compute(store, now, scratch,
                         obs_sink.Under(ob->trace().root()))
                .latency_ms;
    ob->trace().EndInterval(now);
  }
  const double elapsed = NowSeconds() - start;
  const std::int64_t allocs = t_alloc_count - allocs_before;
  DBSCALE_CHECK(sink > 0.0);
  ComputeStats stats;
  stats.calls_per_sec = iterations / elapsed;
  stats.allocs_per_call =
      static_cast<double>(allocs) / static_cast<double>(iterations);
  return stats;
}

double TrendDigest(const stats::TrendResult& t) {
  return t.slope + 3.0 * t.intercept + 7.0 * t.fraction_positive +
         11.0 * t.fraction_negative + (t.significant ? 13.0 : 0.0) +
         17.0 * static_cast<double>(t.direction);
}

/// Order-sensitive digest over every field of a snapshot. The incremental
/// and batch paths must produce identical digests over identical sample
/// streams — any divergence in any signal on any slide changes the sum.
double SnapshotDigest(const telemetry::SignalSnapshot& snap, double weight) {
  double sum = snap.latency_ms + TrendDigest(snap.latency_trend) +
               snap.total_wait_ms + snap.throughput_rps +
               snap.memory_used_mb + snap.physical_reads_per_sec;
  for (size_t r = 0; r < container::kNumResources; ++r) {
    const telemetry::ResourceSignals& rs = snap.resources[r];
    sum += rs.utilization_pct + rs.wait_ms + rs.wait_ms_per_request +
           rs.wait_pct + TrendDigest(rs.utilization_trend) +
           TrendDigest(rs.wait_trend) + rs.wait_latency_correlation +
           rs.utilization_latency_correlation;
  }
  for (double pct : snap.wait_pct_by_class) sum += pct;
  return weight * sum;
}

struct SlidingStats {
  double calls_per_sec = 0.0;
  double allocs_per_call = 0.0;
  double digest = 0.0;
};

/// The deployment access pattern: one sample appended per Compute. Only
/// the Compute calls are timed and allocation-counted (the store's own
/// append may grow its deque). The same seed gives both managers an
/// identical sample stream so their digests are comparable bit-for-bit.
SlidingStats TimeSlidingCompute(const telemetry::TelemetryManager& manager,
                                const container::Catalog& catalog,
                                size_t window, int slides, uint64_t seed) {
  telemetry::TelemetryStore store;
  Rng rng(seed);
  int index = 0;
  for (size_t i = 0; i < window; ++i) {
    store.Append(MakeSlidingSample(catalog, index++, rng));
  }
  telemetry::SignalScratch scratch;
  // Warm up: sizes scratch / configures the incremental engine.
  manager.Compute(store, store.back().period_end, &scratch);

  SlidingStats stats;
  double compute_seconds = 0.0;
  std::int64_t allocs = 0;
  double weight = 1.0;
  for (int i = 0; i < slides; ++i) {
    store.Append(MakeSlidingSample(catalog, index++, rng));
    const std::int64_t allocs_before = t_alloc_count;
    const double start = NowSeconds();
    const telemetry::SignalSnapshot snap =
        manager.Compute(store, store.back().period_end, &scratch);
    compute_seconds += NowSeconds() - start;
    allocs += t_alloc_count - allocs_before;
    weight = weight >= 1e9 ? 1.0 : weight + 1e-3;
    stats.digest += SnapshotDigest(snap, weight);
  }
  stats.calls_per_sec = slides / compute_seconds;
  stats.allocs_per_call =
      static_cast<double>(allocs) / static_cast<double>(slides);
  return stats;
}

struct SlidingComparison {
  size_t window = 0;
  int slides = 0;
  SlidingStats incremental;
  SlidingStats batch;
};

SlidingComparison CompareSlidingPaths(const container::Catalog& catalog,
                                      size_t window, int slides) {
  telemetry::TelemetryManagerOptions options;
  options.aggregation_samples = window / 2;
  options.trend_samples = window;
  options.correlation_samples = window;

  SlidingComparison cmp;
  cmp.window = window;
  cmp.slides = slides;

  options.incremental = true;
  const telemetry::TelemetryManager incremental(options);
  cmp.incremental =
      TimeSlidingCompute(incremental, catalog, window, slides, /*seed=*/29);

  options.incremental = false;
  const telemetry::TelemetryManager batch(options);
  cmp.batch =
      TimeSlidingCompute(batch, catalog, window, slides, /*seed=*/29);

  // Bit-identical signals are a hard guarantee, not a tolerance: the
  // incremental engine must reproduce the batch oracle on every slide.
  DBSCALE_CHECK(cmp.incremental.digest == cmp.batch.digest);
  return cmp;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  bool quick = false;
  bool full = false;
  fleet::FleetOptions fleet_options;
  fleet_options.num_tenants = 200;
  fleet_options.num_intervals = 288;  // one simulated day
  fleet_options.seed = 17;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
      fleet_options.num_tenants = 1000;
      fleet_options.num_intervals = 7 * 288;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      fleet_options.num_tenants = 24;
      fleet_options.num_intervals = 48;
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const char* threads_env = std::getenv("DBSCALE_NUM_THREADS");
  std::printf("hardware_concurrency: %u\n", hw);
  std::printf("DBSCALE_NUM_THREADS: %s\n",
              threads_env != nullptr ? threads_env : "(unset)");
  std::printf("default threads: %d\n\n", ThreadPool::DefaultNumThreads());
  if (hw <= 1) {
    std::printf(
        "WARNING: single-core host — fleet speedups cannot exceed 1x here; "
        "read the allocation counts and incremental-vs-batch rows instead.\n"
        "\n");
  }

  container::Catalog catalog = container::Catalog::MakeLockStep();

  std::printf("fleet: %d tenants x %d intervals\n",
              fleet_options.num_tenants, fleet_options.num_intervals);
  std::vector<FleetRunStats> fleet_runs;
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (int threads : thread_counts) {
    fleet_runs.push_back(TimeFleetRun(catalog, fleet_options, threads));
    const FleetRunStats& run = fleet_runs.back();
    std::printf("  threads=%d  %.3fs  speedup=%.2fx  digest=%016llx\n",
                run.num_threads, run.seconds,
                fleet_runs.front().seconds / run.seconds,
                static_cast<unsigned long long>(run.digest));
    // Bit-identical output is a hard guarantee, not a tolerance.
    DBSCALE_CHECK(run.digest == fleet_runs.front().digest);
  }

  // Fleet at scale: the SoA streaming runner (src/fleet/fleet_scale.*).
  // Scale points measure streaming throughput and peak RSS at growing
  // tenant counts; the thread curve re-runs one point at several thread
  // counts and requires a bit-identical aggregate digest. On a single-core
  // host the curve is flat by construction — the JSON carries an explicit
  // caveat so readers do not mistake that for a sharding regression.
  fleet::FleetScaleOptions scale_base;
  scale_base.num_intervals = quick ? 48 : 288;  // one simulated day
  scale_base.epoch_intervals = scale_base.num_intervals;
  scale_base.seed = 7;
  scale_base.block_size = 2048;
  const std::vector<int> scale_points =
      quick ? std::vector<int>{10000}
            : (full ? std::vector<int>{10000, 100000, 1000000}
                    : std::vector<int>{10000, 100000});
  std::printf("\nfleet_scale (SoA streaming runner, %d intervals):\n",
              scale_base.num_intervals);
  std::vector<FleetScaleRunStats> scale_stats;
  for (int tenants : scale_points) {
    fleet::FleetScaleOptions options = scale_base;
    options.num_tenants = tenants;
    scale_stats.push_back(TimeFleetScaleRun(catalog, options));
    const FleetScaleRunStats& run = scale_stats.back();
    std::printf("  tenants=%-8d %8.2fs  %8.0f tenants/s  "
                "state %7.1f MB  peak RSS %7.1f MB\n",
                run.num_tenants, run.seconds, run.tenants_per_sec,
                run.state_bytes / 1048576.0, run.peak_rss_kb / 1024.0);
  }

  const int curve_tenants = quick ? 10000 : 100000;
  std::vector<FleetScaleRunStats> scale_curve;
  for (int threads : thread_counts) {
    fleet::FleetScaleOptions options = scale_base;
    options.num_tenants = curve_tenants;
    options.num_threads = threads;
    scale_curve.push_back(TimeFleetScaleRun(catalog, options));
    const FleetScaleRunStats& run = scale_curve.back();
    std::printf("  tenants=%d threads=%d  %8.2fs  speedup=%.2fx  "
                "digest=%016llx\n",
                curve_tenants, run.num_threads, run.seconds,
                scale_curve.front().seconds / run.seconds,
                static_cast<unsigned long long>(run.digest));
    // The digest chains per-tenant streams in tenant order; any thread
    // count must reproduce it bit for bit.
    DBSCALE_CHECK(run.digest == scale_curve.front().digest);
  }
  double scale_max_speedup = 0.0;
  for (const FleetScaleRunStats& run : scale_curve) {
    scale_max_speedup =
        std::max(scale_max_speedup, scale_curve.front().seconds / run.seconds);
  }

  // Static-store rows, batch path on both: comparable to historical runs
  // and isolates what the scratch alone buys.
  telemetry::TelemetryManagerOptions batch_options;
  batch_options.incremental = false;
  telemetry::TelemetryStore store = MakeSignalStore(catalog);
  telemetry::TelemetryManager batch_manager(batch_options);
  telemetry::SignalScratch scratch;
  const int iterations = quick ? 2000 : 20000;
  ComputeStats no_scratch =
      TimeCompute(batch_manager, store, nullptr, iterations);
  ComputeStats with_scratch =
      TimeCompute(batch_manager, store, &scratch, iterations);
  std::printf("\nTelemetryManager::Compute (static 64-sample store, batch):\n");
  std::printf("  no scratch:   %10.0f calls/s  %6.1f allocs/call\n",
              no_scratch.calls_per_sec, no_scratch.allocs_per_call);
  std::printf("  with scratch: %10.0f calls/s  %6.1f allocs/call\n",
              with_scratch.calls_per_sec, with_scratch.allocs_per_call);

  // Sliding store: incremental engine vs batch oracle at growing windows.
  // The batch pairwise-slope pass is O(W^2) per call, so its slide counts
  // shrink with W to keep the section bounded.
  std::printf("\nSliding Compute, incremental vs batch "
              "(1 append per call):\n");
  std::vector<SlidingComparison> sliding;
  const std::vector<std::pair<size_t, int>> sliding_cases =
      quick ? std::vector<std::pair<size_t, int>>{{32, 200}, {128, 60},
                                                  {512, 16}}
            : std::vector<std::pair<size_t, int>>{{32, 4000}, {128, 1000},
                                                  {512, 150}};
  for (const auto& [window, slides] : sliding_cases) {
    sliding.push_back(CompareSlidingPaths(catalog, window, slides));
    const SlidingComparison& cmp = sliding.back();
    std::printf(
        "  W=%-4zu incremental %10.0f calls/s %5.2f allocs/call | "
        "batch %10.0f calls/s %5.2f allocs/call | speedup %5.2fx\n",
        cmp.window, cmp.incremental.calls_per_sec,
        cmp.incremental.allocs_per_call, cmp.batch.calls_per_sec,
        cmp.batch.allocs_per_call,
        cmp.incremental.calls_per_sec / cmp.batch.calls_per_sec);
  }

  // Observability overhead. Compute: metrics + one span tree per call vs
  // the plain scratch path. Fleet: per-tenant shards merged in tenant
  // order vs none, at the largest thread count benchmarked — and the
  // checksum must not move (observing a run never perturbs it). Paired
  // best-of-N on both sides filters scheduler/turbo noise, which would
  // otherwise swamp a sub-2% effect.
  obs::Observability compute_ob;
  const int overhead_reps = quick ? 3 : 7;  // odd: median is a single rep
  const int overhead_iters = quick ? 1000 : 5000;
  ComputeStats compute_base;
  ComputeStats observed_compute;
  double observed_allocs_per_call = 0.0;
  std::vector<double> compute_ratios;
  for (int rep = 0; rep < overhead_reps; ++rep) {
    const ComputeStats base =
        TimeCompute(batch_manager, store, &scratch, overhead_iters);
    const ComputeStats observed = TimeComputeObserved(
        batch_manager, store, &scratch, overhead_iters, &compute_ob);
    compute_ratios.push_back(base.calls_per_sec / observed.calls_per_sec);
    if (base.calls_per_sec > compute_base.calls_per_sec) compute_base = base;
    if (observed.calls_per_sec > observed_compute.calls_per_sec) {
      observed_compute = observed;
    }
    observed_allocs_per_call =
        std::max(observed_allocs_per_call, observed.allocs_per_call);
  }
  std::sort(compute_ratios.begin(), compute_ratios.end());
  const double compute_overhead_pct =
      (compute_ratios[compute_ratios.size() / 2] - 1.0) * 100.0;

  const int obs_threads = thread_counts.back();
  fleet::FleetOptions observed_options = fleet_options;
  const int fleet_reps = quick ? 3 : 5;
  double fleet_base_seconds = 0.0;
  double fleet_observed_seconds = 0.0;
  std::vector<double> fleet_ratios;
  for (int rep = 0; rep < fleet_reps; ++rep) {
    const FleetRunStats base =
        TimeFleetRun(catalog, fleet_options, obs_threads);
    obs::Observability fleet_ob;
    observed_options.obs = &fleet_ob;
    const FleetRunStats observed =
        TimeFleetRun(catalog, observed_options, obs_threads);
    DBSCALE_CHECK(observed.digest == base.digest);
    fleet_ratios.push_back(observed.seconds / base.seconds);
    if (rep == 0 || base.seconds < fleet_base_seconds) {
      fleet_base_seconds = base.seconds;
    }
    if (rep == 0 || observed.seconds < fleet_observed_seconds) {
      fleet_observed_seconds = observed.seconds;
    }
  }
  std::sort(fleet_ratios.begin(), fleet_ratios.end());
  const double fleet_overhead_pct =
      (fleet_ratios[fleet_ratios.size() / 2] - 1.0) * 100.0;

  std::printf("\nObservability overhead "
              "(<2%% target, median of %d paired reps):\n",
              overhead_reps);
  std::printf("  compute: %10.0f -> %10.0f calls/s  %+5.2f%%  "
              "%.2f allocs/call observed\n",
              compute_base.calls_per_sec, observed_compute.calls_per_sec,
              compute_overhead_pct, observed_allocs_per_call);
  std::printf("  fleet (threads=%d): %.3fs -> %.3fs  %+5.2f%%  "
              "digest unchanged\n",
              obs_threads, fleet_base_seconds, fleet_observed_seconds,
              fleet_overhead_pct);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  DBSCALE_CHECK(out != nullptr);
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hw);
  if (threads_env != nullptr) {
    std::fprintf(out, "  \"dbscale_num_threads_env\": \"%s\",\n", threads_env);
  } else {
    std::fprintf(out, "  \"dbscale_num_threads_env\": null,\n");
  }
  std::fprintf(out, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(out, "  \"fleet\": {\n");
  std::fprintf(out, "    \"num_tenants\": %d,\n", fleet_options.num_tenants);
  std::fprintf(out, "    \"num_intervals\": %d,\n",
               fleet_options.num_intervals);
  std::fprintf(out, "    \"runs\": [\n");
  for (size_t i = 0; i < fleet_runs.size(); ++i) {
    const FleetRunStats& run = fleet_runs[i];
    std::fprintf(out,
                 "      {\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup_vs_serial\": %.4f, \"digest\": \"%016llx\"}%s\n",
                 run.num_threads, run.seconds,
                 fleet_runs.front().seconds / run.seconds,
                 static_cast<unsigned long long>(run.digest),
                 i + 1 < fleet_runs.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"deterministic_across_threads\": true\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fleet_scale\": {\n");
  std::fprintf(out, "    \"num_intervals\": %d,\n", scale_base.num_intervals);
  std::fprintf(out, "    \"block_size\": %d,\n", scale_base.block_size);
  std::fprintf(out, "    \"single_core_container\": %s,\n",
               hw <= 1 ? "true" : "false");
  if (hw <= 1) {
    std::fprintf(out,
                 "    \"thread_scaling_caveat\": \"single-core container "
                 "(hardware_concurrency=1): the thread curve is flat by "
                 "construction, so read tenants_per_sec as per-core "
                 "streaming throughput; digests stay bit-identical at "
                 "every thread count regardless\",\n");
  }
  std::fprintf(out, "    \"scale_points\": [\n");
  for (size_t i = 0; i < scale_stats.size(); ++i) {
    const FleetScaleRunStats& run = scale_stats[i];
    std::fprintf(out,
                 "      {\"tenants\": %d, \"seconds\": %.3f, "
                 "\"tenants_per_sec\": %.0f, \"state_bytes\": %llu, "
                 "\"bytes_per_tenant\": %.1f, \"peak_rss_kb\": %ld, "
                 "\"digest\": \"%016llx\"}%s\n",
                 run.num_tenants, run.seconds, run.tenants_per_sec,
                 static_cast<unsigned long long>(run.state_bytes),
                 static_cast<double>(run.state_bytes) / run.num_tenants,
                 run.peak_rss_kb,
                 static_cast<unsigned long long>(run.digest),
                 i + 1 < scale_stats.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"tenants\": %d,\n", curve_tenants);
  std::fprintf(out, "      \"runs\": [\n");
  for (size_t i = 0; i < scale_curve.size(); ++i) {
    const FleetScaleRunStats& run = scale_curve[i];
    std::fprintf(out,
                 "        {\"threads\": %d, \"seconds\": %.3f, "
                 "\"speedup_vs_serial\": %.4f, \"digest\": \"%016llx\"}%s\n",
                 run.num_threads, run.seconds,
                 scale_curve.front().seconds / run.seconds,
                 static_cast<unsigned long long>(run.digest),
                 i + 1 < scale_curve.size() ? "," : "");
  }
  std::fprintf(out, "      ],\n");
  std::fprintf(out, "      \"max_speedup\": %.4f,\n", scale_max_speedup);
  std::fprintf(out, "      \"digest_identical_across_threads\": true\n");
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"telemetry_compute\": {\n");
  std::fprintf(out, "    \"iterations\": %d,\n", iterations);
  std::fprintf(out,
               "    \"no_scratch\": {\"calls_per_sec\": %.0f, "
               "\"allocs_per_call\": %.2f},\n",
               no_scratch.calls_per_sec, no_scratch.allocs_per_call);
  std::fprintf(out,
               "    \"with_scratch\": {\"calls_per_sec\": %.0f, "
               "\"allocs_per_call\": %.2f}\n",
               with_scratch.calls_per_sec, with_scratch.allocs_per_call);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"incremental_vs_batch\": [\n");
  for (size_t i = 0; i < sliding.size(); ++i) {
    const SlidingComparison& cmp = sliding[i];
    std::fprintf(
        out,
        "    {\"window\": %zu, \"slides\": %d,\n"
        "     \"incremental\": {\"calls_per_sec\": %.0f, "
        "\"allocs_per_call\": %.4f},\n"
        "     \"batch\": {\"calls_per_sec\": %.0f, "
        "\"allocs_per_call\": %.4f},\n"
        "     \"speedup\": %.4f, \"digest\": %.6f, "
        "\"digests_match\": true}%s\n",
        cmp.window, cmp.slides, cmp.incremental.calls_per_sec,
        cmp.incremental.allocs_per_call, cmp.batch.calls_per_sec,
        cmp.batch.allocs_per_call,
        cmp.incremental.calls_per_sec / cmp.batch.calls_per_sec,
        cmp.incremental.digest, i + 1 < sliding.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"observability\": {\n");
  std::fprintf(out,
               "    \"compute\": {\"base_calls_per_sec\": %.0f, "
               "\"observed_calls_per_sec\": %.0f, "
               "\"observed_allocs_per_call\": %.4f, "
               "\"overhead_pct\": %.4f},\n",
               compute_base.calls_per_sec, observed_compute.calls_per_sec,
               observed_allocs_per_call, compute_overhead_pct);
  std::fprintf(out,
               "    \"fleet\": {\"threads\": %d, \"base_seconds\": %.6f, "
               "\"observed_seconds\": %.6f, \"overhead_pct\": %.4f, "
               "\"digest_matches\": true}\n",
               obs_threads, fleet_base_seconds, fleet_observed_seconds,
               fleet_overhead_pct);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace dbscale::bench

int main(int argc, char** argv) { return dbscale::bench::Main(argc, argv); }
