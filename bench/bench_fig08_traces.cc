// Figure 8 reproduction: the four production-derived load traces.
// Prints per-trace statistics and an ASCII rendering of each shape.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  (void)bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 8", "the four load traces");

  sim::TextTable table({"trace", "steps", "mean rps", "max rps",
                        "steps > 80 rps", "shape"});
  const char* shapes[] = {"steady", "one long burst", "one short burst",
                          "many bursts"};
  for (int i = 1; i <= 4; ++i) {
    auto trace = workload::MakePaperTrace(i);
    DBSCALE_CHECK_OK(trace.status());
    int high = 0;
    for (double v : trace->values()) {
      if (v > 80.0) ++high;
    }
    table.AddRow({trace->name(), StrFormat("%zu", trace->num_steps()),
                  StrFormat("%.1f", trace->mean_rate()),
                  StrFormat("%.1f", trace->max_rate()),
                  StrFormat("%d", high), shapes[i - 1]});
  }
  std::printf("%s\n", table.ToString().c_str());

  for (int i = 1; i <= 4; ++i) {
    auto trace = workload::MakePaperTrace(i);
    std::printf("%s (rps over %zu minutes):\n%s\n",
                trace->name().c_str(), trace->num_steps(),
                sim::AsciiChart(trace->values(), 7, 110).c_str());
  }
  return 0;
}
