// Figure 14 reproduction: the impact of ballooning on end-to-end latency
// when low memory demand is (incorrectly) suspected.
//
// CPUIO with a ~3 GB working set runs steadily on an S4 container (4 GB;
// the buffer pool just fits the working set). The scaler considers
// shrinking memory to the next smaller container (S3, 2.5 GB):
//
//   * WITHOUT ballooning, memory drops at once below the working set; the
//     paper reports average latency jumping two orders of magnitude, and a
//     long recovery after the revert because the working set re-warms one
//     miss at a time (Fig 14b).
//   * WITH ballooning, memory shrinks gradually and the controller aborts
//     on the first I/O increase — near the 3 GB working-set boundary —
//     with minimal latency impact (Fig 14a).

#include <algorithm>

#include "bench/bench_common.h"
#include "src/scaler/balloon.h"
#include "src/scaler/policy.h"

using namespace dbscale;

namespace {

enum class Mode { kNoBalloon, kBalloon };

/// Scripted policy: holds the container fixed and performs the memory
/// shrink at `start_interval` either abruptly or via the balloon.
class BalloonScenarioPolicy : public scaler::ScalingPolicy {
 public:
  BalloonScenarioPolicy(Mode mode, container::ContainerSpec container,
                        double target_mb, int start_interval)
      : mode_(mode),
        container_(std::move(container)),
        target_mb_(target_mb),
        start_interval_(start_interval) {
    scaler::BalloonOptions options;
    options.shrink_step_fraction = 0.15;
    options.io_abort_factor = 1.5;
    options.io_abort_margin_rps = 25.0;
    balloon_ = std::make_unique<scaler::BalloonController>(options);
  }

  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    scaler::ScalingDecision d;
    d.target = container_;
    d.explanation = scaler::Explanation(
        scaler::ExplanationCode::kNote, "scenario");
    const int i = input.interval_index;
    const double full_mb = container_.resources.memory_mb;

    if (mode_ == Mode::kNoBalloon) {
      if (i == start_interval_) {
        // "Low memory demand" acted on at once: next-smaller container's
        // allocation.
        d.memory_limit_mb = target_mb_;
        d.explanation = scaler::Explanation(
            scaler::ExplanationCode::kNote,
            "abrupt shrink to next smaller container");
      } else if (i > start_interval_ && !reverted_ &&
                 input.signals.valid &&
                 input.signals.physical_reads_per_sec > 150.0) {
        // The scaler notices unmet disk demand and reverts (the paper's
        // Auto does this from latency + disk signals).
        d.memory_limit_mb = full_mb;
        d.explanation = scaler::Explanation(
            scaler::ExplanationCode::kNote,
            "revert after latency impact");
        reverted_ = true;
      }
      return d;
    }

    // Balloon mode.
    if (i == start_interval_) {
      DBSCALE_CHECK_OK(balloon_->Start(full_mb, target_mb_,
                                       input.signals.physical_reads_per_sec,
                                       i));
    }
    if (balloon_->active()) {
      auto advice =
          balloon_->Tick(input.signals.physical_reads_per_sec, i);
      d.memory_limit_mb = advice.memory_limit_mb;
      d.explanation = advice.explanation;
      if (advice.aborted) {
        // The limit at which the I/O increase surfaced (the last shrink
        // step before the revert).
        aborted_at_mb_ = last_shrink_mb_;
      } else if (advice.memory_limit_mb.has_value()) {
        last_shrink_mb_ = *advice.memory_limit_mb;
      }
    }
    return d;
  }

  std::string name() const override {
    return mode_ == Mode::kNoBalloon ? "NoBalloon" : "Balloon";
  }
  double aborted_at_mb() const { return aborted_at_mb_; }

 private:
  Mode mode_;
  container::ContainerSpec container_;
  double target_mb_;
  int start_interval_;
  std::unique_ptr<scaler::BalloonController> balloon_;
  bool reverted_ = false;
  double last_shrink_mb_ = 0.0;
  double aborted_at_mb_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 14", "ballooning vs abrupt memory shrink");

  container::Catalog catalog = container::Catalog::MakeLockStep();
  const container::ContainerSpec s4 = catalog.rung(3);  // 4 GB memory
  const double target_mb = catalog.rung(2).resources.memory_mb;  // 2.5 GB

  // Steady demand that fits S4 (Trace 1 shape, scaled down).
  const size_t steps = args.full ? 240 : 120;
  const int start_interval = static_cast<int>(steps) / 4;
  std::vector<double> rps(steps, 15.0);

  sim::SimulationOptions options;
  options.catalog = catalog;
  options.workload = workload::MakeCpuioWorkload();  // 3 GB working set
  options.trace = workload::Trace("steady", rps);
  options.interval_duration = Duration::Seconds(20);
  options.seed = args.seed;
  options.initial_rung = 3;

  std::printf("container: %s, working set ~3 GB, shrink target %.0f MB at "
              "interval %d\n",
              s4.ToString().c_str(), target_mb, start_interval);

  struct Outcome {
    sim::RunResult run;
    double aborted_at_mb;
  };
  std::vector<std::pair<std::string, Outcome>> outcomes;
  for (Mode mode : {Mode::kBalloon, Mode::kNoBalloon}) {
    BalloonScenarioPolicy policy(mode, s4, target_mb, start_interval);
    auto run = sim::Simulation(options).Run(&policy);
    DBSCALE_CHECK_OK(run.status());
    outcomes.emplace_back(policy.name(),
                          Outcome{std::move(*run), policy.aborted_at_mb()});
  }

  for (auto& [name, outcome] : outcomes) {
    std::vector<double> memory, latency;
    for (const auto& r : outcome.run.intervals) {
      memory.push_back(r.memory_used_mb);
      latency.push_back(std::max(r.latency_avg_ms, 0.1));
    }
    std::printf("\n%s — memory used (MB):\n%s", name.c_str(),
                sim::AsciiChart(memory, 5, 110).c_str());
    std::printf("%s — average latency (ms):\n%s", name.c_str(),
                sim::AsciiChart(latency, 5, 110).c_str());
  }

  // Quantify the paper's claims.
  auto window_avg_latency = [&](const sim::RunResult& run, size_t lo,
                                size_t hi) {
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = lo; i < hi && i < run.intervals.size(); ++i) {
      sum += run.intervals[i].latency_avg_ms;
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };
  const auto& balloon_run = outcomes[0].second.run;
  const auto& abrupt_run = outcomes[1].second.run;
  const size_t s = static_cast<size_t>(start_interval);
  const double baseline =
      window_avg_latency(balloon_run, 5, s);
  const double abrupt_peak = [&] {
    double peak = 0.0;
    for (size_t i = s; i < abrupt_run.intervals.size(); ++i) {
      peak = std::max(peak, abrupt_run.intervals[i].latency_avg_ms);
    }
    return peak;
  }();
  const double balloon_peak = [&] {
    double peak = 0.0;
    for (size_t i = s; i < balloon_run.intervals.size(); ++i) {
      peak = std::max(peak, balloon_run.intervals[i].latency_avg_ms);
    }
    return peak;
  }();

  bench::PrintReference("latency spike without ballooning",
                        "~2 orders of magnitude",
                        StrFormat("%.0fx baseline", abrupt_peak / baseline));
  bench::PrintReference("latency impact with ballooning", "minimal",
                        StrFormat("%.1fx baseline",
                                  balloon_peak / baseline));
  bench::PrintReference(
      "balloon aborts near the working set", "~3 GB (3072 MB)",
      StrFormat("%.0f MB", outcomes[0].second.aborted_at_mb));

  // Recovery time without ballooning: intervals after the revert until
  // latency returns to within 2x baseline.
  int recovery = 0;
  for (size_t i = s; i < abrupt_run.intervals.size(); ++i) {
    if (abrupt_run.intervals[i].latency_avg_ms > 2.0 * baseline) {
      ++recovery;
    }
  }
  bench::PrintReference("intervals of degraded latency (no balloon)",
                        "prolonged (slow re-warm)",
                        StrFormat("%d", recovery));
  std::printf(
      "\nshape check: abrupt shrink crosses the working-set cliff and pays\n"
      "a long re-warm; the balloon detects the cliff and backs off early.\n");
  return 0;
}
