// Figure 10 reproduction: TPC-C on Trace 4 (many bursts), goal 1.25x Max.
//
// Paper: Max 272/270, Peak 283/30, Avg 594/15 (misses), Trace 290/47.4,
// Util 306/66.1, Auto 341/19.5. Headlines: among techniques meeting the
// goal, Peak costs 2x, Trace 2.4x and Util 3.4x of Auto. TPC-C is
// lock-bound: latency barely improves with container size, so demand-driven
// Auto stays small while utilization-driven Util over-provisions.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 10", "TPC-C on Trace 4, goal 1.25x Max");

  sim::SimulationOptions options = bench::MakeSetup(
      workload::MakeTpccWorkload(), workload::MakeTrace4ManyBursts(), args);
  sim::ComparisonOptions copts;
  copts.goal_factor = 1.25;
  auto cmp = sim::RunComparison(options, copts);
  DBSCALE_CHECK_OK(cmp.status());
  bench::PrintComparison(*cmp);

  const auto* auto_t = cmp->Find("Auto");
  const auto* util_t = cmp->Find("Util");
  const auto* max_t = cmp->Find("Max");
  bench::PrintReference(
      "Util cost / Auto cost", "3.4x",
      StrFormat("%.2fx", util_t->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Peak cost / Auto cost", "2x",
      StrFormat("%.2fx", cmp->Find("Peak")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Trace cost / Auto cost", "2.4x",
      StrFormat("%.2fx", cmp->Find("Trace")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "latency(Max) vs latency(Auto)", "272 vs 341 (1.25x)",
      StrFormat("%.0f vs %.0f (%.2fx)", max_t->run.latency_p95_ms,
                auto_t->run.latency_p95_ms,
                auto_t->run.latency_p95_ms / max_t->run.latency_p95_ms));
  bench::PrintReference(
      "Auto dominates Util (latency AND cost)", "yes",
      (auto_t->run.latency_p95_ms <= util_t->run.latency_p95_ms &&
       auto_t->run.avg_cost_per_interval <=
           util_t->run.avg_cost_per_interval)
          ? "yes"
          : "no");
  std::printf(
      "\nshape check: lock contention caps latency gains from bigger\n"
      "containers; Auto (demand-driven) holds small containers while Util\n"
      "(utilization+latency-driven) pays for capacity that cannot help.\n"
      "Known deviation (EXPERIMENTS.md): our open-loop generator makes\n"
      "burst-onset saturation far harsher than the paper's testbed, so the\n"
      "1.25x goal is missed at burst onsets by every online technique.\n");
  return 0;
}
