// Ablation study (DESIGN.md): which signal families earn their keep?
//
// Runs Auto on CPUIO/Trace2 and TPC-C/Trace4 with signal families disabled:
//   full          — waits + trends + correlation (the paper's estimator)
//   no-corr       — drop Spearman correlation rules
//   no-trends     — drop Theil-Sen trend rules
//   util-only     — drop wait statistics entirely (reduces the estimator
//                   to what generic autoscalers see)
// Reports cost and p95 against the same goal. The paper's thesis predicts
// util-only degrades markedly (especially on the lock-bound TPC-C).

#include "bench/bench_common.h"
#include "src/fleet/calibrator.h"
#include "src/fleet/fleet_sim.h"
#include "src/scaler/autoscaler.h"

using namespace dbscale;

namespace {

struct Variant {
  const char* name;
  scaler::DemandEstimatorOptions estimator;
  std::optional<scaler::SignalThresholds> thresholds;
};

/// Thresholds derived by the Section 4.1 pipeline from fleet telemetry.
scaler::SignalThresholds FleetCalibratedThresholds() {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = 400;
  options.num_intervals = 3 * 288;
  options.seed = 5;
  auto fleet = fleet::FleetSimulator(catalog, options).Run();
  DBSCALE_CHECK_OK(fleet.status());
  auto thresholds = fleet::ThresholdCalibrator().Calibrate(*fleet);
  DBSCALE_CHECK_OK(thresholds.status());
  return *thresholds;
}

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"full", {}, std::nullopt});
  scaler::DemandEstimatorOptions no_corr;
  no_corr.use_correlation = false;
  variants.push_back({"no-corr", no_corr, std::nullopt});
  scaler::DemandEstimatorOptions no_trends;
  no_trends.use_trends = false;
  variants.push_back({"no-trends", no_trends, std::nullopt});
  scaler::DemandEstimatorOptions util_only;
  util_only.use_waits = false;
  util_only.use_trends = false;
  util_only.use_correlation = false;
  variants.push_back({"util-only", util_only, std::nullopt});
  // The calibrated thresholds describe the *fleet model's* wait
  // distributions (DESIGN.md §7), so this row quantifies the cost of
  // deploying them on the DES engine unadjusted.
  variants.push_back(
      {"fleet-calibrated", {}, FleetCalibratedThresholds()});
  return variants;
}

void RunAblation(const char* title, sim::SimulationOptions options,
                 double goal_factor) {
  auto max_run = sim::RunMax(options);
  DBSCALE_CHECK_OK(max_run.status());
  scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                           goal_factor * max_run->latency_p95_ms};
  options.telemetry.latency_aggregate = goal.aggregate;

  std::printf("\n%s (goal p95 <= %.0f ms):\n", title, goal.target_ms);
  sim::TextTable table(
      {"variant", "p95 ms", "meets goal", "cost/interval", "changes %"});
  for (const Variant& variant : Variants()) {
    scaler::TenantKnobs knobs;
    knobs.latency_goal = goal;
    scaler::AutoScalerOptions scaler_options;
    scaler_options.estimator = variant.estimator;
    if (variant.thresholds.has_value()) {
      scaler_options.thresholds = *variant.thresholds;
    }
    auto scaler =
        scaler::AutoScaler::Create(options.catalog, knobs, scaler_options);
    DBSCALE_CHECK_OK(scaler.status());
    auto run = sim::RunWithPolicy(options, scaler->get(), 3);
    DBSCALE_CHECK_OK(run.status());
    table.AddRow({variant.name, StrFormat("%.0f", run->latency_p95_ms),
                  run->latency_p95_ms <= goal.target_ms ? "yes" : "NO",
                  StrFormat("%.1f", run->avg_cost_per_interval),
                  StrFormat("%.1f", 100.0 * run->change_fraction)});
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Ablation", "Auto with signal families disabled");

  RunAblation("CPUIO on Trace 2",
              bench::MakeSetup(workload::MakeCpuioWorkload(),
                               workload::MakeTrace2LongBurst(), args),
              1.25);
  RunAblation("TPC-C on Trace 4",
              bench::MakeSetup(workload::MakeTpccWorkload(),
                               workload::MakeTrace4ManyBursts(), args),
              1.25);
  std::printf(
      "\nshape check: on the resource-bound workload (CPUIO) the full\n"
      "estimator is the cheapest variant that still meets the goal —\n"
      "dropping correlation, trends, or waits saves a few units but buys\n"
      "the wrong containers at the wrong times and violates the goal. On\n"
      "the lock-bound TPC-C every estimator variant correctly refuses to\n"
      "chase latency (cost is flat); the contrast there is with the Util\n"
      "*baseline* (see Figure 10/13), whose latency-driven rules\n"
      "over-scale by ~2x.\n");
  return 0;
}
