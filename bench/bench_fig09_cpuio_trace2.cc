// Figure 9 reproduction: CPUIO micro-benchmark on Trace 2 (one long burst),
// all six techniques, at two latency-goal settings.
//
//   (a) goal = 1.25x latency(Max). Paper: Max 97ms/270, Peak 107/240,
//       Avg 340/60 (misses the goal ~3x), Trace 98/110.9, Util 124/155.4,
//       Auto 108/86.9. Headlines: Auto 2.75x cheaper than Peak, 1.8x
//       cheaper than Util, while meeting the goal.
//   (b) goal = 5x latency(Max). Paper: Auto 383/29.8 — 8x cheaper than
//       Peak, 2x than Avg, 1.8x than Util. Looser goals buy savings.
//   Plus Section 7.3: Auto/Util resize in ~11% of intervals, Trace ~15%.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 9",
                     "CPUIO on Trace 2, goals 1.25x and 5x of Max");

  sim::SimulationOptions options = bench::MakeSetup(
      workload::MakeCpuioWorkload(), workload::MakeTrace2LongBurst(), args);

  for (double factor : {1.25, 5.0}) {
    sim::ComparisonOptions copts;
    copts.goal_factor = factor;
    auto cmp = sim::RunComparison(options, copts);
    DBSCALE_CHECK_OK(cmp.status());
    std::printf("\n--- Figure 9(%s): goal = %.2fx Max ---\n",
                factor < 2 ? "a" : "b", factor);
    bench::PrintComparison(*cmp);

    const auto* auto_t = cmp->Find("Auto");
    const auto* util_t = cmp->Find("Util");
    const auto* peak_t = cmp->Find("Peak");
    const auto* avg_t = cmp->Find("Avg");
    if (factor < 2) {
      bench::PrintReference(
          "Peak cost / Auto cost", "2.75x",
          StrFormat("%.2fx", peak_t->run.avg_cost_per_interval /
                                 auto_t->run.avg_cost_per_interval));
      bench::PrintReference(
          "Util cost / Auto cost", "1.8x",
          StrFormat("%.2fx", util_t->run.avg_cost_per_interval /
                                 auto_t->run.avg_cost_per_interval));
      bench::PrintReference(
          "Avg misses the goal by", "~3x",
          StrFormat("%.1fx", avg_t->run.latency_p95_ms /
                                 cmp->goal.target_ms));
    } else {
      bench::PrintReference(
          "Peak cost / Auto cost", "8x",
          StrFormat("%.2fx", peak_t->run.avg_cost_per_interval /
                                 auto_t->run.avg_cost_per_interval));
      bench::PrintReference(
          "Util cost / Auto cost", "1.8x",
          StrFormat("%.2fx", util_t->run.avg_cost_per_interval /
                                 auto_t->run.avg_cost_per_interval));
      bench::PrintReference(
          "Avg cost / Auto cost", "2x",
          StrFormat("%.2fx", avg_t->run.avg_cost_per_interval /
                                 auto_t->run.avg_cost_per_interval));
    }
    bench::PrintReference(
        "Auto resize fraction", "~11%",
        StrFormat("%.0f%%", 100.0 * auto_t->run.change_fraction));
    bench::PrintReference(
        "Util resize fraction", "~11%",
        StrFormat("%.0f%%", 100.0 * util_t->run.change_fraction));
    bench::PrintReference(
        "Trace resize fraction", "~15%",
        StrFormat("%.0f%%",
                  100.0 * cmp->Find("Trace")->run.change_fraction));
  }
  std::printf(
      "\nshape check: Auto meets each goal at the lowest cost among the\n"
      "goal-meeting techniques, and the looser goal cuts Auto's cost.\n");
  return 0;
}
