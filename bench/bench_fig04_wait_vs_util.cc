// Figure 4 reproduction: wait time vs. percentage utilization for CPU and
// disk I/O across the fleet (hourly medians of 5-minute samples).
//
// The paper's qualitative findings this must show:
//   * an increasing trend of waits with utilization,
//   * but a wide "bandwidth": correlation is weak,
//   * large waits at low utilization and small waits at high utilization
//     both occur — neither signal suffices alone.

#include "bench/bench_common.h"
#include "src/fleet/fleet_sim.h"
#include "src/fleet/wait_analysis.h"

using namespace dbscale;

namespace {

void PrintScatter(const fleet::WaitUtilScatter& scatter) {
  std::printf("%s: %zu tenant-hours, Spearman rho = %.2f (weak-positive)\n",
              container::ResourceKindToString(scatter.resource),
              scatter.num_points, scatter.spearman_rho);
  sim::TextTable table(
      {"util bucket", "wait ms p10", "p50", "p90", "band (p90/p10)"});
  for (size_t b = 0; b < scatter.util_bucket_upper.size(); ++b) {
    double band = scatter.wait_p10[b] > 0
                      ? scatter.wait_p90[b] / scatter.wait_p10[b]
                      : 0.0;
    table.AddRow({StrFormat("<=%3.0f%%", scatter.util_bucket_upper[b]),
                  StrFormat("%.0f", scatter.wait_p10[b]),
                  StrFormat("%.0f", scatter.wait_p50[b]),
                  StrFormat("%.0f", scatter.wait_p90[b]),
                  StrFormat("%.0fx", band)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 4",
                     "wait ms vs %% utilization (CPU and disk I/O)");

  container::Catalog catalog = container::Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = args.full ? 2000 : 600;
  options.num_intervals = 7 * 288;
  options.seed = args.seed;
  auto fleet = fleet::FleetSimulator(catalog, options).Run();
  DBSCALE_CHECK_OK(fleet.status());

  for (auto kind :
       {container::ResourceKind::kCpu, container::ResourceKind::kDiskIo}) {
    auto scatter = fleet::AnalyzeWaitUtilScatter(*fleet, kind);
    DBSCALE_CHECK_OK(scatter.status());
    PrintScatter(*scatter);
  }

  // The paper's two corner cases, counted explicitly.
  auto cpu = fleet::AnalyzeWaitSplit(*fleet, container::ResourceKind::kCpu);
  DBSCALE_CHECK_OK(cpu.status());
  double low_util_big_wait =
      100.0 * (1.0 -
               cpu->wait_ms_low_util.FractionAtOrBelow(1000.0).value());
  double high_util_small_wait =
      100.0 * cpu->wait_ms_high_util.FractionAtOrBelow(1000.0).value();
  bench::PrintReference("low-util hours with waits > 1s",
                        "common (Fig 4)",
                        StrFormat("%.0f%%", low_util_big_wait));
  bench::PrintReference("high-util hours with waits <= 1s",
                        "common (Fig 4)",
                        StrFormat("%.0f%%", high_util_small_wait));
  std::printf("\nshape check: increasing medians with a wide band — neither"
              " utilization nor waits alone predicts demand.\n");
  return 0;
}
