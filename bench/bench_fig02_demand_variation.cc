// Figure 2 reproduction: resource-demand variation across a fleet.
//  (a) CDF of the inter-event interval (IEI) between container-size change
//      events (paper: 86% within 60 min, 91% within 120, 95% within 360,
//      97% within 720, 98% within 1440).
//  (b) Distribution of average container changes/day across tenants
//      (paper: >=78% at least 1/day, >=52% 6+/day, 28% more than 24/day).
// Plus the Section 4 step-size statistic (90% one rung, 98% <= two rungs).

#include "bench/bench_common.h"
#include "src/fleet/demand_analysis.h"
#include "src/fleet/fleet_sim.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 2", "fleet demand-variation analysis");

  container::Catalog catalog = container::Catalog::MakeLockStep();
  fleet::FleetOptions options;
  options.num_tenants = args.full ? 2000 : 600;
  options.num_intervals = 7 * 288;  // one week of 5-minute intervals
  options.seed = args.seed;
  fleet::FleetSimulator sim(catalog, options);
  auto fleet = sim.Run();
  DBSCALE_CHECK_OK(fleet.status());
  std::printf("fleet: %d tenants, %d intervals, %zu change events\n\n",
              fleet->num_tenants, fleet->num_intervals,
              fleet->inter_event_minutes.size());

  // --- Figure 2(a): IEI CDF ---
  auto iei = fleet::AnalyzeInterEventIntervals(*fleet);
  DBSCALE_CHECK_OK(iei.status());
  std::printf("Figure 2(a): CDF of inter-event interval\n");
  const char* paper_points[] = {"86%", "91%", "95%", "97%", "98%"};
  for (size_t i = 0; i < iei->reference_points.size(); ++i) {
    const std::string label = StrFormat(
        "IEI <= %.0f min", iei->reference_points[i].first);
    bench::PrintReference(
        label.c_str(), paper_points[i],
        StrFormat("%.0f%%", iei->reference_points[i].second));
  }

  // --- Figure 2(b): changes/day distribution ---
  auto freq = fleet::AnalyzeChangeFrequency(*fleet);
  DBSCALE_CHECK_OK(freq.status());
  std::printf("\nFigure 2(b): average container changes per day\n");
  sim::TextTable table({"bucket", "% of tenants", "cumulative %"});
  for (size_t b = 0; b < freq->bucket_labels.size(); ++b) {
    table.AddRow({freq->bucket_labels[b],
                  StrFormat("%.1f", freq->bucket_pct[b]),
                  StrFormat("%.1f", freq->cumulative_pct[b])});
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::PrintReference(
      "tenants with >=1 change/day", ">=78%",
      StrFormat("%.0f%%", 100.0 * freq->fraction_at_least_1_per_day));
  bench::PrintReference(
      "tenants with >=6 changes/day", ">=52%",
      StrFormat("%.0f%%", 100.0 * freq->fraction_at_least_6_per_day));
  bench::PrintReference(
      "tenants with >24 changes/day", "28%",
      StrFormat("%.0f%%", 100.0 * freq->fraction_more_than_24_per_day));

  // --- Section 4 step sizes ---
  std::printf("\nSection 4: container-change step sizes\n");
  bench::PrintReference(
      "changes of exactly 1 rung", "90%",
      StrFormat("%.0f%%", 100.0 * fleet->OneStepFraction()));
  bench::PrintReference(
      "changes of <= 2 rungs", "98%",
      StrFormat("%.0f%%", 100.0 * fleet->AtMostTwoStepFraction()));
  return 0;
}
