// google-benchmark micro benchmarks for the simulation substrate: event
// throughput bounds how much simulated time a reproduction run can cover.

#include <benchmark/benchmark.h>

#include "src/container/catalog.h"
#include "src/engine/engine.h"
#include "src/scaler/autoscaler.h"
#include "src/scaler/categories.h"
#include "src/telemetry/manager.h"
#include "src/workload/generator.h"
#include "src/workload/mix.h"

namespace dbscale {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    engine::EventQueue events;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      events.ScheduleAt(SimTime::FromMicros(i), [&fired] { ++fired; });
    }
    events.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_EngineRequestThroughput(benchmark::State& state) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  workload::WorkloadSpec spec = workload::MakeCpuioWorkload();
  for (auto _ : state) {
    engine::EventQueue events;
    engine::DatabaseEngine engine(&events, spec.MakeEngineOptions(),
                                  catalog.rung(6), Rng(1));
    engine.PrewarmBufferPool();
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
      engine.Submit(spec.Sample(&rng));
    }
    events.RunAll();
    benchmark::DoNotOptimize(engine.requests_completed());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EngineRequestThroughput);

void BM_TelemetryManagerCompute(benchmark::State& state) {
  telemetry::TelemetryStore store;
  container::Catalog catalog = container::Catalog::MakeLockStep();
  Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    telemetry::TelemetrySample sample;
    sample.period_start = SimTime::Zero() + Duration::Seconds(i * 5);
    sample.period_end = SimTime::Zero() + Duration::Seconds((i + 1) * 5);
    sample.requests_completed = 100;
    sample.latency_p95_ms = rng.LogNormal(5.0, 0.3);
    for (int r = 0; r < container::kNumResources; ++r) {
      sample.utilization_pct[static_cast<size_t>(r)] =
          rng.Uniform(0, 100);
    }
    for (int w = 0; w < telemetry::kNumWaitClasses; ++w) {
      sample.wait_ms[static_cast<size_t>(w)] = rng.LogNormal(4.0, 1.0);
    }
    sample.allocation = catalog.rung(4).resources;
    store.Append(std::move(sample));
  }
  telemetry::TelemetryManager manager;
  SimTime now = SimTime::Zero() + Duration::Seconds(64 * 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.Compute(store, now));
  }
}
BENCHMARK(BM_TelemetryManagerCompute);

void BM_AutoScalerDecide(benchmark::State& state) {
  container::Catalog catalog = container::Catalog::MakeLockStep();
  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 200.0};
  auto scaler = scaler::AutoScaler::Create(catalog, knobs).value();
  scaler::PolicyInput input;
  input.signals.valid = true;
  input.signals.latency_ms = 150.0;
  input.current = catalog.rung(4);
  for (auto _ : state) {
    input.interval_index++;
    benchmark::DoNotOptimize(scaler->Decide(input));
  }
}
BENCHMARK(BM_AutoScalerDecide);

void BM_BufferPoolAccess(benchmark::State& state) {
  Rng rng(4);
  engine::BufferPool pool(100000, 50000, 1000000, &rng);
  pool.PrewarmHotSet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Access(true));
  }
}
BENCHMARK(BM_BufferPoolAccess);

void BM_WorkloadSample(benchmark::State& state) {
  workload::WorkloadSpec spec = workload::MakeTpccWorkload();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.Sample(&rng));
  }
}
BENCHMARK(BM_WorkloadSample);

}  // namespace
}  // namespace dbscale

BENCHMARK_MAIN();
