// Figure 11 reproduction: CPUIO on Trace 3 (one short burst), goal 5x Max.
//
// Paper: Max 100/270, Peak 251/90, Avg 360/30, Trace 101/94.3,
// Util 451/51.4, Auto 482/19.5. Headlines: Peak costs 4.5x, Avg 1.5x and
// Util 2.5x of Auto, all meeting the (loose) goal in the paper's testbed.

#include "bench/bench_common.h"

using namespace dbscale;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 11", "CPUIO on Trace 3, goal 5x Max");

  sim::SimulationOptions options = bench::MakeSetup(
      workload::MakeCpuioWorkload(), workload::MakeTrace3ShortBurst(),
      args);
  sim::ComparisonOptions copts;
  copts.goal_factor = 5.0;
  auto cmp = sim::RunComparison(options, copts);
  DBSCALE_CHECK_OK(cmp.status());
  bench::PrintComparison(*cmp);

  const auto* auto_t = cmp->Find("Auto");
  bench::PrintReference(
      "Peak cost / Auto cost", "4.5x",
      StrFormat("%.2fx", cmp->Find("Peak")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Avg cost / Auto cost", "1.5x",
      StrFormat("%.2fx", cmp->Find("Avg")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Util cost / Auto cost", "2.5x",
      StrFormat("%.2fx", cmp->Find("Util")->run.avg_cost_per_interval /
                             auto_t->run.avg_cost_per_interval));
  bench::PrintReference(
      "Auto meets the 5x goal",
      "yes (482 <= 500)",
      StrFormat("%s (%.0f vs %.0f)",
                auto_t->run.latency_p95_ms <= cmp->goal.target_ms ? "yes"
                                                                  : "no",
                auto_t->run.latency_p95_ms, cmp->goal.target_ms));
  std::printf(
      "\nshape check: a short burst punishes static peak provisioning the\n"
      "most; Auto rides small containers before and after the burst.\n");
  return 0;
}
