// Diagonal scaling: the same per-resource policy shopping two catalogs.
//
// The DiagonalScaler estimates a per-resource demand vector and buys the
// cheapest purchasable bundle covering it. What "purchasable" means comes
// from the Catalog backend: on the classic fixed-rung ladder the optimizer
// degenerates to the paper's cheapest-dominating-spec search; on the
// flexible per-dimension catalog it shops each resource's grid
// independently. Running the identical policy against both shows where the
// savings come from — not a different brain, a richer menu.
//
// The example runs an I/O-skewed mix (disk demand rungs ahead of CPU
// demand) on paper trace 2 under a p95 goal, prints the comparison table,
// and verifies both runs are run-twice digest identical. --json=PATH dumps
// the digests and costs for the CI gate.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/string_util.h"
#include "src/scaler/diagonal.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

double Attainment(const sim::RunResult& run, double goal_ms) {
  if (run.intervals.empty()) return 0.0;
  int met = 0;
  for (const auto& interval : run.intervals) {
    if (interval.completed == 0 || interval.latency_p95_ms <= goal_ms) ++met;
  }
  return static_cast<double>(met) / static_cast<double>(run.intervals.size());
}

struct Outcome {
  double digest = 0.0;
  double digest_repeat = 0.0;
  double cost = 0.0;
  double p95_ms = 0.0;
  double attainment = 0.0;
};

Result<Outcome> RunPolicy(const sim::SimulationOptions& base,
                          const std::string& policy_name,
                          const container::Catalog& catalog,
                          const scaler::LatencyGoal& goal) {
  Outcome outcome;
  for (int rep = 0; rep < 2; ++rep) {
    sim::SimulationOptions options = base;
    options.catalog = catalog;
    scaler::TenantKnobs knobs;
    knobs.latency_goal = goal;
    DBSCALE_ASSIGN_OR_RETURN(
        auto policy, sim::MakeRegisteredPolicy(policy_name, catalog, knobs));
    DBSCALE_ASSIGN_OR_RETURN(sim::RunResult run,
                             sim::RunWithPolicy(options, policy.get(), 3));
    if (rep == 0) {
      outcome.digest = RunDigest(run);
      outcome.cost = run.avg_cost_per_interval;
      outcome.p95_ms = run.latency_p95_ms;
      outcome.attainment = Attainment(run, goal.target_ms);
    } else {
      outcome.digest_repeat = RunDigest(run);
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  // Disk-heavy demand: every lock-step rung overbuys CPU and memory.
  workload::CpuioOptions skew;
  skew.cpu_weight = 0.08;
  skew.io_weight = 0.77;
  skew.log_weight = 0.05;
  skew.mixed_weight = 0.10;
  sim::SimulationOptions base;
  base.workload = workload::MakeCpuioWorkload(skew);
  base.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  base.interval_duration = Duration::Seconds(20);
  base.seed = 17;
  base.catalog = container::Catalog::MakeLockStep();

  auto max_run = sim::RunMax(base);
  if (!max_run.ok()) {
    std::fprintf(stderr, "%s\n", max_run.status().ToString().c_str());
    return 1;
  }
  const scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                                 2.0 * max_run->latency_p95_ms};
  base.telemetry.latency_aggregate = goal.aggregate;
  std::printf("I/O-skewed CPUIO on trace 2; goal p95 <= %.0f ms\n\n",
              goal.target_ms);

  container::FlexibleCatalogOptions fopts;
  fopts.subdivisions = 1;
  auto flexible = container::Catalog::MakeFlexible(fopts);
  if (!flexible.ok()) {
    std::fprintf(stderr, "%s\n", flexible.status().ToString().c_str());
    return 1;
  }

  struct Row {
    const char* label;
    const char* policy;
    container::Catalog catalog;
  };
  const Row rows[] = {
      {"Auto / fixed rungs", "Auto", container::Catalog::MakeLockStep()},
      {"Diagonal / fixed rungs", "Diagonal",
       container::Catalog::MakeLockStep()},
      {"Diagonal / flexible grid", "Diagonal", *flexible},
  };

  Outcome outcomes[3];
  sim::TextTable table({"configuration", "containers", "p95 ms",
                        "attainment", "cost/interval"});
  for (int i = 0; i < 3; ++i) {
    auto outcome = RunPolicy(base, rows[i].policy, rows[i].catalog, goal);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", rows[i].label,
                   outcome.status().ToString().c_str());
      return 1;
    }
    outcomes[i] = *outcome;
    table.AddRow({rows[i].label, StrFormat("%d", rows[i].catalog.size()),
                  StrFormat("%.0f", outcome->p95_ms),
                  StrFormat("%.1f%%", 100.0 * outcome->attainment),
                  StrFormat("%.1f", outcome->cost)});
    if (outcome->digest != outcome->digest_repeat) {
      std::fprintf(stderr, "NON-DETERMINISTIC RUN in %s\n", rows[i].label);
      return 1;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Same demand vector, richer menu: the flexible grid lets the diagonal\n"
      "policy pay for the dimensions the workload actually uses (%.0f%%\n"
      "cheaper than Auto on the rung ladder here), and every run above is\n"
      "run-twice digest identical.\n",
      100.0 * (1.0 - outcomes[2].cost / outcomes[0].cost));

  if (!json_path.empty()) {
    std::string json = "{\n";
    json += StrFormat("  \"goal_ms\": %.2f,\n", goal.target_ms);
    const char* keys[] = {"auto_fixed", "diagonal_fixed",
                          "diagonal_flexible"};
    for (int i = 0; i < 3; ++i) {
      json += StrFormat(
          "  \"%s\": {\"digest\": %.10f, \"digest_repeat\": %.10f, "
          "\"cost\": %.4f, \"p95_ms\": %.2f, \"attainment\": %.4f},\n",
          keys[i], outcomes[i].digest, outcomes[i].digest_repeat,
          outcomes[i].cost, outcomes[i].p95_ms, outcomes[i].attainment);
    }
    json += StrFormat("  \"flexible_cheaper_than_auto\": %s\n",
                      outcomes[2].cost < outcomes[0].cost ? "true" : "false");
    json += "}\n";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
  }
  return 0;
}
