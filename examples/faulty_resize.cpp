// Resilience under injected faults: the same bursty workload run with a
// null fault plan and with the acceptance fault profile (10% transient
// resize failures, 1-2 billing intervals of actuation latency).
//
// Shows the fault/resilience surface end to end:
//   * FaultPlanOptions on SimConfig — one validated bundle,
//   * the async resize lifecycle (Pending -> Applied | Failed) with the
//     AutoScaler's bounded retry + exponential backoff,
//   * the audit trail recording every request's outcome and attempt count,
//   * closed-loop stability: the loop converges instead of oscillating.
//
// With --json=PATH the example also writes a machine-readable summary used
// by ci/check.sh stage 8 (fault-matrix smoke): run-twice digests prove
// determinism, and the faulty run's reversal count proves convergence.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/string_util.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/report.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

SimConfig BaseConfig() {
  SimConfig config;
  config.simulation.catalog = container::Catalog::MakeLockStep();
  config.simulation.workload = workload::MakeCpuioWorkload();
  config.simulation.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  config.simulation.interval_duration = Duration::Seconds(20);
  config.simulation.seed = 17;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  return config;
}

/// Order-sensitive digest over the interval series; any behavioral change
/// (billing, latency, resize placement) moves it.
double RunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

int DirectionReversals(const sim::RunResult& run) {
  int reversals = 0;
  int last_direction = 0;
  for (size_t i = 1; i < run.intervals.size(); ++i) {
    const int delta = run.intervals[i].container.base_rung -
                      run.intervals[i - 1].container.base_rung;
    if (delta == 0) continue;
    const int direction = delta > 0 ? 1 : -1;
    if (last_direction != 0 && direction != last_direction) ++reversals;
    last_direction = direction;
  }
  return reversals;
}

struct AuditSummary {
  int requested = 0;
  int applied = 0;
  int failed = 0;
  int rejected = 0;
  int abandoned = 0;
  int max_attempt = 0;
};

AuditSummary SummarizeAudit(const scaler::AuditLog& audit) {
  AuditSummary s;
  for (const auto* record : audit.Resizes()) {
    switch (record->resize_outcome) {
      case scaler::ResizeOutcome::kRequested: ++s.requested; break;
      case scaler::ResizeOutcome::kApplied: ++s.applied; break;
      case scaler::ResizeOutcome::kFailed: ++s.failed; break;
      case scaler::ResizeOutcome::kRejected: ++s.rejected; break;
      case scaler::ResizeOutcome::kAbandoned: ++s.abandoned; break;
      case scaler::ResizeOutcome::kNone: break;
    }
    if (record->resize_attempt > s.max_attempt) {
      s.max_attempt = record->resize_attempt;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  // 1. Null fault plan, run twice: the baseline, and proof it is
  // deterministic (bit-identical digests).
  SimConfig null_config = BaseConfig();
  auto null_a = null_config.Run();
  auto null_b = null_config.Run();
  if (!null_a.ok() || !null_b.ok()) {
    std::fprintf(stderr, "null run failed: %s\n",
                 null_a.status().ToString().c_str());
    return 1;
  }

  // 2. The acceptance fault profile, also run twice: faults are drawn from
  // a seeded stream forked off the simulation RNG, so the faulty run is
  // exactly as reproducible as the clean one.
  SimConfig faulty_config = BaseConfig();
  faulty_config.simulation.fault.resize.failure_probability = 0.1;
  faulty_config.simulation.fault.resize.min_latency_intervals = 1;
  faulty_config.simulation.fault.resize.max_latency_intervals = 2;
  faulty_config.simulation.fault.telemetry.drop_probability = 0.05;
  auto faulty_a = faulty_config.Run();
  auto faulty_b = faulty_config.Run();
  if (!faulty_a.ok() || !faulty_b.ok()) {
    std::fprintf(stderr, "faulty run failed: %s\n",
                 faulty_a.status().ToString().c_str());
    return 1;
  }

  const sim::RunResult& null_run = null_a->result;
  const sim::RunResult& faulty_run = faulty_a->result;
  const AuditSummary audit = SummarizeAudit(faulty_a->scaler->audit());

  std::printf("trace: %zu intervals, p95 goal 900 ms\n\n",
              null_run.intervals.size());
  sim::TextTable table({"run", "p95 ms", "cost", "changes", "requests",
                        "failures", "degraded", "reversals"});
  const sim::RunResult* runs[] = {&null_run, &faulty_run};
  const char* names[] = {"null plan", "faulty (10%/1-2iv)"};
  for (int i = 0; i < 2; ++i) {
    const sim::RunResult& r = *runs[i];
    table.AddRow({names[i], StrFormat("%.0f", r.latency_p95_ms),
                  StrFormat("%.0f", r.total_cost),
                  StrFormat("%d", r.container_changes),
                  StrFormat("%llu", (unsigned long long)r.resize_attempts),
                  StrFormat("%llu", (unsigned long long)r.resize_failures),
                  StrFormat("%llu", (unsigned long long)r.degraded_windows),
                  StrFormat("%d", DirectionReversals(r))});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("faulty-run audit: %d requested, %d applied, %d failed, "
              "%d rejected, %d abandoned; deepest retry attempt %d\n\n",
              audit.requested, audit.applied, audit.failed, audit.rejected,
              audit.abandoned, audit.max_attempt);
  std::printf("resize trail (faulty run, first 12 records):\n");
  int shown = 0;
  for (const auto* record : faulty_a->scaler->audit().Resizes()) {
    if (++shown > 12) break;
    std::printf("%s\n", record->ToString().substr(0, 100).c_str());
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"intervals\": %zu,\n"
        "  \"null\": {\"digest\": %.10f, \"digest_repeat\": %.10f,\n"
        "    \"changes\": %d, \"resize_attempts\": %llu,\n"
        "    \"resize_failures\": %llu, \"degraded_windows\": %llu,\n"
        "    \"reversals\": %d},\n"
        "  \"faulty\": {\"digest\": %.10f, \"digest_repeat\": %.10f,\n"
        "    \"changes\": %d, \"resize_attempts\": %llu,\n"
        "    \"resize_failures\": %llu, \"resize_rejections\": %llu,\n"
        "    \"dropped_samples\": %llu, \"degraded_windows\": %llu,\n"
        "    \"reversals\": %d,\n"
        "    \"audit\": {\"requested\": %d, \"applied\": %d, \"failed\": %d,\n"
        "      \"rejected\": %d, \"abandoned\": %d, \"max_attempt\": %d}}\n"
        "}\n",
        null_run.intervals.size(), RunDigest(null_run),
        RunDigest(null_b->result), null_run.container_changes,
        (unsigned long long)null_run.resize_attempts,
        (unsigned long long)null_run.resize_failures,
        (unsigned long long)null_run.degraded_windows,
        DirectionReversals(null_run), RunDigest(faulty_run),
        RunDigest(faulty_b->result), faulty_run.container_changes,
        (unsigned long long)faulty_run.resize_attempts,
        (unsigned long long)faulty_run.resize_failures,
        (unsigned long long)faulty_run.resize_rejections,
        (unsigned long long)faulty_run.telemetry_dropped_samples,
        (unsigned long long)faulty_run.degraded_windows,
        DirectionReversals(faulty_run), audit.requested, audit.applied,
        audit.failed, audit.rejected, audit.abandoned, audit.max_attempt);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf("\nFaults delay and fail resizes, but the loop converges: the\n"
              "retry/backoff path lands the container on the demand rung\n"
              "without oscillation, and every outcome is in the audit log.\n");
  return 0;
}
