// Decision tracing quickstart: run the Auto policy with the observability
// layer on, dump all three exports, and read one interval's decision trace
// back.
//
// Demonstrates:
//   * attaching an obs::Observability bundle to SimulationOptions,
//   * exporting spans as JSONL, metrics as Prometheus text and CSV,
//   * walking a span tree (interval -> telemetry.compute / decide /
//     resize) with the ExplanationCode attribute instead of parsing prose,
//   * the determinism digests the test suite compares across runs.
//
// Usage: decision_trace [out_dir]    (default: current directory)
// Writes decision_trace.spans.jsonl, decision_trace.metrics.prom,
// decision_trace.metrics.csv into out_dir.

#include <cstdio>
#include <string>

#include "src/obs/export.h"
#include "src/obs/pipeline.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/report.h"
#include "src/sim/simulation.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A small closed-loop run: bursty trace, 20s billing intervals.
  sim::SimulationOptions options;
  options.workload = workload::MakeCpuioWorkload();
  options.trace = *workload::MakeTrace2LongBurst().Subsampled(8);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 17;

  // The observability bundle: registry + primary shard + trace ring. The
  // run records into it; exports happen afterwards, off the hot path.
  obs::Observability ob;
  options.obs = &ob;

  scaler::TenantKnobs knobs;
  knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 250.0};
  auto scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  if (!scaler.ok()) {
    std::fprintf(stderr, "AutoScaler: %s\n",
                 scaler.status().ToString().c_str());
    return 1;
  }
  auto run = sim::Simulation(options).Run(scaler->get());
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("ran %zu intervals: p95=%.0fms cost=%.0f changes=%d\n",
              run->intervals.size(), run->latency_p95_ms, run->total_cost,
              run->container_changes);

  // Export all three formats.
  std::string spans, prom, csv;
  obs::AppendSpansJsonl(ob.trace(), spans);
  obs::AppendPrometheus(ob.registry(), ob.primary(), prom);
  obs::AppendMetricsCsv(ob.registry(), ob.primary(), csv);
  struct {
    const char* name;
    const std::string* content;
  } files[] = {
      {"decision_trace.spans.jsonl", &spans},
      {"decision_trace.metrics.prom", &prom},
      {"decision_trace.metrics.csv", &csv},
  };
  for (const auto& f : files) {
    const std::string path = out_dir + "/" + f.name;
    if (auto status = sim::WriteFile(path, *f.content); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), f.content->size());
  }

  // Read a decision trace back: find the first resize interval and walk
  // its span tree. The "code" attribute on the decide span is the stable
  // ExplanationCode token — no prose parsing.
  const obs::TraceRecorder& trace = ob.trace();
  for (size_t i = 0; i < trace.num_intervals(); ++i) {
    const obs::IntervalTrace& tree = trace.interval(i);
    bool resized = false;
    for (const obs::Span& s : tree.spans) {
      if (std::string(s.name) == "resize") resized = true;
    }
    if (!resized) continue;
    std::printf("\nfirst resize, interval %d:\n", tree.interval_index);
    for (size_t si = 0; si < tree.spans.size(); ++si) {
      const obs::Span& s = tree.spans[si];
      std::printf("  %*s%-18s %6.0fms", s.parent == obs::kNoSpan ? 0 : 2,
                  "", s.name, (s.end - s.start).ToMillis());
      for (uint32_t a = 0; a < s.num_attrs; ++a) {
        const obs::SpanAttr& attr = s.attrs[a];
        if (attr.str != nullptr) {
          std::printf("  %s=%s", attr.key, attr.str);
        } else {
          std::printf("  %s=%.6g", attr.key, attr.num);
        }
      }
      std::printf("\n");
    }
    break;
  }

  // Determinism digests: same options + seed => same digests, at any
  // DBSCALE_NUM_THREADS (the fleet merges shards in tenant order).
  std::printf("\nmetrics digest: %016llx\ntrace digest:   %016llx\n",
              static_cast<unsigned long long>(
                  obs::MetricsDigest(ob.registry(), ob.primary())),
              static_cast<unsigned long long>(obs::TraceDigest(ob.trace())));
  return 0;
}
