// Bottlenecks beyond resources: why demand estimation needs database
// domain knowledge.
//
// A TPC-C-style workload whose transactions serialize on hot rows (locks
// held across application round trips). Latency violates the goal, but no
// amount of hardware can fix it. The utilization-driven scaler keeps buying
// capacity; the paper's Auto reads the wait-class breakdown, sees lock
// waits dominating, and refuses to scale — with an explanation.

#include <cstdio>
#include <map>

#include "src/baselines/util_policy.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/experiment.h"
#include "src/common/string_util.h"
#include "src/sim/report.h"
#include "src/workload/mix.h"

using namespace dbscale;  // NOLINT: example brevity

int main() {
  sim::SimulationOptions options;
  options.catalog = container::Catalog::MakeLockStep();
  options.workload = workload::MakeTpccWorkload();
  // Steady load at a level where lock contention dominates.
  options.trace = workload::Trace("steady-contended",
                                  std::vector<double>(150, 140.0));
  options.interval_duration = Duration::Seconds(20);
  options.seed = 41;

  auto max_run = sim::RunMax(options);
  if (!max_run.ok()) {
    std::fprintf(stderr, "%s\n", max_run.status().ToString().c_str());
    return 1;
  }
  // A goal below what lock contention allows: permanently violated.
  scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                           0.9 * max_run->latency_p95_ms};
  options.telemetry.latency_aggregate = goal.aggregate;
  std::printf("even the largest container gives p95 = %.0f ms; "
              "the tenant asks for %.0f ms.\n\n",
              max_run->latency_p95_ms, goal.target_ms);

  // Utilization-driven scaler.
  baselines::UtilPolicy util(options.catalog, goal);
  auto util_run = sim::RunWithPolicy(options, &util, 2);
  // Demand-driven Auto.
  scaler::TenantKnobs knobs;
  knobs.latency_goal = goal;
  auto auto_scaler = scaler::AutoScaler::Create(options.catalog, knobs);
  auto auto_run = sim::RunWithPolicy(options, auto_scaler->get(), 2);
  if (!util_run.ok() || !auto_run.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  sim::TextTable table(
      {"policy", "p95 ms", "avg cost/interval", "peak container"});
  for (const auto* run : {&*util_run, &*auto_run}) {
    int peak_rung = 0;
    for (const auto& r : run->intervals) {
      peak_rung = std::max(peak_rung, r.container.base_rung);
    }
    table.AddRow({run->policy_name,
                  StrFormat("%.0f", run->latency_p95_ms),
                  StrFormat("%.1f", run->avg_cost_per_interval),
                  options.catalog.rung(peak_rung).name});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Why didn't Auto scale? Its own explanations say it.
  std::map<std::string, int> reasons;
  for (const auto& r : auto_run->intervals) {
    if (r.decision_explanation.find("Lock") != std::string::npos) {
      ++reasons[r.decision_explanation.substr(0, 76)];
    }
  }
  std::printf("Auto's explanations (lock-related):\n");
  for (const auto& [reason, count] : reasons) {
    std::printf("  %4dx  %s...\n", count, reason.c_str());
  }
  std::printf("\nUtil pays %.1fx Auto's cost for the same (lock-bound) "
              "latency.\n",
              util_run->avg_cost_per_interval /
                  auto_run->avg_cost_per_interval);
  return 0;
}
