// Fleet at scale: the SoA streaming runner on a 10^4-tenant fleet.
//
// Demonstrates the million-tenant machinery end to end at a size that
// finishes in seconds:
//   * block-sharded streaming aggregation (no materialized telemetry),
//   * the run digest: bit-identical when run twice and across
//     checkpoint/resume at a different thread count,
//   * the checkpoint format rejecting a corrupted file cleanly.
//
// With --json=PATH the example writes a machine-readable summary used by
// ci/check.sh stage 9 (fleet-scale smoke): run-twice digest identity,
// resume-equals-uninterrupted, corruption rejection, and a tenants/sec
// floor.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/common/string_util.h"
#include "src/fleet/checkpoint.h"
#include "src/fleet/fleet_scale.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

fleet::FleetScaleOptions BaseOptions() {
  fleet::FleetScaleOptions options;
  options.num_tenants = 10000;
  options.num_intervals = 288;  // one day of 5-minute intervals
  options.seed = 42;
  options.block_size = 1024;
  options.epoch_intervals = 72;
  options.fault.resize.failure_probability = 0.05;
  options.fault.resize.max_latency_intervals = 2;
  return options;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  const container::Catalog catalog = container::Catalog::MakeLockStep();
  const std::string ckpt = json_path.empty()
                               ? std::string("/tmp/fleet_scale_example.ckpt")
                               : json_path + ".ckpt";

  // 1. Run twice: identical digests prove the run is a pure function of
  // the seed and options.
  fleet::FleetScaleRunner runner_a(catalog, BaseOptions());
  const auto start = std::chrono::steady_clock::now();
  auto run_a = runner_a.Run();
  const double seconds = Seconds(start);
  auto run_b = fleet::FleetScaleRunner(catalog, BaseOptions()).Run();
  if (!run_a.ok() || !run_b.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 run_a.status().ToString().c_str());
    return 1;
  }
  const double tenants_per_sec =
      seconds > 0.0 ? BaseOptions().num_tenants / seconds : 0.0;

  // 2. Stop after two epochs writing a checkpoint, then resume with a
  // different thread count: still bit-identical to the uninterrupted run.
  fleet::FleetScaleOptions stopped = BaseOptions();
  stopped.checkpoint_path = ckpt;
  stopped.stop_after_intervals = 144;
  auto partial = fleet::FleetScaleRunner(catalog, stopped).Run();
  fleet::FleetScaleOptions rest = BaseOptions();
  rest.num_threads = 3;
  auto resumed = fleet::FleetScaleRunner::Resume(catalog, rest, ckpt);
  if (!partial.ok() || !resumed.ok()) {
    std::fprintf(stderr, "checkpoint round trip failed: %s\n",
                 (!partial.ok() ? partial : resumed).status().ToString()
                     .c_str());
    return 1;
  }

  // 3. Flip one byte in the checkpoint: the footer hash must reject it.
  bool corrupt_rejected = false;
  {
    std::ifstream in(ckpt, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream(ckpt, std::ios::binary)
        .write(bytes.data(), static_cast<long>(bytes.size()));
    auto bad = fleet::FleetScaleRunner::Resume(catalog, BaseOptions(), ckpt);
    corrupt_rejected = !bad.ok();
    if (!bad.ok()) {
      std::printf("corrupt checkpoint rejected: %s\n\n",
                  bad.status().ToString().c_str());
    }
  }
  std::remove(ckpt.c_str());

  const fleet::FleetAggregate& agg = run_a->aggregate;
  std::printf("fleet: %d tenants x %d intervals in %.2fs (%.0f tenants/s)\n",
              BaseOptions().num_tenants, BaseOptions().num_intervals,
              seconds, tenants_per_sec);
  std::printf("state: %.1f MB resident (%.0f B/tenant)\n",
              runner_a.StateBytes() / 1048576.0,
              static_cast<double>(runner_a.StateBytes()) /
                  BaseOptions().num_tenants);
  std::printf("digest: run A %016llx, run B %016llx, resumed %016llx\n",
              (unsigned long long)agg.digest,
              (unsigned long long)run_b->aggregate.digest,
              (unsigned long long)resumed->aggregate.digest);
  std::printf("changes: %llu total, %.1f%% one-step, %.1f%% <= 2 steps, "
              "%llu resize failures\n",
              (unsigned long long)agg.total_changes,
              100.0 * agg.OneStepFraction(),
              100.0 * agg.AtMostTwoStepFraction(),
              (unsigned long long)agg.resize_failures);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"digest_a\": \"%016llx\",\n"
                 "  \"digest_b\": \"%016llx\",\n"
                 "  \"digest_resumed\": \"%016llx\",\n"
                 "  \"corrupt_rejected\": %s,\n"
                 "  \"tenants_per_sec\": %.1f,\n"
                 "  \"state_bytes\": %llu,\n"
                 "  \"total_changes\": %llu,\n"
                 "  \"hourly_records\": %llu\n"
                 "}\n",
                 (unsigned long long)agg.digest,
                 (unsigned long long)run_b->aggregate.digest,
                 (unsigned long long)resumed->aggregate.digest,
                 corrupt_rejected ? "true" : "false", tenants_per_sec,
                 (unsigned long long)runner_a.StateBytes(),
                 (unsigned long long)agg.total_changes,
                 (unsigned long long)agg.hourly_records);
    std::fclose(f);
  }
  return 0;
}
