// Host placement & noisy neighbors: the same tenant loop run with the host
// plane disabled (pre-host behavior, bit-identical) and on a small cluster
// of deliberately skewed machines where a scale-up no longer fits locally
// and becomes a billed migration.
//
// Shows the placement-aware actuation surface end to end:
//   * HostOptions on SimConfig / FleetScaleOptions — one validated bundle,
//   * first-fit-decreasing seed placement over finite per-host capacity,
//   * the migration lifecycle (reserve dest -> copy for L intervals ->
//     blackout for D intervals -> cutover) riding the two-phase resize
//     machinery, with downtime billed exactly D per completed migration,
//   * cross-tenant interference: throttle > 1 on saturated hosts,
//   * pluggable placement policy (first-fit / best-fit / worst-fit) moving
//     migration and saturation counts without breaking determinism.
//
// With --json=PATH the example also writes a machine-readable summary used
// by ci/check.sh stage 11 (host-placement smoke): run-twice digests prove
// determinism, the null-host fleet digest must match the pre-host pin, and
// downtime must equal migrations_completed * migration_downtime_intervals.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/string_util.h"
#include "src/fleet/fleet_scale.h"
#include "src/host/host_map.h"
#include "src/scaler/autoscaler.h"
#include "src/sim/report.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

// Fleet digest pinned before the host layer existed (512 tenants,
// 288 intervals, seed 7, block 128 — identical at any thread count).
constexpr uint64_t kPreHostFleetDigest = 0xf8a4a039e6b0fee9ull;

SimConfig BaseConfig() {
  SimConfig config;
  config.simulation.catalog = container::Catalog::MakeLockStep();
  config.simulation.workload = workload::MakeCpuioWorkload();
  config.simulation.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  config.simulation.interval_duration = Duration::Seconds(20);
  config.simulation.seed = 17;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal =
      scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 900.0};
  return config;
}

/// Two machines, one pre-loaded hot: the tenant seeds onto the hot host and
/// its mid-burst scale-up only fits on the other machine -> migration.
SimConfig HotHostConfig() {
  SimConfig config = BaseConfig();
  config.host.num_hosts = 2;
  config.host.hot_hosts = 1;
  config.host.hot_extra.cpu_cores = 12.5;
  config.host.migration_latency_intervals = 2;
  config.host.migration_downtime_intervals = 1;
  return config;
}

/// 300 tenants dense on 64 hosts (half hot) with a 3x flash crowd against
/// the hot half mid-day; calibrated so ~20 scale-ups become migrations.
fleet::FleetScaleOptions FleetScenario() {
  fleet::FleetScaleOptions options;
  options.num_tenants = 300;
  options.num_intervals = 288;
  options.seed = 11;
  options.block_size = 64;
  options.num_threads = 2;
  options.host.num_hosts = 64;
  options.host.capacity =
      container::ResourceVector{64.0, 524288.0, 160000.0, 3200.0};
  options.host.hot_hosts = 32;
  options.host.hot_extra =
      container::ResourceVector{16.0, 131072.0, 40000.0, 800.0};
  options.flash_crowd.start_interval = 96;
  options.flash_crowd.duration_intervals = 24;
  options.flash_crowd.demand_multiplier = 3.0;
  options.flash_crowd.num_hosts_hit = 32;
  return options;
}

double SimRunDigest(const sim::RunResult& run) {
  double sum = 0.0;
  for (const auto& interval : run.intervals) {
    sum += interval.cost + interval.latency_p95_ms +
           static_cast<double>(interval.completed) +
           1000.0 * interval.container.base_rung + (interval.resized ? 7 : 0);
    for (double u : interval.utilization_pct) sum += u;
  }
  return sum;
}

double MaxThrottle(const sim::RunResult& run) {
  double max_throttle = 0.0;
  for (const auto& interval : run.intervals) {
    if (interval.throttle_factor > max_throttle) {
      max_throttle = interval.throttle_factor;
    }
  }
  return max_throttle;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  // 1. Single tenant on a hot host, run twice: the scale-up that no longer
  // fits locally becomes a migration, deterministically.
  SimConfig hot_config = HotHostConfig();
  auto hot_a = hot_config.Run();
  auto hot_b = hot_config.Run();
  if (!hot_a.ok() || !hot_b.ok()) {
    std::fprintf(stderr, "hot-host run failed: %s\n",
                 hot_a.status().ToString().c_str());
    return 1;
  }
  const sim::RunResult& hot = hot_a->result;

  std::printf("single tenant, 2 hosts, host 0 pre-loaded with 12.5 cores:\n");
  std::printf(
      "  migrations: %llu begun, %llu completed, %llu failed; "
      "%llu downtime intervals (D=%d each); max throttle %.3f\n\n",
      (unsigned long long)hot.migrations_begun,
      (unsigned long long)hot.migrations_completed,
      (unsigned long long)hot.migration_failures,
      (unsigned long long)hot.migration_downtime_intervals,
      hot_config.host.migration_downtime_intervals, MaxThrottle(hot));

  // 2. Fleet flash crowd under each placement policy.
  std::printf("fleet flash crowd (300 tenants, 64 hosts, 32 hot, 3x surge\n"
              "against the hot half for 24 intervals):\n\n");
  sim::TextTable table({"policy", "migrations", "failed", "downtime iv",
                        "holds", "saturated host-iv"});
  struct PolicyResult {
    const char* name;
    host::HostMap::Counters counters;
    uint64_t digest = 0;
    uint64_t host_digest = 0;
  };
  PolicyResult results[3];
  const host::PlacementPolicyKind kinds[] = {
      host::PlacementPolicyKind::kFirstFit,
      host::PlacementPolicyKind::kBestFit,
      host::PlacementPolicyKind::kWorstFit};
  container::Catalog catalog = container::Catalog::MakeLockStep();
  for (int i = 0; i < 3; ++i) {
    fleet::FleetScaleOptions options = FleetScenario();
    options.host.placement = kinds[i];
    auto outcome = fleet::FleetScaleRunner(catalog, options).Run();
    if (!outcome.ok()) {
      std::fprintf(stderr, "fleet run failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    results[i] = {host::PlacementPolicyKindToString(kinds[i]), outcome->host,
                  outcome->aggregate.digest, outcome->host_digest};
    const auto& c = results[i].counters;
    table.AddRow(
        {results[i].name,
         StrFormat("%llu", (unsigned long long)c.migrations_completed),
         StrFormat("%llu", (unsigned long long)c.migrations_failed),
         StrFormat("%llu", (unsigned long long)c.downtime_intervals),
         StrFormat("%llu", (unsigned long long)c.placement_holds),
         StrFormat("%llu", (unsigned long long)c.saturated_host_intervals)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // 3. Determinism + null-plan checks for the smoke harness: the first-fit
  // scenario run again must be bit-identical, and the host-free fleet must
  // still produce the digest pinned before this layer existed.
  auto repeat = fleet::FleetScaleRunner(catalog, FleetScenario()).Run();
  fleet::FleetScaleOptions null_options;
  null_options.num_tenants = 512;
  null_options.num_intervals = 288;
  null_options.seed = 7;
  null_options.block_size = 128;
  null_options.num_threads = 2;
  auto null_run = fleet::FleetScaleRunner(catalog, null_options).Run();
  if (!repeat.ok() || !null_run.ok()) {
    std::fprintf(stderr, "check run failed\n");
    return 1;
  }
  const bool repeat_identical = repeat->aggregate.digest == results[0].digest &&
                                repeat->host_digest == results[0].host_digest;
  const bool null_matches = null_run->aggregate.digest == kPreHostFleetDigest;
  const uint64_t expected_downtime =
      results[0].counters.migrations_completed *
      (unsigned long long)FleetScenario().host.migration_downtime_intervals;
  const bool downtime_exact =
      results[0].counters.downtime_intervals == expected_downtime;

  std::printf("first-fit digest %016llx (repeat %s), null-host digest %016llx "
              "(%s pre-host pin)\n",
              (unsigned long long)results[0].digest,
              repeat_identical ? "identical" : "DIFFERS",
              (unsigned long long)null_run->aggregate.digest,
              null_matches ? "matches" : "DIFFERS FROM");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"sim\": {\"digest\": %.10f, \"digest_repeat\": %.10f,\n"
        "    \"migrations_begun\": %llu, \"migrations_completed\": %llu,\n"
        "    \"downtime_intervals\": %llu, \"downtime_per_migration\": %d,\n"
        "    \"max_throttle\": %.6f},\n"
        "  \"fleet\": {\"digest\": \"%016llx\", \"digest_repeat\": "
        "\"%016llx\",\n"
        "    \"host_digest\": \"%016llx\", \"host_digest_repeat\": "
        "\"%016llx\",\n"
        "    \"migrations_begun\": %llu, \"migrations_completed\": %llu,\n"
        "    \"migrations_failed\": %llu, \"downtime_intervals\": %llu,\n"
        "    \"downtime_exact\": %s, \"placement_holds\": %llu,\n"
        "    \"saturated_host_intervals\": %llu},\n"
        "  \"null_plan\": {\"digest\": \"%016llx\", \"baseline\": "
        "\"%016llx\",\n"
        "    \"matches_baseline\": %s}\n"
        "}\n",
        SimRunDigest(hot), SimRunDigest(hot_b->result),
        (unsigned long long)hot.migrations_begun,
        (unsigned long long)hot.migrations_completed,
        (unsigned long long)hot.migration_downtime_intervals,
        hot_config.host.migration_downtime_intervals, MaxThrottle(hot),
        (unsigned long long)results[0].digest,
        (unsigned long long)repeat->aggregate.digest,
        (unsigned long long)results[0].host_digest,
        (unsigned long long)repeat->host_digest,
        (unsigned long long)results[0].counters.migrations_begun,
        (unsigned long long)results[0].counters.migrations_completed,
        (unsigned long long)results[0].counters.migrations_failed,
        (unsigned long long)results[0].counters.downtime_intervals,
        downtime_exact ? "true" : "false",
        (unsigned long long)results[0].counters.placement_holds,
        (unsigned long long)results[0].counters.saturated_host_intervals,
        (unsigned long long)null_run->aggregate.digest,
        (unsigned long long)kPreHostFleetDigest,
        null_matches ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nWhen a scale-up no longer fits on the tenant's machine the\n"
      "placement layer turns it into a migration — copy, blackout, cutover —\n"
      "with downtime billed exactly and every decision explained. Disabled,\n"
      "the layer costs nothing: digests match the pre-host pins bit for "
      "bit.\n");
  return 0;
}
