// Scaler as a service: the ingest daemon in miniature.
//
// Two producers publish per-tenant telemetry into the allocation-free MPSC
// ring; the ScalerService drains it in batches, routes samples to each
// tenant's sliding-window store, and evaluates billing-interval decisions
// with the real AutoScaler policy under batched evaluation. Demonstrates:
//
//   * the nominal regime: drain cadence keeps up with the feed, so the
//     ring never fills and NOTHING is rejected;
//   * run-twice determinism: the tenant-order decision digest is
//     bit-identical across runs, and identical to the direct-feed serial
//     reference (the sim-loop shape);
//   * the overload regime: a deliberately tiny ring is flooded without
//     draining, so backpressure bites — rejected pushes surface on the
//     producer's and the ring's counters instead of blocking or silently
//     vanishing.
//
// With --json=PATH the example writes a machine-readable summary used by
// ci/check.sh stage 10 (ingest smoke): digest identity across the two
// runs and vs the direct feed, zero rejections at nominal rate, and a
// nonzero rejection counter under overload.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/sim_time.h"
#include "src/container/catalog.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/producer.h"
#include "src/ingest/scaler_service.h"
#include "src/ingest/wire_sample.h"
#include "src/scaler/autoscaler.h"
#include "src/telemetry/sample.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

constexpr uint64_t kNumTenants = 8;
constexpr size_t kSamplesPerInterval = 6;
constexpr int kIntervals = 8;
constexpr int64_t kPeriodUs = 5'000'000;  // 5s sampling period

/// Deterministic per-tenant workload: utilization and latency ramp with a
/// tenant-specific phase so different tenants make different decisions.
telemetry::TelemetrySample MakeSample(const container::Catalog& catalog,
                                      uint64_t tenant, int i) {
  telemetry::TelemetrySample s;
  s.period_start = SimTime::FromMicros(i * kPeriodUs);
  s.period_end = SimTime::FromMicros((i + 1) * kPeriodUs);
  const double phase =
      static_cast<double>((static_cast<uint64_t>(i) * 29 + tenant * 17) % 100);
  for (size_t r = 0; r < container::kNumResources; ++r) {
    s.utilization_pct[r] = 25.0 + phase * 0.7;
  }
  s.wait_ms[0] = phase * 2.5;
  s.wait_ms[1] = phase * 1.2;
  s.requests_started = 120 + i % 11;
  s.requests_completed = s.requests_started;
  s.latency_avg_ms = 6.0 + phase * 0.15;
  s.latency_p95_ms = 18.0 + phase * 0.5;
  s.latency_max_ms = 40.0 + phase;
  s.memory_used_mb = 900.0 + phase * 2.0;
  s.memory_active_mb = 450.0 + phase;
  s.physical_reads = 8 + i % 5;
  s.allocation = catalog.rung(3).resources;
  s.container_id = catalog.rung(3).id;
  return s;
}

ingest::ScalerServiceOptions ServiceOptions() {
  ingest::ScalerServiceOptions options;
  options.store_retention = 128;
  options.samples_per_interval = kSamplesPerInterval;
  options.max_drain_batch = 64;
  return options;
}

void AddTenants(const container::Catalog& catalog,
                ingest::ScalerService& service) {
  for (uint64_t t = 1; t <= kNumTenants; ++t) {
    scaler::TenantKnobs knobs;
    knobs.latency_goal =
        scaler::LatencyGoal{telemetry::LatencyAggregate::kP95, 35.0};
    auto policy = scaler::AutoScaler::Create(catalog, knobs);
    DBSCALE_CHECK_OK(policy.status());
    DBSCALE_CHECK(
        service.AddTenant(t, std::move(policy).value(), catalog.rung(2)).ok());
  }
}

struct NominalRun {
  uint64_t digest = 0;
  uint64_t rejected = 0;   ///< producer-side backpressure rejections
  uint64_t decisions = 0;
  uint64_t drains = 0;
  uint64_t routed = 0;
};

/// One nominal service run: two producers share the ring (tenants split
/// between them), the drainer runs every few pushes — the cadence a real
/// daemon's drain loop provides. Ring capacity far exceeds the largest
/// burst between drains, so backpressure never triggers.
NominalRun RunNominal(const container::Catalog& catalog) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 10});
  ingest::ScalerService service(&ring, ServiceOptions());
  AddTenants(catalog, service);
  ingest::IngestProducer shard_a(&ring, 0);
  ingest::IngestProducer shard_b(&ring, 1);

  const int total_samples = kIntervals * static_cast<int>(kSamplesPerInterval);
  for (int i = 0; i < total_samples; ++i) {
    for (uint64_t t = 1; t <= kNumTenants; ++t) {
      // A tenant's samples always come from one producer (one host agent
      // owns one container) — that is what makes producer interleaving
      // invisible to per-tenant routing.
      ingest::IngestProducer& shard = (t % 2 == 0) ? shard_a : shard_b;
      DBSCALE_CHECK(shard.Publish(t, MakeSample(catalog, t, i)) ==
                    ingest::PublishOutcome::kPublished);
    }
    if (i % 4 == 3) (void)service.DrainAll();
  }
  (void)service.DrainAll();

  NominalRun run;
  run.digest = service.Digest();
  run.rejected = shard_a.rejected() + shard_b.rejected() + ring.rejected();
  run.decisions = service.counters().decisions;
  run.drains = service.counters().drains;
  run.routed = service.counters().routed;
  return run;
}

/// The direct-feed serial reference: same samples, no ring, evaluation
/// synchronous with arrival — the sim-loop shape the equivalence contract
/// is stated against.
uint64_t RunDirectReference(const container::Catalog& catalog) {
  ingest::ScalerService service(nullptr, ServiceOptions());
  AddTenants(catalog, service);
  const int total_samples = kIntervals * static_cast<int>(kSamplesPerInterval);
  for (int i = 0; i < total_samples; ++i) {
    for (uint64_t t = 1; t <= kNumTenants; ++t) {
      service.OfferDirect(ingest::MakeWireSample(t, MakeSample(catalog, t, i)));
    }
  }
  return service.Digest();
}

struct OverloadRun {
  uint64_t attempted = 0;
  uint64_t published = 0;
  uint64_t rejected = 0;
};

/// Overload regime: flood a tiny ring without draining. The ring must
/// reject (counted, non-blocking) rather than drop silently — and every
/// attempted push is accounted for as published or rejected.
OverloadRun RunOverload(const container::Catalog& catalog) {
  ingest::IngestRing ring(ingest::IngestRingOptions{.capacity = 1 << 10});
  ingest::IngestProducer producer(&ring, 0);
  const telemetry::TelemetrySample sample = MakeSample(catalog, 1, 0);

  OverloadRun run;
  run.attempted = 40'000;
  for (uint64_t i = 0; i < run.attempted; ++i) {
    (void)producer.Publish(1, sample);
  }
  run.published = producer.published();
  run.rejected = producer.rejected();
  DBSCALE_CHECK(run.published == ring.capacity());  // filled, then rejected
  DBSCALE_CHECK(run.published + run.rejected == run.attempted);
  DBSCALE_CHECK(ring.rejected() == run.rejected);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  const container::Catalog catalog = container::Catalog::MakeLockStep();

  // 1. Nominal run, twice: drain keeps up, nothing rejected, and the
  // decision digest is a pure function of the sample streams.
  const NominalRun run_a = RunNominal(catalog);
  const NominalRun run_b = RunNominal(catalog);
  const uint64_t direct = RunDirectReference(catalog);

  std::printf("nominal: %llu tenants x %d intervals, %llu samples routed "
              "over %llu drains, %llu decisions, %llu rejected\n",
              (unsigned long long)kNumTenants, kIntervals,
              (unsigned long long)run_a.routed,
              (unsigned long long)run_a.drains,
              (unsigned long long)run_a.decisions,
              (unsigned long long)run_a.rejected);
  std::printf("digest: run A %016llx, run B %016llx, direct feed %016llx\n",
              (unsigned long long)run_a.digest,
              (unsigned long long)run_b.digest, (unsigned long long)direct);

  // 2. Overload: a flooded 1024-slot ring rejects loudly.
  const OverloadRun overload = RunOverload(catalog);
  std::printf("overload: %llu pushes into a 1024-slot ring -> %llu "
              "published, %llu rejected (counted, non-blocking)\n",
              (unsigned long long)overload.attempted,
              (unsigned long long)overload.published,
              (unsigned long long)overload.rejected);

  const bool digests_match =
      run_a.digest == run_b.digest && run_a.digest == direct;
  if (!digests_match) {
    std::fprintf(stderr, "FAIL: service digests diverge\n");
    return 1;
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"digest_a\": \"%016llx\",\n"
                 "  \"digest_b\": \"%016llx\",\n"
                 "  \"digest_direct\": \"%016llx\",\n"
                 "  \"digests_match\": %s,\n"
                 "  \"nominal_rejected\": %llu,\n"
                 "  \"nominal_decisions\": %llu,\n"
                 "  \"nominal_routed\": %llu,\n"
                 "  \"nominal_drains\": %llu,\n"
                 "  \"overload_attempted\": %llu,\n"
                 "  \"overload_published\": %llu,\n"
                 "  \"overload_rejected\": %llu\n"
                 "}\n",
                 (unsigned long long)run_a.digest,
                 (unsigned long long)run_b.digest, (unsigned long long)direct,
                 digests_match ? "true" : "false",
                 (unsigned long long)run_a.rejected,
                 (unsigned long long)run_a.decisions,
                 (unsigned long long)run_a.routed,
                 (unsigned long long)run_a.drains,
                 (unsigned long long)overload.attempted,
                 (unsigned long long)overload.published,
                 (unsigned long long)overload.rejected);
    std::fclose(f);
  }
  return 0;
}
