// Budget-capped auto-scaling: a tenant with a hard monthly budget.
//
// Shows the token-bucket budget manager (paper Section 5) in action: the
// same bursty workload is run with a generous and a tight budget, under
// both bursting strategies. The tight budget forces the scaler to ride out
// part of the burst on smaller containers — and the total spend never
// exceeds the budget.

#include <cstdio>

#include "src/common/string_util.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

namespace {

Result<sim::RunResult> RunWithBudget(const sim::SimulationOptions& options,
                                     const scaler::LatencyGoal& goal,
                                     double budget,
                                     scaler::BudgetStrategy strategy) {
  // SimConfig bundles harness options, tenant knobs, and scaler internals
  // into one validated value.
  SimConfig config;
  config.simulation = options;
  config.simulation.initial_rung = 2;
  config.knobs.latency_goal = goal;
  config.knobs.budget = scaler::BudgetKnob{
      budget, static_cast<int>(options.trace.num_steps())};
  config.scaler.budget_strategy = strategy;
  DBSCALE_ASSIGN_OR_RETURN(sim::SimConfigRun run, config.Run());
  return std::move(run.result);
}

}  // namespace

int main() {
  sim::SimulationOptions options;
  options.catalog = container::Catalog::MakeLockStep();
  options.workload = workload::MakeCpuioWorkload();
  options.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 23;
  const int n = static_cast<int>(options.trace.num_steps());

  auto max_run = sim::RunMax(options);
  if (!max_run.ok()) {
    std::fprintf(stderr, "%s\n", max_run.status().ToString().c_str());
    return 1;
  }
  scaler::LatencyGoal goal{telemetry::LatencyAggregate::kP95,
                           1.5 * max_run->latency_p95_ms};
  options.telemetry.latency_aggregate = goal.aggregate;
  std::printf("trace: %d intervals; latency goal p95 <= %.0f ms\n", n,
              goal.target_ms);

  struct Scenario {
    const char* name;
    double budget;
    scaler::BudgetStrategy strategy;
  };
  const double generous = 150.0 * n;
  const double tight = 35.0 * n;
  const Scenario scenarios[] = {
      {"generous/aggressive", generous,
       scaler::BudgetStrategy::kAggressive},
      {"tight/aggressive", tight, scaler::BudgetStrategy::kAggressive},
      {"tight/conservative", tight,
       scaler::BudgetStrategy::kConservative},
  };

  sim::TextTable table({"scenario", "budget", "spent", "p95 ms",
                        "meets goal", "budget-capped intervals"});
  for (const Scenario& s : scenarios) {
    auto run = RunWithBudget(options, goal, s.budget, s.strategy);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", s.name,
                   run.status().ToString().c_str());
      return 1;
    }
    int capped = 0;
    for (const auto& interval : run->intervals) {
      if (interval.decision_explanation.find("budget") !=
          std::string::npos) {
        ++capped;
      }
    }
    table.AddRow({s.name, StrFormat("%.0f", s.budget),
                  StrFormat("%.0f", run->total_cost),
                  StrFormat("%.0f", run->latency_p95_ms),
                  run->latency_p95_ms <= goal.target_ms ? "yes" : "no",
                  StrFormat("%d", capped)});
    if (run->total_cost > s.budget) {
      std::fprintf(stderr, "BUDGET VIOLATED in %s\n", s.name);
      return 1;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The budget is a hard constraint: spend never exceeds it, at\n"
              "the price of latency during bursts the budget cannot cover.\n");
  return 0;
}
