// Quickstart: auto-scale a bursty CPUIO workload with the paper's Auto
// policy and compare against the utilization-only scaler.
//
// Demonstrates the core public API:
//   * build a container catalog,
//   * describe a workload and a load trace,
//   * create an AutoScaler from tenant knobs (latency goal),
//   * run the closed loop and read latency / cost / explanations.

#include <cstdio>
#include <map>

#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/sim/sim_config.h"
#include "src/workload/mix.h"
#include "src/workload/paper_traces.h"

using namespace dbscale;  // NOLINT: example brevity

int main() {
  // A DaaS catalog: 11 lock-step container sizes, 7..270 cost units per
  // billing interval.
  sim::SimulationOptions options;
  options.catalog = container::Catalog::MakeLockStep();
  options.workload = workload::MakeCpuioWorkload();
  // Trace 2: mostly idle with one long burst (Figure 8). Subsample 4x to
  // keep the quickstart fast.
  options.trace = *workload::MakeTrace2LongBurst().Subsampled(4);
  options.interval_duration = Duration::Seconds(20);
  options.seed = 17;

  std::printf("workload: %s, trace: %s (%zu intervals)\n",
              options.workload.name.c_str(), options.trace.name().c_str(),
              options.trace.num_steps());

  // 1. Gold standard: the largest container.
  auto max_run = sim::RunMax(options);
  if (!max_run.ok()) {
    std::fprintf(stderr, "Max run failed: %s\n",
                 max_run.status().ToString().c_str());
    return 1;
  }
  std::printf("Max: p95=%.0fms avg=%.0fms cost/interval=%.1f\n",
              max_run->latency_p95_ms, max_run->latency_avg_ms,
              max_run->avg_cost_per_interval);

  // 2. One validated config: harness options + tenant knobs. The p95 goal
  // is 1.25x the gold standard; SimConfig::Run() derives the matching
  // telemetry aggregate, validates everything, and drives the closed loop.
  SimConfig config;
  config.simulation = options;
  config.simulation.initial_rung = 3;
  config.knobs.latency_goal = scaler::LatencyGoal{
      telemetry::LatencyAggregate::kP95, 1.25 * max_run->latency_p95_ms};
  std::printf("latency goal: p95 <= %.0f ms\n",
              config.knobs.latency_goal->target_ms);

  // 3. The Auto policy, closed-loop.
  auto auto_run_result = config.Run();
  if (!auto_run_result.ok()) {
    std::fprintf(stderr, "Auto run failed: %s\n",
                 auto_run_result.status().ToString().c_str());
    return 1;
  }
  const sim::RunResult* auto_run = &auto_run_result->result;
  std::printf("Auto: p95=%.0fms cost/interval=%.1f changes=%d (%.0f%%)\n",
              auto_run->latency_p95_ms, auto_run->avg_cost_per_interval,
              auto_run->container_changes,
              100.0 * auto_run->change_fraction);

  // 4. What did Auto do, and why? Print the decision mix.
  std::map<std::string, int> decisions;
  for (const auto& interval : auto_run->intervals) {
    std::string kind = interval.decision_explanation.substr(
        0, interval.decision_explanation.find(':'));
    ++decisions[kind];
  }
  std::printf("\ndecision mix:\n");
  for (const auto& [kind, count] : decisions) {
    std::printf("  %6d  %s\n", count, kind.c_str());
  }

  // 5. The audit log: every decision with its explanation (the paper's
  // diagnostics surface). Show the actual resizes.
  std::printf("\nresize audit trail:\n");
  for (const auto* record : auto_run_result->scaler->audit().Resizes()) {
    std::printf("%s\n", record->ToString().substr(0, 100).c_str());
  }

  // 6. Container rung over time (ASCII).
  std::vector<double> rungs;
  for (const auto& interval : auto_run->intervals) {
    rungs.push_back(interval.container.base_rung + 1.0);
  }
  std::printf("\ncontainer rung over time (Auto):\n%s\n",
              sim::AsciiChart(rungs, 6).c_str());
  std::printf("offered load (trace):\n%s\n",
              sim::AsciiChart(options.trace.values(), 6).c_str());
  return 0;
}
