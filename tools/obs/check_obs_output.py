#!/usr/bin/env python3
"""Schema checker for the observability exporters.

Validates the three artifacts an instrumented run dumps (see
examples/decision_trace.cpp and src/obs/export.h):

  * JSONL spans  — every line is a JSON object with the stable schema
    {interval, span, parent, name, start_us, end_us, attrs}; span 0 of
    every interval is the "interval" root; parents precede children;
    timestamps are well-ordered.
  * Prometheus text — every family has exactly one # HELP and # TYPE
    header before its samples; histogram buckets are cumulative and
    consistent with _count; sample values parse as numbers.
  * CSV metrics — RFC 4180 rows under the `metric,kind,le,value` header,
    with known kinds and numeric values.

Usage: check_obs_output.py SPANS.jsonl METRICS.prom METRICS.csv
Exit status: 0 when every file validates, 1 otherwise.
"""

from __future__ import annotations

import csv
import json
import re
import sys

SPAN_KEYS = {"interval", "span", "parent", "name", "start_us", "end_us",
             "attrs"}
SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*(?:\{[^}]*\})?) (?P<value>\S+)$")
CSV_KINDS = {"counter", "gauge", "histogram"}


def check_spans(path: str) -> list[str]:
    errors = []
    intervals: dict[int, list[dict]] = {}
    order: list[int] = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                errors.append(f"{path}:{lineno}: blank line")
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"{path}:{lineno}: not JSON: {e}")
                continue
            if set(span) != SPAN_KEYS:
                errors.append(f"{path}:{lineno}: keys {sorted(span)} != "
                              f"{sorted(SPAN_KEYS)}")
                continue
            if not isinstance(span["attrs"], dict):
                errors.append(f"{path}:{lineno}: attrs is not an object")
            if span["start_us"] > span["end_us"]:
                errors.append(f"{path}:{lineno}: start_us > end_us")
            interval = span["interval"]
            if interval not in intervals:
                intervals[interval] = []
                order.append(interval)
            intervals[interval].append(span)

    if order != sorted(order):
        errors.append(f"{path}: interval order {order[:8]}... not ascending")
    for interval, spans in intervals.items():
        ids = [s["span"] for s in spans]
        if ids != list(range(len(spans))):
            errors.append(f"{path}: interval {interval} span ids {ids[:8]} "
                          "are not dense start-ordered")
            continue
        root = spans[0]
        if root["name"] != "interval" or root["parent"] is not None:
            errors.append(f"{path}: interval {interval} span 0 is not the "
                          "'interval' root")
        for s in spans[1:]:
            if s["parent"] is None or not 0 <= s["parent"] < s["span"]:
                errors.append(f"{path}: interval {interval} span "
                              f"{s['span']} parent {s['parent']} does not "
                              "precede it")
    if not intervals:
        errors.append(f"{path}: no spans at all")
    return errors


def check_prometheus(path: str) -> list[str]:
    errors = []
    helped, typed = set(), set()
    kind_by_family: dict[str, str] = {}
    # (family, labels-sans-le) -> {suffix -> value} for histogram
    # consistency checks; one labeled family has several series.
    hist: dict[tuple[str, str], dict[str, float]] = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                helped.add(line.split(" ", 3)[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or parts[3] not in CSV_KINDS:
                    errors.append(f"{path}:{lineno}: malformed TYPE line")
                    continue
                typed.add(parts[2])
                kind_by_family[parts[2]] = parts[3]
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                errors.append(f"{path}:{lineno}: unparseable sample: "
                              f"{line[:60]!r}")
                continue
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"{path}:{lineno}: non-numeric value "
                              f"{m.group('value')!r}")
                continue
            base = m.group("name").split("{", 1)[0]
            family = re.sub(r"_(bucket|sum|count)$", "", base)
            if family not in helped or family not in typed:
                errors.append(f"{path}:{lineno}: sample for {family} before "
                              "its HELP/TYPE headers")
            if kind_by_family.get(family) == "histogram":
                name = m.group("name")
                labels = ""
                if "{" in name:
                    labels = name.split("{", 1)[1].rstrip("}")
                if base.endswith("_bucket"):
                    # Label values here never carry commas (exporter
                    # contract), so a flat split is safe.
                    parts = labels.split(",") if labels else []
                    le = ""
                    others = []
                    for part in parts:
                        if part.startswith('le="'):
                            le = part[len('le="'):-1]
                        else:
                            others.append(part)
                    if not le:
                        errors.append(f"{path}:{lineno}: bucket sample "
                                      "without an le label")
                        continue
                    series = hist.setdefault((family, ",".join(others)), {})
                    prev = series.get("last_bucket")
                    if prev is not None and value < prev:
                        errors.append(f"{path}:{lineno}: {family} bucket "
                                      f"le={le} not cumulative")
                    series["last_bucket"] = value
                    if le == "+Inf":
                        series["inf"] = value
                else:
                    series = hist.setdefault((family, labels), {})
                    series[base.rsplit("_", 1)[1]] = value
    for (family, labels), series in hist.items():
        where = f"{family}{{{labels}}}" if labels else family
        if "inf" not in series or "count" not in series:
            errors.append(f"{path}: histogram {where} missing +Inf or "
                          "_count series")
        elif series["inf"] != series["count"]:
            errors.append(f"{path}: histogram {where} +Inf bucket "
                          f"{series['inf']} != count {series['count']}")
    if not kind_by_family:
        errors.append(f"{path}: no metric families at all")
    return errors


def check_csv(path: str) -> list[str]:
    errors = []
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header != ["metric", "kind", "le", "value"]:
            return [f"{path}: bad header {header}"]
        rows = 0
        for lineno, row in enumerate(reader, 2):
            rows += 1
            if len(row) != 4:
                errors.append(f"{path}:{lineno}: {len(row)} fields")
                continue
            metric, kind, le, value = row
            if not metric:
                errors.append(f"{path}:{lineno}: empty metric name")
            if kind not in CSV_KINDS:
                errors.append(f"{path}:{lineno}: unknown kind {kind!r}")
            if (le != "") != (kind == "histogram"):
                errors.append(f"{path}:{lineno}: le={le!r} inconsistent "
                              f"with kind {kind!r}")
            try:
                float(value)
            except ValueError:
                errors.append(f"{path}:{lineno}: non-numeric value "
                              f"{value!r}")
        if rows == 0:
            errors.append(f"{path}: no metric rows at all")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    errors = (check_spans(argv[1]) + check_prometheus(argv[2]) +
              check_csv(argv[3]))
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if errors:
        return 1
    print("obs output ok: spans, prometheus, csv all validate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
