#!/usr/bin/env python3
"""FROZEN legacy regex engine — kept only as the parity baseline.

This is the PR-2 line-regex linter, verbatim. The live engine is the
token-stream analyzer in dbscale_lint.py; lint_test.py runs both over the
frozen fixture corpus and asserts the new engine flags a superset of this
engine's true positives, plus the multi-line / raw-string cases this
engine provably misses. Do not extend this file — add rules to the token
engine and pin them with fixtures instead.

Original docstring:

dbscale custom invariant linter.

Enforces repo-specific rules that clang-tidy cannot express:

  wall-clock         No wall-clock time or non-deterministic randomness
                     outside src/common/rng.* and src/common/sim_time.*.
                     Every simulation run must be reproducible bit-for-bit
                     from its seed; a single std::random_device or
                     system_clock::now() breaks that silently.
  unordered-container
                     No std::unordered_{map,set} in merge/report/fleet
                     paths (src/fleet/, src/sim/, src/telemetry/).
                     Iteration order is implementation-defined, so any
                     aggregate or report built by iterating one is
                     nondeterministic across libstdc++ versions and runs.
  alloc-hot-path     No allocation (new/make_unique/malloc), container
                     growth (resize/reserve), fresh container locals, or
                     by-value container parameters in the allocation-free
                     signal-path files (telemetry/manager.cc and the
                     in-place stats kernels). push_back into
                     capacity-retaining scratch buffers is the one
                     sanctioned growth mechanism and is not flagged.
  float-equality     No ==/!= against floating-point literals in src/scaler/
                     threshold logic or src/fleet/ aggregation code; use
                     epsilon or integer-domain comparisons.
  discarded-status   No `(void)` cast applied to a call expression. Status/
                     Result are [[nodiscard]]; a (void) cast is the only way
                     to silence that, so each one must carry an annotation.
  nodiscard-guard    src/common/status.h and src/common/result.h must keep
                     their class-level [[nodiscard]] attributes (the
                     compile-time half of discarded-status).

Suppression: append `// dbscale-lint: allow(<rule>)` to the offending line,
or place it alone on the line directly above. A file-level opt-out,
`// dbscale-lint: allow-file(<rule>)`, is honored anywhere in the file's
first 15 lines. Suppressions are for *intentional*, commented cases — e.g.
the by-value convenience wrappers in stats/robust.cc.

Exit status: 0 when clean, 1 when any finding survives suppression,
2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

HOT_PATH_FILES = (
    "src/telemetry/manager.cc",
    "src/stats/robust.cc",
    "src/stats/theil_sen.cc",
    "src/stats/spearman.cc",
    "src/stats/incremental.cc",
    "src/stats/cdf.cc",
    "src/sim/report.cc",
    # Observability record paths: metric shard writes and span capture run
    # once per billing interval (per tenant in the fleet) and must stay
    # allocation-free in steady state.
    "src/obs/metrics.cc",
    "src/obs/trace.cc",
    # Fault-injection draws run per sample (telemetry faults) and per
    # interval (resize actuation); both sit inside the simulation hot loop.
    "src/fault/fault_plan.cc",
    "src/fault/actuator.cc",
)

ORDER_SENSITIVE_PREFIXES = (
    "src/fleet/",
    "src/sim/",
    "src/telemetry/",
    "src/obs/",
    # Fault streams are forked from the deterministic per-tenant RNG; any
    # unordered reduction or wall-clock leak breaks bit-identical replay.
    "src/fault/",
)

FLOAT_LIT = r"-?\d+\.\d*(?:[eE][-+]?\d+)?f?"


class Rule:
    """A regex-per-line rule with a path scope."""

    def __init__(self, name, message, patterns, applies):
        self.name = name
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.applies = applies  # callable(relpath) -> bool

    def match(self, line):
        return any(p.search(line) for p in self.patterns)


def _in_src(path):
    return path.startswith("src/")


def _wall_clock_scope(path):
    exempt = ("src/common/rng.", "src/common/sim_time.")
    return _in_src(path) and not path.startswith(exempt)


def _order_sensitive(path):
    return path.startswith(ORDER_SENSITIVE_PREFIXES)


def _hot_path(path):
    return path in HOT_PATH_FILES


RULES = [
    Rule(
        "wall-clock",
        "wall-clock time / non-deterministic randomness outside "
        "src/common/{rng,sim_time}; breaks seed-reproducibility",
        [
            r"\bstd::rand\b",
            r"(?<![\w:])s?rand\s*\(",
            r"\brandom_device\b",
            r"\bsystem_clock\b",
            r"\bsteady_clock\b",
            r"\bhigh_resolution_clock\b",
            r"\bgettimeofday\s*\(",
            r"\bclock_gettime\s*\(",
            r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)",
        ],
        _wall_clock_scope,
    ),
    Rule(
        "unordered-container",
        "unordered container in a merge/report/fleet path; iteration order "
        "is nondeterministic — use std::map, std::vector, or annotate",
        [
            r"\bstd::unordered_map\b",
            r"\bstd::unordered_set\b",
            r"\bstd::unordered_multimap\b",
            r"\bstd::unordered_multiset\b",
        ],
        _order_sensitive,
    ),
    Rule(
        "alloc-hot-path",
        "allocation / container growth in an allocation-free signal-path "
        "file; use the scratch buffers (see SignalScratch)",
        [
            r"(?<![\w_])new\b(?!\s*\()",   # `new T`, not `operator new(`
            r"\bstd::make_unique\b",
            r"\bstd::make_shared\b",
            r"(?<![\w:.])malloc\s*\(",
            r"(?<![\w:.])calloc\s*\(",
            r"\.resize\s*\(",
            r"\.reserve\s*\(",
            # Fresh container local: `std::vector<T> name...` (a reference
            # binding `std::vector<T>& name` is fine and excluded).
            r"\bstd::(vector|deque|map|set|string)\s*<[^;&]*>\s+\w+\s*[({;=]",
            # By-value container parameter: copies on every call.
            r"[(,]\s*std::(vector|deque|map|set)\s*<[^;&]*>\s+\w+",
        ],
        _hot_path,
    ),
    Rule(
        "float-equality",
        "naked ==/!= against a floating-point literal in scaler threshold "
        "or fleet aggregation code; use an epsilon comparison or compare "
        "in the integer domain",
        [
            r"[=!]=\s*" + FLOAT_LIT + r"(?![\w.])",
            FLOAT_LIT + r"\s*[=!]=(?!=)",
        ],
        lambda p: p.startswith(("src/scaler/", "src/fleet/")),
    ),
    Rule(
        "discarded-status",
        "(void)-cast of a call expression silently drops a [[nodiscard]] "
        "Status/Result; handle it or annotate the intentional discard",
        [r"\(\s*void\s*\)\s*[A-Za-z_][\w:.]*(?:->\w+)*\s*\("],
        lambda p: _in_src(p) or p.startswith("tests/"),
    ),
]

# Files that must keep their [[nodiscard]] class attribute, and the marker
# each must contain (rule: nodiscard-guard).
NODISCARD_GUARDS = {
    "src/common/status.h": r"class\s+\[\[nodiscard\]\]\s+Status\b",
    "src/common/result.h": r"class\s+\[\[nodiscard\]\]\s+Result\b",
}

ALLOW_RE = re.compile(r"//\s*dbscale-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"//\s*dbscale-lint:\s*allow-file\(([\w,\s-]+)\)")


def _parse_allow(match):
    return {r.strip() for r in match.group(1).split(",") if r.strip()}


class CommentStripper:
    """Strips // and /* */ comments plus string/char literals, line by line.

    Keeps a tiny state machine across lines for block comments. Precise
    enough for lint regexes; raw strings are not handled (none in tree).
    """

    def __init__(self):
        self.in_block = False

    def strip(self, line):
        out = []
        i, n = 0, len(line)
        while i < n:
            if self.in_block:
                end = line.find("*/", i)
                if end < 0:
                    return "".join(out)
                self.in_block = False
                i = end + 2
                continue
            c = line[i]
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                self.in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                out.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                out.append(quote)
                i += 1
                continue
            out.append(c)
            i += 1
        return "".join(out)


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def lint_file(root, relpath):
    """Returns the list of Findings for one file."""
    findings = []
    try:
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            lines = f.read().splitlines()
    except (OSError, UnicodeDecodeError) as e:
        return [Finding(relpath, 0, "io", f"unreadable: {e}")]

    rules = [r for r in RULES if r.applies(relpath)]

    file_allows = set()
    for line in lines[:15]:
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_allows |= _parse_allow(m)

    guard = NODISCARD_GUARDS.get(relpath)
    if guard and not any(re.search(guard, ln) for ln in lines):
        findings.append(
            Finding(relpath, 1, "nodiscard-guard",
                    "class-level [[nodiscard]] attribute was removed; "
                    "restore it (pattern: %s)" % guard))

    if not rules:
        return findings

    stripper = CommentStripper()
    prev_line_allows = set()
    for idx, raw in enumerate(lines, start=1):
        line_allows = set(file_allows) | prev_line_allows
        m = ALLOW_RE.search(raw)
        if m:
            allows = _parse_allow(m)
            stripped_raw = raw.strip()
            if stripped_raw.startswith("//"):
                # Annotation-only line: applies to the next line.
                prev_line_allows = allows
                stripper.strip(raw)
                continue
            line_allows |= allows
        prev_line_allows = set()

        code = stripper.strip(raw)
        if not code.strip():
            continue
        for rule in rules:
            if rule.name in line_allows:
                continue
            if rule.match(code):
                findings.append(Finding(relpath, idx, rule.name, rule.message))
    return findings


def iter_source_files(root):
    wanted_dirs = ("src", "tests")
    exts = (".cc", ".h")
    for top in wanted_dirs:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, fn), root)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("paths", nargs="*",
                        help="root-relative files to lint (default: all of "
                             "src/ and tests/)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the all-clear summary line")
    args = parser.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print(f"dbscale_lint: no such root: {root}", file=sys.stderr)
        return 2

    relpaths = [p.replace(os.sep, "/") for p in args.paths] \
        or list(iter_source_files(root))

    findings = []
    for rel in relpaths:
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f)
    if findings:
        print(f"dbscale_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"dbscale_lint: OK ({len(relpaths)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
