#!/usr/bin/env python3
"""dbscale custom invariant linter — token-stream semantic engine.

Enforces repo-specific rules that clang-tidy cannot express. Unlike the
PR-2 line-regex engine (frozen in legacy_regex_lint.py as the parity
baseline), every rule here operates on a real C++ token stream with a
recovered scope/function model (tools/lint/cpptok.py): multi-line
expressions, raw strings containing code-looking text, interior comments,
and preprocessor continuations are all seen for what they are.

Rules:

  wall-clock         No wall-clock time or non-deterministic randomness
                     outside src/common/rng.* and src/common/sim_time.*.
  unordered-container
                     No std::unordered_{map,set,multimap,multiset} in
                     merge/report/fleet/obs/fault paths — iteration order
                     is implementation-defined.
  alloc-hot-path     No allocation (new/make_unique/make_shared/malloc),
                     container growth (resize/reserve), fresh container
                     locals, or by-value container parameters inside hot
                     regions. Hot regions are function-granular: every
                     function in a HOT_PATH_FILES file (file-level
                     default), plus any function annotated `// dbscale-hot`
                     on or directly above its signature, anywhere in
                     src/ or tests/. Reference bindings into preallocated
                     scratch (`std::vector<double>& v = scratch.buf;`)
                     are classified scratch-bound and not flagged.
  float-equality     No ==/!= against floating-point literals in
                     src/scaler/ or src/fleet/ — even split across lines.
  discarded-status   A `(void)` cast of a call expression (the only way
                     to mute [[nodiscard]]) must carry an annotation —
                     interior comments and line breaks do not hide it.
  nodiscard-guard    src/common/status.h and src/common/result.h keep
                     their class-level [[nodiscard]] attributes.
  pointer-key-container
                     No std::{map,set,multimap,multiset} keyed on a
                     pointer type in order-sensitive paths: iteration
                     order is address order, which varies run to run.
  mutable-global     No mutable namespace-scope state in src/ outside
                     src/common/ — hidden globals break run-to-run and
                     thread-count determinism. constexpr/const objects
                     (with a const *pointer*, not just pointee) are fine.
  nodiscard-status-fn
                     Free functions returning Status/Result<T> must be
                     [[nodiscard]] — headers always; in .cc files those
                     with internal linkage (static / anonymous
                     namespace), where the definition is the only
                     declaration the attribute could live on.
  options-validate   Entry-point functions (constructors, Run/Resume/
                     Init/Start, Make*/Create*/Open*) taking a
                     *Options struct that defines `Status Validate()`
                     must call Validate() in their body, or carry an
                     annotation saying where validation happens.

Suppression: `// dbscale-lint: allow(<rule>)` on the offending line or
alone on the line above; `// dbscale-lint: allow-file(<rule>)` anywhere
in the first 15 lines. Hot-function annotation: `// dbscale-hot` on or
directly above a function signature.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import cpptok  # noqa: E402
from cpptok import CHAR, ID, NUM, PUNCT, STR  # noqa: E402,F401

# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------

# File-level hot defaults: every function in these files is hot. The
# `// dbscale-hot` annotation extends the same enforcement to individual
# functions in any other file.
HOT_PATH_FILES = (
    "src/telemetry/manager.cc",
    "src/stats/robust.cc",
    "src/stats/theil_sen.cc",
    "src/stats/spearman.cc",
    "src/stats/incremental.cc",
    "src/stats/cdf.cc",
    "src/sim/report.cc",
    # Observability record paths: metric shard writes and span capture run
    # once per billing interval (per tenant in the fleet) and must stay
    # allocation-free in steady state.
    "src/obs/metrics.cc",
    "src/obs/trace.cc",
    # Fault-injection draws run per sample (telemetry faults) and per
    # interval (resize actuation); both sit inside the simulation hot loop.
    "src/fault/fault_plan.cc",
    "src/fault/actuator.cc",
)

ORDER_SENSITIVE_PREFIXES = (
    "src/fleet/",
    "src/sim/",
    "src/telemetry/",
    "src/obs/",
    # Fault streams are forked from the deterministic per-tenant RNG; any
    # unordered reduction or wall-clock leak breaks bit-identical replay.
    "src/fault/",
    # Service-mode decisions must be digest-identical to sim-loop decisions
    # at any producer/thread count; unordered containers or clock reads in
    # the drain/evaluate path would break that equivalence.
    "src/ingest/",
    # Placement scans, migration state, and interference folds feed the
    # host digest; iteration order over hosts/tenants must be fixed.
    "src/host/",
    # The diagonal optimizer's branch-and-bound must visit candidates in a
    # fixed order: ties break toward the first candidate found, so any
    # unordered traversal (or clock/RNG leak) changes which bundle wins and
    # moves every pinned digest downstream.
    "src/scaler/diagonal",
)

NODISCARD_GUARDS = {
    "src/common/status.h": "Status",
    "src/common/result.h": "Result",
}

ALLOW_RE = re.compile(r"dbscale-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"dbscale-lint:\s*allow-file\(([\w,\s-]+)\)")
HOT_RE = re.compile(r"//\s*dbscale-hot\b(?!-)")

_CLOCK_IDS = {"random_device", "system_clock", "steady_clock",
              "high_resolution_clock"}
_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}
_ORDERED_ASSOC = {"map", "set", "multimap", "multiset"}
_FRESH_CONTAINERS = {"vector", "deque", "map", "set", "string"}
_BYVAL_CONTAINERS = {"vector", "deque", "map", "set"}
_ENTRY_NAMES = {"Run", "Resume", "Init", "Start"}
_ENTRY_PREFIXES = ("Make", "Create", "Open")


def _in_src(path):
    return path.startswith("src/")


def _wall_clock_scope(path):
    exempt = ("src/common/rng.", "src/common/sim_time.")
    return _in_src(path) and not path.startswith(exempt)


def _order_sensitive(path):
    return path.startswith(ORDER_SENSITIVE_PREFIXES)


def _float_eq_scope(path):
    return path.startswith(("src/scaler/", "src/fleet/"))


def _mutable_global_scope(path):
    return _in_src(path) and not path.startswith("src/common/")


MESSAGES = {
    "wall-clock": "wall-clock time / non-deterministic randomness outside "
                  "src/common/{rng,sim_time}; breaks seed-reproducibility",
    "unordered-container": "unordered container in a merge/report/fleet "
                           "path; iteration order is nondeterministic — "
                           "use std::map, std::vector, or annotate",
    "alloc-hot-path": "allocation / container growth in a hot region; use "
                      "the scratch buffers (see SignalScratch)",
    "float-equality": "naked ==/!= against a floating-point literal in "
                      "scaler threshold or fleet aggregation code; use an "
                      "epsilon comparison or compare in the integer domain",
    "discarded-status": "(void)-cast of a call expression silently drops a "
                        "[[nodiscard]] Status/Result; handle it or annotate "
                        "the intentional discard",
    "nodiscard-guard": "class-level [[nodiscard]] attribute was removed; "
                       "restore it",
    "pointer-key-container": "ordered container keyed on a pointer in an "
                             "order-sensitive path; iteration is address "
                             "order, which varies run to run — key on a "
                             "stable id instead",
    "mutable-global": "mutable namespace-scope state outside src/common/; "
                      "hidden globals break replay determinism — make it "
                      "constexpr/const or move it into an object",
    "nodiscard-status-fn": "free function returning Status/Result lacks "
                           "[[nodiscard]]; a dropped error is silently "
                           "swallowed at call sites",
    "options-validate": "entry point takes an options struct that defines "
                        "Validate() but never calls it; validate before "
                        "use or annotate where validation happens",
}

ALL_RULES = tuple(MESSAGES)


class Finding:
    def __init__(self, path, line_no, rule, message=None):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message or MESSAGES.get(rule, rule)

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Per-file analysis context
# ---------------------------------------------------------------------------

class FileContext:
    """Lexed + structurally analyzed file, with suppression maps."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.lexed = cpptok.lex(text)
        self.tokens = self.lexed.tokens
        self.model = cpptok.StructureModel(self.tokens)
        self.file_allows = set()
        self.allow_lines = {}   # line -> set(rule)
        self.hot_anchor_lines = set()
        self._scan_annotations(text)

    def _code_lines(self):
        return sorted({t.line for t in self.tokens})

    def _next_code_line(self, after_line, code_lines):
        import bisect
        i = bisect.bisect_right(code_lines, after_line)
        return code_lines[i] if i < len(code_lines) else None

    def _scan_annotations(self, text):
        code_lines = self._code_lines()
        code_line_set = set(code_lines)
        for triv in self.lexed.trivia:
            if triv.kind != cpptok.COMMENT:
                continue
            m = ALLOW_FILE_RE.search(triv.text)
            if m and triv.line <= 15:
                self.file_allows |= _parse_allow(m)
            m = ALLOW_RE.search(triv.text)
            if m:
                rules = _parse_allow(m)
                if triv.line in code_line_set:
                    target = triv.line
                else:
                    target = self._next_code_line(triv.end_line, code_lines)
                if target is not None:
                    self.allow_lines.setdefault(target, set()).update(rules)
            if HOT_RE.search(triv.text):
                if triv.line in code_line_set:
                    self.hot_anchor_lines.add(triv.line)
                else:
                    nxt = self._next_code_line(triv.end_line, code_lines)
                    if nxt is not None:
                        self.hot_anchor_lines.add(nxt)

    def allowed(self, rule, line):
        if rule in self.file_allows:
            return True
        return rule in self.allow_lines.get(line, set())

    # -- hot regions -------------------------------------------------------

    def hot_ranges(self):
        """Token-index ranges under alloc-hot-path enforcement."""
        ranges = []
        if self.relpath in HOT_PATH_FILES:
            ranges.append((0, len(self.tokens)))
            return ranges
        for fn in self.model.functions:
            if fn.body_close is None:
                continue
            body_open_line = self.tokens[fn.body_open].line
            if any(fn.sig_line <= ln <= body_open_line
                   for ln in self.hot_anchor_lines):
                # Signature (for by-value params) + body.
                ranges.append((fn.head_start, fn.body_close + 1))
        return ranges


def _parse_allow(match):
    return {r.strip() for r in match.group(1).split(",") if r.strip()}


# ---------------------------------------------------------------------------
# Token helpers
# ---------------------------------------------------------------------------

def _next(tokens, i, k=1):
    j = i + k
    return tokens[j] if 0 <= j < len(tokens) else None


def _is(tok, kind, text=None):
    return tok is not None and tok.kind == kind and \
        (text is None or tok.text == text)


def _match_angle(tokens, i):
    """tokens[i] is '<'; returns index of the matching '>' (treating '>>'
    as two closes), or None."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return i
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i
            elif t.text in (";", "{", "}"):
                return None
        i += 1
    return None


def _match_paren(tokens, i):
    return cpptok._match_forward(tokens, i, "(", ")")


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def rule_wall_clock(ctx):
    out = []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != ID:
            continue
        if t.text in _CLOCK_IDS:
            out.append((t.line, "wall-clock"))
            continue
        nxt = _next(toks, i)
        if t.text in ("rand", "srand") and _is(nxt, PUNCT, "("):
            prev = toks[i - 1] if i else None
            if _is(prev, PUNCT, "::") and not _is(toks[i - 2], ID, "std"):
                continue  # some_ns::rand — not the libc one
            out.append((t.line, "wall-clock"))
        elif t.text in ("gettimeofday", "clock_gettime") and \
                _is(nxt, PUNCT, "("):
            out.append((t.line, "wall-clock"))
        elif t.text == "time" and _is(nxt, PUNCT, "("):
            prev = toks[i - 1] if i else None
            if _is(prev, PUNCT, "::"):
                continue
            arg = _next(toks, i, 2)
            if arg is not None and (
                    _is(arg, ID, "NULL") or _is(arg, ID, "nullptr") or
                    (arg.kind == NUM and arg.text == "0") or
                    _is(arg, PUNCT, "&")):
                out.append((t.line, "wall-clock"))
    return out


def rule_unordered_container(ctx):
    out = []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind == ID and t.text in _UNORDERED and \
                _is(toks[i - 1] if i else None, PUNCT, "::") and \
                _is(toks[i - 2] if i > 1 else None, ID, "std"):
            out.append((t.line, "unordered-container"))
    return out


def rule_pointer_key_container(ctx):
    out = []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != ID or t.text not in _ORDERED_ASSOC:
            continue
        if not (_is(toks[i - 1] if i else None, PUNCT, "::") and
                _is(toks[i - 2] if i > 1 else None, ID, "std")):
            continue
        lt = _next(toks, i)
        if not _is(lt, PUNCT, "<"):
            continue
        close = _match_angle(toks, i + 1)
        if close is None:
            continue
        # First template argument: up to a top-level ',' or the close.
        depth = 0
        end = close
        for j in range(i + 2, close):
            tj = toks[j]
            if tj.kind != PUNCT:
                continue
            if tj.text in ("<", "(", "["):
                depth += 1
            elif tj.text in (">", ")", "]"):
                depth -= 1
            elif tj.text == ">>":
                depth -= 2
            elif tj.text == "," and depth == 0:
                end = j
                break
        key = toks[i + 2:end]
        if any(k.kind == PUNCT and k.text == "*" for k in key):
            out.append((t.line, "pointer-key-container"))
    return out


def rule_float_equality(ctx):
    out = []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != PUNCT or t.text not in ("==", "!="):
            continue
        prev = toks[i - 1] if i else None
        nxt = _next(toks, i)
        for nb in (prev, nxt):
            if nb is not None and nb.kind == NUM and \
                    cpptok.is_float_literal(nb.text):
                out.append((t.line, "float-equality"))
                break
    return out


def rule_discarded_status(ctx):
    out = []
    toks = ctx.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not _is(t, PUNCT, "("):
            continue
        if not (_is(_next(toks, i), ID, "void") and
                _is(_next(toks, i, 2), PUNCT, ")")):
            continue
        # Walk the callee chain: ids joined by :: . -> , ending at '('.
        j = i + 3
        saw_id = False
        while j < n:
            tj = toks[j]
            if tj.kind == ID:
                saw_id = True
                j += 1
            elif tj.kind == PUNCT and tj.text in ("::", ".", "->"):
                j += 1
            else:
                break
        if saw_id and j < n and _is(toks[j], PUNCT, "("):
            out.append((t.line, "discarded-status"))
    return out


def _nodiscard_guard_findings(ctx):
    cls = NODISCARD_GUARDS.get(ctx.relpath)
    if cls is None:
        return []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if _is(t, ID, "class") and \
                _is(_next(toks, i, 1), PUNCT, "[") and \
                _is(_next(toks, i, 2), PUNCT, "[") and \
                _is(_next(toks, i, 3), ID, "nodiscard") and \
                _is(_next(toks, i, 4), PUNCT, "]") and \
                _is(_next(toks, i, 5), PUNCT, "]") and \
                _is(_next(toks, i, 6), ID, cls):
            return []
    return [(1, "nodiscard-guard")]


def rule_alloc_hot_path(ctx):
    out = []
    toks = ctx.tokens
    ranges = ctx.hot_ranges()
    if not ranges:
        return out
    hot = bytearray(len(toks))
    for lo, hi in ranges:
        for k in range(lo, min(hi, len(toks))):
            hot[k] = 1

    # Parameter-list spans (to distinguish by-value params from locals) and
    # return-type spans (not flagged at all).
    in_params = bytearray(len(toks))
    in_rettype = bytearray(len(toks))
    for fn in ctx.model.functions:
        for k in range(fn.paren_open, fn.paren_close + 1):
            in_params[k] = 1
        for k in range(fn.head_start, fn.paren_open):
            in_rettype[k] = 1

    n = len(toks)
    for i, t in enumerate(toks):
        if not hot[i]:
            continue
        if t.kind == ID:
            prev = toks[i - 1] if i else None
            nxt = _next(toks, i)
            if t.text == "new":
                if not _is(prev, ID, "operator") and not _is(nxt, PUNCT, "("):
                    out.append((t.line, "alloc-hot-path"))
            elif t.text in ("make_unique", "make_shared"):
                if _is(prev, PUNCT, "::") and \
                        _is(toks[i - 2] if i > 1 else None, ID, "std"):
                    out.append((t.line, "alloc-hot-path"))
            elif t.text in ("malloc", "calloc") and _is(nxt, PUNCT, "("):
                if not (prev is not None and prev.kind == PUNCT and
                        prev.text in (".", "->", "::")):
                    out.append((t.line, "alloc-hot-path"))
            elif t.text in ("resize", "reserve") and _is(nxt, PUNCT, "(") \
                    and prev is not None and prev.kind == PUNCT and \
                    prev.text in (".", "->"):
                out.append((t.line, "alloc-hot-path"))
            elif t.text == "std" and _is(nxt, PUNCT, "::"):
                decl = _container_decl(toks, i)
                if decl is None or in_rettype[i]:
                    continue
                name_tok, by_ref_or_ptr, container = decl
                if by_ref_or_ptr:
                    continue  # scratch-bound reference / pointer binding
                if in_params[i]:
                    if container in _BYVAL_CONTAINERS:
                        out.append((t.line, "alloc-hot-path"))
                elif container in _FRESH_CONTAINERS:
                    out.append((t.line, "alloc-hot-path"))
    return out


def _container_decl(toks, i):
    """If toks[i:] begins a container-type declarator
    `std::<container><...args...> [&|*]* name [,;={(]` returns
    (name_token, is_ref_or_ptr, container_name); else None."""
    name = _next(toks, i, 2)
    if name is None or name.kind != ID:
        return None
    container = name.text
    if container not in (_FRESH_CONTAINERS | _BYVAL_CONTAINERS):
        return None
    j = i + 3
    if container == "string":
        close = i + 2  # no template args
    else:
        if not _is(toks[j] if j < len(toks) else None, PUNCT, "<"):
            return None
        close = _match_angle(toks, j)
        if close is None:
            return None
    # Declarator: optional &, &&, * tokens then an identifier.
    j = close + 1
    by_ref_or_ptr = False
    while j < len(toks) and toks[j].kind == PUNCT and \
            toks[j].text in ("&", "&&", "*"):
        by_ref_or_ptr = True
        j += 1
    if j >= len(toks) or toks[j].kind != ID:
        return None
    name_tok = toks[j]
    after = _next(toks, j)
    if after is None or after.kind != PUNCT or \
            after.text not in ("(", "{", ";", "=", ",", ")", "["):
        return None
    return name_tok, by_ref_or_ptr, container


# -- mutable-global ---------------------------------------------------------

_SKIP_FIRST = {"using", "typedef", "friend", "static_assert", "template",
               "extern", "namespace", "class", "struct", "union", "enum",
               "public", "private", "protected", "asm", "goto", "return"}
_CONSTISH = {"constexpr", "constinit"}


def _strip_attributes(head):
    """Removes [[...]] attribute groups from a token list."""
    out = []
    i = 0
    n = len(head)
    while i < n:
        if _is(head[i], PUNCT, "[") and i + 1 < n and \
                _is(head[i + 1], PUNCT, "["):
            depth = 0
            while i < n and head[i].kind == PUNCT and head[i].text == "[":
                depth += 1
                i += 1
            while i < n and depth > 0:
                if head[i].kind == PUNCT and head[i].text == "]":
                    depth -= 1
                i += 1
            continue
        out.append(head[i])
        i += 1
    return out


def rule_mutable_global(ctx):
    out = []
    toks = ctx.tokens
    stmts = [(lo, hi) for lo, hi, _ in ctx.model.namespace_statements] + \
        list(ctx.model.namespace_brace_inits)
    for lo, hi in stmts:
        head = _strip_attributes(toks[lo:hi])
        if len(head) < 2:
            continue
        if head[0].kind == ID and head[0].text in _SKIP_FIRST:
            continue
        texts = [t.text for t in head]
        if any(t in _CONSTISH for t in texts):
            continue
        # Cut at a top-level '=' (initializer) before looking for parens.
        depth = 0
        cut = len(head)
        for k, t in enumerate(head):
            if t.kind != PUNCT:
                continue
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif t.text == "=" and depth == 0:
                cut = k
                break
        decl = head[:cut]
        if any(t.kind == PUNCT and t.text == "(" for t in decl):
            continue  # function declaration / macro invocation
        if not decl or decl[-1].kind not in (ID,) and \
                not _is(decl[-1], PUNCT, "]"):
            continue
        star_positions = [k for k, t in enumerate(decl)
                          if t.kind == PUNCT and t.text == "*"]
        if star_positions:
            tail = decl[star_positions[-1] + 1:]
            if any(_is(t, ID, "const") for t in tail):
                continue  # T* const — the pointer itself is immutable
        elif any(_is(t, ID, "const") for t in decl):
            continue
        out.append((decl[0].line, "mutable-global"))
    return out


# -- nodiscard-status-fn ----------------------------------------------------

def _returns_status_or_result(head):
    """head = declaration tokens before the parameter '('. Returns True if
    the declared entity is an unqualified (free) function returning Status
    or Result<...>."""
    head = _strip_attributes(head)
    # Drop leading specifiers.
    i = 0
    while i < len(head) and head[i].kind == ID and head[i].text in (
            "static", "inline", "constexpr", "extern", "virtual", "friend"):
        i += 1
    if i >= len(head) or head[i].kind != ID:
        return False
    rt = head[i]
    if rt.text == "Status":
        name_start = i + 1
    elif rt.text == "Result" and _is(head[i + 1] if i + 1 < len(head)
                                     else None, PUNCT, "<"):
        # Skip the template argument list (may itself contain '::').
        depth = 0
        name_start = None
        for k in range(i + 1, len(head)):
            t = head[k]
            if t.kind != PUNCT:
                continue
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            if depth <= 0:
                name_start = k + 1
                break
        if name_start is None:
            return False
    else:
        return False
    # The declarator must be exactly one identifier: the function name.
    # Anything else — `Status* f`, `Class::Fn` (member definition),
    # `operator==` — is out of this rule's scope.
    rest = head[name_start:]
    return len(rest) == 1 and rest[0].kind == ID


def _has_nodiscard(head):
    return any(t.kind == ID and t.text == "nodiscard" for t in head)


def rule_nodiscard_status_fn(ctx):
    out = []
    toks = ctx.tokens
    is_header = ctx.relpath.endswith(".h")
    seen_lines = set()

    def internal_linkage(head, scopes):
        if any(k == cpptok.NAMESPACE and n == "" for k, n in scopes):
            return True
        return any(t.kind == ID and t.text == "static" for t in head)

    # Declarations at namespace scope (`...;`).
    for lo, hi, scope_pairs in ctx.model.namespace_statements:
        head = toks[lo:hi]
        if not head:
            continue
        if head[0].kind == ID and head[0].text in (
                "using", "typedef", "template", "friend", "class", "struct",
                "enum", "union"):
            continue
        # Find the parameter '(' : first top-level '('.
        paren = None
        depth = 0
        for k, t in enumerate(head):
            if t.kind != PUNCT:
                continue
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif t.text == "(" and depth <= 0:
                paren = k
                break
        if paren is None:
            continue
        sig = head[:paren]
        if not _returns_status_or_result(sig):
            continue
        if not is_header and not internal_linkage(sig, scope_pairs):
            continue
        if not _has_nodiscard(toks[lo:lo + paren]):
            if head[0].line not in seen_lines:
                seen_lines.add(head[0].line)
                out.append((head[0].line, "nodiscard-status-fn"))

    # Definitions (function records with a body) at namespace scope.
    for fn in ctx.model.functions:
        if any(k not in (cpptok.NAMESPACE, cpptok.EXTERN)
               for k, _ in fn.scope_path):
            continue
        if "::" in fn.qualified:
            continue
        head = fn.head_tokens(ctx.tokens)
        if not _returns_status_or_result(head):
            continue
        if not is_header and not internal_linkage(head, fn.scope_path):
            continue
        if not _has_nodiscard(head):
            if fn.sig_line not in seen_lines:
                seen_lines.add(fn.sig_line)
                out.append((fn.sig_line, "nodiscard-status-fn"))
    return out


# -- options-validate -------------------------------------------------------

def build_options_registry(contexts):
    """Set of type names ending in 'Options' that declare Status
    Validate(), discovered across the given FileContexts."""
    registry = set()
    for ctx in contexts:
        toks = ctx.tokens
        for open_idx, scope in ctx.model.scope_of_open.items():
            if scope.kind != cpptok.CLASS or \
                    not scope.name.endswith("Options"):
                continue
            close = scope.close_index or len(toks)
            for k in range(open_idx, close - 2):
                if _is(toks[k], ID, "Status") and \
                        _is(toks[k + 1], ID, "Validate") and \
                        _is(toks[k + 2], PUNCT, "("):
                    registry.add(scope.name)
                    break
    return registry


def _is_entry_point(fn):
    name = fn.name
    if name in _ENTRY_NAMES or name.startswith(_ENTRY_PREFIXES):
        return True
    # Constructor: inline (enclosing class name matches) or out-of-line
    # (qualifier's last component matches the name).
    for kind, sname in reversed(fn.scope_path):
        if kind == cpptok.CLASS:
            return sname == name
    parts = fn.qualified.split("::")
    return len(parts) >= 2 and parts[-1] == parts[-2]


def rule_options_validate(ctx, registry):
    if not ctx.relpath.endswith(".cc") or not _in_src(ctx.relpath):
        return []
    out = []
    toks = ctx.tokens
    for fn in ctx.model.functions:
        if fn.body_close is None or not _is_entry_point(fn):
            continue
        has_opts = any(
            any(t.kind == ID and t.text in registry for t in p.type_tokens)
            for p in fn.params)
        if not has_opts:
            continue
        body = toks[fn.body_open:fn.body_close + 1]
        calls_validate = any(
            _is(body[k], ID, "Validate") and
            k + 1 < len(body) and _is(body[k + 1], PUNCT, "(")
            for k in range(len(body)))
        if not calls_validate:
            out.append((fn.sig_line, "options-validate"))
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_context(ctx, registry):
    """All findings for one analyzed file, suppression applied."""
    raw = []
    path = ctx.relpath
    if _wall_clock_scope(path):
        raw += rule_wall_clock(ctx)
    if _order_sensitive(path):
        raw += rule_unordered_container(ctx)
        raw += rule_pointer_key_container(ctx)
    if _float_eq_scope(path):
        raw += rule_float_equality(ctx)
    if _in_src(path) or path.startswith("tests/"):
        raw += rule_discarded_status(ctx)
    if _in_src(path) or path.startswith("tests/"):
        raw += rule_alloc_hot_path(ctx)
    if _mutable_global_scope(path):
        raw += rule_mutable_global(ctx)
    if _in_src(path):
        raw += rule_nodiscard_status_fn(ctx)
        raw += rule_options_validate(ctx, registry)
    raw += _nodiscard_guard_findings(ctx)

    findings = []
    for line, rule in sorted(set(raw)):
        if ctx.allowed(rule, line):
            continue
        findings.append(Finding(path, line, rule))
    return findings


def load_context(root, relpath):
    try:
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return None, Finding(relpath, 0, "io", f"unreadable: {e}")
    return FileContext(relpath, text), None


def iter_source_files(root):
    wanted_dirs = ("src", "tests")
    exts = (".cc", ".h")
    for top in wanted_dirs:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    yield os.path.relpath(os.path.join(dirpath, fn), root)


def _registry_paths(root, relpaths):
    """The options registry is always built from every src/ header plus
    the linted set, so --diff / path-subset runs see the same type
    universe as a full run."""
    paths = set(relpaths)
    for rel in iter_source_files(root):
        if rel.startswith("src/") and rel.endswith(".h"):
            paths.add(rel)
    return sorted(paths)


def lint_tree(root, relpaths=None):
    """Lints `relpaths` (default: every src/tests source file) under
    `root` and returns the Finding list. The options registry is always
    built from the full header set so subset runs see the same type
    universe as a full run."""
    if relpaths is None:
        relpaths = list(iter_source_files(root))
    contexts = {}
    findings = []
    for rel in _registry_paths(root, relpaths):
        ctx, err = load_context(root, rel)
        if err is not None:
            if rel in relpaths:
                findings.append(err)
            continue
        contexts[rel] = ctx
    registry = build_options_registry(contexts.values())
    for rel in relpaths:
        ctx = contexts.get(rel)
        if ctx is not None:
            findings.extend(lint_context(ctx, registry))
    return findings


def diff_files(root, base):
    """Root-relative src/tests .cc/.h files changed vs the merge-base with
    `base`, plus untracked ones. Returns None if git is unavailable."""
    def git(*args):
        return subprocess.run(["git", "-C", root] + list(args),
                              capture_output=True, text=True, check=False)

    mb = git("merge-base", "HEAD", base)
    anchor = mb.stdout.strip() if mb.returncode == 0 else "HEAD"
    changed = git("diff", "--name-only", anchor, "--", "src", "tests")
    if changed.returncode != 0:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard",
                    "--", "src", "tests")
    names = set(changed.stdout.split()) | set(untracked.stdout.split())
    return sorted(n for n in names
                  if n.endswith((".cc", ".h")) and
                  os.path.exists(os.path.join(root, n)))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="dbscale token-stream invariant linter")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("paths", nargs="*",
                        help="root-relative files to lint (default: all of "
                             "src/ and tests/)")
    parser.add_argument("--diff", action="store_true",
                        help="lint only files changed vs the merge-base "
                             "with --diff-base (plus untracked files)")
    parser.add_argument("--diff-base", default="main",
                        help="base ref for --diff (default: main)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the all-clear summary line")
    parser.add_argument("--timing", action="store_true",
                        help="print wall time to stderr")
    args = parser.parse_args(argv)

    started = time.monotonic()
    root = args.root or os.path.normpath(os.path.join(HERE, "..", ".."))
    if not os.path.isdir(root):
        print(f"dbscale_lint: no such root: {root}", file=sys.stderr)
        return 2

    if args.diff:
        relpaths = diff_files(root, args.diff_base)
        if relpaths is None:
            print("dbscale_lint: --diff requires git; falling back to "
                  "full run", file=sys.stderr)
            relpaths = list(iter_source_files(root))
        elif not relpaths:
            if not args.quiet:
                print("dbscale_lint: OK (no changed files)")
            return 0
    else:
        relpaths = [p.replace(os.sep, "/") for p in args.paths] \
            or list(iter_source_files(root))

    findings = lint_tree(root, relpaths)

    for f in findings:
        print(f)
    elapsed = time.monotonic() - started
    if args.timing:
        print(f"dbscale_lint: {elapsed:.2f}s wall", file=sys.stderr)
    if findings:
        print(f"dbscale_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"dbscale_lint: OK ({len(relpaths)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
