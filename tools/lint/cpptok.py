#!/usr/bin/env python3
"""C++ token stream and lightweight structural model for dbscale_lint.

This is not a compiler front end; it is the smallest lexer + scope tracker
that lets the linter reason about *constructs* instead of *lines*:

  Lexer        comments (line/block), string literals (incl. raw strings
               with arbitrary delimiters and encoding prefixes), char
               literals, pp-numbers (hex, exponents, digit separators),
               maximal-munch punctuation, and preprocessor directives
               (with backslash continuations) — each reduced to a flat
               token list with 1-based line numbers. Comments and
               directives are kept out of the code stream but retained
               as trivia so suppression / `dbscale-hot` annotations and
               directive-aware rules still see them.

  Structure    a single pass over the code tokens classifies every `{`:
               namespace body, class/struct/union/enum body, function
               body (including constructors with member-initializer
               lists and braced member init), lambda body, or plain
               block / braced initializer. Function records carry the
               signature span, parameter-list span, body span, the
               (qualified) name, and return-type head tokens.

  Params       per-function parameter declarations are split on
               top-level commas and lightly parsed (type tokens,
               by-reference / by-pointer / by-value, name), which is what
               lets alloc rules tell a scratch-bound reference binding
               from a fresh container.

Precision notes (deliberate): template-heavy metaprogramming, K&R C and
macro-generated braces are out of scope — the repo's style is enforced by
clang-format and the fixture corpus pins every behaviour the linter
relies on.
"""

from __future__ import annotations

import re

# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------

ID = "id"
NUM = "num"
STR = "str"
CHAR = "char"
PUNCT = "punct"

# Trivia kinds (not part of the code stream).
COMMENT = "comment"
PP = "pp"


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind!r}, {self.text!r}, L{self.line})"


# Longest-first punctuation for maximal munch.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", ".*",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "+", "-",
    "*", "/", "%", "&", "|", "^", "!", "~", "=", "?", ":", "#",
]

_MASTER = re.compile(
    r"""
    (?P<rawstr>(?:u8|u|U|L)?R"(?P<rsdelim>[^ ()\\\t\v\f\n]{0,16})\(
        (?:.|\n)*?\)(?P=rsdelim)")
  | (?P<str>(?:u8|u|U|L)?"(?:\\.|[^"\\\n])*")
  | (?P<char>(?:u8|u|U|L)?'(?:\\.|[^'\\\n])*')
  | (?P<comment_block>/\*(?:.|\n)*?\*/)
  | (?P<comment_line>//[^\n]*)
  | (?P<num>\.?\d(?:[eEpP][+-]|'?[\w.])*)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<punct>%s)
  | (?P<nl>\n)
  | (?P<ws>[^\S\n]+)
  | (?P<other>.)
    """ % "|".join(re.escape(p) for p in _PUNCTS),
    re.VERBOSE,
)

_KIND_BY_GROUP = {
    "rawstr": STR,
    "str": STR,
    "char": CHAR,
    "num": NUM,
    "id": ID,
    "punct": PUNCT,
}


class Trivia:
    """A comment or preprocessor directive with its line span."""

    __slots__ = ("kind", "text", "line", "end_line")

    def __init__(self, kind, text, line, end_line):
        self.kind = kind
        self.text = text
        self.line = line
        self.end_line = end_line

    def __repr__(self):
        return f"Trivia({self.kind!r}, L{self.line}-{self.end_line})"


class LexResult:
    def __init__(self, tokens, trivia):
        self.tokens = tokens          # list[Token] — code stream only
        self.trivia = trivia          # list[Trivia] — comments + directives

    def comments(self):
        return [t for t in self.trivia if t.kind == COMMENT]

    def directives(self):
        return [t for t in self.trivia if t.kind == PP]


def _consume_directive(text, pos, line):
    """Consumes a preprocessor directive starting at `pos` (the '#').

    Honours backslash-newline continuations, strips line comments, skips
    block comments (which may span lines) and string/char/raw-string
    literals so their contents cannot terminate or fake-terminate the
    directive. Returns (directive_text, new_pos, new_line, comment_list).
    """
    n = len(text)
    start = pos
    start_line = line
    comments = []
    i = pos
    while i < n:
        c = text[i]
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            i += 2
            line += 1
            continue
        if c == "\n":
            break
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append(Trivia(COMMENT, text[i:j], line, line))
            i = j
            break
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            comments.append(
                Trivia(COMMENT, text[i:j], line, line + text.count("\n", i, j)))
            line += text.count("\n", i, j)
            i = j
            continue
        m = _MASTER.match(text, i)
        if m and m.lastgroup in ("rawstr", "str", "char"):
            line += text.count("\n", i, m.end())
            i = m.end()
            continue
        i += 1
    return text[start:i], i, line, comments


def lex(text):
    """Lexes C++ source into (code tokens, trivia). Never raises on bad
    input — unknown bytes become single-char PUNCT tokens."""
    tokens = []
    trivia = []
    line = 1
    pos = 0
    n = len(text)
    at_line_start = True
    while pos < n:
        if at_line_start:
            # Detect a preprocessor directive: optional horizontal
            # whitespace, then '#'.
            j = pos
            while j < n and text[j] in " \t":
                j += 1
            if j < n and text[j] == "#":
                directive, pos2, line2, cmts = _consume_directive(
                    text, j, line)
                trivia.append(Trivia(PP, directive, line,
                                     line + directive.count("\n")))
                trivia.extend(cmts)
                pos = pos2
                line = line2
                at_line_start = False
                continue
        m = _MASTER.match(text, pos)
        if m is None:  # pragma: no cover — master pattern matches any char
            pos += 1
            continue
        group = m.lastgroup
        tok_text = m.group()
        if group == "nl":
            line += 1
            at_line_start = True
        elif group == "ws":
            pass
        elif group in ("comment_block", "comment_line"):
            end_line = line + tok_text.count("\n")
            trivia.append(Trivia(COMMENT, tok_text, line, end_line))
            line = end_line
        elif group in ("rawstr", "str", "char"):
            tokens.append(Token(_KIND_BY_GROUP[group], tok_text, line))
            line += tok_text.count("\n")
            at_line_start = False
        elif group == "other":
            tokens.append(Token(PUNCT, tok_text, line))
            at_line_start = False
        else:
            tokens.append(Token(_KIND_BY_GROUP[group], tok_text, line))
            at_line_start = False
        pos = m.end()
    return LexResult(tokens, trivia)


def is_float_literal(text):
    """True for floating-point literals: 1.5, .5, 1., 1e3, 1.5e-3f, 0x1p3.
    Hex integers, plain integers, and integer-suffixed literals are not
    floats; digit separators are ignored."""
    t = text.replace("'", "").lower()
    if t.startswith("0x"):
        return "p" in t  # hex float needs a binary exponent
    if "." in t:
        return True
    # 1e5 / 1e-5 — decimal exponent makes it floating.
    return bool(re.search(r"\de", t)) and not t.startswith("0x")


# ---------------------------------------------------------------------------
# Structure: scopes and functions
# ---------------------------------------------------------------------------

# Scope kinds.
NAMESPACE = "namespace"
CLASS = "class"
FUNCTION = "function"
LAMBDA = "lambda"
BLOCK = "block"
INIT = "init"     # braced initializer / unrecognised expression brace
EXTERN = "extern"  # extern "C" { ... }

_CLASS_KEYS = {"class", "struct", "union", "enum"}
_CTRL_KEYS = {"if", "else", "for", "while", "do", "switch", "try", "catch"}


class Scope:
    __slots__ = ("kind", "name", "open_index", "close_index")

    def __init__(self, kind, name, open_index):
        self.kind = kind
        self.name = name
        self.open_index = open_index
        self.close_index = None

    def __repr__(self):
        return f"Scope({self.kind}, {self.name!r})"


class Param:
    """One parsed function parameter."""

    __slots__ = ("type_tokens", "name", "by_ref", "by_ptr", "line")

    def __init__(self, type_tokens, name, by_ref, by_ptr, line):
        self.type_tokens = type_tokens
        self.name = name
        self.by_ref = by_ref
        self.by_ptr = by_ptr
        self.line = line

    def type_text(self):
        return " ".join(t.text for t in self.type_tokens)


class Function:
    __slots__ = ("name", "qualified", "head_start", "paren_open",
                 "paren_close", "body_open", "body_close", "scope_path",
                 "sig_line", "params")

    def __init__(self, name, qualified, head_start, paren_open, paren_close,
                 body_open, scope_path, sig_line):
        self.name = name                # unqualified name ('Run', 'operator==')
        self.qualified = qualified      # e.g. 'FleetScaleRunner::Run'
        self.head_start = head_start    # token index of declaration head start
        self.paren_open = paren_open    # '(' of the parameter list
        self.paren_close = paren_close  # matching ')'
        self.body_open = body_open      # '{' token index
        self.body_close = None          # '}' token index (set on close)
        self.scope_path = scope_path    # tuple of enclosing Scope kinds
        self.sig_line = sig_line        # line of the head's first token
        self.params = []                # list[Param]

    def head_tokens(self, tokens):
        return tokens[self.head_start:self.paren_open]

    def body_range(self):
        return (self.body_open, self.body_close)


def _match_forward(tokens, i, open_t, close_t):
    """Index of the token matching tokens[i] (an open_t), or None."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if tokens[i].kind == PUNCT:
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return None


def _split_params(tokens, lo, hi):
    """Splits tokens in (lo, hi) — exclusive of the parens — on top-level
    commas, returning a list of Param."""
    params = []
    depth = 0
    start = lo
    segments = []
    i = lo
    while i < hi:
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text in ("(", "[", "{", "<"):
                # '<' is ambiguous (less-than vs template); inside a
                # parameter list it is almost always a template bracket.
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == ">>":
                depth -= 2
            elif t.text == "," and depth == 0:
                segments.append((start, i))
                start = i + 1
        i += 1
    if start < hi:
        segments.append((start, hi))
    for lo_s, hi_s in segments:
        seg = tokens[lo_s:hi_s]
        if not seg or (len(seg) == 1 and seg[0].text == "void"):
            continue
        # Strip a default argument.
        depth = 0
        cut = len(seg)
        for k, t in enumerate(seg):
            if t.kind == PUNCT:
                if t.text in ("(", "[", "{", "<"):
                    depth += 1
                elif t.text in (")", "]", "}", ">"):
                    depth -= 1
                elif t.text == ">>":
                    depth -= 2
                elif t.text == "=" and depth == 0:
                    cut = k
                    break
        seg = seg[:cut]
        if not seg:
            continue
        by_ref = any(t.kind == PUNCT and t.text in ("&", "&&") for t in seg)
        by_ptr = any(t.kind == PUNCT and t.text == "*" for t in seg)
        name = None
        if seg[-1].kind == ID and seg[-1].text not in (
                "const", "int", "double", "float", "bool", "char", "auto",
                "unsigned", "long", "short", "size_t", "uint64_t", "void"):
            # Heuristic: a trailing identifier that is not a bare type
            # keyword is the parameter name.
            name = seg[-1].text
            type_toks = seg[:-1]
        else:
            type_toks = seg
        params.append(Param(type_toks, name, by_ref, by_ptr, seg[0].line))
    return params


def _scan_ctor_init(tokens, i):
    """tokens[i] is the ':' that begins a constructor member-initializer
    list. Walks `member(expr)` / `member{expr}` elements separated by
    commas and returns the index of the '{' that opens the function body,
    or None if the shape does not parse."""
    n = len(tokens)
    i += 1
    while i < n:
        # Element: qualified-ish name, then ( ... ) or { ... }.
        while i < n and (tokens[i].kind == ID or
                         (tokens[i].kind == PUNCT and
                          tokens[i].text in ("::", "<", ">", ",", "...")) or
                         tokens[i].kind == NUM):
            # Template args in a base-class initializer: Base<T>(x)
            if tokens[i].kind == PUNCT and tokens[i].text == "," :
                pass
            if tokens[i].kind == PUNCT and tokens[i].text in ("(", "{"):
                break
            i += 1
        if i >= n or tokens[i].kind != PUNCT:
            return None
        if tokens[i].text == "(":
            close = _match_forward(tokens, i, "(", ")")
        elif tokens[i].text == "{":
            close = _match_forward(tokens, i, "{", "}")
        else:
            return None
        if close is None:
            return None
        i = close + 1
        if i < n and tokens[i].kind == PUNCT and tokens[i].text == ",":
            i += 1
            continue
        if i < n and tokens[i].kind == PUNCT and tokens[i].text == "{":
            return i
        return None
    return None


class StructureModel:
    """Resolved structure for one file: every code token annotated with its
    scope path, plus recovered Function records."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.functions = []           # list[Function], in source order
        self.scope_of_open = {}       # token index of '{' -> Scope
        # (start, end_exclusive, scopes) head ranges of namespace-scope
        # statements ending in ';', with the enclosing (kind, name) pairs.
        self.namespace_statements = []
        self.namespace_brace_inits = []  # head ranges of `T x{...};` decls
        self._analyze()

    # -- analysis ----------------------------------------------------------

    def _classify_open(self, head, stack, i):
        """Classifies the '{' at token index i given its statement head
        tokens and the current scope stack. Returns (kind, name,
        fn_record_or_None)."""
        tokens = self.tokens
        in_function = any(s.kind in (FUNCTION, LAMBDA) for s in stack)

        head_texts = [t.text for t in head]

        # namespace [name[::name...]] {   /  extern "C" {
        if head_texts and head_texts[0] in ("namespace", "inline") and \
                "namespace" in head_texts[:2]:
            start = head_texts.index("namespace") + 1
            name = "".join(t.text for t in head[start:]
                           if t.kind == ID or (t.kind == PUNCT and
                                               t.text == "::"))
            return NAMESPACE, name, None
        if (len(head_texts) >= 2 and head_texts[0] == "extern"
                and head[1].kind == STR):
            return EXTERN, head_texts[1], None

        # Lambda introducer directly before the parameter list:
        # `...](args) {` — recognized at any scope (a namespace-scope
        # lambda initializes a function object; it is not a function
        # definition). `operator[]` is excluded: its '[' follows the
        # `operator` keyword.
        if head and head[-1].kind == PUNCT and head[-1].text == ")":
            op = self._matching_open(i, head)
            if op is not None and op > 0:
                prev = tokens[op - 1]
                if prev.kind == PUNCT and prev.text == "]":
                    depth = 0
                    for k in range(op - 1, -1, -1):
                        tk = tokens[k]
                        if tk.kind != PUNCT:
                            continue
                        if tk.text == "]":
                            depth += 1
                        elif tk.text == "[":
                            depth -= 1
                            if depth == 0:
                                before = tokens[k - 1] if k > 0 else None
                                is_op = (before is not None and
                                         before.kind == ID and
                                         before.text == "operator")
                                if not is_op:
                                    return LAMBDA, "<lambda>", None
                                break

        if in_function:
            # Inside a function almost everything is a block or an
            # initializer; lambdas are recovered for completeness.
            if head and head[-1].kind == PUNCT and head[-1].text == ")":
                op = self._matching_open(i, head)
                if op is not None and op > 0:
                    prev = tokens[op - 1]
                    if prev.kind == PUNCT and prev.text == "]":
                        return LAMBDA, "<lambda>", None
            if head and head[-1].kind == PUNCT and head[-1].text == "]":
                return LAMBDA, "<lambda>", None
            if head_texts and head_texts[0] in _CTRL_KEYS:
                return BLOCK, head_texts[0], None
            if not head:
                return BLOCK, "", None
            return INIT, "", None

        # At namespace/class scope.
        # A class-key in the head with no parameter list ⇒ type definition.
        has_paren = ")" in head_texts
        if any(t in _CLASS_KEYS for t in head_texts) and not has_paren:
            # name = last identifier before '{' or before ':' (base clause)
            name = ""
            for k, t in enumerate(head):
                if t.kind == ID and t.text in _CLASS_KEYS:
                    for t2 in head[k + 1:]:
                        if t2.kind == ID and t2.text not in (
                                "final", "public", "private", "protected",
                                "alignas"):
                            name = t2.text
                        elif t2.kind == PUNCT and t2.text == ":":
                            break
                    break
            return CLASS, name, None

        # Function definition: head must contain a parameter list.
        fn = self._try_function(head, stack, i)
        if fn is not None:
            return FUNCTION, fn.name, fn

        # enum class X : int { ... } already matched above; whatever is
        # left (rare brace-init of a namespace-scope variable) is INIT.
        return INIT, "", None

    def _matching_open(self, brace_index, head):
        """For a head ending in ')', the token index of its '('."""
        depth = 0
        for k in range(brace_index - 1, -1, -1):
            t = self.tokens[k]
            if t.kind != PUNCT:
                continue
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                depth -= 1
                if depth == 0:
                    return k
        return None

    def _try_function(self, head, stack, brace_index, head_start_abs=None):
        """Attempts to parse `head { ` as a function definition.

        `head_start_abs` is the absolute index of head[0]; it defaults to
        `brace_index - len(head)` (head directly abuts the brace) but must
        be passed explicitly when a ctor member-initializer list sits
        between the head and the body brace.
        """
        tokens = self.tokens
        if not head:
            return None
        if head_start_abs is None:
            head_start_abs = brace_index - len(head)
        # Strip trailing qualifiers after the parameter list.
        k = len(head) - 1
        end_ok = {"const", "noexcept", "override", "final", "try", "&", "&&"}
        # Also tolerate a trailing return type: ') -> T'.
        while k >= 0:
            t = head[k]
            if t.kind == ID and t.text in end_ok:
                k -= 1
                continue
            if t.kind == PUNCT and t.text in ("&", "&&"):
                k -= 1
                continue
            break
        # Trailing return type: scan back to '->' then to ')'.
        if k >= 0 and not (head[k].kind == PUNCT and head[k].text == ")"):
            for j in range(k, -1, -1):
                if head[j].kind == PUNCT and head[j].text == "->":
                    k = j - 1
                    break
            else:
                # noexcept(expr) ends in ')' and is handled below by
                # paren matching; a head not ending near ')' is not a
                # function definition.
                pass
        while k >= 0 and not (head[k].kind == PUNCT and head[k].text == ")"):
            k -= 1
        if k < 0:
            return None
        # Match ')' back to its '(' — possibly twice for noexcept(...).
        close_rel = k
        open_rel = self._rmatch(head, close_rel)
        if open_rel is None:
            return None
        if open_rel > 0 and head[open_rel - 1].kind == ID and \
                head[open_rel - 1].text == "noexcept":
            k = open_rel - 2
            while k >= 0 and not (head[k].kind == PUNCT and
                                  head[k].text == ")"):
                k -= 1
            if k < 0:
                return None
            close_rel = k
            open_rel = self._rmatch(head, close_rel)
            if open_rel is None:
                return None
        # The token before '(' is the function name (identifier or
        # operator-id); qualified names walk back over '::'.
        p = open_rel - 1
        if p < 0:
            return None
        name_parts = []
        if head[p].kind == PUNCT and head[p].text in (")", ">"):
            return None
        # operator foo / operator== / operator() etc.
        if head[p].kind == ID and head[p].text != "operator":
            name_parts.append(head[p].text)
            p -= 1
        elif head[p].kind == PUNCT or (head[p].kind == ID):
            # Walk back over operator symbols until 'operator'.
            q = p
            sym = []
            while q >= 0 and not (head[q].kind == ID and
                                  head[q].text == "operator"):
                sym.append(head[q].text)
                q -= 1
                if p - q > 3:
                    break
            if q >= 0 and head[q].kind == ID and head[q].text == "operator":
                name_parts.append("operator" + "".join(reversed(sym)))
                p = q - 1
            else:
                return None
        qual_parts = list(name_parts)
        while p >= 1 and head[p].kind == PUNCT and head[p].text == "::":
            # skip template args in qualifier? (rare) — accept plain ids.
            if head[p - 1].kind == ID:
                qual_parts.insert(0, head[p - 1].text)
                p -= 2
            elif head[p - 1].kind == PUNCT and head[p - 1].text == ">":
                return None  # templated qualifier — out of scope
            else:
                break
        # '~Name' destructor
        if p >= 0 and head[p].kind == PUNCT and head[p].text == "~":
            name_parts[-1] = "~" + name_parts[-1]
            qual_parts[-1] = "~" + qual_parts[-1]
            p -= 1

        name = name_parts[-1] if name_parts else ""
        if not name:
            return None
        # Reject obvious non-definitions: control keywords, macro-style
        # ALL_CAPS invocations at namespace scope with no return type are
        # still function-shaped; accept them (they define test bodies via
        # macros in fixtures and are harmless).
        if name in _CTRL_KEYS or name in ("switch", "return", "sizeof",
                                          "alignof", "decltype", "if",
                                          "while", "for"):
            return None

        fn = Function(
            name=name,
            qualified="::".join(qual_parts),
            head_start=head_start_abs,
            paren_open=head_start_abs + open_rel,
            paren_close=head_start_abs + close_rel,
            body_open=brace_index,
            scope_path=tuple((s.kind, s.name) for s in stack),
            sig_line=head[0].line,
        )
        fn.params = _split_params(tokens, fn.paren_open + 1, fn.paren_close)
        return fn

    @staticmethod
    def _rmatch(head, close_rel):
        depth = 0
        for j in range(close_rel, -1, -1):
            t = head[j]
            if t.kind != PUNCT:
                continue
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                depth -= 1
                if depth == 0:
                    return j
        return None

    def _analyze(self):
        tokens = self.tokens
        n = len(tokens)
        stack = []
        head_start = 0
        i = 0
        paren_depth = 0
        open_fns = []  # (Function, depth) awaiting body_close
        while i < n:
            t = tokens[i]
            if t.kind != PUNCT:
                i += 1
                continue
            if t.text == "(":
                paren_depth += 1
            elif t.text == ")":
                paren_depth = max(0, paren_depth - 1)
            elif t.text == ";" and paren_depth == 0:
                if all(s.kind in (NAMESPACE, EXTERN) for s in stack):
                    self.namespace_statements.append(
                        (head_start, i,
                         tuple((s.kind, s.name) for s in stack)))
                head_start = i + 1
            elif t.text == ":" and paren_depth == 0:
                # Possible constructor member-initializer list: only when
                # the previous token closes a parameter list or a
                # qualifier like 'noexcept'.
                prev = tokens[i - 1] if i > 0 else None
                at_type_scope = not any(
                    s.kind in (FUNCTION, LAMBDA) for s in stack)
                if (at_type_scope and prev is not None and
                        ((prev.kind == PUNCT and prev.text == ")") or
                         (prev.kind == ID and prev.text in
                          ("noexcept", "const")))):
                    body = _scan_ctor_init(tokens, i)
                    if body is not None:
                        head = tokens[head_start:i]
                        # Parse the function from the pre-':' head.
                        fn = self._try_function(head, stack, body,
                                                head_start_abs=head_start)
                        if fn is not None:
                            scope = Scope(FUNCTION, fn.name, body)
                            self.scope_of_open[body] = scope
                            self.functions.append(fn)
                            open_fns.append((fn, len(stack)))
                            stack.append(scope)
                            head_start = body + 1
                            i = body + 1
                            continue
            elif t.text == "{" and paren_depth == 0:
                head = tokens[head_start:i]
                kind, name, fn = self._classify_open(head, stack, i)
                if kind == INIT and head and all(
                        s.kind in (NAMESPACE, EXTERN) for s in stack):
                    self.namespace_brace_inits.append((head_start, i))
                scope = Scope(kind, name, i)
                self.scope_of_open[i] = scope
                if fn is not None:
                    self.functions.append(fn)
                    open_fns.append((fn, len(stack)))
                stack.append(scope)
                head_start = i + 1
            elif t.text == "{":
                # Brace inside parens: lambda body or braced init in an
                # argument list — skip it wholesale so it cannot confuse
                # statement tracking.
                close = _match_forward(tokens, i, "{", "}")
                if close is not None:
                    i = close + 1
                    continue
            elif t.text == "}" and paren_depth == 0:
                if stack:
                    scope = stack.pop()
                    scope.close_index = i
                    if scope.kind == FUNCTION and open_fns and \
                            open_fns[-1][1] == len(stack):
                        open_fns[-1][0].body_close = i
                        open_fns.pop()
                head_start = i + 1
            i += 1
