// Fixture: rng.cc is exempt from wall-clock — seeding helpers live here.
#include <random>

namespace dbscale {

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

}  // namespace dbscale
