// Fixture: nodiscard guard satisfied.
namespace dbscale {
class [[nodiscard]] Status {
 public:
  [[nodiscard]] bool ok() const { return true; }
};
}  // namespace dbscale
