// Fixture: hot path using scratch buffers only; file-level suppression.
// dbscale-lint: allow-file(alloc-hot-path)
#include <vector>

namespace dbscale {

void Compute(std::vector<double>& scratch) {
  scratch.reserve(64);
  std::vector<double> fresh;
  fresh.push_back(0.0);
}

}  // namespace dbscale
