// Fixture: raw string literal containing comment markers, braces,
// quotes, and clock/rand names — inert to the token-stream engine, but a
// line-at-a-time stripper that cannot track raw strings false-positives
// on the body lines.
namespace dbscale {

constexpr const char* kUsage = R"(usage: dbscale_sim [options]
  --now [prints the system_clock wall time]   // {not a brace scope}
  "quotes" and std::rand( mentions stay inert in raw strings
)";

}  // namespace dbscale
