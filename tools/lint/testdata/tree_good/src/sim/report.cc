// Fixture: clean report path — ordered map, sim-time only.
#include <map>

namespace dbscale {

int CountTenants(const std::map<int, double>& by_tenant) {
  int n = 0;
  for (const auto& kv : by_tenant) n += kv.first > 0 ? 1 : 0;
  return n;
}

// Mentions of system_clock or std::rand inside comments must not fire.
/* Neither should new or resize inside a block comment. */
constexpr const char* kDoc = "system_clock in a string literal is also fine";

}  // namespace dbscale
