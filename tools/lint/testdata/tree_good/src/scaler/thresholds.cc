// Fixture: epsilon comparison instead of naked equality.
#include <cmath>

namespace dbscale {

bool AtGoal(double latency_ms) {
  return std::fabs(latency_ms - 250.0) < 1e-9;
}

bool Above(double util_pct) { return util_pct >= 70.0; }

}  // namespace dbscale
