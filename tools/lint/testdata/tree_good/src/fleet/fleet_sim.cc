// Fixture: suppressed finding via same-line and previous-line annotations.
#include <unordered_set>

namespace dbscale {

// Lookup-only set: never iterated, so ordering cannot leak into output.
std::unordered_set<int> lookup_only;  // dbscale-lint: allow(unordered-container)

// dbscale-lint: allow(unordered-container)
std::unordered_set<int> also_allowed;

}  // namespace dbscale
