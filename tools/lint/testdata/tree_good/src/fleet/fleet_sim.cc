// Fixture: suppressed finding via same-line and previous-line annotations.
#include <unordered_set>

namespace dbscale {

// Lookup-only set: never iterated, so ordering cannot leak into output.
const std::unordered_set<int> lookup_only{1};  // dbscale-lint: allow(unordered-container)

// dbscale-lint: allow(unordered-container)
const std::unordered_set<int> also_allowed{2};

}  // namespace dbscale
