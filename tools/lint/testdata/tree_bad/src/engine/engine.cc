// Fixture: (void)-cast discarding a [[nodiscard]] Status.
namespace dbscale {

struct Status { bool ok() { return true; } };
Status Flush();

void Shutdown() {
  (void)Flush();
  (void)obj.Apply(1);
}

}  // namespace dbscale
