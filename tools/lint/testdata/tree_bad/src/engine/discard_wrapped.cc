// Fixture: (void)-cast separated from its call expression by a trailing
// comment and a line break.
namespace dbscale {

struct Status { bool ok() { return true; } };
Status Flush();

void Teardown() {
  (void)  // best-effort flush on shutdown
      Flush();
}

}  // namespace dbscale
