// Fixture: naked float comparisons wrapped across a line break — the
// operator and the literal never share a line, so line regexes see
// neither half.
namespace dbscale {

bool AtGoalWrapped(double latency_ms) {
  return latency_ms ==
         250.0;
}

bool ReversedWrapped(double frac) {
  return 0.7
         == frac;
}

}  // namespace dbscale
