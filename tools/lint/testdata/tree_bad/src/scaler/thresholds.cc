// Fixture: naked floating-point equality in threshold logic.
namespace dbscale {

bool AtGoal(double latency_ms) { return latency_ms == 250.0; }

bool NotIdle(double util_pct) { return util_pct != 0.0; }

bool ReversedOperands(double frac) { return 0.7 == frac; }

}  // namespace dbscale
