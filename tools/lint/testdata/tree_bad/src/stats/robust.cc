// Fixture: hot-path allocations split across line breaks. A
// line-at-a-time regex sees neither the by-value parameter (the '(' is
// on the previous line) nor the fresh local (the '>' never closes on the
// line that opened the template argument list).
#include <utility>
#include <vector>

namespace dbscale {

void MedianScratch(
    std::vector<double>
        by_value) {
  std::vector<
      std::pair<int, double>>
      tmp;
  tmp.emplace_back(1, by_value.empty() ? 0.0 : by_value[0]);
}

}  // namespace dbscale
