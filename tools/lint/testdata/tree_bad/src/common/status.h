// Fixture: Status lost its [[nodiscard]] attribute.
namespace dbscale {
class Status {
 public:
  bool ok() const { return true; }
};
}  // namespace dbscale
