// Fixture: allocations and container growth in the hot signal path.
#include <memory>
#include <vector>

namespace dbscale {

void Compute(std::vector<double>& scratch) {
  std::vector<double> fresh_local;
  fresh_local.push_back(1.0);
  scratch.resize(128);
  scratch.reserve(256);
  auto owned = std::make_unique<std::vector<double>>();
  double* raw = new double[8];
  delete[] raw;
  (void)owned;
}

void CopiesParam(std::vector<double> by_value) { by_value.clear(); }

}  // namespace dbscale
