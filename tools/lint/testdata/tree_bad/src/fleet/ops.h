// Fixture: Status-returning free function declared in a header without
// [[nodiscard]].
namespace dbscale {

class Status;

Status SaveSweep(const char* path);

}  // namespace dbscale
