// Fixture: nondeterministic randomness + unordered set in a merge path.
#include <cstdlib>
#include <random>
#include <unordered_set>

namespace dbscale {

int PickTenant(int n) {
  std::random_device rd;
  return static_cast<int>(rd()) % n;
}

int LegacyPick(int n) { return std::rand() % n; }

std::unordered_set<int> active_tenants;

}  // namespace dbscale
