// Fixture: seeded violations for the semantic rules — pointer-keyed
// ordered container, mutable namespace-scope state, internal-linkage
// Status function without [[nodiscard]], and an entry point that never
// validates its options struct.
#include <map>

namespace dbscale {

struct Tenant { int id = 0; };
class Status {
 public:
  bool ok() const { return true; }
};

class SweepOptions {
 public:
  int num_tenants = 1;
  Status Validate() const;
};

std::map<const Tenant*, double> debt_by_tenant;

double g_last_p95_ms = 0.0;

namespace {
Status CheckSweep(const SweepOptions& options) {
  return options.num_tenants > 0 ? Status() : Status();
}
}  // namespace

Status Run(const SweepOptions& options) {
  return CheckSweep(options);
}

}  // namespace dbscale
