// Fixture: function-granularity hot-path enforcement. The file carries
// no file-level hot default, so only the `// dbscale-hot` annotated
// function is checked; the cold function below allocates freely.
#include <vector>

namespace dbscale {

// dbscale-hot
void RecordInterval(std::vector<double>& scratch) {
  std::vector<double> fresh;
  fresh.push_back(1.0);
  scratch.resize(64);
}

void ColdSetup() {
  std::vector<double> fine_here;
  fine_here.push_back(2.0);
}

}  // namespace dbscale
