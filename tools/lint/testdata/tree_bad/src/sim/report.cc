// Fixture: wall-clock + unordered-container violations in a report path.
#include <chrono>
#include <unordered_map>

namespace dbscale {

long StampReport() {
  auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

int CountTenants(const std::unordered_map<int, double>& by_tenant) {
  int n = 0;
  for (const auto& kv : by_tenant) n += kv.first > 0 ? 1 : 0;
  return n;
}

}  // namespace dbscale
