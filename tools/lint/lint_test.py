#!/usr/bin/env python3
"""Self-test for dbscale_lint.py.

Runs the linter over the known-bad and known-good fixture trees in
testdata/ and asserts, per rule, that every seeded violation is detected
and that every suppression mechanism (same-line, previous-line, file-level,
path exemption, comment/string stripping) keeps the good tree clean.

Registered in CTest as `dbscale_lint_selftest`, so a silently-rotted rule
fails the tier-1 suite.
"""

import collections
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import dbscale_lint  # noqa: E402

BAD_TREE = os.path.join(HERE, "testdata", "tree_bad")
GOOD_TREE = os.path.join(HERE, "testdata", "tree_good")


def run_tree(root):
    """Returns {rule: count} over all findings in `root`."""
    counts = collections.Counter()
    for rel in dbscale_lint.iter_source_files(root):
        for finding in dbscale_lint.lint_file(root, rel):
            counts[finding.rule] += 1
    return counts


class BadTreeTest(unittest.TestCase):
    """Every seeded violation must be found, with the expected multiplicity."""

    @classmethod
    def setUpClass(cls):
        cls.counts = run_tree(BAD_TREE)

    def test_wall_clock(self):
        # system_clock in report.cc; random_device + std::rand in fleet_sim.cc.
        self.assertEqual(self.counts["wall-clock"], 3)

    def test_unordered_container(self):
        # unordered_map in report.cc; unordered_set in fleet_sim.cc.
        self.assertEqual(self.counts["unordered-container"], 2)

    def test_alloc_hot_path(self):
        # fresh local, resize, reserve, make_unique, new, by-value param.
        self.assertEqual(self.counts["alloc-hot-path"], 6)

    def test_float_equality(self):
        # == literal, != literal, and literal == (reversed operands).
        self.assertEqual(self.counts["float-equality"], 3)

    def test_discarded_status(self):
        # (void)Flush() and (void)obj.Apply(1).
        self.assertEqual(self.counts["discarded-status"], 2)

    def test_nodiscard_guard(self):
        # status.h fixture is missing class [[nodiscard]].
        self.assertEqual(self.counts["nodiscard-guard"], 1)

    def test_no_unexpected_rules(self):
        expected = {"wall-clock", "unordered-container", "alloc-hot-path",
                    "float-equality", "discarded-status", "nodiscard-guard"}
        self.assertEqual(set(self.counts), expected)


class GoodTreeTest(unittest.TestCase):
    """Suppressions and exemptions must keep the good tree finding-free."""

    def test_clean(self):
        counts = run_tree(GOOD_TREE)
        self.assertEqual(dict(counts), {},
                         "good fixture tree produced findings")


class CliTest(unittest.TestCase):
    """The command-line entry point must exit 1 on findings, 0 when clean."""

    def run_cli(self, root):
        return subprocess.run(
            [sys.executable, os.path.join(HERE, "dbscale_lint.py"),
             "--root", root],
            capture_output=True, text=True, check=False)

    def test_bad_tree_exits_nonzero(self):
        proc = self.run_cli(BAD_TREE)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[wall-clock]", proc.stdout)
        self.assertIn("finding(s)", proc.stderr)

    def test_good_tree_exits_zero(self):
        proc = self.run_cli(GOOD_TREE)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_missing_root_is_usage_error(self):
        proc = self.run_cli(os.path.join(HERE, "testdata", "no_such_tree"))
        self.assertEqual(proc.returncode, 2)

    def test_shipped_tree_is_clean(self):
        repo_root = os.path.normpath(os.path.join(HERE, "..", ".."))
        proc = self.run_cli(repo_root)
        self.assertEqual(proc.returncode, 0,
                         "shipped tree has lint findings:\n" + proc.stdout)


if __name__ == "__main__":
    unittest.main()
