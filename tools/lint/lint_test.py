#!/usr/bin/env python3
"""Self-test for the token-stream linter (cpptok.py + dbscale_lint.py).

Four layers:

  1. tokenizer goldens — cpptok.lex over adversarial snippets: raw
     strings hiding comment markers and braces, block comments, digit
     separators, preprocessor continuations, macros carrying raw strings;
  2. structure goldens — function and scope recovery, including
     out-of-line constructors with member-initializer lists, and
     parameter classification (by-value / by-reference / by-pointer);
  3. fixture trees — the known-bad tree must produce every seeded
     violation with the expected multiplicity; the known-good tree
     (every suppression mechanism) must stay finding-free;
  4. parity — the frozen legacy engine (legacy_regex_lint.py) runs over
     the same corpus: every legacy true positive must be re-found by the
     token engine, the fixtures seeded with line-break evasions must be
     caught while the legacy engine provably misses them, and the raw
     string fixture that false-positives under line stripping must stay
     clean under the token engine.

Registered in CTest as `dbscale_lint_selftest`, so a silently-rotted
rule fails the tier-1 suite.
"""

import collections
import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import cpptok            # noqa: E402
import dbscale_lint      # noqa: E402
import legacy_regex_lint  # noqa: E402

BAD_TREE = os.path.join(HERE, "testdata", "tree_bad")
GOOD_TREE = os.path.join(HERE, "testdata", "tree_good")

# The corpus both engines understood when the legacy engine was frozen.
FROZEN_FILES = (
    "src/common/status.h",
    "src/engine/engine.cc",
    "src/fleet/fleet_sim.cc",
    "src/scaler/thresholds.cc",
    "src/sim/report.cc",
    "src/telemetry/manager.cc",
)

# Fixtures seeded with violations the legacy line regexes provably miss
# (line-break evasions and function-granularity hot paths), with the
# finding count the token engine must report for each.
MISS_FIXTURES = {
    "src/stats/robust.cc": 2,       # multi-line fresh local + by-value param
    "src/scaler/split_compare.cc": 2,  # float == wrapped across lines
    "src/engine/discard_wrapped.cc": 1,  # (void) // comment \n Call();
    "src/fleet/hot_fn.cc": 2,       # // dbscale-hot function in a cold file
}

LEGACY_RULES = {"wall-clock", "unordered-container", "alloc-hot-path",
                "float-equality", "discarded-status", "nodiscard-guard"}


def run_tree(root):
    """{rule: count} over all token-engine findings in `root`."""
    counts = collections.Counter()
    for finding in dbscale_lint.lint_tree(root):
        counts[finding.rule] += 1
    return counts


def new_findings(root, relpaths=None):
    """Token-engine findings as a {(path, line, rule)} set."""
    return {(f.path, f.line_no, f.rule)
            for f in dbscale_lint.lint_tree(root, relpaths)}


def legacy_findings(root, relpaths=None):
    """Frozen-engine findings as a {(path, line, rule)} set."""
    if relpaths is None:
        relpaths = list(legacy_regex_lint.iter_source_files(root))
    return {(f.path, f.line_no, f.rule)
            for rel in relpaths
            for f in legacy_regex_lint.lint_file(root, rel)}


def toks(text):
    return [(t.kind, t.text) for t in cpptok.lex(text).tokens]


class TokenizerTest(unittest.TestCase):
    """Goldens for the constructs line regexes cannot represent."""

    def test_raw_string_hides_comments_braces_quotes(self):
        text = 'const char* s = R"(// not a comment { } ")";\n'
        out = toks(text)
        self.assertIn((cpptok.STR, 'R"(// not a comment { } ")"'), out)
        self.assertNotIn((cpptok.PUNCT, "{"), out)

    def test_raw_string_custom_delimiter(self):
        text = 'auto s = R"ab(closes )" only at )ab";\n'
        kinds = [k for k, _ in toks(text)]
        self.assertEqual(kinds.count(cpptok.STR), 1)
        self.assertIn((cpptok.STR, 'R"ab(closes )" only at )ab"'), toks(text))

    def test_multiline_raw_string_line_numbers(self):
        text = 'auto s = R"(one\ntwo\nthree)";\nint after = 0;\n'
        res = cpptok.lex(text)
        after = [t for t in res.tokens if t.text == "after"]
        self.assertEqual(len(after), 1)
        self.assertEqual(after[0].line, 4)

    def test_block_comments_do_not_nest(self):
        # C++ block comments end at the FIRST '*/'.
        out = toks("/* outer /* inner */ int x;\n")
        self.assertEqual(out, [(cpptok.ID, "int"), (cpptok.ID, "x"),
                               (cpptok.PUNCT, ";")])

    def test_string_with_comment_markers_stays_code(self):
        out = toks('const char* s = "// /* */";\nint y;\n')
        self.assertIn((cpptok.ID, "y"), out)
        self.assertIn((cpptok.STR, '"// /* */"'), out)

    def test_char_literals_with_escapes(self):
        out = toks("char a = '\\''; char b = '\\\\'; char c = '\"';\n")
        chars = [t for k, t in out if k == cpptok.CHAR]
        self.assertEqual(chars, ["'\\''", "'\\\\'", "'\"'"])

    def test_digit_separators_and_hex_float(self):
        out = toks("auto a = 1'000'000; auto b = 0x1p3; auto c = 2.5e-3;\n")
        nums = [t for k, t in out if k == cpptok.NUM]
        self.assertEqual(nums, ["1'000'000", "0x1p3", "2.5e-3"])

    def test_float_literal_classifier(self):
        for lit in ("250.0", "1e5", "0x1p3", ".5", "2.5e-3", "1.f"):
            self.assertTrue(cpptok.is_float_literal(lit), lit)
        for lit in ("250", "0x10", "1'000", "0b101"):
            self.assertFalse(cpptok.is_float_literal(lit), lit)

    def test_preprocessor_continuation_is_one_directive(self):
        text = "#define FOO(x) \\\n  ((x) + kBase)\nint z;\n"
        res = cpptok.lex(text)
        pps = [tr for tr in res.trivia if tr.kind == cpptok.PP]
        self.assertEqual(len(pps), 1)
        self.assertEqual((pps[0].line, pps[0].end_line), (1, 2))
        self.assertEqual([t.text for t in res.tokens], ["int", "z", ";"])

    def test_raw_string_inside_macro_definition(self):
        text = '#define USAGE R"(a // b)"\nint y;\n'
        res = cpptok.lex(text)
        self.assertEqual([t.text for t in res.tokens], ["int", "y", ";"])
        self.assertEqual(len([tr for tr in res.trivia
                              if tr.kind == cpptok.PP]), 1)

    def test_maximal_munch_punctuation(self):
        self.assertIn((cpptok.PUNCT, "<<="), toks("a <<= b;\n"))
        self.assertIn((cpptok.PUNCT, ">>"), toks("x >> y;\n"))
        self.assertIn((cpptok.PUNCT, "<=>"), toks("a <=> b;\n"))


class StructureTest(unittest.TestCase):
    """Scope/function recovery goldens."""

    @staticmethod
    def model(text):
        return cpptok.StructureModel(cpptok.lex(text).tokens)

    def test_namespace_qualified_free_function(self):
        m = self.model(
            "namespace a::b {\nint Add(int x, int y) { return x + y; }\n}\n")
        self.assertEqual(len(m.functions), 1)
        fn = m.functions[0]
        self.assertEqual(fn.name, "Add")
        self.assertEqual([n for _, n in fn.scope_path], ["a::b"])
        self.assertEqual([p.name for p in fn.params], ["x", "y"])

    def test_out_of_line_ctor_with_member_init_list(self):
        # Regression: the parameter list must not be confused with the
        # last member-initializer's parentheses.
        m = self.model(
            "Runner::Runner(const Catalog& catalog,\n"
            "               RunnerOptions options)\n"
            "    : catalog_(catalog),\n"
            "      options_(std::move(options)),\n"
            "      enabled_(options_.fault.enabled()) {}\n")
        self.assertEqual(len(m.functions), 1)
        fn = m.functions[0]
        self.assertEqual(fn.qualified, "Runner::Runner")
        self.assertEqual([(p.name, p.by_ref) for p in fn.params],
                         [("catalog", True), ("options", False)])

    def test_member_function_out_of_line(self):
        m = self.model("void Store::Append(Sample s) { ++n_; }\n")
        self.assertEqual(m.functions[0].qualified, "Store::Append")

    def test_lambda_body_is_not_a_function_record(self):
        m = self.model("auto f = [](int x) { return x; };\n")
        self.assertEqual(m.functions, [])
        self.assertIn(cpptok.LAMBDA,
                      {s.kind for s in m.scope_of_open.values()})

    def test_param_classification(self):
        m = self.model("void F(std::vector<double>& ref,\n"
                       "       const Catalog* ptr,\n"
                       "       std::vector<int> val) {}\n")
        p = {q.name: q for q in m.functions[0].params}
        self.assertTrue(p["ref"].by_ref)
        self.assertTrue(p["ptr"].by_ptr)
        self.assertFalse(p["val"].by_ref or p["val"].by_ptr)

    def test_class_scope_recovered(self):
        m = self.model("namespace n {\nclass FooOptions {\n public:\n"
                       "  Status Validate() const;\n};\n}\n")
        names = {(s.kind, s.name) for s in m.scope_of_open.values()}
        self.assertIn((cpptok.CLASS, "FooOptions"), names)


class BadTreeTest(unittest.TestCase):
    """Every seeded violation must be found with expected multiplicity."""

    @classmethod
    def setUpClass(cls):
        cls.counts = run_tree(BAD_TREE)

    def test_wall_clock(self):
        # system_clock in report.cc; random_device + std::rand in fleet_sim.
        self.assertEqual(self.counts["wall-clock"], 3)

    def test_unordered_container(self):
        # unordered_map in report.cc; unordered_set in fleet_sim.cc.
        self.assertEqual(self.counts["unordered-container"], 2)

    def test_alloc_hot_path(self):
        # manager.cc: fresh local, resize, reserve, make_unique, new,
        # by-value param (6); robust.cc: wrapped local + wrapped by-value
        # param (2); hot_fn.cc: annotated function local + resize (2).
        self.assertEqual(self.counts["alloc-hot-path"], 10)

    def test_float_equality(self):
        # thresholds.cc: ==, !=, reversed (3); split_compare.cc: two
        # comparisons wrapped across lines (2).
        self.assertEqual(self.counts["float-equality"], 5)

    def test_discarded_status(self):
        # engine.cc: (void)Flush(), (void)obj.Apply(1); discard_wrapped.cc:
        # (void) split from its call by a comment and newline.
        self.assertEqual(self.counts["discarded-status"], 3)

    def test_nodiscard_guard(self):
        # status.h fixture is missing class [[nodiscard]].
        self.assertEqual(self.counts["nodiscard-guard"], 1)

    def test_mutable_global(self):
        # fleet_sim.cc: unordered_set global; semantic.cc: pointer-keyed
        # map + double.
        self.assertEqual(self.counts["mutable-global"], 3)

    def test_pointer_key_container(self):
        self.assertEqual(self.counts["pointer-key-container"], 1)

    def test_nodiscard_status_fn(self):
        # semantic.cc: anon-namespace Status fn; ops.h: header declaration.
        self.assertEqual(self.counts["nodiscard-status-fn"], 2)

    def test_options_validate(self):
        # semantic.cc: Run(const SweepOptions&) never calls Validate().
        self.assertEqual(self.counts["options-validate"], 1)

    def test_no_unexpected_rules(self):
        expected = LEGACY_RULES | {"mutable-global", "pointer-key-container",
                                   "nodiscard-status-fn", "options-validate"}
        self.assertEqual(set(self.counts), expected)

    def test_hot_annotation_is_function_scoped(self):
        # Findings in hot_fn.cc must all fall inside the annotated
        # function; the cold function below it allocates without findings.
        lines = sorted(ln for path, ln, rule in new_findings(BAD_TREE)
                       if path == "src/fleet/hot_fn.cc")
        self.assertEqual(len(lines), MISS_FIXTURES["src/fleet/hot_fn.cc"])
        self.assertTrue(all(ln <= 13 for ln in lines), lines)


class GoodTreeTest(unittest.TestCase):
    """Suppressions and exemptions must keep the good tree finding-free."""

    def test_clean(self):
        counts = run_tree(GOOD_TREE)
        self.assertEqual(dict(counts), {},
                         "good fixture tree produced findings")


class ParityTest(unittest.TestCase):
    """The token engine must dominate the frozen regex engine."""

    def test_frozen_corpus_no_regressions(self):
        """Every legacy true positive is re-found at the same line, and
        the token engine reports no extra findings for legacy rules on
        the frozen corpus (its additions there are new-rule findings)."""
        legacy = legacy_findings(BAD_TREE, FROZEN_FILES)
        new = new_findings(BAD_TREE, list(FROZEN_FILES))
        self.assertTrue(legacy <= new, legacy - new)
        new_legacy_rules = {f for f in new if f[2] in LEGACY_RULES}
        self.assertEqual(new_legacy_rules, legacy)

    def test_token_engine_sees_through_line_breaks(self):
        """The seeded evasion fixtures are invisible to the legacy engine
        and fully visible to the token engine."""
        for rel, expected in MISS_FIXTURES.items():
            with self.subTest(fixture=rel):
                self.assertEqual(legacy_findings(BAD_TREE, [rel]), set())
                got = new_findings(BAD_TREE, [rel])
                self.assertEqual(len(got), expected, got)

    def test_legacy_false_positives_on_raw_strings(self):
        """The raw-string usage fixture trips the legacy line stripper but
        not the token engine."""
        rel = "src/sim/usage.cc"
        self.assertGreater(len(legacy_findings(GOOD_TREE, [rel])), 0)
        self.assertEqual(new_findings(GOOD_TREE, [rel]), set())


class CliTest(unittest.TestCase):
    """The command-line entry point must exit 1 on findings, 0 when clean."""

    def run_cli(self, root, *extra):
        return subprocess.run(
            [sys.executable, os.path.join(HERE, "dbscale_lint.py"),
             "--root", root] + list(extra),
            capture_output=True, text=True, check=False)

    def test_bad_tree_exits_nonzero(self):
        proc = self.run_cli(BAD_TREE)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[wall-clock]", proc.stdout)
        self.assertIn("finding(s)", proc.stderr)

    def test_good_tree_exits_zero(self):
        proc = self.run_cli(GOOD_TREE)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_missing_root_is_usage_error(self):
        proc = self.run_cli(os.path.join(HERE, "testdata", "no_such_tree"))
        self.assertEqual(proc.returncode, 2)

    def test_single_path_subset(self):
        proc = self.run_cli(BAD_TREE, "src/scaler/thresholds.cc")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("thresholds.cc", proc.stdout)
        self.assertNotIn("manager.cc", proc.stdout)

    def test_shipped_tree_is_clean(self):
        repo_root = os.path.normpath(os.path.join(HERE, "..", ".."))
        proc = self.run_cli(repo_root)
        self.assertEqual(proc.returncode, 0,
                         "shipped tree has lint findings:\n" + proc.stdout)

    def test_diff_mode_on_shipped_tree(self):
        # The shipped tree is clean, so the changed-file subset is too;
        # --diff must succeed whether or not git metadata is available.
        repo_root = os.path.normpath(os.path.join(HERE, "..", ".."))
        proc = self.run_cli(repo_root, "--diff")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
