#include "src/baselines/util_policy.h"

#include <algorithm>

namespace dbscale::baselines {

using container::ResourceKind;

UtilPolicy::UtilPolicy(const container::Catalog& catalog,
                       scaler::LatencyGoal goal, UtilPolicyOptions options)
    : catalog_(catalog), goal_(goal), options_(options) {}

scaler::ScalingDecision UtilPolicy::Decide(
    const scaler::PolicyInput& input) {
  scaler::ScalingDecision d;
  d.target = input.current;
  d.explanation = scaler::Explanation(scaler::ExplanationCode::kUtilHold);
  const telemetry::SignalSnapshot& s = input.signals;
  if (!s.valid) {
    d.explanation =
        scaler::Explanation(scaler::ExplanationCode::kUtilWarmup);
    return d;
  }

  const bool latency_bad = s.latency_ms > goal_.target_ms;
  const double ratio =
      goal_.target_ms > 0.0 ? s.latency_ms / goal_.target_ms : 1.0;
  const int cur_rung = input.current.base_rung;

  double max_util = 0.0;
  for (ResourceKind kind : container::kAllResources) {
    max_util = std::max(max_util, s.resource(kind).utilization_pct);
  }

  if (latency_bad && max_util >= options_.util_good_pct) {
    low_streak_ = 0;
    const int steps = ratio >= options_.big_step_latency_ratio ? 2 : 1;
    const int rung = catalog_.ClampRung(cur_rung + steps);
    if (rung != cur_rung) {
      d.target = catalog_.rung(rung);
      d.explanation =
          scaler::Explanation(scaler::ExplanationCode::kUtilScaleUp,
                              s.latency_ms, goal_.target_ms, max_util);
      return d;
    }
    d.explanation =
        scaler::Explanation(scaler::ExplanationCode::kUtilAtMaxContainer);
    return d;
  }

  if (!latency_bad) {
    // Down-gate: physical activity low. (Memory utilization is excluded —
    // even a naive operator knows the cache is always "full".)
    const bool activity_low =
        s.resource(ResourceKind::kCpu).utilization_pct <
            options_.util_low_pct &&
        s.resource(ResourceKind::kDiskIo).utilization_pct <
            options_.util_low_pct &&
        s.resource(ResourceKind::kLogIo).utilization_pct <
            options_.util_low_pct;
    if (activity_low && cur_rung > 0) {
      ++low_streak_;
      if (low_streak_ >= options_.down_patience) {
        low_streak_ = 0;
        d.target = catalog_.rung(cur_rung - 1);
        d.explanation =
            scaler::Explanation(scaler::ExplanationCode::kUtilScaleDown,
                                s.latency_ms);
        return d;
      }
      d.explanation =
          scaler::Explanation(scaler::ExplanationCode::kUtilDownCooldown);
      return d;
    }
  }
  low_streak_ = 0;
  return d;
}

}  // namespace dbscale::baselines
