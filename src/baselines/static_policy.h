// Static container policies (Section 7.2.1): Max, Peak and Avg are all
// "pick one container and never change it" — they differ only in how the
// container was chosen offline (largest; from the 95th-percentile
// utilization of a profiling run; from the average utilization).

#ifndef DBSCALE_BASELINES_STATIC_POLICY_H_
#define DBSCALE_BASELINES_STATIC_POLICY_H_

#include <string>

#include "src/scaler/policy.h"

namespace dbscale::baselines {

/// \brief Always answers with one fixed container.
class StaticPolicy : public scaler::ScalingPolicy {
 public:
  StaticPolicy(std::string name, container::ContainerSpec spec)
      : name_(std::move(name)), spec_(std::move(spec)) {}

  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    (void)input;
    scaler::ScalingDecision d;
    d.target = spec_;
    d.explanation =
        scaler::Explanation(scaler::ExplanationCode::kBaselineStatic);
    return d;
  }

  std::string name() const override { return name_; }
  const container::ContainerSpec& spec() const { return spec_; }

 private:
  std::string name_;
  container::ContainerSpec spec_;
};

}  // namespace dbscale::baselines

#endif  // DBSCALE_BASELINES_STATIC_POLICY_H_
