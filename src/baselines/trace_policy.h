// The offline "Trace" baseline (Section 7.2.1): knows the workload's
// resource demands exactly (from a profiling run under Max) and replays a
// schedule of per-interval containers that hugs the demand curve.

#ifndef DBSCALE_BASELINES_TRACE_POLICY_H_
#define DBSCALE_BASELINES_TRACE_POLICY_H_

#include <string>
#include <utility>
#include <vector>

#include "src/scaler/policy.h"

namespace dbscale::baselines {

/// \brief Applies a precomputed container schedule: interval i gets
/// schedule[i] (clamped to the last entry past the end).
class TracePolicy : public scaler::ScalingPolicy {
 public:
  explicit TracePolicy(std::vector<container::ContainerSpec> schedule)
      : schedule_(std::move(schedule)) {}

  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override {
    scaler::ScalingDecision d;
    // Decide() runs at the end of interval i to pick interval i+1.
    const size_t next = static_cast<size_t>(input.interval_index) + 1;
    const size_t idx = schedule_.empty()
                           ? 0
                           : std::min(next, schedule_.size() - 1);
    d.target = schedule_.empty() ? input.current : schedule_[idx];
    d.explanation =
        scaler::Explanation(scaler::ExplanationCode::kBaselineTraceSchedule);
    return d;
  }

  std::string name() const override { return "Trace"; }
  const std::vector<container::ContainerSpec>& schedule() const {
    return schedule_;
  }

 private:
  std::vector<container::ContainerSpec> schedule_;
};

}  // namespace dbscale::baselines

#endif  // DBSCALE_BASELINES_TRACE_POLICY_H_
