#include "src/baselines/offline_profiler.h"

#include "src/stats/robust.h"

namespace dbscale::baselines {

using container::ResourceKind;
using container::ResourceVector;

OfflineProfiler::OfflineProfiler(
    const container::Catalog& catalog,
    std::vector<container::ResourceVector> interval_usage,
    ProfilerOptions options)
    : catalog_(catalog),
      usage_(std::move(interval_usage)),
      options_(options) {}

Result<ResourceVector> OfflineProfiler::UsageAtPercentile(double p) const {
  if (usage_.empty()) {
    return Status::FailedPrecondition("no profiled intervals");
  }
  ResourceVector result;
  for (ResourceKind kind : container::kAllResources) {
    std::vector<double> values;
    values.reserve(usage_.size());
    for (const ResourceVector& u : usage_) values.push_back(u.Get(kind));
    DBSCALE_ASSIGN_OR_RETURN(double v, stats::Percentile(std::move(values), p));
    result.Set(kind, v);
  }
  return result;
}

Result<container::ContainerSpec> OfflineProfiler::PeakContainer() const {
  DBSCALE_ASSIGN_OR_RETURN(ResourceVector usage,
                           UsageAtPercentile(options_.peak_percentile));
  return catalog_.CheapestDominating(usage.Scaled(options_.headroom));
}

Result<container::ContainerSpec> OfflineProfiler::AvgContainer() const {
  if (usage_.empty()) {
    return Status::FailedPrecondition("no profiled intervals");
  }
  ResourceVector mean;
  for (ResourceKind kind : container::kAllResources) {
    double sum = 0.0;
    for (const ResourceVector& u : usage_) sum += u.Get(kind);
    mean.Set(kind, sum / static_cast<double>(usage_.size()));
  }
  return catalog_.CheapestDominating(mean.Scaled(options_.headroom));
}

Result<std::vector<container::ContainerSpec>>
OfflineProfiler::TraceSchedule() const {
  if (usage_.empty()) {
    return Status::FailedPrecondition("no profiled intervals");
  }
  std::vector<container::ContainerSpec> schedule;
  schedule.reserve(usage_.size());
  for (const ResourceVector& u : usage_) {
    schedule.push_back(
        catalog_.CheapestDominating(u.Scaled(options_.headroom)));
  }
  return schedule;
}

}  // namespace dbscale::baselines
