// The "Util" online baseline (Section 7.2.2): emulates the rule-based
// utilization auto-scalers commercial clouds offer, translated from
// VM-count scaling to container sizing.
//
//   * latency BAD and any resource utilization GOOD-or-HIGH  -> scale up
//     (2 rungs when latency is far beyond the goal — this is the "ends up
//     scaling much higher to compensate" behaviour of Figure 13(a));
//   * latency GOOD and cpu/disk/log utilization all LOW      -> scale down.
//
// Utilization is the *only* demand evidence it has: memory utilization is
// effectively always high (the buffer pool never releases pages), so the
// up-gate nearly always passes and latency violations alone drive growth —
// the exact failure mode the paper's estimator avoids.

#ifndef DBSCALE_BASELINES_UTIL_POLICY_H_
#define DBSCALE_BASELINES_UTIL_POLICY_H_

#include <string>

#include "src/container/catalog.h"
#include "src/scaler/knobs.h"
#include "src/scaler/policy.h"

namespace dbscale::baselines {

struct UtilPolicyOptions {
  /// Utilization (any resource, %) at or above which the up-gate passes.
  double util_good_pct = 30.0;
  /// Utilization (cpu/disk/log, %) below which the down-gate passes.
  double util_low_pct = 20.0;
  /// Latency ratio beyond which the policy jumps 2 rungs at once.
  double big_step_latency_ratio = 2.0;
  /// Consecutive good+idle intervals before scaling down (commercial
  /// autoscalers scale up fast and down slowly — the usual cooldown).
  int down_patience = 5;
};

/// \brief Latency + utilization rule scaler (application-agnostic).
class UtilPolicy : public scaler::ScalingPolicy {
 public:
  UtilPolicy(const container::Catalog& catalog, scaler::LatencyGoal goal,
             UtilPolicyOptions options = {});

  scaler::ScalingDecision Decide(const scaler::PolicyInput& input) override;
  std::string name() const override { return "Util"; }

 private:
  container::Catalog catalog_;
  scaler::LatencyGoal goal_;
  UtilPolicyOptions options_;
  int low_streak_ = 0;
};

}  // namespace dbscale::baselines

#endif  // DBSCALE_BASELINES_UTIL_POLICY_H_
