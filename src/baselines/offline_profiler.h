// Offline profiling for the Peak / Avg / Trace baselines (Section 7.2.1).
//
// These baselines get a luxury no online policy has: they observe the
// workload's resource demands (a profiling run under the Max container)
// before choosing containers. Given per-interval absolute resource usage,
// the profiler derives
//   * Peak  — the smallest container covering the p95 of per-interval usage,
//   * Avg   — the smallest container covering the mean usage,
//   * Trace — a per-interval schedule of smallest covering containers
//             ("hugs" the demand curve).

#ifndef DBSCALE_BASELINES_OFFLINE_PROFILER_H_
#define DBSCALE_BASELINES_OFFLINE_PROFILER_H_

#include <vector>

#include "src/common/result.h"
#include "src/container/catalog.h"

namespace dbscale::baselines {

struct ProfilerOptions {
  /// Percentile of per-interval usage the Peak container must cover.
  double peak_percentile = 95.0;
  /// Multiplier applied to usage before container selection (headroom so a
  /// container running at 100% of measured usage is not chosen).
  double headroom = 1.25;
};

/// \brief Derives baseline configurations from profiled per-interval usage.
class OfflineProfiler {
 public:
  /// \param interval_usage absolute usage per billing interval: cores,
  ///        active MB, IOPS, log MB/s (from a Max profiling run).
  OfflineProfiler(const container::Catalog& catalog,
                  std::vector<container::ResourceVector> interval_usage,
                  ProfilerOptions options = {});

  /// Smallest container covering the p95 (options) of per-interval usage.
  Result<container::ContainerSpec> PeakContainer() const;

  /// Smallest container covering the mean usage.
  Result<container::ContainerSpec> AvgContainer() const;

  /// Per-interval smallest covering containers.
  Result<std::vector<container::ContainerSpec>> TraceSchedule() const;

 private:
  Result<container::ResourceVector> UsageAtPercentile(double p) const;

  container::Catalog catalog_;
  std::vector<container::ResourceVector> usage_;
  ProfilerOptions options_;
};

}  // namespace dbscale::baselines

#endif  // DBSCALE_BASELINES_OFFLINE_PROFILER_H_
