// Decision tracing: one span tree per billing interval.
//
// Each interval of the closed loop produces a small tree —
//   interval
//   ├── telemetry.compute
//   ├── decide
//   │   ├── categorize
//   │   ├── rule_eval (one per resource)
//   │   ├── balloon
//   │   └── budget_check
//   └── resize
// — capturing why the scaler did what it did, with the matched rule /
// ExplanationCode carried as attributes instead of parsed strings.
//
// Determinism and cost contract:
//   * timestamps come exclusively from SimTime (the wall-clock lint bans
//     anything else), so a trace is bit-identical across runs and thread
//     counts;
//   * capture is allocation-free in steady state: the recorder preallocates
//     a ring of interval trees with a fixed per-interval span capacity, and
//     span attributes only hold numbers and static-storage strings
//     (enum-name helpers, literals). Overflow deterministically drops the
//     span and bumps a counter — it never grows the ring.

#ifndef DBSCALE_OBS_TRACE_H_
#define DBSCALE_OBS_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace dbscale::obs {

/// Span handle within the current interval's tree (index order = start
/// order). kNoSpan is returned when tracing is off or the tree is full;
/// every recorder call accepts it and no-ops.
using SpanId = uint32_t;
inline constexpr SpanId kNoSpan = 0xffffffffu;

inline constexpr size_t kMaxSpanAttrs = 8;

/// One key/value attribute. `str` must point at static-storage text
/// (literals, enum-to-string helpers) — the recorder stores the pointer.
struct SpanAttr {
  const char* key = nullptr;
  double num = 0.0;
  const char* str = nullptr;  ///< nullptr for numeric attributes
};

struct Span {
  SpanId parent = kNoSpan;
  const char* name = "";
  SimTime start;
  SimTime end;
  std::array<SpanAttr, kMaxSpanAttrs> attrs{};
  uint32_t num_attrs = 0;
  /// Attributes dropped because the span's attr array was full.
  uint32_t dropped_attrs = 0;
};

/// One billing interval's finished (or in-progress) span tree. Span 0 is
/// always the "interval" root.
struct IntervalTrace {
  int interval_index = -1;
  std::vector<Span> spans;
  uint32_t dropped_spans = 0;
};

/// \brief Ring of per-interval span trees with preallocated capacity.
class TraceRecorder {
 public:
  struct Options {
    /// Most recent interval trees retained (older ones are overwritten).
    size_t max_intervals = 512;
    /// Span capacity per interval tree; overflow drops deterministically.
    size_t max_spans_per_interval = 48;
  };

  TraceRecorder();
  explicit TraceRecorder(Options options);

  /// Opens interval `index`'s tree and its "interval" root span.
  void BeginInterval(int index, SimTime start);
  /// The current interval's root span (kNoSpan when none is open).
  SpanId root() const;
  /// Starts a child span; returns kNoSpan (a no-op handle) when no
  /// interval is open or the tree is at capacity.
  SpanId StartSpan(const char* name, SimTime start, SpanId parent);
  void EndSpan(SpanId id, SimTime end);
  void AddAttr(SpanId id, const char* key, double value);
  /// `value` must have static storage duration.
  void AddAttrStr(SpanId id, const char* key, const char* value);
  /// Ends the root span and seals the tree.
  void EndInterval(SimTime end);

  /// Retained finished trees, oldest first.
  size_t num_intervals() const;
  const IntervalTrace& interval(size_t i) const;

  uint64_t total_intervals() const { return total_intervals_; }
  uint64_t total_spans() const { return total_spans_; }
  uint64_t dropped_spans() const { return dropped_spans_; }

  const Options& options() const { return options_; }

  /// Forgets all retained trees (capacity is kept).
  void Clear();

 private:
  IntervalTrace* current();
  Span* span(SpanId id);

  Options options_;
  std::vector<IntervalTrace> ring_;
  /// Trees ever begun; ring slot = (total_intervals_ - 1) % capacity.
  uint64_t total_intervals_ = 0;
  uint64_t total_spans_ = 0;
  uint64_t dropped_spans_ = 0;
  bool open_ = false;
};

/// \brief Nullable tracing handle mirroring MetricSink: one branch when
/// tracing is off. `parent` is the span new children attach to.
struct TraceSink {
  TraceRecorder* recorder = nullptr;
  SpanId parent = kNoSpan;

  bool enabled() const { return recorder != nullptr; }
  SpanId Start(const char* name, SimTime now) const {
    return recorder != nullptr ? recorder->StartSpan(name, now, parent)
                               : kNoSpan;
  }
  void End(SpanId id, SimTime now) const {
    if (recorder != nullptr) recorder->EndSpan(id, now);
  }
  void Attr(SpanId id, const char* key, double value) const {
    if (recorder != nullptr) recorder->AddAttr(id, key, value);
  }
  void AttrStr(SpanId id, const char* key, const char* value) const {
    if (recorder != nullptr) recorder->AddAttrStr(id, key, value);
  }
  /// A sink whose new spans nest under `span` instead of this->parent.
  TraceSink Under(SpanId span) const { return TraceSink{recorder, span}; }
};

}  // namespace dbscale::obs

#endif  // DBSCALE_OBS_TRACE_H_
