#include "src/obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/common/string_util.h"

namespace dbscale::obs {

namespace {

/// Shortest round-trip-exact rendering: try %g precisions until the value
/// parses back identically, so exported numbers are canonical (digest
/// stability) yet readable (3 prints as "3", not "3.0000000000000000").
void AppendNumber(double value, std::string& out) {
  if (std::isnan(value)) {
    out += "0";
    return;
  }
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out += buf;
}

void AppendJsonString(const char* s, std::string& out) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendSpanLine(int interval_index, SpanId id, const Span& span,
                    std::string& out) {
  out += "{\"interval\":";
  out += StrFormat("%d", interval_index);
  out += ",\"span\":";
  out += StrFormat("%u", id);
  out += ",\"parent\":";
  if (span.parent == kNoSpan) {
    out += "null";
  } else {
    out += StrFormat("%u", span.parent);
  }
  out += ",\"name\":";
  AppendJsonString(span.name, out);
  out += StrFormat(",\"start_us\":%lld,\"end_us\":%lld",
                   static_cast<long long>(span.start.ToMicros()),
                   static_cast<long long>(span.end.ToMicros()));
  out += ",\"attrs\":{";
  for (uint32_t a = 0; a < span.num_attrs; ++a) {
    if (a > 0) out += ',';
    const SpanAttr& attr = span.attrs[a];
    AppendJsonString(attr.key, out);
    out += ':';
    if (attr.str != nullptr) {
      AppendJsonString(attr.str, out);
    } else {
      AppendNumber(attr.num, out);
    }
  }
  out += "}}\n";
}

/// Metric family name: the registered name up to any {label} suffix.
std::string_view BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return std::string_view(name).substr(
      0, brace == std::string::npos ? name.size() : brace);
}

}  // namespace

void AppendSpansJsonl(const TraceRecorder& recorder, std::string& out) {
  for (size_t i = 0; i < recorder.num_intervals(); ++i) {
    const IntervalTrace& tree = recorder.interval(i);
    for (size_t s = 0; s < tree.spans.size(); ++s) {
      AppendSpanLine(tree.interval_index, static_cast<SpanId>(s),
                     tree.spans[s], out);
    }
  }
}

void AppendPrometheus(const MetricRegistry& registry,
                      const MetricShard& shard, std::string& out) {
  std::string_view prev_base;
  for (size_t i = 0; i < registry.num_instruments(); ++i) {
    const MetricId id = static_cast<MetricId>(i);
    const MetricInfo& info = registry.info(id);
    const std::string_view base = BaseName(info.name);
    if (base != prev_base) {
      // One HELP/TYPE header per family (labeled series share it).
      out += "# HELP ";
      out += base;
      out += ' ';
      out += info.help;
      out += "\n# TYPE ";
      out += base;
      out += ' ';
      out += MetricKindToString(info.kind);
      out += '\n';
      prev_base = base;
    }
    switch (info.kind) {
      case MetricKind::kCounter: {
        out += info.name;
        out += ' ';
        AppendNumber(shard.counter(id), out);
        out += '\n';
        break;
      }
      case MetricKind::kGauge: {
        out += info.name;
        out += ' ';
        AppendNumber(shard.gauge(id), out);
        out += '\n';
        break;
      }
      case MetricKind::kHistogram: {
        // Series suffixes attach to the family name, with any registered
        // labels merged ahead of `le`: name_bucket{queue="cpu",le="0.1"},
        // never name{queue="cpu"}_bucket{...}.
        const size_t open = info.name.find('{');
        std::string_view labels;  // the `k="v",...` payload, braces stripped
        if (open != std::string::npos) {
          labels = std::string_view(info.name)
                       .substr(open + 1, info.name.size() - open - 2);
        }
        auto append_bucket = [&](const char* le_text, double bound,
                                 double value) {
          out += base;
          out += "_bucket{";
          if (!labels.empty()) {
            out += labels;
            out += ',';
          }
          out += "le=\"";
          if (le_text != nullptr) {
            out += le_text;
          } else {
            AppendNumber(bound, out);
          }
          out += "\"} ";
          AppendNumber(value, out);
          out += '\n';
        };
        auto append_series = [&](const char* suffix, double value) {
          out += base;
          out += suffix;
          if (!labels.empty()) {
            out += '{';
            out += labels;
            out += '}';
          }
          out += ' ';
          AppendNumber(value, out);
          out += '\n';
        };
        double cumulative = 0.0;
        for (size_t b = 0; b < info.histogram.num_buckets; ++b) {
          cumulative += shard.hist_bucket(id, b);
          append_bucket(nullptr, info.histogram.upper_bounds[b], cumulative);
        }
        append_bucket("+Inf", 0.0, shard.hist_count(id));
        append_series("_sum", shard.hist_sum(id));
        append_series("_count", shard.hist_count(id));
        break;
      }
    }
  }
}

void AppendMetricsCsv(const MetricRegistry& registry,
                      const MetricShard& shard, std::string& out) {
  out += "metric,kind,le,value\n";
  auto row = [&out](const std::string& name, const char* kind,
                    const std::string& le, double value) {
    CsvEscapeTo(name, out);
    out += ',';
    out += kind;
    out += ',';
    CsvEscapeTo(le, out);
    out += ',';
    AppendNumber(value, out);
    out += '\n';
  };
  for (size_t i = 0; i < registry.num_instruments(); ++i) {
    const MetricId id = static_cast<MetricId>(i);
    const MetricInfo& info = registry.info(id);
    switch (info.kind) {
      case MetricKind::kCounter:
        row(info.name, "counter", "", shard.counter(id));
        break;
      case MetricKind::kGauge: {
        const double v = shard.gauge(id);
        row(info.name, "gauge", "", std::isnan(v) ? 0.0 : v);
        break;
      }
      case MetricKind::kHistogram: {
        double cumulative = 0.0;
        for (size_t b = 0; b < info.histogram.num_buckets; ++b) {
          cumulative += shard.hist_bucket(id, b);
          std::string le;
          AppendNumber(info.histogram.upper_bounds[b], le);
          row(info.name, "histogram", le, cumulative);
        }
        row(info.name, "histogram", "+Inf", shard.hist_count(id));
        row(info.name, "histogram", "sum", shard.hist_sum(id));
        row(info.name, "histogram", "count", shard.hist_count(id));
        break;
      }
    }
  }
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t MetricsDigest(const MetricRegistry& registry,
                       const MetricShard& shard) {
  std::string text;
  AppendPrometheus(registry, shard, text);
  return Fnv1a64(text);
}

uint64_t TraceDigest(const TraceRecorder& recorder) {
  std::string text;
  AppendSpansJsonl(recorder, text);
  return Fnv1a64(text);
}

}  // namespace dbscale::obs
