// Allocation-free metrics: a registry of pre-declared instruments and flat
// shards of slots to record into.
//
// The contract mirrors the signal path's (DESIGN.md "Observability"):
//   * every instrument — counter, gauge, fixed-bucket histogram — is
//     registered up front, before the run, where allocation is fine;
//   * recording is an index into a preallocated slot array: no locks, no
//     hashing, no heap, enforced by the alloc-guard suite and the
//     alloc-hot-path lint rule on src/obs/metrics.cc;
//   * concurrency is shard-per-thread (the fleet uses one shard per tenant)
//     with an explicit MergeFrom in tenant order, so merged values are
//     bit-identical at any thread count.
//
// The runtime toggle is the null shard: a MetricSink holding nullptr turns
// every record call into one predictable branch.

#ifndef DBSCALE_OBS_METRICS_H_
#define DBSCALE_OBS_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbscale::obs {

/// Dense instrument handle; indexes MetricRegistry::info().
using MetricId = uint32_t;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

/// Fixed histogram bucket layout, chosen at registration time.
inline constexpr size_t kMaxHistogramBuckets = 16;

struct HistogramSpec {
  /// Ascending upper bounds; values above the last bound land in an
  /// implicit overflow (+Inf) bucket.
  std::array<double, kMaxHistogramBuckets> upper_bounds{};
  size_t num_buckets = 0;

  /// bounds: start, start*factor, start*factor^2, ...
  static HistogramSpec Exponential(double start, double factor,
                                   size_t num_buckets);
  /// bounds: start, start+step, start+2*step, ...
  static HistogramSpec Linear(double start, double step, size_t num_buckets);
};

struct MetricInfo {
  std::string name;  ///< Prometheus-style, may carry a {label="..."} suffix.
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  HistogramSpec histogram;
  /// First slot in a shard's flat value array, and how many this
  /// instrument owns (1 for counter/gauge; buckets + overflow + sum +
  /// count for a histogram).
  size_t first_slot = 0;
  size_t num_slots = 1;
};

/// \brief Instrument catalog. Registration is setup-time only (allocates);
/// lookups during recording are plain vector indexing.
///
/// Registration is idempotent by name: re-registering an existing name
/// returns the existing id (and CHECK-fails on a kind mismatch), so every
/// layer can declare its instruments unconditionally at wiring time.
/// Registration is not thread-safe — register before fanning out.
class MetricRegistry {
 public:
  MetricId Counter(const std::string& name, const std::string& help);
  MetricId Gauge(const std::string& name, const std::string& help);
  MetricId Histogram(const std::string& name, const std::string& help,
                     const HistogramSpec& spec);

  size_t num_instruments() const { return instruments_.size(); }
  /// Total value slots a shard for this registry needs.
  size_t num_slots() const { return num_slots_; }
  const MetricInfo& info(MetricId id) const { return instruments_[id]; }

 private:
  MetricId Register(const std::string& name, const std::string& help,
                    MetricKind kind, const HistogramSpec& spec);

  std::vector<MetricInfo> instruments_;
  std::map<std::string, MetricId> by_name_;
  size_t num_slots_ = 0;
};

/// \brief One thread's (or tenant's) flat slot array. Record calls never
/// allocate; Attach() sizes the slots and is the setup-time step.
class MetricShard {
 public:
  MetricShard() = default;

  /// (Re)sizes the slot array for `registry`, preserving recorded values
  /// for instruments that existed before (allocates; setup only). Call
  /// again after late registrations before recording to the new ids.
  void Attach(const MetricRegistry* registry);

  bool attached() const { return registry_ != nullptr; }
  const MetricRegistry* registry() const { return registry_; }

  // -- Record paths (allocation-free, bounds CHECKed) --------------------
  void Add(MetricId id, double delta);      ///< counter += delta
  void Set(MetricId id, double value);      ///< gauge = value
  void Observe(MetricId id, double value);  ///< histogram sample

  // -- Read side (exporters, tests) --------------------------------------
  double counter(MetricId id) const;
  /// NaN until the gauge was Set (the merge sentinel); exporters print 0.
  double gauge(MetricId id) const;
  double hist_bucket(MetricId id, size_t bucket) const;  ///< non-cumulative
  double hist_overflow(MetricId id) const;
  double hist_sum(MetricId id) const;
  double hist_count(MetricId id) const;

  /// Slot-wise deterministic merge: counters and histograms add; gauges
  /// take `other`'s value when `other` ever Set them. Both shards must be
  /// attached to the same registry. Merge order defines gauge outcomes —
  /// callers merge in tenant order.
  void MergeFrom(const MetricShard& other);

  /// Zeroes every slot (gauges back to the NaN sentinel).
  void ResetValues();

 private:
  const MetricRegistry* registry_ = nullptr;
  std::vector<double> slots_;
  /// Instruments covered by the last Attach (late registrations need a
  /// re-Attach before their ids may be recorded).
  size_t slot_instruments_ = 0;
};

/// \brief A fixed pool of shards for block-sharded fan-out: one shard per
/// contiguous work block instead of one per tenant. At 10^6 tenants a
/// shard-per-tenant layout means 10^6 constructions and merges; a pool
/// sized to the block count keeps that proportional to blocks (~N/2048)
/// while preserving determinism — each block's shard is written by exactly
/// one worker at a time, and MergeInto folds shards in block order, so
/// merged values are bit-identical at any thread count.
class ShardPool {
 public:
  ShardPool() = default;

  /// Sizes the pool and attaches every shard (setup-time; allocates).
  /// Re-attaching after late registrations preserves recorded values.
  void Attach(const MetricRegistry* registry, size_t num_shards);

  bool attached() const { return !shards_.empty(); }
  size_t size() const { return shards_.size(); }
  /// The shard for block `index`. Concurrent use is safe only when each
  /// block is processed by one worker at a time (the ParallelFor claim
  /// discipline).
  MetricShard& shard(size_t index) { return shards_[index]; }
  const MetricShard& shard(size_t index) const { return shards_[index]; }

  /// Merges every shard into `primary` in block order: deterministic at
  /// any thread count.
  void MergeInto(MetricShard* primary) const;

 private:
  std::vector<MetricShard> shards_;
};

/// \brief Nullable recording handle: the runtime toggle. All calls are one
/// branch when disabled; components hold it by value.
struct MetricSink {
  MetricShard* shard = nullptr;

  bool enabled() const { return shard != nullptr; }
  void Add(MetricId id, double delta) const {
    if (shard != nullptr) shard->Add(id, delta);
  }
  void Set(MetricId id, double value) const {
    if (shard != nullptr) shard->Set(id, value);
  }
  void Observe(MetricId id, double value) const {
    if (shard != nullptr) shard->Observe(id, value);
  }
};

}  // namespace dbscale::obs

#endif  // DBSCALE_OBS_METRICS_H_
