#include "src/obs/pipeline.h"

namespace dbscale::obs {

PipelineMetrics PipelineMetrics::Register(MetricRegistry* registry) {
  PipelineMetrics m;
  MetricRegistry& r = *registry;

  m.sim_intervals_total = r.Counter(
      "dbscale_sim_intervals_total", "Billing intervals simulated");
  m.sim_resizes_total = r.Counter(
      "dbscale_sim_resizes_total", "Container changes applied");
  m.sim_scale_ups_total = r.Counter(
      "dbscale_sim_scale_ups_total", "Resizes to a higher rung");
  m.sim_scale_downs_total = r.Counter(
      "dbscale_sim_scale_downs_total", "Resizes to a lower rung");
  m.sim_cost_total = r.Counter(
      "dbscale_sim_cost_total", "Total billed cost across intervals");
  m.sim_requests_total = r.Counter(
      "dbscale_sim_requests_total", "Requests completed within intervals");
  m.sim_errors_total = r.Counter(
      "dbscale_sim_errors_total", "Requests completed with an error");
  m.sim_memory_limit_applies_total = r.Counter(
      "dbscale_sim_memory_limit_applies_total",
      "Balloon memory-limit overrides forwarded to the engine");
  m.sim_interval_latency_p95_ms = r.Histogram(
      "dbscale_sim_interval_latency_p95_ms",
      "Per-interval p95 latency (ms)",
      HistogramSpec::Exponential(1.0, 2.0, 16));

  m.resize_requests_total = r.Counter(
      "dbscale_resize_requests_total",
      "Resize attempts issued to the actuation channel");
  m.resize_applies_total = r.Counter(
      "dbscale_resize_applies_total",
      "Resizes successfully applied (immediate or after latency)");
  m.resize_failures_total = r.Counter(
      "dbscale_resize_failures_total",
      "Resize attempts that failed transiently");
  m.resize_rejections_total = r.Counter(
      "dbscale_resize_rejections_total",
      "Resize attempts permanently rejected");
  m.resize_retries_total = r.Counter(
      "dbscale_resize_retries_total",
      "Resize attempts re-issued after a transient failure");
  m.resize_pending_intervals_total = r.Counter(
      "dbscale_resize_pending_intervals_total",
      "Billing intervals spent with a resize in flight");

  m.telemetry_computes_total = r.Counter(
      "dbscale_telemetry_computes_total", "Signal snapshots computed");
  m.telemetry_invalid_snapshots_total = r.Counter(
      "dbscale_telemetry_invalid_snapshots_total",
      "Snapshots returned with valid == false (warm-up)");
  m.telemetry_incremental_computes_total = r.Counter(
      "dbscale_telemetry_incremental_computes_total",
      "Computes served by the incremental signal engine");
  m.telemetry_batch_computes_total = r.Counter(
      "dbscale_telemetry_batch_computes_total",
      "Computes served by the batch (oracle) path");
  m.telemetry_degraded_windows_total = r.Counter(
      "dbscale_telemetry_degraded_windows_total",
      "Snapshots whose window coverage fell below min_confidence");
  m.telemetry_dropped_samples_total = r.Counter(
      "dbscale_telemetry_dropped_samples_total",
      "Samples dropped by the fault plan before ingestion");
  m.telemetry_rejected_samples_total = r.Counter(
      "dbscale_telemetry_rejected_samples_total",
      "Corrupted samples rejected by the ingestion validity guard");
  m.telemetry_stale_samples_total = r.Counter(
      "dbscale_telemetry_stale_samples_total",
      "Stale reads replayed in place of fresh samples");
  m.telemetry_outlier_samples_total = r.Counter(
      "dbscale_telemetry_outlier_samples_total",
      "Samples ingested with outlier-inflated latency/waits");

  m.budget_available = r.Gauge(
      "dbscale_budget_available",
      "Token-bucket budget available at the last decision");
  m.budget_spent = r.Gauge(
      "dbscale_budget_spent", "Cumulative budget charged");
  m.budget_clamps_total = r.Counter(
      "dbscale_budget_clamps_total",
      "Decisions forcibly downsized by the budget");

  m.balloon_ticks_total = r.Counter(
      "dbscale_balloon_ticks_total", "Balloon shrink ticks taken");
  m.balloon_aborts_total = r.Counter(
      "dbscale_balloon_aborts_total",
      "Balloon passes aborted on an I/O increase");
  m.balloon_completions_total = r.Counter(
      "dbscale_balloon_completions_total",
      "Balloon passes confirming low memory demand");

  m.host_migrations_begun_total = r.Counter(
      "dbscale_host_migrations_begun_total",
      "Migrations issued by the placement-aware actuation path");
  m.host_migrations_total = r.Counter(
      "dbscale_host_migrations_total", "Migrations completed (cutover)");
  m.host_migration_failures_total = r.Counter(
      "dbscale_host_migration_failures_total",
      "Migrations that failed at cutover");
  m.host_migration_downtime_intervals_total = r.Counter(
      "dbscale_host_migration_downtime_intervals_total",
      "Migration blackout intervals billed against tenants");
  m.host_placement_holds_total = r.Counter(
      "dbscale_host_placement_holds_total",
      "Scale-ups held because no host had capacity");
  m.host_saturated_host_intervals_total = r.Counter(
      "dbscale_host_saturated_host_intervals_total",
      "Host-intervals with CPU demand pressure above capacity");

  m.fleet_tenants_total = r.Counter(
      "dbscale_fleet_tenants_total", "Tenants simulated by the fleet");
  m.fleet_tenant_intervals_total = r.Counter(
      "dbscale_fleet_tenant_intervals_total",
      "Tenant 5-minute intervals simulated");
  m.fleet_container_changes_total = r.Counter(
      "dbscale_fleet_container_changes_total",
      "Container-change events across the fleet");
  m.fleet_hourly_records_total = r.Counter(
      "dbscale_fleet_hourly_records_total",
      "Hourly-median telemetry records produced");
  m.fleet_change_step_rungs = r.Histogram(
      "dbscale_fleet_change_step_rungs",
      "|rung step| per container-change event",
      HistogramSpec::Linear(1.0, 1.0, 8));
  m.fleet_inter_event_minutes = r.Histogram(
      "dbscale_fleet_inter_event_minutes",
      "Minutes between successive change events",
      HistogramSpec::Exponential(5.0, 2.0, 12));
  m.fleet_resize_failures_total = r.Counter(
      "dbscale_fleet_resize_failures_total",
      "Fleet resize attempts that failed or were rejected");
  m.fleet_resize_retries_total = r.Counter(
      "dbscale_fleet_resize_retries_total",
      "Fleet resize attempts re-issued after a failure");

  return m;
}

Observability::Observability() : Observability(Options()) {}

Observability::Observability(Options options)
    : pipeline_(PipelineMetrics::Register(&registry_)),
      trace_(options.trace) {
  primary_.Attach(&registry_);
}

void Observability::AttachPrimary() { primary_.Attach(&registry_); }

Sink Observability::PrimarySink(bool with_trace) {
  AttachPrimary();
  Sink sink;
  sink.pipeline = &pipeline_;
  sink.metrics = MetricSink{&primary_};
  if (with_trace) sink.trace = TraceSink{&trace_, kNoSpan};
  return sink;
}

void Observability::Reset() {
  primary_.ResetValues();
  trace_.Clear();
}

}  // namespace dbscale::obs
