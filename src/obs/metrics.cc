// Record paths live here and are covered by the alloc-hot-path lint rule:
// Add/Set/Observe/MergeFrom must stay allocation-free. Registration and
// Attach are the sanctioned setup-time allocation points and carry
// explicit suppressions.

#include "src/obs/metrics.h"

#include <cmath>

#include "src/common/check.h"

namespace dbscale::obs {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

HistogramSpec HistogramSpec::Exponential(double start, double factor,
                                         size_t num_buckets) {
  DBSCALE_CHECK(start > 0.0 && factor > 1.0);
  DBSCALE_CHECK(num_buckets >= 1 && num_buckets <= kMaxHistogramBuckets);
  HistogramSpec spec;
  spec.num_buckets = num_buckets;
  double bound = start;
  for (size_t i = 0; i < num_buckets; ++i) {
    spec.upper_bounds[i] = bound;
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::Linear(double start, double step,
                                    size_t num_buckets) {
  DBSCALE_CHECK(step > 0.0);
  DBSCALE_CHECK(num_buckets >= 1 && num_buckets <= kMaxHistogramBuckets);
  HistogramSpec spec;
  spec.num_buckets = num_buckets;
  for (size_t i = 0; i < num_buckets; ++i) {
    spec.upper_bounds[i] = start + step * static_cast<double>(i);
  }
  return spec;
}

MetricId MetricRegistry::Counter(const std::string& name,
                                 const std::string& help) {
  return Register(name, help, MetricKind::kCounter, HistogramSpec{});
}

MetricId MetricRegistry::Gauge(const std::string& name,
                               const std::string& help) {
  return Register(name, help, MetricKind::kGauge, HistogramSpec{});
}

MetricId MetricRegistry::Histogram(const std::string& name,
                                   const std::string& help,
                                   const HistogramSpec& spec) {
  DBSCALE_CHECK(spec.num_buckets >= 1 &&
                spec.num_buckets <= kMaxHistogramBuckets);
  for (size_t i = 1; i < spec.num_buckets; ++i) {
    DBSCALE_CHECK(spec.upper_bounds[i] > spec.upper_bounds[i - 1]);
  }
  return Register(name, help, MetricKind::kHistogram, spec);
}

MetricId MetricRegistry::Register(const std::string& name,
                                  const std::string& help, MetricKind kind,
                                  const HistogramSpec& spec) {
  DBSCALE_CHECK(!name.empty());
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    // Idempotent re-registration: same name must mean the same instrument.
    const MetricInfo& existing = instruments_[it->second];
    DBSCALE_CHECK(existing.kind == kind);
    if (kind == MetricKind::kHistogram) {
      DBSCALE_CHECK(existing.histogram.num_buckets == spec.num_buckets);
    }
    return it->second;
  }
  MetricInfo info;
  info.name = name;
  info.help = help;
  info.kind = kind;
  info.histogram = spec;
  info.first_slot = num_slots_;
  // Histogram slots: per-bucket counts, overflow, sum, count.
  info.num_slots =
      kind == MetricKind::kHistogram ? spec.num_buckets + 3 : 1;
  num_slots_ += info.num_slots;

  const MetricId id = static_cast<MetricId>(instruments_.size());
  // Setup-time registration; recording never reaches this path.
  instruments_.push_back(std::move(info));  // dbscale-lint: allow(alloc-hot-path)
  by_name_.emplace(instruments_.back().name, id);
  return id;
}

void MetricShard::Attach(const MetricRegistry* registry) {
  DBSCALE_CHECK(registry != nullptr);
  DBSCALE_CHECK(registry_ == nullptr || registry_ == registry);
  const size_t old_instruments =
      registry_ == nullptr ? 0 : slot_instruments_;
  registry_ = registry;
  // Setup-time growth; existing slots (and their values) are preserved
  // because instruments are append-only and slots are assigned in order.
  slots_.resize(registry->num_slots(), 0.0);  // dbscale-lint: allow(alloc-hot-path)
  // New gauges start at the NaN "never set" sentinel.
  for (size_t i = old_instruments; i < registry->num_instruments(); ++i) {
    const MetricInfo& info = registry->info(static_cast<MetricId>(i));
    if (info.kind == MetricKind::kGauge) {
      slots_[info.first_slot] = std::nan("");
    }
  }
  slot_instruments_ = registry->num_instruments();
}

void MetricShard::Add(MetricId id, double delta) {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kCounter);
  DBSCALE_CHECK(info.first_slot < slots_.size());
  slots_[info.first_slot] += delta;
}

void MetricShard::Set(MetricId id, double value) {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kGauge);
  DBSCALE_CHECK(info.first_slot < slots_.size());
  slots_[info.first_slot] = value;
}

void MetricShard::Observe(MetricId id, double value) {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kHistogram);
  DBSCALE_CHECK(info.first_slot + info.num_slots <= slots_.size());
  double* slots = slots_.data() + info.first_slot;
  const size_t nb = info.histogram.num_buckets;
  size_t bucket = nb;  // overflow unless a bound admits the value
  for (size_t i = 0; i < nb; ++i) {
    if (value <= info.histogram.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  slots[bucket] += 1.0;
  slots[nb + 1] += value;  // sum
  slots[nb + 2] += 1.0;    // count
}

double MetricShard::counter(MetricId id) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kCounter);
  return slots_[info.first_slot];
}

double MetricShard::gauge(MetricId id) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kGauge);
  return slots_[info.first_slot];
}

double MetricShard::hist_bucket(MetricId id, size_t bucket) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kHistogram);
  DBSCALE_CHECK(bucket < info.histogram.num_buckets);
  return slots_[info.first_slot + bucket];
}

double MetricShard::hist_overflow(MetricId id) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kHistogram);
  return slots_[info.first_slot + info.histogram.num_buckets];
}

double MetricShard::hist_sum(MetricId id) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kHistogram);
  return slots_[info.first_slot + info.histogram.num_buckets + 1];
}

double MetricShard::hist_count(MetricId id) const {
  const MetricInfo& info = registry_->info(id);
  DBSCALE_CHECK(info.kind == MetricKind::kHistogram);
  return slots_[info.first_slot + info.histogram.num_buckets + 2];
}

void MetricShard::MergeFrom(const MetricShard& other) {
  DBSCALE_CHECK(registry_ != nullptr && registry_ == other.registry_);
  // The destination may have been attached after further registrations;
  // merge over the instruments the source knows about.
  DBSCALE_CHECK(other.slots_.size() <= slots_.size());
  for (size_t i = 0; i < other.slot_instruments_; ++i) {
    const MetricInfo& info = registry_->info(static_cast<MetricId>(i));
    double* dst = slots_.data() + info.first_slot;
    const double* src = other.slots_.data() + info.first_slot;
    if (info.kind == MetricKind::kGauge) {
      if (!std::isnan(src[0])) dst[0] = src[0];
      continue;
    }
    for (size_t s = 0; s < info.num_slots; ++s) dst[s] += src[s];
  }
}

void ShardPool::Attach(const MetricRegistry* registry, size_t num_shards) {
  // Setup-time growth (before the fan-out), like MetricShard::Attach.
  shards_.resize(num_shards);  // dbscale-lint: allow(alloc-hot-path)
  for (MetricShard& shard : shards_) shard.Attach(registry);
}

void ShardPool::MergeInto(MetricShard* primary) const {
  DBSCALE_CHECK(primary != nullptr);
  for (const MetricShard& shard : shards_) primary->MergeFrom(shard);
}

void MetricShard::ResetValues() {
  if (registry_ == nullptr) return;
  for (size_t i = 0; i < slot_instruments_; ++i) {
    const MetricInfo& info = registry_->info(static_cast<MetricId>(i));
    const double init =
        info.kind == MetricKind::kGauge ? std::nan("") : 0.0;
    for (size_t s = 0; s < info.num_slots; ++s) {
      slots_[info.first_slot + s] = init;
    }
  }
}

}  // namespace dbscale::obs
