// Span capture is a hot record path (one small tree per tenant-interval)
// and must stay allocation-free in steady state: the constructor
// preallocates the ring and every per-interval vector's capacity; capture
// only push_backs within that capacity.

#include "src/obs/trace.h"

#include "src/common/check.h"

namespace dbscale::obs {

TraceRecorder::TraceRecorder() : TraceRecorder(Options()) {}

TraceRecorder::TraceRecorder(Options options) : options_(options) {
  DBSCALE_CHECK(options.max_intervals >= 1);
  DBSCALE_CHECK(options.max_spans_per_interval >= 1);
  // Setup-time preallocation of the whole ring.
  ring_.resize(options.max_intervals);  // dbscale-lint: allow(alloc-hot-path)
  for (IntervalTrace& tree : ring_) {
    tree.spans.reserve(options.max_spans_per_interval);  // dbscale-lint: allow(alloc-hot-path)
  }
}

IntervalTrace* TraceRecorder::current() {
  if (!open_) return nullptr;
  return &ring_[static_cast<size_t>((total_intervals_ - 1) %
                                    ring_.size())];
}

Span* TraceRecorder::span(SpanId id) {
  IntervalTrace* tree = current();
  if (tree == nullptr || id == kNoSpan) return nullptr;
  if (static_cast<size_t>(id) >= tree->spans.size()) return nullptr;
  return &tree->spans[id];
}

void TraceRecorder::BeginInterval(int index, SimTime start) {
  DBSCALE_CHECK(!open_);
  ++total_intervals_;
  open_ = true;
  IntervalTrace* tree = current();
  tree->interval_index = index;
  tree->spans.clear();  // capacity is retained
  tree->dropped_spans = 0;
  const SpanId root = StartSpan("interval", start, kNoSpan);
  DBSCALE_CHECK(root == 0);
  AddAttr(root, "index", static_cast<double>(index));
}

SpanId TraceRecorder::root() const {
  return open_ ? SpanId{0} : kNoSpan;
}

SpanId TraceRecorder::StartSpan(const char* name, SimTime start,
                                SpanId parent) {
  IntervalTrace* tree = current();
  if (tree == nullptr) return kNoSpan;
  if (tree->spans.size() >= options_.max_spans_per_interval) {
    // Deterministic overflow: drop, count, never grow.
    ++tree->dropped_spans;
    ++dropped_spans_;
    return kNoSpan;
  }
  Span s;
  s.parent = parent;
  s.name = name;
  s.start = start;
  s.end = start;
  const SpanId id = static_cast<SpanId>(tree->spans.size());
  tree->spans.push_back(s);  // within reserved capacity
  ++total_spans_;
  return id;
}

void TraceRecorder::EndSpan(SpanId id, SimTime end) {
  Span* s = span(id);
  if (s != nullptr) s->end = end;
}

void TraceRecorder::AddAttr(SpanId id, const char* key, double value) {
  Span* s = span(id);
  if (s == nullptr) return;
  if (s->num_attrs >= kMaxSpanAttrs) {
    ++s->dropped_attrs;
    return;
  }
  s->attrs[s->num_attrs++] = SpanAttr{key, value, nullptr};
}

void TraceRecorder::AddAttrStr(SpanId id, const char* key,
                               const char* value) {
  Span* s = span(id);
  if (s == nullptr) return;
  if (s->num_attrs >= kMaxSpanAttrs) {
    ++s->dropped_attrs;
    return;
  }
  s->attrs[s->num_attrs++] = SpanAttr{key, 0.0, value};
}

void TraceRecorder::EndInterval(SimTime end) {
  IntervalTrace* tree = current();
  DBSCALE_CHECK(tree != nullptr);
  tree->spans[0].end = end;
  open_ = false;
}

size_t TraceRecorder::num_intervals() const {
  const uint64_t cap = static_cast<uint64_t>(ring_.size());
  return static_cast<size_t>(total_intervals_ < cap ? total_intervals_
                                                    : cap);
}

const IntervalTrace& TraceRecorder::interval(size_t i) const {
  DBSCALE_CHECK(i < num_intervals());
  // Oldest retained tree first.
  const uint64_t cap = static_cast<uint64_t>(ring_.size());
  const uint64_t oldest =
      total_intervals_ <= cap ? 0 : total_intervals_ - cap;
  return ring_[static_cast<size_t>((oldest + i) % cap)];
}

void TraceRecorder::Clear() {
  for (IntervalTrace& tree : ring_) {
    tree.interval_index = -1;
    tree.spans.clear();
    tree.dropped_spans = 0;
  }
  total_intervals_ = 0;
  total_spans_ = 0;
  dropped_spans_ = 0;
  open_ = false;
}

}  // namespace dbscale::obs
