// The well-known instrument schema of the scaling pipeline, plus the
// Observability bundle the harnesses hand around.
//
// Every instrument of the closed loop (simulation intervals, telemetry
// computes, budget, balloon, fleet aggregation) is pre-registered here at
// construction — the engine additionally registers its own block via
// engine::EngineMetrics::Register, and the scaler registers one decision
// counter per ExplanationCode via scaler::RegisterDecisionCounters. After
// any late registration, AttachPrimary() re-sizes the primary shard; all
// of that is setup-time, before the first recorded value.

#ifndef DBSCALE_OBS_PIPELINE_H_
#define DBSCALE_OBS_PIPELINE_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dbscale::obs {

/// Instrument ids shared across the pipeline layers (all names carry the
/// dbscale_ prefix; see pipeline.cc for the exact set).
struct PipelineMetrics {
  // Simulation interval loop.
  MetricId sim_intervals_total;
  MetricId sim_resizes_total;
  MetricId sim_scale_ups_total;
  MetricId sim_scale_downs_total;
  MetricId sim_cost_total;
  MetricId sim_requests_total;
  MetricId sim_errors_total;
  MetricId sim_memory_limit_applies_total;
  MetricId sim_interval_latency_p95_ms;  // histogram

  // Resize actuation lifecycle (fault layer).
  MetricId resize_requests_total;
  MetricId resize_applies_total;
  MetricId resize_failures_total;
  MetricId resize_rejections_total;
  MetricId resize_retries_total;
  MetricId resize_pending_intervals_total;

  // Telemetry manager.
  MetricId telemetry_computes_total;
  MetricId telemetry_invalid_snapshots_total;
  MetricId telemetry_incremental_computes_total;
  MetricId telemetry_batch_computes_total;
  MetricId telemetry_degraded_windows_total;
  // Telemetry fault injection (recorded at the ingestion site).
  MetricId telemetry_dropped_samples_total;
  MetricId telemetry_rejected_samples_total;
  MetricId telemetry_stale_samples_total;
  MetricId telemetry_outlier_samples_total;

  // Budget manager (recorded by the autoscaler each decision).
  MetricId budget_available;  // gauge
  MetricId budget_spent;      // gauge
  MetricId budget_clamps_total;

  // Balloon controller.
  MetricId balloon_ticks_total;
  MetricId balloon_aborts_total;
  MetricId balloon_completions_total;

  // Host placement & interference plane.
  MetricId host_migrations_begun_total;
  MetricId host_migrations_total;
  MetricId host_migration_failures_total;
  MetricId host_migration_downtime_intervals_total;
  MetricId host_placement_holds_total;
  MetricId host_saturated_host_intervals_total;

  // Fleet simulator.
  MetricId fleet_tenants_total;
  MetricId fleet_tenant_intervals_total;
  MetricId fleet_container_changes_total;
  MetricId fleet_hourly_records_total;
  MetricId fleet_change_step_rungs;    // histogram
  MetricId fleet_inter_event_minutes;  // histogram
  MetricId fleet_resize_failures_total;
  MetricId fleet_resize_retries_total;

  /// Registers (idempotently) every pipeline instrument on `registry`.
  static PipelineMetrics Register(MetricRegistry* registry);
};

/// \brief The nullable observability handle threaded through the decision
/// cycle (PolicyInput, TelemetryManager::Compute, the fleet fan-out).
/// Copy-cheap; everything no-ops when the pointers are null.
struct Sink {
  const PipelineMetrics* pipeline = nullptr;
  MetricSink metrics;
  TraceSink trace;

  bool enabled() const { return metrics.enabled() || trace.enabled(); }
  /// This sink with new trace spans nesting under `span`.
  Sink Under(SpanId span) const {
    Sink s = *this;
    s.trace = trace.Under(span);
    return s;
  }
};

/// \brief Owns the registry, the primary (merged) shard, and the trace
/// ring: everything a run needs to observe itself. Construct one, point
/// SimulationOptions/FleetOptions at it, export afterwards.
class Observability {
 public:
  struct Options {
    TraceRecorder::Options trace;
  };

  Observability();
  explicit Observability(Options options);

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  const PipelineMetrics& pipeline() const { return pipeline_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// (Re)sizes the primary shard to the registry; idempotent, call after
  /// late registrations and before recording (setup-time allocation).
  void AttachPrimary();
  MetricShard& primary() { return primary_; }
  const MetricShard& primary() const { return primary_; }

  /// Sink recording into the primary shard (and tracing when `trace` is
  /// true). Single-threaded use only — parallel callers use per-worker
  /// shards merged deterministically instead.
  Sink PrimarySink(bool with_trace = true);

  /// Clears recorded values and retained traces (instruments stay).
  void Reset();

 private:
  MetricRegistry registry_;
  PipelineMetrics pipeline_;
  MetricShard primary_;
  TraceRecorder trace_;
};

}  // namespace dbscale::obs

#endif  // DBSCALE_OBS_PIPELINE_H_
