// Exporters for the observability layer: JSONL span trees, Prometheus
// text-format metrics, CSV metrics — plus FNV-1a digests over the
// canonical exported bytes (the determinism tests compare these across
// thread counts and runs).
//
// Exporting is report-time code: it allocates freely and is never on the
// per-interval record path.

#ifndef DBSCALE_OBS_EXPORT_H_
#define DBSCALE_OBS_EXPORT_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dbscale::obs {

/// Appends one JSON object per span, one line per span, intervals oldest
/// first. Schema (stable; validated by tools/obs/check_obs_output.py):
///   {"interval":<int>,"span":<id>,"parent":<id|null>,"name":"...",
///    "start_us":<int>,"end_us":<int>,"attrs":{"k":<num|"str">,...}}
void AppendSpansJsonl(const TraceRecorder& recorder, std::string& out);

/// Appends Prometheus text format: # HELP/# TYPE per metric family, then
/// samples. Histograms emit cumulative <name>_bucket{le="..."} series plus
/// _sum and _count. Never-set gauges print 0.
void AppendPrometheus(const MetricRegistry& registry,
                      const MetricShard& shard, std::string& out);

/// Appends CSV: header `metric,kind,le,value`; histograms expand to
/// cumulative bucket rows (le = bound or +Inf) plus sum and count rows.
void AppendMetricsCsv(const MetricRegistry& registry,
                      const MetricShard& shard, std::string& out);

/// FNV-1a 64-bit over the canonical Prometheus export.
uint64_t MetricsDigest(const MetricRegistry& registry,
                       const MetricShard& shard);

/// FNV-1a 64-bit over the canonical JSONL span export.
uint64_t TraceDigest(const TraceRecorder& recorder);

/// FNV-1a 64-bit of a byte string (exposed for tests).
uint64_t Fnv1a64(const std::string& bytes);

}  // namespace dbscale::obs

#endif  // DBSCALE_OBS_EXPORT_H_
