#include "src/telemetry/store.h"

#include <utility>

#include "src/common/check.h"

namespace dbscale::telemetry {

TelemetryStore::TelemetryStore(size_t max_samples)
    : max_samples_(max_samples) {
  DBSCALE_CHECK(max_samples > 0);
}

// dbscale-hot: runs once per telemetry sample for every tenant. Grows the
// backing vector only until retention is reached; at capacity it recycles
// the oldest slot in place (no allocation, no element shifting).
void TelemetryStore::Append(TelemetrySample sample) {
  if (!samples_.empty()) {
    // Periods must be appended in time order.
    DBSCALE_DCHECK(sample.period_end >= back().period_end);
  }
  if (samples_.size() < max_samples_) {
    samples_.push_back(std::move(sample));
  } else {
    samples_[head_] = std::move(sample);
    ++head_;
    if (head_ == samples_.size()) head_ = 0;
  }
  ++total_appended_;
}

void TelemetryStore::Clear() {
  samples_.clear();
  head_ = 0;
  ++clear_epoch_;
}

std::vector<const TelemetrySample*> TelemetryStore::Range(
    SimTime since, SimTime until) const {
  std::vector<const TelemetrySample*> out;
  for (size_t i = 0; i < samples_.size(); ++i) {
    const TelemetrySample& s = samples_[Phys(i)];
    if (s.period_end > since && s.period_end <= until) out.push_back(&s);
  }
  return out;
}

std::vector<const TelemetrySample*> TelemetryStore::Recent(size_t n) const {
  std::vector<const TelemetrySample*> out;
  RecentInto(n, out);
  return out;
}

// dbscale-hot: per-decision window extraction; fills caller scratch.
void TelemetryStore::RecentInto(
    size_t n, std::vector<const TelemetrySample*>& out) const {
  out.clear();
  size_t start = samples_.size() > n ? samples_.size() - n : 0;
  for (size_t i = start; i < samples_.size(); ++i) {
    out.push_back(&samples_[Phys(i)]);
  }
}

std::vector<double> TelemetryStore::Extract(
    size_t n,
    const std::function<double(const TelemetrySample&)>& fn) const {
  std::vector<double> out;
  size_t start = samples_.size() > n ? samples_.size() - n : 0;
  out.reserve(samples_.size() - start);
  for (size_t i = start; i < samples_.size(); ++i) {
    out.push_back(fn(samples_[Phys(i)]));
  }
  return out;
}

}  // namespace dbscale::telemetry
