// TelemetryManager (Section 3 of the paper): transforms raw telemetry
// samples into the robust signals the demand estimator consumes.
//
// Per resource dimension it produces
//   * robust aggregates — median utilization, median wait-time magnitude,
//     wait share of total waits — over an aggregation window;
//   * Theil-Sen trends (alpha sign-agreement test) of utilization and waits
//     over a trend window;
//   * Spearman rank correlation between the resource's waits / utilization
//     and latency over a correlation window.
// Plus workload-level signals: latency aggregate (average or p95 per the
// tenant's goal type), latency trend, throughput.

#ifndef DBSCALE_TELEMETRY_MANAGER_H_
#define DBSCALE_TELEMETRY_MANAGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/pipeline.h"
#include "src/stats/incremental.h"
#include "src/stats/spearman.h"
#include "src/stats/theil_sen.h"
#include "src/telemetry/store.h"

namespace dbscale::telemetry {

/// Which latency aggregate the tenant's goal (and therefore the latency
/// signal) is defined over.
enum class LatencyAggregate { kAverage, kP95 };

const char* LatencyAggregateToString(LatencyAggregate agg);

/// Per-resource-dimension signals.
struct ResourceSignals {
  /// Median percent utilization over the aggregation window.
  double utilization_pct = 0.0;
  /// Median per-sample wait magnitude (ms) attributed to this resource.
  double wait_ms = 0.0;
  /// Median wait magnitude per completed request (ms/request) — the
  /// container-size-independent form the demand estimator thresholds.
  double wait_ms_per_request = 0.0;
  /// This resource's share (0..100) of all waits over the window.
  double wait_pct = 0.0;
  /// Trends over the trend window.
  stats::TrendResult utilization_trend;
  stats::TrendResult wait_trend;
  /// Spearman rho of (resource wait, latency) and (utilization, latency)
  /// over the correlation window; 0 when not computable.
  double wait_latency_correlation = 0.0;
  double utilization_latency_correlation = 0.0;
};

/// The full signal snapshot handed to the demand estimator each decision.
struct SignalSnapshot {
  SimTime time;
  bool valid = false;  ///< false when there is not enough telemetry yet

  /// Latency signal in the tenant's goal aggregate (ms), median over the
  /// aggregation window of per-sample aggregates.
  double latency_ms = 0.0;
  stats::TrendResult latency_trend;
  LatencyAggregate latency_aggregate = LatencyAggregate::kP95;

  std::array<ResourceSignals, container::kNumResources> resources{};

  /// Share of waits per wait class (0..100) over the window; feeds
  /// explanations and the Figure 13(c) drill-down.
  std::array<double, kNumWaitClasses> wait_pct_by_class{};
  /// Median per-sample total wait (ms).
  double total_wait_ms = 0.0;

  double throughput_rps = 0.0;
  double memory_used_mb = 0.0;
  double physical_reads_per_sec = 0.0;
  container::ResourceVector allocation;

  /// Fraction (0..1] of the aggregation window's time span covered by
  /// samples. Dropped or rejected samples leave time gaps, so this is the
  /// completeness of the evidence behind the aggregates; 1.0 on a gapless
  /// window.
  double confidence = 1.0;
  /// True when confidence fell below the manager's min_confidence: the
  /// signals were computed over an incomplete window and must not drive
  /// scaling (the consumer holds with a degraded-telemetry explanation).
  bool degraded = false;

  const ResourceSignals& resource(container::ResourceKind kind) const {
    return resources[static_cast<size_t>(kind)];
  }

  std::string ToString() const;
};

/// Window configuration, expressed in number of samples.
struct TelemetryManagerOptions {
  /// Robust-aggregate window (the paper: minutes of 5-second samples).
  size_t aggregation_samples = 12;
  /// Trend window; must be >= 3 for Theil-Sen.
  size_t trend_samples = 24;
  /// Correlation window.
  size_t correlation_samples = 24;
  /// Theil-Sen sign-agreement acceptance fraction (paper: 0.70).
  double trend_accept_fraction = 0.70;
  /// Latency aggregate for the latency signal.
  LatencyAggregate latency_aggregate = LatencyAggregate::kP95;
  /// Minimum aggregation-window coverage below which the snapshot is
  /// flagged degraded (graceful degradation under telemetry faults).
  double min_confidence = 0.7;
  /// Maintain signals incrementally across Compute calls (requires the
  /// caller to reuse one SignalScratch per store). Results are
  /// bit-identical to the batch recomputation, which remains available as
  /// the oracle by setting this false; Compute also falls back to batch
  /// when no scratch is passed or a window exceeds store retention.
  bool incremental = true;
};

/// \brief Sliding state behind the incremental Compute path.
///
/// Owns one incremental structure per signal series: sorted rings for the
/// robust aggregates, slope multisets (over one shared SlopeArena) for the
/// Theil-Sen trends, and rank windows for the Spearman correlations.
/// Sync() diffs the store's append counter against its own high-water mark
/// and feeds each newly appended sample through every structure, so a
/// steady-state Compute does O(W log W) work instead of recomputing the
/// O(W^2) pairwise-slope pass from scratch.
///
/// Every signal read off this engine is bit-identical to the batch path on
/// the same store (see stats/incremental.h for why); the batch path stays
/// in the code as the oracle.
class IncrementalSignalEngine {
 public:
  /// Brings the derived state up to date with `store` under `options`.
  /// Rebuilds from retained history when the store, its clear epoch, or
  /// the window configuration changed, or when more samples arrived than
  /// the store still retains. Returns false when the incremental path
  /// cannot serve this configuration (a window exceeds store retention or
  /// the Theil-Sen point cap) and the caller must use the batch path.
  bool Sync(const TelemetryStore& store,
            const TelemetryManagerOptions& options);

 private:
  friend class TelemetryManager;

  struct PerResource {
    stats::SlidingOrderStats agg_util;
    stats::SlidingOrderStats agg_wait;
    stats::SlidingOrderStats agg_wait_per_req;
    stats::IncrementalTheilSen trend_util;
    stats::IncrementalTheilSen trend_wait;
    stats::SlidingRankWindow corr_util;
    stats::SlidingRankWindow corr_wait;
  };

  /// Resets every structure for `options` (the one allocating step).
  void Configure(const TelemetryManagerOptions& options);
  /// Feeds one appended sample through every sliding structure.
  void Observe(const TelemetrySample& sample);

  // Identity of the observed history: which store, as of which clear
  // epoch, through how many total appends.
  const TelemetryStore* store_ = nullptr;
  uint64_t clear_epoch_ = 0;
  uint64_t observed_ = 0;
  bool configured_ = false;
  TelemetryManagerOptions config_{};

  /// Shared node pool for all Theil-Sen slope multisets, sized once at
  /// Configure: (1 latency + 2 per resource) * W*(W-1)/2 nodes.
  stats::SlopeArena slope_arena_;

  stats::SlidingOrderStats agg_latency_;
  stats::SlidingOrderStats agg_throughput_;
  stats::SlidingOrderStats agg_memory_;
  stats::SlidingOrderStats agg_reads_;
  stats::SlidingOrderStats agg_total_wait_;
  stats::IncrementalTheilSen trend_latency_;
  stats::SlidingRankWindow corr_latency_;
  std::array<PerResource, container::kNumResources> resources_{};
};

/// Reusable buffers for Compute. The per-interval signal path is hot at
/// fleet scale (one Compute per tenant-interval); handing the same scratch
/// to every call makes Compute allocation-free after the first interval.
/// One scratch per caller thread — never share across threads.
struct SignalScratch {
  std::vector<const TelemetrySample*> agg_window;
  std::vector<const TelemetrySample*> trend_window;
  std::vector<const TelemetrySample*> corr_window;
  /// General per-window value buffers (cleared and refilled per signal).
  std::vector<double> values_a;
  std::vector<double> values_b;
  std::vector<double> values_c;
  std::vector<double> values_d;
  /// Latency over the correlation window; alive across the resource loop.
  std::vector<double> corr_latency;
  stats::TheilSenScratch theil_sen;
  stats::SpearmanScratch spearman;
  /// Incremental engine, created lazily by the first incremental Compute.
  /// Living in the scratch (not the manager) keeps TelemetryManager const
  /// and shareable across threads: one engine per caller thread/store.
  std::unique_ptr<IncrementalSignalEngine> incremental;
};

/// \brief Computes SignalSnapshots from a TelemetryStore.
class TelemetryManager {
 public:
  explicit TelemetryManager(TelemetryManagerOptions options = {});

  /// Validates option consistency (window sizes, fractions).
  Status Validate() const;

  /// Computes the signal snapshot as of `now`. If fewer than 2 samples are
  /// available the snapshot is returned with valid = false. Passing the
  /// same `scratch` every interval eliminates all per-call heap
  /// allocations; nullptr falls back to call-local buffers.
  ///
  /// With options().incremental (the default) and a reused scratch, the
  /// signals are maintained across calls by the scratch's
  /// IncrementalSignalEngine — O(W log W) per interval instead of the
  /// O(W^2) batch recomputation — with bit-identical results. Without a
  /// scratch, or when the engine cannot serve the configuration, the batch
  /// path runs.
  ///
  /// `sink` (when enabled) counts computes, invalid snapshots, and which
  /// path served the call — allocation-free, like the rest of Compute.
  SignalSnapshot Compute(const TelemetryStore& store, SimTime now,
                         SignalScratch* scratch = nullptr,
                         const obs::Sink& sink = obs::Sink()) const;

  const TelemetryManagerOptions& options() const { return options_; }

 private:
  /// Full recomputation from the store — the oracle the incremental path
  /// is tested against, and the fallback when it cannot run.
  SignalSnapshot ComputeBatch(const TelemetryStore& store, SimTime now,
                              SignalScratch* scratch) const;
  /// Reads every signal off the scratch's synced incremental engine.
  SignalSnapshot ComputeIncremental(const TelemetryStore& store, SimTime now,
                                    SignalScratch* scratch) const;

  TelemetryManagerOptions options_;
  stats::TheilSenEstimator trend_estimator_;
};

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_MANAGER_H_
