// TelemetryManager (Section 3 of the paper): transforms raw telemetry
// samples into the robust signals the demand estimator consumes.
//
// Per resource dimension it produces
//   * robust aggregates — median utilization, median wait-time magnitude,
//     wait share of total waits — over an aggregation window;
//   * Theil-Sen trends (alpha sign-agreement test) of utilization and waits
//     over a trend window;
//   * Spearman rank correlation between the resource's waits / utilization
//     and latency over a correlation window.
// Plus workload-level signals: latency aggregate (average or p95 per the
// tenant's goal type), latency trend, throughput.

#ifndef DBSCALE_TELEMETRY_MANAGER_H_
#define DBSCALE_TELEMETRY_MANAGER_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/stats/spearman.h"
#include "src/stats/theil_sen.h"
#include "src/telemetry/store.h"

namespace dbscale::telemetry {

/// Which latency aggregate the tenant's goal (and therefore the latency
/// signal) is defined over.
enum class LatencyAggregate { kAverage, kP95 };

const char* LatencyAggregateToString(LatencyAggregate agg);

/// Per-resource-dimension signals.
struct ResourceSignals {
  /// Median percent utilization over the aggregation window.
  double utilization_pct = 0.0;
  /// Median per-sample wait magnitude (ms) attributed to this resource.
  double wait_ms = 0.0;
  /// Median wait magnitude per completed request (ms/request) — the
  /// container-size-independent form the demand estimator thresholds.
  double wait_ms_per_request = 0.0;
  /// This resource's share (0..100) of all waits over the window.
  double wait_pct = 0.0;
  /// Trends over the trend window.
  stats::TrendResult utilization_trend;
  stats::TrendResult wait_trend;
  /// Spearman rho of (resource wait, latency) and (utilization, latency)
  /// over the correlation window; 0 when not computable.
  double wait_latency_correlation = 0.0;
  double utilization_latency_correlation = 0.0;
};

/// The full signal snapshot handed to the demand estimator each decision.
struct SignalSnapshot {
  SimTime time;
  bool valid = false;  ///< false when there is not enough telemetry yet

  /// Latency signal in the tenant's goal aggregate (ms), median over the
  /// aggregation window of per-sample aggregates.
  double latency_ms = 0.0;
  stats::TrendResult latency_trend;
  LatencyAggregate latency_aggregate = LatencyAggregate::kP95;

  std::array<ResourceSignals, container::kNumResources> resources{};

  /// Share of waits per wait class (0..100) over the window; feeds
  /// explanations and the Figure 13(c) drill-down.
  std::array<double, kNumWaitClasses> wait_pct_by_class{};
  /// Median per-sample total wait (ms).
  double total_wait_ms = 0.0;

  double throughput_rps = 0.0;
  double memory_used_mb = 0.0;
  double physical_reads_per_sec = 0.0;
  container::ResourceVector allocation;

  const ResourceSignals& resource(container::ResourceKind kind) const {
    return resources[static_cast<size_t>(kind)];
  }

  std::string ToString() const;
};

/// Window configuration, expressed in number of samples.
struct TelemetryManagerOptions {
  /// Robust-aggregate window (the paper: minutes of 5-second samples).
  size_t aggregation_samples = 12;
  /// Trend window; must be >= 3 for Theil-Sen.
  size_t trend_samples = 24;
  /// Correlation window.
  size_t correlation_samples = 24;
  /// Theil-Sen sign-agreement acceptance fraction (paper: 0.70).
  double trend_accept_fraction = 0.70;
  /// Latency aggregate for the latency signal.
  LatencyAggregate latency_aggregate = LatencyAggregate::kP95;
};

/// Reusable buffers for Compute. The per-interval signal path is hot at
/// fleet scale (one Compute per tenant-interval); handing the same scratch
/// to every call makes Compute allocation-free after the first interval.
/// One scratch per caller thread — never share across threads.
struct SignalScratch {
  std::vector<const TelemetrySample*> agg_window;
  std::vector<const TelemetrySample*> trend_window;
  std::vector<const TelemetrySample*> corr_window;
  /// General per-window value buffers (cleared and refilled per signal).
  std::vector<double> values_a;
  std::vector<double> values_b;
  std::vector<double> values_c;
  std::vector<double> values_d;
  /// Latency over the correlation window; alive across the resource loop.
  std::vector<double> corr_latency;
  stats::TheilSenScratch theil_sen;
  stats::SpearmanScratch spearman;
};

/// \brief Computes SignalSnapshots from a TelemetryStore.
class TelemetryManager {
 public:
  explicit TelemetryManager(TelemetryManagerOptions options = {});

  /// Validates option consistency (window sizes, fractions).
  Status Validate() const;

  /// Computes the signal snapshot as of `now`. If fewer than 2 samples are
  /// available the snapshot is returned with valid = false. Passing the
  /// same `scratch` every interval eliminates all per-call heap
  /// allocations; nullptr falls back to call-local buffers.
  SignalSnapshot Compute(const TelemetryStore& store, SimTime now,
                         SignalScratch* scratch = nullptr) const;

  const TelemetryManagerOptions& options() const { return options_; }

 private:
  TelemetryManagerOptions options_;
  stats::TheilSenEstimator trend_estimator_;
};

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_MANAGER_H_
