// TelemetryStore: the per-tenant history of telemetry samples that the
// telemetry manager reads. Bounded retention (circular ring over a flat
// vector) since signals only look back a few hours at most. The backing
// vector grows lazily up to the retention bound and is then recycled in
// place, so steady-state Append is allocation-free.

#ifndef DBSCALE_TELEMETRY_STORE_H_
#define DBSCALE_TELEMETRY_STORE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/telemetry/sample.h"

namespace dbscale::telemetry {

/// \brief Append-only bounded history of TelemetrySamples.
class TelemetryStore {
 public:
  /// \param max_samples retention; oldest samples are evicted beyond this.
  explicit TelemetryStore(size_t max_samples = 4096);

  void Append(TelemetrySample sample);
  void Clear();

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const TelemetrySample& back() const {
    return samples_[Phys(samples_.size() - 1)];
  }
  /// Logical index: 0 is the oldest retained sample, size()-1 the newest.
  const TelemetrySample& at(size_t i) const { return samples_[Phys(i)]; }

  /// Retention bound this store was constructed with.
  size_t max_samples() const { return max_samples_; }

  /// Total samples ever appended (monotone; unaffected by eviction).
  /// Incremental consumers diff this against their own high-water mark to
  /// learn how many samples arrived since they last observed the store.
  uint64_t total_appended() const { return total_appended_; }

  /// Bumped by every Clear(). A changed epoch tells incremental consumers
  /// that history was discarded and their derived state must be rebuilt.
  uint64_t clear_epoch() const { return clear_epoch_; }

  /// Samples whose period_end falls in (since, until], oldest first.
  std::vector<const TelemetrySample*> Range(SimTime since, SimTime until) const;

  /// The most recent `n` samples (fewer if not available), oldest first.
  std::vector<const TelemetrySample*> Recent(size_t n) const;

  /// Recent() into a caller-provided buffer (cleared first); no allocation
  /// beyond buffer growth.
  void RecentInto(size_t n, std::vector<const TelemetrySample*>& out) const;

  /// Extracts a per-sample scalar over the most recent `n` samples.
  std::vector<double> Extract(
      size_t n, const std::function<double(const TelemetrySample&)>& fn) const;

 private:
  /// Physical slot of logical index `i` (0 = oldest). Until the ring is
  /// full head_ is 0 and logical == physical; afterwards the ring wraps.
  size_t Phys(size_t i) const {
    const size_t p = head_ + i;
    return p < samples_.size() ? p : p - samples_.size();
  }

  size_t max_samples_;
  std::vector<TelemetrySample> samples_;
  size_t head_ = 0;  ///< physical slot of the oldest sample once full
  uint64_t total_appended_ = 0;
  uint64_t clear_epoch_ = 0;
};

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_STORE_H_
