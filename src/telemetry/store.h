// TelemetryStore: the per-tenant history of telemetry samples that the
// telemetry manager reads. Bounded retention (ring buffer) since signals
// only look back a few hours at most.

#ifndef DBSCALE_TELEMETRY_STORE_H_
#define DBSCALE_TELEMETRY_STORE_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/telemetry/sample.h"

namespace dbscale::telemetry {

/// \brief Append-only bounded history of TelemetrySamples.
class TelemetryStore {
 public:
  /// \param max_samples retention; oldest samples are evicted beyond this.
  explicit TelemetryStore(size_t max_samples = 4096);

  void Append(TelemetrySample sample);
  void Clear();

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const TelemetrySample& back() const { return samples_.back(); }
  const TelemetrySample& at(size_t i) const { return samples_[i]; }

  /// Samples whose period_end falls in (since, until], oldest first.
  std::vector<const TelemetrySample*> Range(SimTime since, SimTime until) const;

  /// The most recent `n` samples (fewer if not available), oldest first.
  std::vector<const TelemetrySample*> Recent(size_t n) const;

  /// Recent() into a caller-provided buffer (cleared first); no allocation
  /// beyond buffer growth.
  void RecentInto(size_t n, std::vector<const TelemetrySample*>& out) const;

  /// Extracts a per-sample scalar over the most recent `n` samples.
  std::vector<double> Extract(
      size_t n, const std::function<double(const TelemetrySample&)>& fn) const;

 private:
  size_t max_samples_;
  std::deque<TelemetrySample> samples_;
};

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_STORE_H_
