#include "src/telemetry/wait_class.h"

namespace dbscale::telemetry {

const char* WaitClassToString(WaitClass wc) {
  switch (wc) {
    case WaitClass::kCpu:
      return "CPU";
    case WaitClass::kDiskIo:
      return "DiskIO";
    case WaitClass::kLogIo:
      return "LogIO";
    case WaitClass::kLock:
      return "Lock";
    case WaitClass::kLatch:
      return "Latch";
    case WaitClass::kMemory:
      return "Memory";
    case WaitClass::kBufferPool:
      return "BufferPool";
    case WaitClass::kSystem:
      return "System";
  }
  return "?";
}

std::optional<container::ResourceKind> WaitClassResource(WaitClass wc) {
  switch (wc) {
    case WaitClass::kCpu:
      return container::ResourceKind::kCpu;
    case WaitClass::kDiskIo:
      return container::ResourceKind::kDiskIo;
    case WaitClass::kLogIo:
      return container::ResourceKind::kLogIo;
    case WaitClass::kMemory:
    case WaitClass::kBufferPool:
      return container::ResourceKind::kMemory;
    case WaitClass::kLock:
    case WaitClass::kLatch:
    case WaitClass::kSystem:
      return std::nullopt;
  }
  return std::nullopt;
}

std::array<bool, kNumWaitClasses> WaitClassesForResource(
    container::ResourceKind kind) {
  std::array<bool, kNumWaitClasses> mask{};
  for (WaitClass wc : kAllWaitClasses) {
    auto resource = WaitClassResource(wc);
    if (resource.has_value() && *resource == kind) {
      mask[static_cast<size_t>(wc)] = true;
    }
  }
  return mask;
}

}  // namespace dbscale::telemetry
