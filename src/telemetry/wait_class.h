// Wait-statistics taxonomy (Section 3.1 of the paper).
//
// Mature engines report hundreds of wait types (SQL Server: 300+). The
// paper's estimator collapses them, via rules, into a small set of classes
// keyed to the logical or physical resource the request waited for. We model
// that collapsed layer directly: the simulated engine attributes every
// microsecond a request spends blocked to one of these classes.
//
// Only some classes are *scalable*: waits a larger container can reduce.
// Lock, latch and system waits are bottlenecks beyond resources — the core
// reason utilization-only auto-scaling over-provisions (Figure 13).

#ifndef DBSCALE_TELEMETRY_WAIT_CLASS_H_
#define DBSCALE_TELEMETRY_WAIT_CLASS_H_

#include <array>
#include <optional>

#include "src/container/container.h"

namespace dbscale::telemetry {

enum class WaitClass : int {
  kCpu = 0,         // signal wait: runnable but not scheduled
  kDiskIo = 1,      // data-page read/write queueing
  kLogIo = 2,       // log-write queueing
  kLock = 3,        // application-level (row/table) lock queues
  kLatch = 4,       // short internal synchronization
  kMemory = 5,      // workspace memory grant queues
  kBufferPool = 6,  // waiting for free buffers / page fetch completion
  kSystem = 7,      // checkpoints and other background interference
};

inline constexpr int kNumWaitClasses = 8;
inline constexpr std::array<WaitClass, kNumWaitClasses> kAllWaitClasses = {
    WaitClass::kCpu,    WaitClass::kDiskIo,     WaitClass::kLogIo,
    WaitClass::kLock,   WaitClass::kLatch,      WaitClass::kMemory,
    WaitClass::kBufferPool, WaitClass::kSystem};

const char* WaitClassToString(WaitClass wc);

/// Maps a wait class to the container resource dimension that, if scaled,
/// would relieve it — or nullopt for non-resource waits (lock/latch/system).
/// This is the paper's "rules mapping wait types to resources":
///   CPU signal waits        -> CPU
///   disk I/O waits          -> disk I/O
///   log I/O waits           -> log I/O
///   memory grant waits      -> memory
///   buffer pool waits       -> memory (more cache -> fewer page stalls)
std::optional<container::ResourceKind> WaitClassResource(WaitClass wc);

/// Wait classes attributed to a resource kind (inverse of the above).
std::array<bool, kNumWaitClasses> WaitClassesForResource(
    container::ResourceKind kind);

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_WAIT_CLASS_H_
