#include "src/telemetry/sample.h"

#include "src/common/string_util.h"

namespace dbscale::telemetry {

std::string TelemetrySample::ToString() const {
  std::string waits;
  for (WaitClass wc : kAllWaitClasses) {
    double w = wait_ms[static_cast<size_t>(wc)];
    if (w > 0.0) {
      if (!waits.empty()) waits += " ";
      waits += StrFormat("%s=%.0fms", WaitClassToString(wc), w);
    }
  }
  return StrFormat(
      "[%.0f-%.0fs] util cpu=%.0f%% mem=%.0f%% disk=%.0f%% log=%.0f%% "
      "lat avg=%.1fms p95=%.1fms done=%lld waits{%s}",
      period_start.ToSeconds(), period_end.ToSeconds(), utilization_pct[0],
      utilization_pct[1], utilization_pct[2], utilization_pct[3],
      latency_avg_ms, latency_p95_ms,
      static_cast<long long>(requests_completed), waits.c_str());
}

}  // namespace dbscale::telemetry
