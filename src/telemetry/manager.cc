#include "src/telemetry/manager.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"
#include "src/common/string_util.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"

namespace dbscale::telemetry {

namespace {

using container::ResourceKind;

double ResourceWaitMs(const TelemetrySample& s, ResourceKind kind) {
  double total = 0.0;
  auto mask = WaitClassesForResource(kind);
  for (int wc = 0; wc < kNumWaitClasses; ++wc) {
    if (mask[static_cast<size_t>(wc)]) {
      total += s.wait_ms[static_cast<size_t>(wc)];
    }
  }
  return total;
}

double MedianOrZero(std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return stats::MedianInPlace(values).value_or(0.0);
}

stats::TrendResult TrendOrNone(const stats::TheilSenEstimator& estimator,
                               const std::vector<double>& values,
                               stats::TheilSenScratch* scratch) {
  if (values.size() < 3) return stats::TrendResult{};
  auto result = estimator.FitSequence(values, scratch);
  return result.ok() ? *result : stats::TrendResult{};
}

double CorrelationOrZero(const std::vector<double>& x,
                         const std::vector<double>& y,
                         stats::SpearmanScratch* scratch) {
  if (x.size() < 3 || x.size() != y.size()) return 0.0;
  auto rho = stats::SpearmanCorrelation(x, y, scratch);
  return rho.ok() ? *rho : 0.0;
}

// Incremental mirrors of the three helpers above. Each applies the same
// not-enough-data / error conventions so the two paths agree on every
// input, not just the happy path.

double SlidingMedianOrZero(const stats::SlidingOrderStats& window) {
  if (window.count() == 0) return 0.0;
  return window.Median();
}

stats::TrendResult SlidingTrendOrNone(const stats::TheilSenEstimator& estimator,
                                      const stats::IncrementalTheilSen& window,
                                      stats::TheilSenScratch* scratch) {
  if (window.count() < 3) return stats::TrendResult{};
  auto result = window.Fit(estimator, scratch);
  return result.ok() ? *result : stats::TrendResult{};
}

double SlidingCorrelationOrZero(stats::SlidingRankWindow& x,
                                stats::SlidingRankWindow& y) {
  if (x.size() < 3 || x.size() != y.size()) return 0.0;
  // Spearman's rho is Pearson on the tie-averaged ranks; both paths end in
  // the same PearsonCorrelation call on identical rank vectors.
  auto rho = stats::PearsonCorrelation(x.Ranks(), y.Ranks());
  return rho.ok() ? *rho : 0.0;
}

/// The engine's latency series matches the batch `latency_of` lambda.
double LatencyOf(const TelemetrySample& s, LatencyAggregate agg) {
  return agg == LatencyAggregate::kAverage ? s.latency_avg_ms
                                           : s.latency_p95_ms;
}

/// Fraction of the aggregation window's time span covered by samples.
/// Dropped/rejected samples leave gaps (the span grows, the covered time
/// does not); shared by the batch and incremental paths so both report
/// bit-identical confidence.
double WindowCoverage(const std::vector<const TelemetrySample*>& agg) {
  if (agg.size() < 2) return 1.0;
  double covered = 0.0;
  for (const TelemetrySample* s : agg) covered += s->duration_sec();
  const double span =
      (agg.back()->period_end - agg.front()->period_start).ToSeconds();
  return span > covered ? covered / span : 1.0;
}

bool SameEngineConfig(const TelemetryManagerOptions& a,
                      const TelemetryManagerOptions& b) {
  // Only fields that shape the engine's *state*. trend_accept_fraction is
  // applied at Fit time and incremental never stores state, so changes to
  // either need no rebuild.
  return a.aggregation_samples == b.aggregation_samples &&
         a.trend_samples == b.trend_samples &&
         a.correlation_samples == b.correlation_samples &&
         a.latency_aggregate == b.latency_aggregate;
}

}  // namespace

bool IncrementalSignalEngine::Sync(const TelemetryStore& store,
                                   const TelemetryManagerOptions& options) {
  const size_t max_window =
      std::max({options.aggregation_samples, options.trend_samples,
                options.correlation_samples});
  if (max_window > store.max_samples()) {
    // A window larger than retention would make the engine remember
    // samples the batch path can no longer see — fall back to batch.
    return false;
  }
  if (options.trend_samples > stats::kMaxTheilSenPoints) {
    // Batch reports the misconfiguration per fit; let it.
    return false;
  }

  bool rebuild = !configured_ || store_ != &store ||
                 clear_epoch_ != store.clear_epoch() ||
                 observed_ > store.total_appended() ||
                 !SameEngineConfig(config_, options);
  if (!rebuild && store.total_appended() - observed_ > store.size()) {
    // Samples we never observed were already evicted; the rings can no
    // longer be patched, only rebuilt from what the store retains.
    rebuild = true;
  }
  if (rebuild) {
    Configure(options);
    store_ = &store;
    clear_epoch_ = store.clear_epoch();
    // Replaying the last max_window samples reproduces exactly the state
    // of having observed everything: no structure looks further back.
    const size_t replay = std::min(store.size(), max_window);
    for (size_t i = store.size() - replay; i < store.size(); ++i) {
      Observe(store.at(i));
    }
  } else {
    const size_t gap =
        static_cast<size_t>(store.total_appended() - observed_);
    for (size_t i = store.size() - gap; i < store.size(); ++i) {
      Observe(store.at(i));
    }
  }
  observed_ = store.total_appended();
  return true;
}

void IncrementalSignalEngine::Configure(
    const TelemetryManagerOptions& options) {
  config_ = options;
  configured_ = true;
  const size_t w = options.trend_samples;
  const size_t slopes_per_series = w * (w - 1) / 2;
  const size_t trend_series = 1 + 2 * container::kNumResources;
  slope_arena_.Reset(trend_series * slopes_per_series);

  agg_latency_.Reset(options.aggregation_samples);
  agg_throughput_.Reset(options.aggregation_samples);
  agg_memory_.Reset(options.aggregation_samples);
  agg_reads_.Reset(options.aggregation_samples);
  agg_total_wait_.Reset(options.aggregation_samples);
  trend_latency_.Reset(w, &slope_arena_);
  corr_latency_.Reset(options.correlation_samples);
  for (PerResource& r : resources_) {
    r.agg_util.Reset(options.aggregation_samples);
    r.agg_wait.Reset(options.aggregation_samples);
    r.agg_wait_per_req.Reset(options.aggregation_samples);
    r.trend_util.Reset(w, &slope_arena_);
    r.trend_wait.Reset(w, &slope_arena_);
    r.corr_util.Reset(options.correlation_samples);
    r.corr_wait.Reset(options.correlation_samples);
  }
}

void IncrementalSignalEngine::Observe(const TelemetrySample& s) {
  const double lat = LatencyOf(s, config_.latency_aggregate);
  // The aggregate and trend latency series skip idle samples (batch
  // filters on requests_completed); correlation uses the raw series.
  if (s.requests_completed > 0) {
    agg_latency_.Push(lat);
    trend_latency_.Push(lat);
  } else {
    agg_latency_.PushAbsent();
    trend_latency_.PushAbsent();
  }
  corr_latency_.Push(lat);

  agg_throughput_.Push(s.throughput_rps());
  agg_memory_.Push(s.memory_used_mb);
  const double sec = s.duration_sec();
  agg_reads_.Push(
      sec > 0 ? static_cast<double>(s.physical_reads) / sec : 0.0);
  agg_total_wait_.Push(s.total_wait_ms());

  for (ResourceKind kind : container::kAllResources) {
    PerResource& r = resources_[static_cast<size_t>(kind)];
    const double util = s.utilization_pct[static_cast<size_t>(kind)];
    const double wait = ResourceWaitMs(s, kind);
    r.agg_util.Push(util);
    r.agg_wait.Push(wait);
    r.agg_wait_per_req.Push(
        wait / static_cast<double>(
                   std::max<int64_t>(1, s.requests_completed)));
    r.trend_util.Push(util);
    r.trend_wait.Push(wait);
    r.corr_util.Push(util);
    r.corr_wait.Push(wait);
  }
}

const char* LatencyAggregateToString(LatencyAggregate agg) {
  switch (agg) {
    case LatencyAggregate::kAverage:
      return "average";
    case LatencyAggregate::kP95:
      return "p95";
  }
  return "?";
}

std::string SignalSnapshot::ToString() const {
  if (!valid) return "<invalid snapshot>";
  // Allocating ToString diagnostic; not on the per-interval signal path.
  // dbscale-lint: allow(alloc-hot-path)
  std::string out = StrFormat(
      "t=%.0fs latency(%s)=%.1fms trend=%s thr=%.1frps",
      time.ToSeconds(), LatencyAggregateToString(latency_aggregate),
      latency_ms, stats::TrendDirectionToString(latency_trend.direction),
      throughput_rps);
  for (ResourceKind kind : container::kAllResources) {
    const ResourceSignals& r = resource(kind);
    out += StrFormat(
        " | %s: util=%.0f%% wait=%.0fms(%.0f%%) corr=%.2f",
        container::ResourceKindToString(kind), r.utilization_pct, r.wait_ms,
        r.wait_pct, r.wait_latency_correlation);
  }
  return out;
}

TelemetryManager::TelemetryManager(TelemetryManagerOptions options)
    : options_(options),
      trend_estimator_(options.trend_accept_fraction) {}

Status TelemetryManager::Validate() const {
  if (options_.aggregation_samples < 1) {
    return Status::InvalidArgument("aggregation_samples must be >= 1");
  }
  if (options_.trend_samples < 3) {
    return Status::InvalidArgument("trend_samples must be >= 3");
  }
  if (options_.correlation_samples < 3) {
    return Status::InvalidArgument("correlation_samples must be >= 3");
  }
  if (options_.trend_accept_fraction <= 0.5 ||
      options_.trend_accept_fraction > 1.0) {
    return Status::OutOfRange("trend_accept_fraction must be in (0.5, 1]");
  }
  if (options_.min_confidence <= 0.0 || options_.min_confidence > 1.0) {
    return Status::OutOfRange("min_confidence must be in (0, 1]");
  }
  return Status::OK();
}

SignalSnapshot TelemetryManager::Compute(const TelemetryStore& store,
                                         SimTime now, SignalScratch* scratch,
                                         const obs::Sink& sink) const {
  // The incremental engine only pays off when its state survives between
  // calls, so it requires a caller-owned scratch; one-shot (nullptr)
  // callers take the batch path.
  SignalSnapshot snap;
  bool served_incrementally = false;
  if (options_.incremental && scratch != nullptr) {
    if (scratch->incremental == nullptr) {
      // One-time setup for this scratch's lifetime.
      // dbscale-lint: allow(alloc-hot-path)
      scratch->incremental = std::make_unique<IncrementalSignalEngine>();
    }
    if (scratch->incremental->Sync(store, options_)) {
      snap = ComputeIncremental(store, now, scratch);
      served_incrementally = true;
    }
  }
  if (!served_incrementally) snap = ComputeBatch(store, now, scratch);
  if (sink.pipeline != nullptr) {
    sink.metrics.Add(sink.pipeline->telemetry_computes_total, 1.0);
    sink.metrics.Add(served_incrementally
                         ? sink.pipeline->telemetry_incremental_computes_total
                         : sink.pipeline->telemetry_batch_computes_total,
                     1.0);
    if (!snap.valid) {
      sink.metrics.Add(sink.pipeline->telemetry_invalid_snapshots_total, 1.0);
    }
    if (snap.degraded) {
      sink.metrics.Add(sink.pipeline->telemetry_degraded_windows_total, 1.0);
    }
  }
  return snap;
}

SignalSnapshot TelemetryManager::ComputeBatch(const TelemetryStore& store,
                                              SimTime now,
                                              SignalScratch* scratch) const {
  SignalScratch local;
  if (scratch == nullptr) scratch = &local;

  SignalSnapshot snap;
  snap.time = now;
  snap.latency_aggregate = options_.latency_aggregate;
  if (store.size() < 2) {
    snap.valid = false;
    return snap;
  }
  snap.valid = true;

  store.RecentInto(options_.aggregation_samples, scratch->agg_window);
  store.RecentInto(options_.trend_samples, scratch->trend_window);
  store.RecentInto(options_.correlation_samples, scratch->corr_window);
  const auto& agg = scratch->agg_window;
  const auto& trend = scratch->trend_window;
  const auto& corr = scratch->corr_window;

  snap.confidence = WindowCoverage(agg);
  snap.degraded = snap.confidence < options_.min_confidence;

  auto latency_of = [&](const TelemetrySample& s) {
    return options_.latency_aggregate == LatencyAggregate::kAverage
               ? s.latency_avg_ms
               : s.latency_p95_ms;
  };

  // Latency signal: robust aggregate over the window, ignoring idle samples
  // (no completions) which carry no latency information.
  {
    std::vector<double>& lat = scratch->values_a;
    lat.clear();
    for (const TelemetrySample* s : agg) {
      if (s->requests_completed > 0) lat.push_back(latency_of(*s));
    }
    snap.latency_ms = MedianOrZero(lat);
  }
  {
    std::vector<double>& lat = scratch->values_a;
    lat.clear();
    for (const TelemetrySample* s : trend) {
      if (s->requests_completed > 0) lat.push_back(latency_of(*s));
    }
    snap.latency_trend =
        TrendOrNone(trend_estimator_, lat, &scratch->theil_sen);
  }

  // Workload-level aggregates.
  {
    std::vector<double>& thr = scratch->values_a;
    std::vector<double>& mem = scratch->values_b;
    std::vector<double>& reads = scratch->values_c;
    std::vector<double>& total_wait = scratch->values_d;
    thr.clear();
    mem.clear();
    reads.clear();
    total_wait.clear();
    for (const TelemetrySample* s : agg) {
      thr.push_back(s->throughput_rps());
      mem.push_back(s->memory_used_mb);
      double sec = s->duration_sec();
      reads.push_back(sec > 0
                          ? static_cast<double>(s->physical_reads) / sec
                          : 0.0);
      total_wait.push_back(s->total_wait_ms());
    }
    snap.throughput_rps = MedianOrZero(thr);
    snap.memory_used_mb = MedianOrZero(mem);
    snap.physical_reads_per_sec = MedianOrZero(reads);
    snap.total_wait_ms = MedianOrZero(total_wait);
    snap.allocation = store.back().allocation;
  }

  // Wait share per class over the aggregation window (sums, not medians:
  // shares must add to 100).
  {
    double grand_total = 0.0;
    std::array<double, kNumWaitClasses> sums{};
    for (const TelemetrySample* s : agg) {
      for (int wc = 0; wc < kNumWaitClasses; ++wc) {
        sums[static_cast<size_t>(wc)] += s->wait_ms[static_cast<size_t>(wc)];
        grand_total += s->wait_ms[static_cast<size_t>(wc)];
      }
    }
    for (int wc = 0; wc < kNumWaitClasses; ++wc) {
      snap.wait_pct_by_class[static_cast<size_t>(wc)] =
          grand_total > 0.0
              ? 100.0 * sums[static_cast<size_t>(wc)] / grand_total
              : 0.0;
    }
  }

  // Per-resource signals.
  std::vector<double>& corr_latency = scratch->corr_latency;
  corr_latency.clear();
  for (const TelemetrySample* s : corr) corr_latency.push_back(latency_of(*s));

  for (ResourceKind kind : container::kAllResources) {
    ResourceSignals& r = snap.resources[static_cast<size_t>(kind)];
    const size_t ri = static_cast<size_t>(kind);

    std::vector<double>& util = scratch->values_a;
    std::vector<double>& wait = scratch->values_b;
    std::vector<double>& wait_per_req = scratch->values_c;
    util.clear();
    wait.clear();
    wait_per_req.clear();
    double wait_sum = 0.0, total_sum = 0.0;
    for (const TelemetrySample* s : agg) {
      util.push_back(s->utilization_pct[ri]);
      double w = ResourceWaitMs(*s, kind);
      wait.push_back(w);
      wait_per_req.push_back(
          w / static_cast<double>(std::max<int64_t>(
                  1, s->requests_completed)));
      wait_sum += w;
      total_sum += s->total_wait_ms();
    }
    r.utilization_pct = MedianOrZero(util);
    r.wait_ms = MedianOrZero(wait);
    r.wait_ms_per_request = MedianOrZero(wait_per_req);
    r.wait_pct = total_sum > 0.0 ? 100.0 * wait_sum / total_sum : 0.0;

    std::vector<double>& util_t = scratch->values_a;
    std::vector<double>& wait_t = scratch->values_b;
    util_t.clear();
    wait_t.clear();
    for (const TelemetrySample* s : trend) {
      util_t.push_back(s->utilization_pct[ri]);
      wait_t.push_back(ResourceWaitMs(*s, kind));
    }
    r.utilization_trend =
        TrendOrNone(trend_estimator_, util_t, &scratch->theil_sen);
    r.wait_trend = TrendOrNone(trend_estimator_, wait_t, &scratch->theil_sen);

    std::vector<double>& util_c = scratch->values_a;
    std::vector<double>& wait_c = scratch->values_b;
    util_c.clear();
    wait_c.clear();
    for (const TelemetrySample* s : corr) {
      util_c.push_back(s->utilization_pct[ri]);
      wait_c.push_back(ResourceWaitMs(*s, kind));
    }
    r.wait_latency_correlation =
        CorrelationOrZero(wait_c, corr_latency, &scratch->spearman);
    r.utilization_latency_correlation =
        CorrelationOrZero(util_c, corr_latency, &scratch->spearman);
  }

  return snap;
}

SignalSnapshot TelemetryManager::ComputeIncremental(
    const TelemetryStore& store, SimTime now, SignalScratch* scratch) const {
  IncrementalSignalEngine& eng = *scratch->incremental;

  SignalSnapshot snap;
  snap.time = now;
  snap.latency_aggregate = options_.latency_aggregate;
  if (store.size() < 2) {
    snap.valid = false;
    return snap;
  }
  snap.valid = true;

  // Medians and percentiles read straight off the sorted rings.
  snap.latency_ms = SlidingMedianOrZero(eng.agg_latency_);
  snap.latency_trend = SlidingTrendOrNone(trend_estimator_, eng.trend_latency_,
                                          &scratch->theil_sen);
  snap.throughput_rps = SlidingMedianOrZero(eng.agg_throughput_);
  snap.memory_used_mb = SlidingMedianOrZero(eng.agg_memory_);
  snap.physical_reads_per_sec = SlidingMedianOrZero(eng.agg_reads_);
  snap.total_wait_ms = SlidingMedianOrZero(eng.agg_total_wait_);
  snap.allocation = store.back().allocation;

  // Wait-share sums stay as the batch path's ordered O(W_agg) loops:
  // maintaining running sums would reorder the floating-point additions
  // and break the bit-exactness contract, and the loops are linear in a
  // small window anyway.
  store.RecentInto(options_.aggregation_samples, scratch->agg_window);
  const auto& agg = scratch->agg_window;
  snap.confidence = WindowCoverage(agg);
  snap.degraded = snap.confidence < options_.min_confidence;
  {
    double grand_total = 0.0;
    std::array<double, kNumWaitClasses> sums{};
    for (const TelemetrySample* s : agg) {
      for (int wc = 0; wc < kNumWaitClasses; ++wc) {
        sums[static_cast<size_t>(wc)] += s->wait_ms[static_cast<size_t>(wc)];
        grand_total += s->wait_ms[static_cast<size_t>(wc)];
      }
    }
    for (int wc = 0; wc < kNumWaitClasses; ++wc) {
      snap.wait_pct_by_class[static_cast<size_t>(wc)] =
          grand_total > 0.0
              ? 100.0 * sums[static_cast<size_t>(wc)] / grand_total
              : 0.0;
    }
  }

  for (ResourceKind kind : container::kAllResources) {
    ResourceSignals& r = snap.resources[static_cast<size_t>(kind)];
    IncrementalSignalEngine::PerResource& e =
        eng.resources_[static_cast<size_t>(kind)];

    r.utilization_pct = SlidingMedianOrZero(e.agg_util);
    r.wait_ms = SlidingMedianOrZero(e.agg_wait);
    r.wait_ms_per_request = SlidingMedianOrZero(e.agg_wait_per_req);

    double wait_sum = 0.0, total_sum = 0.0;
    for (const TelemetrySample* s : agg) {
      wait_sum += ResourceWaitMs(*s, kind);
      total_sum += s->total_wait_ms();
    }
    r.wait_pct = total_sum > 0.0 ? 100.0 * wait_sum / total_sum : 0.0;

    r.utilization_trend =
        SlidingTrendOrNone(trend_estimator_, e.trend_util,
                           &scratch->theil_sen);
    r.wait_trend = SlidingTrendOrNone(trend_estimator_, e.trend_wait,
                                      &scratch->theil_sen);
    r.wait_latency_correlation =
        SlidingCorrelationOrZero(e.corr_wait, eng.corr_latency_);
    r.utilization_latency_correlation =
        SlidingCorrelationOrZero(e.corr_util, eng.corr_latency_);
  }

  return snap;
}

}  // namespace dbscale::telemetry
