#include "src/telemetry/manager.h"

#include <algorithm>

#include "src/common/string_util.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"

namespace dbscale::telemetry {

namespace {

using container::ResourceKind;

double ResourceWaitMs(const TelemetrySample& s, ResourceKind kind) {
  double total = 0.0;
  auto mask = WaitClassesForResource(kind);
  for (int wc = 0; wc < kNumWaitClasses; ++wc) {
    if (mask[static_cast<size_t>(wc)]) {
      total += s.wait_ms[static_cast<size_t>(wc)];
    }
  }
  return total;
}

double MedianOrZero(std::vector<double> values) {
  if (values.empty()) return 0.0;
  return stats::Median(std::move(values)).value_or(0.0);
}

stats::TrendResult TrendOrNone(const stats::TheilSenEstimator& estimator,
                               const std::vector<double>& values) {
  if (values.size() < 3) return stats::TrendResult{};
  auto result = estimator.FitSequence(values);
  return result.ok() ? *result : stats::TrendResult{};
}

double CorrelationOrZero(const std::vector<double>& x,
                         const std::vector<double>& y) {
  if (x.size() < 3 || x.size() != y.size()) return 0.0;
  auto rho = stats::SpearmanCorrelation(x, y);
  return rho.ok() ? *rho : 0.0;
}

}  // namespace

const char* LatencyAggregateToString(LatencyAggregate agg) {
  switch (agg) {
    case LatencyAggregate::kAverage:
      return "average";
    case LatencyAggregate::kP95:
      return "p95";
  }
  return "?";
}

std::string SignalSnapshot::ToString() const {
  if (!valid) return "<invalid snapshot>";
  std::string out = StrFormat(
      "t=%.0fs latency(%s)=%.1fms trend=%s thr=%.1frps",
      time.ToSeconds(), LatencyAggregateToString(latency_aggregate),
      latency_ms, stats::TrendDirectionToString(latency_trend.direction),
      throughput_rps);
  for (ResourceKind kind : container::kAllResources) {
    const ResourceSignals& r = resource(kind);
    out += StrFormat(
        " | %s: util=%.0f%% wait=%.0fms(%.0f%%) corr=%.2f",
        container::ResourceKindToString(kind), r.utilization_pct, r.wait_ms,
        r.wait_pct, r.wait_latency_correlation);
  }
  return out;
}

TelemetryManager::TelemetryManager(TelemetryManagerOptions options)
    : options_(options),
      trend_estimator_(options.trend_accept_fraction) {}

Status TelemetryManager::Validate() const {
  if (options_.aggregation_samples < 1) {
    return Status::InvalidArgument("aggregation_samples must be >= 1");
  }
  if (options_.trend_samples < 3) {
    return Status::InvalidArgument("trend_samples must be >= 3");
  }
  if (options_.correlation_samples < 3) {
    return Status::InvalidArgument("correlation_samples must be >= 3");
  }
  if (options_.trend_accept_fraction <= 0.5 ||
      options_.trend_accept_fraction > 1.0) {
    return Status::OutOfRange("trend_accept_fraction must be in (0.5, 1]");
  }
  return Status::OK();
}

SignalSnapshot TelemetryManager::Compute(const TelemetryStore& store,
                                         SimTime now) const {
  SignalSnapshot snap;
  snap.time = now;
  snap.latency_aggregate = options_.latency_aggregate;
  if (store.size() < 2) {
    snap.valid = false;
    return snap;
  }
  snap.valid = true;

  const auto agg = store.Recent(options_.aggregation_samples);
  const auto trend = store.Recent(options_.trend_samples);
  const auto corr = store.Recent(options_.correlation_samples);

  auto latency_of = [&](const TelemetrySample& s) {
    return options_.latency_aggregate == LatencyAggregate::kAverage
               ? s.latency_avg_ms
               : s.latency_p95_ms;
  };

  // Latency signal: robust aggregate over the window, ignoring idle samples
  // (no completions) which carry no latency information.
  {
    std::vector<double> lat;
    for (const TelemetrySample* s : agg) {
      if (s->requests_completed > 0) lat.push_back(latency_of(*s));
    }
    snap.latency_ms = MedianOrZero(std::move(lat));
  }
  {
    std::vector<double> lat;
    for (const TelemetrySample* s : trend) {
      if (s->requests_completed > 0) lat.push_back(latency_of(*s));
    }
    snap.latency_trend = TrendOrNone(trend_estimator_, lat);
  }

  // Workload-level aggregates.
  {
    std::vector<double> thr, mem, reads, total_wait;
    for (const TelemetrySample* s : agg) {
      thr.push_back(s->throughput_rps());
      mem.push_back(s->memory_used_mb);
      double sec = s->duration_sec();
      reads.push_back(sec > 0
                          ? static_cast<double>(s->physical_reads) / sec
                          : 0.0);
      total_wait.push_back(s->total_wait_ms());
    }
    snap.throughput_rps = MedianOrZero(thr);
    snap.memory_used_mb = MedianOrZero(mem);
    snap.physical_reads_per_sec = MedianOrZero(reads);
    snap.total_wait_ms = MedianOrZero(total_wait);
    snap.allocation = store.back().allocation;
  }

  // Wait share per class over the aggregation window (sums, not medians:
  // shares must add to 100).
  {
    double grand_total = 0.0;
    std::array<double, kNumWaitClasses> sums{};
    for (const TelemetrySample* s : agg) {
      for (int wc = 0; wc < kNumWaitClasses; ++wc) {
        sums[static_cast<size_t>(wc)] += s->wait_ms[static_cast<size_t>(wc)];
        grand_total += s->wait_ms[static_cast<size_t>(wc)];
      }
    }
    for (int wc = 0; wc < kNumWaitClasses; ++wc) {
      snap.wait_pct_by_class[static_cast<size_t>(wc)] =
          grand_total > 0.0
              ? 100.0 * sums[static_cast<size_t>(wc)] / grand_total
              : 0.0;
    }
  }

  // Per-resource signals.
  std::vector<double> corr_latency;
  for (const TelemetrySample* s : corr) corr_latency.push_back(latency_of(*s));

  for (ResourceKind kind : container::kAllResources) {
    ResourceSignals& r = snap.resources[static_cast<size_t>(kind)];
    const size_t ri = static_cast<size_t>(kind);

    std::vector<double> util, wait, wait_per_req;
    double wait_sum = 0.0, total_sum = 0.0;
    for (const TelemetrySample* s : agg) {
      util.push_back(s->utilization_pct[ri]);
      double w = ResourceWaitMs(*s, kind);
      wait.push_back(w);
      wait_per_req.push_back(
          w / static_cast<double>(std::max<int64_t>(
                  1, s->requests_completed)));
      wait_sum += w;
      total_sum += s->total_wait_ms();
    }
    r.utilization_pct = MedianOrZero(util);
    r.wait_ms = MedianOrZero(wait);
    r.wait_ms_per_request = MedianOrZero(wait_per_req);
    r.wait_pct = total_sum > 0.0 ? 100.0 * wait_sum / total_sum : 0.0;

    std::vector<double> util_t, wait_t;
    for (const TelemetrySample* s : trend) {
      util_t.push_back(s->utilization_pct[ri]);
      wait_t.push_back(ResourceWaitMs(*s, kind));
    }
    r.utilization_trend = TrendOrNone(trend_estimator_, util_t);
    r.wait_trend = TrendOrNone(trend_estimator_, wait_t);

    std::vector<double> util_c, wait_c;
    for (const TelemetrySample* s : corr) {
      util_c.push_back(s->utilization_pct[ri]);
      wait_c.push_back(ResourceWaitMs(*s, kind));
    }
    r.wait_latency_correlation = CorrelationOrZero(wait_c, corr_latency);
    r.utilization_latency_correlation =
        CorrelationOrZero(util_c, corr_latency);
  }

  return snap;
}

}  // namespace dbscale::telemetry
