// A telemetry sample: the engine's counters aggregated over one sampling
// period (default 5 simulated seconds, mirroring the fine-grained collection
// the paper describes).

#ifndef DBSCALE_TELEMETRY_SAMPLE_H_
#define DBSCALE_TELEMETRY_SAMPLE_H_

#include <array>
#include <string>

#include "src/common/sim_time.h"
#include "src/container/container.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::telemetry {

/// \brief Production telemetry for one sampling period of one tenant.
struct TelemetrySample {
  SimTime period_start;
  SimTime period_end;

  /// Percent utilization (0..100) per resource dimension, relative to the
  /// container's allocation during the period.
  std::array<double, container::kNumResources> utilization_pct{};

  /// Total milliseconds tenant requests spent waiting, per wait class,
  /// summed across concurrent requests (so it can exceed wall time).
  std::array<double, kNumWaitClasses> wait_ms{};

  int64_t requests_started = 0;
  int64_t requests_completed = 0;

  /// Latency aggregates over requests *completed* in this period (ms).
  double latency_avg_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Memory the engine actually holds (buffer pool fill + grants), MB.
  double memory_used_mb = 0.0;

  /// Memory the workload *actively needs* (cached working-set pages scaled
  /// to a container allocation, plus outstanding grants), MB. Caches hold
  /// whatever they are given, so memory_used_mb overstates demand; offline
  /// profiling (Peak/Avg/Trace baselines) and fleet container assignment
  /// use this active-set estimate instead.
  double memory_active_mb = 0.0;

  /// Data-page reads issued to disk in the period (buffer pool misses).
  int64_t physical_reads = 0;

  /// Container allocation in effect at the end of the period.
  container::ResourceVector allocation;
  int container_id = 0;

  double duration_sec() const {
    return (period_end - period_start).ToSeconds();
  }
  double throughput_rps() const {
    double sec = duration_sec();
    return sec > 0 ? static_cast<double>(requests_completed) / sec : 0.0;
  }
  double total_wait_ms() const {
    double total = 0.0;
    for (double w : wait_ms) total += w;
    return total;
  }
  /// Share (0..100) of total waits attributed to `wc`; 0 when no waits.
  double wait_pct(WaitClass wc) const {
    double total = total_wait_ms();
    return total > 0.0
               ? 100.0 * wait_ms[static_cast<size_t>(wc)] / total
               : 0.0;
  }

  std::string ToString() const;
};

}  // namespace dbscale::telemetry

#endif  // DBSCALE_TELEMETRY_SAMPLE_H_
