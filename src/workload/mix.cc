#include "src/workload/mix.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/string_util.h"

namespace dbscale::workload {

Status WorkloadSpec::Validate() const {
  if (classes.empty()) {
    return Status::InvalidArgument("workload has no transaction classes");
  }
  double total_weight = 0.0;
  for (const TransactionClass& c : classes) {
    if (c.weight <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("class '%s' has non-positive weight", c.name.c_str()));
    }
    if (c.cpu_ms_mean <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("class '%s' has non-positive cpu_ms_mean",
                    c.name.c_str()));
    }
    if (c.hot_fraction < 0.0 || c.hot_fraction > 1.0 ||
        c.lock_probability < 0.0 || c.lock_probability > 1.0 ||
        c.grant_probability < 0.0 || c.grant_probability > 1.0) {
      return Status::OutOfRange(
          StrFormat("class '%s' has a probability outside [0, 1]",
                    c.name.c_str()));
    }
    total_weight += c.weight;
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("total class weight must be positive");
  }
  if (working_set_mb <= 0.0 || database_mb < working_set_mb) {
    return Status::InvalidArgument(
        "need 0 < working_set_mb <= database_mb");
  }
  if (num_hot_rows <= 0) {
    return Status::InvalidArgument("num_hot_rows must be positive");
  }
  return Status::OK();
}

double WorkloadSpec::MeanCpuMs() const {
  double total_weight = 0.0, sum = 0.0;
  for (const TransactionClass& c : classes) {
    total_weight += c.weight;
    sum += c.weight * c.cpu_ms_mean;
  }
  return total_weight > 0.0 ? sum / total_weight : 0.0;
}

double WorkloadSpec::MeanPages() const {
  double total_weight = 0.0, sum = 0.0;
  for (const TransactionClass& c : classes) {
    total_weight += c.weight;
    sum += c.weight * c.pages_mean;
  }
  return total_weight > 0.0 ? sum / total_weight : 0.0;
}

engine::EngineOptions WorkloadSpec::MakeEngineOptions() const {
  engine::EngineOptions options;
  options.working_set_mb = working_set_mb;
  options.database_mb = database_mb;
  options.num_hot_rows = num_hot_rows;
  return options;
}

engine::RequestSpec WorkloadSpec::Sample(Rng* rng,
                                         int* class_index_out) const {
  DBSCALE_CHECK(!classes.empty());
  double total_weight = 0.0;
  for (const TransactionClass& c : classes) total_weight += c.weight;
  double pick = rng->Uniform(0.0, total_weight);
  size_t index = 0;
  for (; index < classes.size() - 1; ++index) {
    pick -= classes[index].weight;
    if (pick <= 0.0) break;
  }
  const TransactionClass& cls = classes[index];
  if (class_index_out != nullptr) {
    *class_index_out = static_cast<int>(index);
  }

  engine::RequestSpec spec;
  spec.class_id = static_cast<int>(index);
  // Exponential work with a cap at 10x the mean keeps the tail realistic
  // without letting one sample dominate a 5-second telemetry period.
  spec.cpu_ms = std::min(rng->Exponential(cls.cpu_ms_mean),
                         10.0 * cls.cpu_ms_mean);
  spec.cpu_ms = std::max(spec.cpu_ms, 0.05);
  spec.page_accesses =
      cls.pages_mean > 0.0
          ? static_cast<int>(rng->Poisson(cls.pages_mean))
          : 0;
  spec.hot_access_fraction = cls.hot_fraction;
  if (cls.log_kb_mean > 0.0) {
    spec.log_kb = std::min(rng->Exponential(cls.log_kb_mean),
                           10.0 * cls.log_kb_mean);
  }
  if (cls.lock_probability > 0.0 && rng->Bernoulli(cls.lock_probability)) {
    spec.lock_row = static_cast<int>(
        rng->Zipf(num_hot_rows, cls.lock_zipf_theta));
    if (cls.lock_hold_extra_ms_mean > 0.0) {
      spec.lock_hold_extra_ms =
          std::min(rng->Exponential(cls.lock_hold_extra_ms_mean),
                   8.0 * cls.lock_hold_extra_ms_mean);
    }
  }
  if (cls.grant_probability > 0.0 && rng->Bernoulli(cls.grant_probability)) {
    spec.grant_mb = cls.grant_mb;
  }
  return spec;
}

WorkloadSpec MakeTpccWorkload() {
  WorkloadSpec spec;
  spec.name = "tpcc";
  spec.working_set_mb = 700.0;
  spec.database_mb = 16384.0;
  spec.num_hot_rows = 6;  // warehouse-level hot rows

  // Locked classes keep their transaction open across application round
  // trips (lock_hold_extra_ms_mean), so hot-row contention — not any
  // physical resource — dominates latency at every container size
  // (Figure 13: lock waits > 90%).
  spec.classes = {
      // name       weight cpu  pages hot   log  lockP zipf hold  grant
      {"new-order", 0.45, 6.0, 8.0, 0.92, 6.0, 0.40, 0.50, 75.0, 0.0, 0.0},
      {"payment", 0.43, 2.5, 4.0, 0.94, 2.0, 0.35, 0.50, 45.0, 0.0, 0.0},
      {"order-status", 0.04, 2.0, 12.0, 0.90, 0.0, 0.0, 0.50, 0.0, 0.0, 0.0},
      {"delivery", 0.04, 10.0, 16.0, 0.90, 8.0, 0.50, 0.50, 85.0, 0.0, 0.0},
      {"stock-level", 0.04, 15.0, 40.0, 0.85, 0.0, 0.0, 0.50, 0.0, 16.0,
       0.5},
  };
  DBSCALE_CHECK_OK(spec.Validate());
  return spec;
}

WorkloadSpec MakeDs2Workload() {
  WorkloadSpec spec;
  spec.name = "ds2";
  spec.working_set_mb = 4096.0;
  spec.database_mb = 49152.0;
  spec.num_hot_rows = 64;

  spec.classes = {
      // name        weight cpu    pages  hot    log   lockP zipf  grant
      {"browse", 0.55, 52.0, 150.0, 0.95, 0.0, 0.0, 0.5, 0.0, 32.0, 0.30},
      {"product-detail", 0.25, 36.0, 80.0, 0.95, 0.0, 0.0, 0.5, 0.0, 0.0, 0.0},
      {"login", 0.12, 5.0, 10.0, 0.95, 1.0, 0.0, 0.5, 0.0, 0.0, 0.0},
      {"purchase", 0.08, 30.0, 60.0, 0.92, 12.0, 0.10, 0.5, 10.0, 0.0, 0.0},
  };
  DBSCALE_CHECK_OK(spec.Validate());
  return spec;
}

WorkloadSpec MakeCpuioWorkload(const CpuioOptions& options) {
  WorkloadSpec spec;
  spec.name = "cpuio";
  spec.working_set_mb = options.working_set_mb;
  spec.database_mb = std::max(16384.0, options.working_set_mb * 4.0);
  spec.num_hot_rows = 128;  // effectively uncontended

  spec.classes = {
      {"cpu-heavy", options.cpu_weight, 120.0, 20.0, options.hot_fraction,
       0.0, 0.0, 0.5, 0.0, 0.0, 0.0},
      {"io-heavy", options.io_weight, 20.0, 150.0, options.hot_fraction,
       0.0, 0.0, 0.5, 0.0, 0.0, 0.0},
      {"log-heavy", options.log_weight, 10.0, 10.0, options.hot_fraction,
       512.0, 0.0, 0.5, 0.0, 0.0, 0.0},
      {"mixed", options.mixed_weight, 40.0, 80.0, options.hot_fraction,
       32.0, 0.0, 0.5, 0.0, 64.0, 1.0},
  };
  DBSCALE_CHECK_OK(spec.Validate());
  return spec;
}

}  // namespace dbscale::workload
