#include "src/workload/paper_traces.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace dbscale::workload {

namespace {

double ClampRate(double v) { return std::clamp(v, 0.0, 200.0); }

/// Smooth ramp from 0 to 1 over [0, 1].
double SmoothStep(double x) {
  x = std::clamp(x, 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);
}

/// Adds a burst of `height` between steps [start, start+width), with
/// `ramp`-step shoulders.
void AddBurst(std::vector<double>* rps, size_t start, size_t width,
              double height, size_t ramp) {
  for (size_t i = 0; i < width && start + i < rps->size(); ++i) {
    double shape = 1.0;
    if (i < ramp) {
      shape = SmoothStep(static_cast<double>(i) / static_cast<double>(ramp));
    } else if (width - i <= ramp) {
      shape = SmoothStep(static_cast<double>(width - i) /
                         static_cast<double>(ramp));
    }
    (*rps)[start + i] += height * shape;
  }
}

/// Production load is spiky at the minutes scale (Section 2.2): apply
/// heavy-tailed multiplicative noise plus occasional short spikes. The
/// spikes are what make offline "Peak" provisioning (p95 of utilization)
/// land rungs above the sustained level, and make demand-curve hugging
/// (the Trace baseline) pay for chasing one-minute peaks.
void AddSpikiness(std::vector<double>* rps, Rng* rng, double sigma,
                  double spike_probability, double spike_factor_max) {
  for (double& v : *rps) {
    v *= rng->LogNormal(0.0, sigma);
    if (rng->Bernoulli(spike_probability)) {
      v *= rng->Uniform(1.6, spike_factor_max);
    }
  }
}

}  // namespace

Trace MakeTrace1Steady(uint64_t seed) {
  Rng rng(seed, /*stream=*/101);
  std::vector<double> rps(kPaperTraceSteps);
  for (size_t i = 0; i < rps.size(); ++i) {
    // Steady ~110 rps with a gentle diurnal wobble and noise.
    double wobble =
        8.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 720.0);
    rps[i] = 110.0 + wobble + rng.Normal(0.0, 5.0);
  }
  AddSpikiness(&rps, &rng, /*sigma=*/0.08, /*spike_probability=*/0.008,
               /*spike_factor_max=*/1.4);
  for (double& v : rps) v = ClampRate(v);
  return Trace("trace1-steady", std::move(rps));
}

Trace MakeTrace2LongBurst(uint64_t seed) {
  Rng rng(seed, /*stream=*/102);
  std::vector<double> rps(kPaperTraceSteps);
  for (size_t i = 0; i < rps.size(); ++i) {
    rps[i] = std::max(0.0, 8.0 + rng.Normal(0.0, 2.0));
  }
  // One long burst: ~6.5 hours, plateau ~110 rps with spikes toward 200.
  AddBurst(&rps, 420, 390, 105.0, 30);
  AddSpikiness(&rps, &rng, /*sigma=*/0.10, /*spike_probability=*/0.012,
               /*spike_factor_max=*/1.6);
  for (double& v : rps) v = ClampRate(v);
  return Trace("trace2-long-burst", std::move(rps));
}

Trace MakeTrace3ShortBurst(uint64_t seed) {
  Rng rng(seed, /*stream=*/103);
  std::vector<double> rps(kPaperTraceSteps);
  for (size_t i = 0; i < rps.size(); ++i) {
    rps[i] = std::max(0.0, 8.0 + rng.Normal(0.0, 2.0));
  }
  // One short burst: ~110 minutes at ~130 rps with spikes.
  AddBurst(&rps, 640, 110, 125.0, 20);
  AddSpikiness(&rps, &rng, /*sigma=*/0.10, /*spike_probability=*/0.012,
               /*spike_factor_max=*/1.6);
  for (double& v : rps) v = ClampRate(v);
  return Trace("trace3-short-burst", std::move(rps));
}

Trace MakeTrace4ManyBursts(uint64_t seed) {
  Rng rng(seed, /*stream=*/104);
  std::vector<double> rps(kPaperTraceSteps);
  for (size_t i = 0; i < rps.size(); ++i) {
    rps[i] = std::max(0.0, 15.0 + rng.Normal(0.0, 4.0));
  }
  // Many short bursts of varying height and width.
  const int num_bursts = 16;
  for (int b = 0; b < num_bursts; ++b) {
    size_t start = static_cast<size_t>(rng.UniformInt(0, 1380));
    size_t width = static_cast<size_t>(rng.UniformInt(12, 45));
    double height = rng.Uniform(40.0, 150.0);
    AddBurst(&rps, start, width, height, 4);
  }
  AddSpikiness(&rps, &rng, /*sigma=*/0.10, /*spike_probability=*/0.012,
               /*spike_factor_max=*/1.5);
  for (double& v : rps) v = ClampRate(v);
  return Trace("trace4-many-bursts", std::move(rps));
}

Result<Trace> MakePaperTrace(int index, uint64_t seed) {
  switch (index) {
    case 1:
      return MakeTrace1Steady(seed == 0 ? 1 : seed);
    case 2:
      return MakeTrace2LongBurst(seed == 0 ? 2 : seed);
    case 3:
      return MakeTrace3ShortBurst(seed == 0 ? 3 : seed);
    case 4:
      return MakeTrace4ManyBursts(seed == 0 ? 4 : seed);
    default:
      return Status::InvalidArgument(
          StrFormat("paper trace index %d not in [1, 4]", index));
  }
}

}  // namespace dbscale::workload
