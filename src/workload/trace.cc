#include "src/workload/trace.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace dbscale::workload {

Trace::Trace(std::string name, std::vector<double> rps)
    : name_(std::move(name)), rps_(std::move(rps)) {}

double Trace::rate_at(size_t i) const {
  if (rps_.empty()) return 0.0;
  if (i >= rps_.size()) return rps_.back();
  return rps_[i];
}

double Trace::max_rate() const {
  double max = 0.0;
  for (double v : rps_) max = std::max(max, v);
  return max;
}

double Trace::mean_rate() const {
  if (rps_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : rps_) sum += v;
  return sum / static_cast<double>(rps_.size());
}

Trace Trace::Scaled(double factor) const {
  std::vector<double> scaled(rps_);
  for (double& v : scaled) v *= factor;
  return Trace(name_, std::move(scaled));
}

Result<Trace> Trace::Subsampled(size_t stride) const {
  if (stride == 0) {
    return Status::InvalidArgument("stride must be >= 1");
  }
  std::vector<double> out;
  out.reserve(rps_.size() / stride + 1);
  for (size_t i = 0; i < rps_.size(); i += stride) out.push_back(rps_[i]);
  return Trace(name_, std::move(out));
}

Result<Trace> Trace::Prefix(size_t n) const {
  if (n == 0 || n > rps_.size()) {
    return Status::OutOfRange(
        StrFormat("prefix length %zu outside [1, %zu]", n, rps_.size()));
  }
  return Trace(name_, std::vector<double>(rps_.begin(),
                                          rps_.begin() +
                                              static_cast<ptrdiff_t>(n)));
}

std::string Trace::ToCsv() const {
  std::string out = "step,rps\n";
  for (size_t i = 0; i < rps_.size(); ++i) {
    out += StrFormat("%zu,%.4f\n", i, rps_[i]);
  }
  return out;
}

Result<Trace> Trace::FromCsv(const std::string& name,
                             const std::string& csv) {
  std::vector<double> rps;
  const auto lines = StrSplit(csv, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = StrTrim(lines[i]);
    if (line.empty()) continue;
    if (i == 0 && line.find("rps") != std::string_view::npos) continue;
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected 'step,rps'", i));
    }
    double value = 0.0;
    if (!ParseDouble(fields[1], &value) || value < 0.0) {
      return Status::InvalidArgument(
          StrFormat("line %zu: bad rate '%s'", i, fields[1].c_str()));
    }
    rps.push_back(value);
  }
  if (rps.empty()) {
    return Status::InvalidArgument("trace CSV has no data rows");
  }
  return Trace(name, std::move(rps));
}

}  // namespace dbscale::workload
