// Synthetic reconstructions of the four production-derived load traces in
// Figure 8 of the paper (concurrent requests/second over 1440 minutes):
//
//   Trace 1 — steady demand (~110 rps with mild noise): the static-sizing-
//             friendly case used with DS2 (Figure 12).
//   Trace 2 — mostly idle with one long burst (~150 rps for several hours):
//             used with CPUIO (Figure 9).
//   Trace 3 — mostly idle with one short burst: used with CPUIO (Figure 11).
//   Trace 4 — many short bursts of varying height ("stress test"): used
//             with TPC-C (Figures 10 and 13).
//
// Shapes are deterministic given the seed; noise is seeded PCG.

#ifndef DBSCALE_WORKLOAD_PAPER_TRACES_H_
#define DBSCALE_WORKLOAD_PAPER_TRACES_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace dbscale::workload {

/// Length of the paper traces in steps (minutes).
inline constexpr size_t kPaperTraceSteps = 1440;

Trace MakeTrace1Steady(uint64_t seed = 1);
Trace MakeTrace2LongBurst(uint64_t seed = 2);
Trace MakeTrace3ShortBurst(uint64_t seed = 3);
Trace MakeTrace4ManyBursts(uint64_t seed = 4);

/// Returns trace `index` in [1, 4] (paper numbering).
[[nodiscard]] Result<Trace> MakePaperTrace(int index, uint64_t seed = 0);

}  // namespace dbscale::workload

#endif  // DBSCALE_WORKLOAD_PAPER_TRACES_H_
