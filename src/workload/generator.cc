#include "src/workload/generator.h"

#include <algorithm>

#include "src/common/check.h"

namespace dbscale::workload {

RequestGenerator::RequestGenerator(engine::DatabaseEngine* engine,
                                   const WorkloadSpec& spec, Trace trace,
                                   GeneratorOptions options, Rng rng)
    : engine_(engine),
      spec_(spec),
      trace_(std::move(trace)),
      options_(options),
      rng_(rng) {
  DBSCALE_CHECK(engine != nullptr);
  DBSCALE_CHECK(!trace_.empty());
  DBSCALE_CHECK(options_.step_duration > Duration::Zero());
  DBSCALE_CHECK(options_.rate_scale > 0.0);
  DBSCALE_CHECK_OK(spec_.Validate());
}

void RequestGenerator::Start() {
  DBSCALE_CHECK(!started_);
  started_ = true;
  start_time_ = engine_->events()->Now();
  if (options_.mode == ArrivalMode::kClosedLoop) {
    AdjustSessions();
  } else {
    ScheduleNextArrival();
  }
}

void RequestGenerator::AdjustSessions() {
  engine::EventQueue* events = engine_->events();
  const SimTime now = events->Now();
  if (now >= end_time()) return;
  const int64_t target = static_cast<int64_t>(CurrentRate());
  // Spawn sessions up to the target; surplus sessions retire on their next
  // completion (SessionIssue checks the target again).
  while (active_sessions_ < target) {
    ++active_sessions_;
    SessionIssue();
  }
  // Re-check at the next step boundary.
  const SimTime next_boundary =
      start_time_ +
      options_.step_duration * static_cast<double>(CurrentStep() + 1);
  events->ScheduleAt(std::min(next_boundary, end_time()),
                     [this] { AdjustSessions(); });
}

void RequestGenerator::SessionIssue() {
  engine::EventQueue* events = engine_->events();
  if (events->Now() >= end_time() ||
      active_sessions_ > static_cast<int64_t>(CurrentRate())) {
    --active_sessions_;  // session retires
    return;
  }
  ++requests_issued_;
  engine_->Submit(spec_.Sample(&rng_), [this](const engine::RequestResult&) {
    const Duration think = Duration::Millis(1) *
                           rng_.Exponential(std::max(
                               options_.think_time.ToMillis(), 1e-3));
    engine_->events()->ScheduleAfter(think, [this] { SessionIssue(); });
  });
}

SimTime RequestGenerator::end_time() const {
  return start_time_ +
         options_.step_duration * static_cast<double>(trace_.num_steps());
}

size_t RequestGenerator::CurrentStep() const {
  const Duration elapsed = engine_->events()->Now() - start_time_;
  return static_cast<size_t>(elapsed.ToSeconds() /
                             options_.step_duration.ToSeconds());
}

double RequestGenerator::CurrentRate() const {
  return trace_.rate_at(CurrentStep()) * options_.rate_scale;
}

void RequestGenerator::ScheduleNextArrival() {
  engine::EventQueue* events = engine_->events();
  const SimTime now = events->Now();
  if (now >= end_time()) return;

  const double rate = CurrentRate();
  if (rate <= 0.0) {
    // Idle step: re-check at the next step boundary.
    const size_t next_step = CurrentStep() + 1;
    const SimTime next_boundary =
        start_time_ +
        options_.step_duration * static_cast<double>(next_step);
    events->ScheduleAt(std::min(next_boundary, end_time()),
                       [this]() { ScheduleNextArrival(); });
    return;
  }

  const Duration gap = Duration::Seconds(rng_.Exponential(1.0 / rate));
  events->ScheduleAfter(gap, [this]() {
    if (engine_->events()->Now() >= end_time()) return;
    const bool at_capacity =
        options_.max_in_flight > 0 &&
        engine_->requests_in_flight() >= options_.max_in_flight;
    if (at_capacity) {
      ++requests_dropped_;
    } else {
      ++requests_issued_;
      engine_->Submit(spec_.Sample(&rng_));
    }
    ScheduleNextArrival();
  });
}

}  // namespace dbscale::workload
