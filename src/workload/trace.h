// Load traces: target offered load (requests/second) per trace step.
//
// A trace step corresponds to one minute of the original production trace
// (Figure 8); experiments map each step to one billing interval and may
// compress the simulated seconds per step.

#ifndef DBSCALE_WORKLOAD_TRACE_H_
#define DBSCALE_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace dbscale::workload {

/// \brief A named sequence of per-step target request rates.
class Trace {
 public:
  Trace() = default;
  Trace(std::string name, std::vector<double> rps);

  const std::string& name() const { return name_; }
  size_t num_steps() const { return rps_.size(); }
  bool empty() const { return rps_.empty(); }

  /// Target rate for step `i` (clamped to the last step beyond the end).
  double rate_at(size_t i) const;
  const std::vector<double>& values() const { return rps_; }

  double max_rate() const;
  double mean_rate() const;

  /// Returns a trace with every step's rate multiplied by `factor`.
  Trace Scaled(double factor) const;

  /// Returns a trace keeping every `stride`-th step (>= 1); used to shorten
  /// experiment runtime while preserving shape.
  Result<Trace> Subsampled(size_t stride) const;

  /// Returns the first `n` steps.
  Result<Trace> Prefix(size_t n) const;

  /// CSV serialization: lines of "step,rps" with a header.
  std::string ToCsv() const;
  static Result<Trace> FromCsv(const std::string& name,
                               const std::string& csv);

 private:
  std::string name_;
  std::vector<double> rps_;
};

}  // namespace dbscale::workload

#endif  // DBSCALE_WORKLOAD_TRACE_H_
