// Transaction-mix models for the benchmark workloads used in the paper's
// evaluation (Section 7.1): TPC-C, Dell DVD Store (DS2), and the CPUIO
// micro-benchmark. Each workload is a weighted set of transaction classes;
// each class is a distribution over request resource profiles.
//
// The class parameters are calibrated so that, at Figure 8 trace rates
// (peaks of 150-200 rps), resource demand spans the container catalog the
// way the paper's experiments do: CPUIO bursts demand ~S8 rungs, DS2 steady
// demand sits near S6-S7, and TPC-C is lock-bound (latency dominated by hot
// row contention rather than any physical resource).

#ifndef DBSCALE_WORKLOAD_MIX_H_
#define DBSCALE_WORKLOAD_MIX_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/result.h"
#include "src/engine/engine.h"
#include "src/engine/request.h"

namespace dbscale::workload {

/// \brief One transaction class: a distribution over RequestSpecs.
struct TransactionClass {
  std::string name;
  /// Relative frequency in the mix.
  double weight = 1.0;
  /// Mean CPU work (ms), exponential.
  double cpu_ms_mean = 1.0;
  /// Mean page accesses, Poisson.
  double pages_mean = 0.0;
  /// Probability each page access hits the working set.
  double hot_fraction = 0.95;
  /// Mean log KB written at commit, exponential; 0 for read-only.
  double log_kb_mean = 0.0;
  /// Probability the transaction takes a hot-row lock.
  double lock_probability = 0.0;
  /// Skew of the hot-row choice (0 = uniform; ~0.85 = highly skewed).
  double lock_zipf_theta = 0.85;
  /// Mean application-side lock hold time (ms, exponential): time the app
  /// keeps the transaction open across round trips. Container-size
  /// independent — the source of "bottlenecks beyond resources".
  double lock_hold_extra_ms_mean = 0.0;
  /// Workspace grant (MB) and probability of requiring one.
  double grant_mb = 0.0;
  double grant_probability = 0.0;
};

/// \brief A benchmark workload: transaction classes plus the database
/// parameters the engine needs.
struct WorkloadSpec {
  std::string name;
  std::vector<TransactionClass> classes;
  /// Working-set and total database size (MB).
  double working_set_mb = 1024.0;
  double database_mb = 16384.0;
  /// Hot rows available for locking.
  int num_hot_rows = 32;

  /// Validates weights and parameters.
  Status Validate() const;

  /// Mean CPU ms per request across the mix (for capacity estimates).
  double MeanCpuMs() const;
  /// Mean page accesses per request across the mix.
  double MeanPages() const;

  /// Engine options matching this workload's database shape; callers may
  /// adjust fields afterwards.
  engine::EngineOptions MakeEngineOptions() const;

  /// Samples a concrete request. `class_index_out` (optional) receives the
  /// sampled class index.
  engine::RequestSpec Sample(Rng* rng, int* class_index_out = nullptr) const;
};

/// TPC-C-like order-entry workload: short read-write transactions with
/// heavy hot-row lock contention (the Figure 13 scenario).
WorkloadSpec MakeTpccWorkload();

/// Dell DVD Store-like web retail workload: read-mostly mid-weight queries,
/// light contention (the Figure 12 scenario).
WorkloadSpec MakeDs2Workload();

/// Tuning knobs for the CPUIO micro-benchmark (Section 7.1: "allows us to
/// alter the mix of the queries" and "working set is controlled by creating
/// a hotspot in data accesses").
struct CpuioOptions {
  double cpu_weight = 0.30;
  double io_weight = 0.40;
  double log_weight = 0.20;
  double mixed_weight = 0.10;
  double working_set_mb = 3072.0;  // Figure 14's ~3 GB working set
  double hot_fraction = 0.97;      // ">95% operations" hit the hotspot
};

/// CPUIO micro-benchmark: a controllable mix of CPU-, disk-I/O- and
/// log-intensive queries (the Figures 9, 11 and 14 scenario).
WorkloadSpec MakeCpuioWorkload(const CpuioOptions& options = {});

}  // namespace dbscale::workload

#endif  // DBSCALE_WORKLOAD_MIX_H_
