// Open-loop request generator (Section 7.1 of the paper).
//
// Executes a workload spec in sync with a load trace: at every trace step
// it targets the step's requests/second, issuing Poisson arrivals (the
// paper's generator "maintains the offered load as close as possible to the
// specified target"). Open-loop arrivals are what make under-provisioning
// visible: requests keep arriving while queues build, and latency explodes
// rather than throughput quietly throttling.

#ifndef DBSCALE_WORKLOAD_GENERATOR_H_
#define DBSCALE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/workload/mix.h"
#include "src/workload/trace.h"

namespace dbscale::workload {

/// How trace values drive the client population.
enum class ArrivalMode {
  /// Trace value = offered requests/second, Poisson arrivals. Queues grow
  /// without bound under deep under-provisioning (modulo max_in_flight).
  kOpenLoop,
  /// Trace value = concurrent client sessions (the literal reading of the
  /// paper's Figure 8 axis). Each session issues one request at a time and
  /// re-issues on completion after a short think time, so throughput adapts
  /// to capacity and latency stays bounded near sessions/throughput.
  kClosedLoop,
};

/// Generator configuration.
struct GeneratorOptions {
  /// Simulated time that one trace step spans. The paper compresses time;
  /// 60 s/step replays a trace minute in a simulated minute, smaller values
  /// compress further.
  Duration step_duration = Duration::Seconds(20);
  /// Multiplier applied to every trace rate.
  double rate_scale = 1.0;
  /// Cap on requests in flight; arrivals beyond it are dropped (models the
  /// client connection pool limit). 0 = unlimited. Open-loop only.
  uint64_t max_in_flight = 0;
  ArrivalMode mode = ArrivalMode::kOpenLoop;
  /// Closed-loop: mean think time between a completion and the session's
  /// next request (exponential).
  Duration think_time = Duration::Millis(50);
};

/// \brief Drives a DatabaseEngine with trace-shaped Poisson arrivals.
class RequestGenerator {
 public:
  RequestGenerator(engine::DatabaseEngine* engine, const WorkloadSpec& spec,
                   Trace trace, GeneratorOptions options, Rng rng);

  /// Schedules the arrival process; the caller then runs the event queue.
  /// Generation stops after the last trace step.
  void Start();

  /// Simulated time at which the trace ends.
  SimTime end_time() const;

  uint64_t requests_issued() const { return requests_issued_; }
  uint64_t requests_dropped() const { return requests_dropped_; }

 private:
  void ScheduleNextArrival();
  void AdjustSessions();
  void SessionIssue();
  double CurrentRate() const;
  size_t CurrentStep() const;

  engine::DatabaseEngine* engine_;
  WorkloadSpec spec_;
  Trace trace_;
  GeneratorOptions options_;
  Rng rng_;
  SimTime start_time_;
  bool started_ = false;
  uint64_t requests_issued_ = 0;
  uint64_t requests_dropped_ = 0;
  /// Closed-loop: sessions currently alive (issuing or thinking).
  int64_t active_sessions_ = 0;
};

}  // namespace dbscale::workload

#endif  // DBSCALE_WORKLOAD_GENERATOR_H_
