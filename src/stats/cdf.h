// Empirical CDFs and a log-bucketed latency histogram.
//
// EmpiricalCdf backs the fleet analyses (Figures 2, 4 and 6 reproduce CDFs
// of inter-event intervals and wait times). LatencyHistogram gives O(1)
// per-request recording with ~2% relative error on percentile queries, which
// is what the engine uses to track p95 latency over millions of requests.

#ifndef DBSCALE_STATS_CDF_H_
#define DBSCALE_STATS_CDF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

/// \brief Exact empirical CDF over a stored sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void Add(double value);

  size_t size() const { return sorted_ ? samples_.size() : samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= value, in [0, 1]. Errors on empty CDF.
  Result<double> FractionAtOrBelow(double value) const;

  /// Value at percentile p in [0, 100] (linear interpolation).
  Result<double> ValueAtPercentile(double p) const;

  /// Evenly spaced (value, cumulative-fraction) points for plotting/printing.
  Result<std::vector<std::pair<double, double>>> CurvePoints(
      size_t num_points) const;

  /// CurvePoints into a caller-provided buffer (cleared first); no
  /// allocation beyond buffer growth, so per-interval report loops can
  /// reuse one buffer across calls.
  Status CurvePointsInto(size_t num_points,
                         std::vector<std::pair<double, double>>& out) const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// \brief Log-bucketed histogram for non-negative values (latencies in
/// microseconds). Buckets grow geometrically so relative error is bounded.
class LatencyHistogram {
 public:
  /// \param min_value lower bound of the first bucket (values below clamp).
  /// \param max_value upper bound of the last bucket (values above clamp).
  /// \param buckets_per_decade resolution; 48 gives ~2.4% relative error.
  LatencyHistogram(double min_value = 1.0, double max_value = 1e9,
                   int buckets_per_decade = 48);

  void Add(double value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double max_seen() const { return max_seen_; }

  /// Approximate percentile (p in [0, 100]); 0 when empty.
  double ValueAtPercentile(double p) const;

 private:
  size_t BucketFor(double value) const;
  double BucketUpper(size_t index) const;

  double min_value_;
  double log_min_;
  double bucket_width_log_;  // log10 width per bucket
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_CDF_H_
