#include "src/stats/theil_sen.h"

#include <algorithm>
#include <cmath>

#include "src/stats/robust.h"

namespace dbscale::stats {

namespace detail {

double InterceptAt(double y, double x, double slope) {
  return y - slope * x;
}

void ClassifySignAgreement(std::size_t positive, std::size_t negative,
                           std::size_t total_slopes, double accept_fraction,
                           TrendResult* result) {
  const double total = static_cast<double>(total_slopes);
  result->fraction_positive = static_cast<double>(positive) / total;
  result->fraction_negative = static_cast<double>(negative) / total;
  if (result->fraction_positive >= accept_fraction) {
    result->significant = true;
    result->direction = TrendDirection::kIncreasing;
  } else if (result->fraction_negative >= accept_fraction) {
    result->significant = true;
    result->direction = TrendDirection::kDecreasing;
  } else {
    // Noise: do not report a trend even though the median slope is nonzero.
    result->significant = false;
    result->direction = TrendDirection::kNone;
  }
}

}  // namespace detail

const char* TrendDirectionToString(TrendDirection d) {
  switch (d) {
    case TrendDirection::kNone:
      return "none";
    case TrendDirection::kIncreasing:
      return "increasing";
    case TrendDirection::kDecreasing:
      return "decreasing";
  }
  return "?";
}

TheilSenEstimator::TheilSenEstimator(double accept_fraction)
    : accept_fraction_(accept_fraction),
      config_status_(accept_fraction > 0.5 && accept_fraction <= 1.0
                         ? Status::OK()
                         : Status::OutOfRange(
                               "accept_fraction must be in (0.5, 1.0]")) {}

Result<TrendResult> TheilSenEstimator::Fit(const std::vector<double>& x,
                                           const std::vector<double>& y,
                                           TheilSenScratch* scratch) const {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y sizes differ");
  }
  return FitImpl(&x, y, scratch);
}

Result<TrendResult> TheilSenEstimator::FitSequence(
    const std::vector<double>& y, TheilSenScratch* scratch) const {
  return FitImpl(nullptr, y, scratch);
}

Result<TrendResult> TheilSenEstimator::FitImpl(
    const std::vector<double>* x, const std::vector<double>& y,
    TheilSenScratch* scratch) const {
  if (!config_status_.ok()) return config_status_;
  if (y.size() < 3) {
    return Status::InvalidArgument("Theil-Sen needs at least 3 points");
  }
  if (y.size() > kMaxTheilSenPoints) {
    // The pairwise pass needs n*(n-1)/2 slope doubles of scratch; beyond
    // the cap that quadratic bound is a configuration error, not a fit.
    return Status::InvalidArgument("Theil-Sen window exceeds "
                                   "kMaxTheilSenPoints");
  }
  TheilSenScratch local;
  if (scratch == nullptr) scratch = &local;

  const size_t n = y.size();
  std::vector<double>& slopes = scratch->slopes;
  slopes.clear();
  // Grows the scratch once; steady-state calls reuse capacity.
  slopes.reserve(n * (n - 1) / 2);  // dbscale-lint: allow(alloc-hot-path)
  size_t positive = 0;
  size_t negative = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x != nullptr
                            ? (*x)[j] - (*x)[i]
                            : static_cast<double>(j) - static_cast<double>(i);
      if (dx == 0.0) continue;  // vertical pair carries no slope information
      double slope = (y[j] - y[i]) / dx;
      slopes.push_back(slope);
      if (slope > 0.0) {
        ++positive;
      } else if (slope < 0.0) {
        ++negative;
      }
    }
  }
  if (slopes.empty()) {
    return Status::InvalidArgument("all x values identical");
  }

  TrendResult result;
  DBSCALE_ASSIGN_OR_RETURN(result.slope, MedianInPlace(slopes));
  std::vector<double>& intercepts = scratch->intercepts;
  intercepts.clear();
  intercepts.reserve(n);  // dbscale-lint: allow(alloc-hot-path)
  for (size_t i = 0; i < n; ++i) {
    const double xi = x != nullptr ? (*x)[i] : static_cast<double>(i);
    intercepts.push_back(detail::InterceptAt(y[i], xi, result.slope));
  }
  DBSCALE_ASSIGN_OR_RETURN(result.intercept, MedianInPlace(intercepts));

  detail::ClassifySignAgreement(positive, negative, slopes.size(),
                                accept_fraction_, &result);
  return result;
}

}  // namespace dbscale::stats
