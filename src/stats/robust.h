// Robust statistical aggregates (Section 3 of the paper).
//
// Telemetry is noisy: spikes from checkpoints, transient system work, and
// workload variance produce outliers that break mean-based estimators (the
// mean has a breakdown point of 0). The paper therefore aggregates signals
// with high-breakdown estimators: the median (breakdown 50%), order
// statistics, and MAD. This header provides those primitives.

#ifndef DBSCALE_STATS_ROBUST_H_
#define DBSCALE_STATS_ROBUST_H_

#include <cstddef>
#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

/// Arithmetic mean. Breakdown point 0 — use only where outliers are
/// impossible by construction (e.g. bounded percentages over long windows).
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

/// Median; breakdown point 50%. Average of the two middle order statistics
/// for even-sized input. Errors on empty input.
[[nodiscard]] Result<double> Median(std::vector<double> values);

/// Linear-interpolated percentile, p in [0, 100]. Errors on empty input or
/// p outside the range.
[[nodiscard]] Result<double> Percentile(std::vector<double> values, double p);

/// Percentile on data the caller has already sorted ascending (no copy).
/// Use this when a caller needs several percentiles or the full CDF of one
/// sample; the selection-based variants below are cheaper for a single
/// order statistic.
double PercentileSorted(const std::vector<double>& sorted, double p);

/// Placement of the linear-interpolated percentile within `n` sorted
/// values: blend order statistics `lo` and `hi` (0-based) with weight
/// `frac`. Shared by every percentile implementation — batch, in-place, and
/// the incremental sliding-window engine — so their interpolation is
/// bit-identical by construction. Requires n >= 1 and p in [0, 100].
struct PercentilePlacement {
  size_t lo = 0;
  size_t hi = 0;
  double frac = 0.0;
};
PercentilePlacement PlacePercentile(size_t n, double p);

/// The interpolation kernel: lo_value * (1 - frac) + hi_value * frac.
/// Deliberately out of line: a single definition means batch and
/// incremental paths execute the same machine code, so results stay
/// bit-identical even under floating-point contraction (-ffp-contract).
double InterpolateOrderStats(double lo_value, double hi_value, double frac);

/// Selection-based (nth_element) percentile that permutes `values` instead
/// of sorting or copying. O(n) expected vs O(n log n); returns values
/// bit-identical to Percentile on the same input.
[[nodiscard]] Result<double> PercentileInPlace(std::vector<double>& values,
                                               double p);

/// Selection-based median that permutes `values`; bit-identical to Median.
[[nodiscard]] Result<double> MedianInPlace(std::vector<double>& values);

/// Median absolute deviation (scaled by 1.4826 for consistency with the
/// standard deviation under normality). Breakdown point 50%.
[[nodiscard]] Result<double> Mad(const std::vector<double>& values);

/// MAD computed with zero allocations by permuting/overwriting `values`
/// (the input is consumed). Same result as Mad.
[[nodiscard]] Result<double> MadInPlace(std::vector<double>& values);

/// Mean after discarding the `trim_fraction` smallest and largest values
/// (e.g. 0.1 trims 10% from each side). Breakdown point = trim_fraction.
[[nodiscard]] Result<double> TrimmedMean(std::vector<double> values,
                                         double trim_fraction);

/// \brief Streaming mean/variance/min/max accumulator (Welford), used where
/// keeping full samples would be too expensive.
class RunningStats {
 public:
  void Add(double value);
  void Merge(const RunningStats& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_ROBUST_H_
