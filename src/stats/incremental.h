// Incremental sliding-window statistics (the per-interval signal engine).
//
// The telemetry manager recomputes every robust signal from the full window
// on every billing interval, yet successive intervals share W-1 of W
// samples. The structures here maintain each statistic across single-sample
// slides instead:
//
//   * SlidingOrderStats  — sorted ring over the window: O(log W) compares
//     (plus a small memmove) per slide, O(1) median/percentile reads, O(W)
//     MAD (every deviation changes when the median moves, so O(W) is the
//     incremental optimum).
//   * IncrementalTheilSen — maintains the pairwise-slope order statistics
//     and sign-agreement counters. A slide evicts the W-1 slopes of the
//     departing point and admits W-1 for the arriving one, each O(log W²),
//     turning the O(W²) per-interval batch pass into O(W log W).
//   * SlidingRankWindow   — maintains the sorted order of a series so
//     tie-averaged ranks (and from them Spearman's rho) are produced
//     without re-sorting per interval.
//
// Exact-equality contract: every read is bit-identical to the batch
// kernels in robust.h / theil_sen.h / spearman.h on the same window
// contents — the batch path stays as the oracle and the randomized
// equivalence tests assert `==` on doubles, never a tolerance. This holds
// because the interpolation / intercept / tie-rank arithmetic is shared
// (single out-of-line definitions) and because pairwise Theil-Sen slopes
// depend only on index *differences*, which a slide preserves. (The one
// unobservable exception: where a window contains both +0.0 and -0.0 the
// two paths may return differently signed zeros, which compare equal.)
//
// All structures are allocation-free in steady state: Reset() sizes every
// buffer once, slides reuse capacity, and the Theil-Sen slope nodes come
// from a caller-supplied SlopeArena sized once for the whole engine.
// Values must be NaN-free (NaN breaks the ordering invariants).

#ifndef DBSCALE_STATS_INCREMENTAL_H_
#define DBSCALE_STATS_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/stats/theil_sen.h"

namespace dbscale::stats {

/// \brief Node pool for OrderStatMultiset B+-trees, shared engine-wide.
///
/// One arena serves every slope multiset of an incremental engine, sized
/// once at configuration time for the total live *values* (quadratic in the
/// trend window: each tracked series holds up to W*(W-1)/2 slopes — see
/// TheilSenScratch's bound). Reset() reclaims every node at once; all
/// attached multisets must be Reset() alongside it.
class SlopeArena {
 public:
  /// Drops all nodes and sizes the pool so `value_capacity` live values can
  /// be held without further heap allocation (worst-case node count under
  /// the B+-tree's minimum-occupancy invariant, plus margin).
  void Reset(size_t value_capacity);

  size_t live_nodes() const { return live_; }
  /// Pool size in nodes. Diagnostic: steady-state slides must not grow it.
  size_t allocated_nodes() const { return nodes_.size(); }

 private:
  friend class OrderStatMultiset;

  static constexpr uint32_t kNil = 0xffffffffu;
  /// B+-tree geometry. kFan entries keep one node's keys within four cache
  /// lines, so routing is a short vectorizable scan instead of the
  /// pointer-chase-per-element a binary tree pays; kMin is the non-root
  /// minimum occupancy the erase rebalancing maintains, which bounds the
  /// worst-case node count by value_capacity / kMin (times a small factor
  /// for internal levels).
  static constexpr size_t kFan = 32;
  static constexpr size_t kMin = 11;

  struct Node {
    double keys[kFan];           ///< leaf: values; internal: max of child i
    uint32_t child[kFan];        ///< internal only
    uint32_t child_total[kFan];  ///< internal: value count under child i
    uint16_t entries = 0;
    bool leaf = true;
  };

  uint32_t Allocate(bool leaf);
  void Free(uint32_t index);

  std::vector<Node> nodes_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

/// \brief Order-statistic multiset: a counted B+-tree keyed by value, over
/// a shared SlopeArena.
///
/// Insert/Erase/Kth (0-based order statistic) are worst-case O(log n), and
/// the wide nodes keep the constant small: the treap alternative costs a
/// dependent cache miss per level at ~3 log2(n) expected depth, which
/// measures ~5x slower on the sliding Theil-Sen workload. Duplicate values
/// are kept as separate entries; Erase removes one instance. Values must
/// be NaN-free.
class OrderStatMultiset {
 public:
  /// Attaches to `arena` and forgets any previous contents. Call only
  /// after (or together with) SlopeArena::Reset — nodes are not returned
  /// individually.
  void Reset(SlopeArena* arena);

  size_t size() const { return total_; }
  void Insert(double value);
  /// Removes one instance of `value`; false when absent.
  bool Erase(double value);
  /// k-th smallest value, 0-based. Requires k < size().
  double Kth(size_t k) const;

 private:
  using Node = SlopeArena::Node;

  Node& NodeAt(uint32_t index) const { return arena_->nodes_[index]; }
  /// Number of keys < value (== first slot whose key is >= value).
  static size_t CountLess(const Node& n, double value);
  /// Number of keys <= value (leaf insertion point, after duplicates).
  static size_t CountLessEq(const Node& n, double value);
  static double NodeMax(const Node& n) { return n.keys[n.entries - 1]; }
  /// Splits the full child at `slot` in half; parent must have room.
  void SplitChild(uint32_t parent, size_t slot);
  /// Ensures the child at *slot has > kMin entries before a descent, by
  /// borrowing from or merging with a sibling; *slot may shift left.
  void FillChild(uint32_t parent, size_t* slot);

  SlopeArena* arena_ = nullptr;
  uint32_t root_ = SlopeArena::kNil;
  size_t total_ = 0;
};

/// \brief Sliding FIFO window with sorted order statistics.
///
/// Entries are pushed newest-last; once `capacity` entries are held, each
/// push evicts the oldest. An entry can be "absent" (PushAbsent) to model
/// filtered series — e.g. latency samples with no completions — which
/// occupy a window slot but contribute no value.
///
/// Reads are bit-identical to the batch kernels on the present values:
/// Median()/Percentile() to MedianInPlace/PercentileInPlace, Mad() to
/// MadInPlace.
class SlidingOrderStats {
 public:
  void Reset(size_t capacity);

  void Push(double value);
  void PushAbsent();

  /// Entries currently in the window, including absent ones.
  size_t window_entries() const { return entries_; }
  /// Present values in the window.
  size_t count() const { return sorted_.size(); }

  /// Present values in ascending order (alive until the next push).
  const std::vector<double>& sorted() const { return sorted_; }

  /// Require count() > 0; p in [0, 100].
  double Median() const;
  double Percentile(double p) const;
  /// MAD of the present values (scaled 1.4826); errors when empty. O(W):
  /// uses an internal deviation scratch, no allocation in steady state.
  Result<double> Mad();

  /// Visits present values oldest-first.
  template <typename Fn>
  void ForEachPresent(Fn&& fn) const {
    const size_t cap = ring_.size();
    size_t pos = head_;
    for (size_t i = 0; i < entries_; ++i) {
      const Entry& e = ring_[pos];
      pos = pos + 1 == cap ? 0 : pos + 1;
      if (e.present) fn(e.value);
    }
  }

 private:
  struct Entry {
    double value = 0.0;
    bool present = false;
  };

  void PushEntry(Entry e);
  void InsertSorted(double value);
  void RemoveSorted(double value);

  std::vector<Entry> ring_;  ///< fixed size == capacity after Reset
  size_t head_ = 0;
  size_t entries_ = 0;
  std::vector<double> sorted_;
  std::vector<double> mad_scratch_;
};

/// \brief Incremental Theil-Sen over an implicit x = 0, 1, ... sequence.
///
/// Mirrors TheilSenEstimator::FitSequence over the present values of a
/// sliding window: because slopes depend only on index differences, a
/// slide leaves every surviving pairwise slope unchanged — eviction
/// removes the departing point's slopes (recomputed, bit-identical, from
/// the stored y values) and admission adds the arriving point's, each
/// O(log W²) in the shared slope multiset. Fit() is then O(W log W) per
/// interval: O(1) sign fractions, O(log) median slope, O(W) intercepts.
class IncrementalTheilSen {
 public:
  /// `capacity` is the window size (<= kMaxTheilSenPoints); `arena` must
  /// outlive this object and have room for capacity*(capacity-1)/2 nodes
  /// beyond its other users.
  void Reset(size_t capacity, SlopeArena* arena);

  void Push(double y);
  void PushAbsent();

  /// Present points in the window.
  size_t count() const { return present_; }

  /// Bit-identical to estimator.FitSequence(present values, scratch).
  /// `scratch` (required) provides the intercept buffer.
  Result<TrendResult> Fit(const TheilSenEstimator& estimator,
                          TheilSenScratch* scratch) const;

 private:
  struct Entry {
    double value = 0.0;
    bool present = false;
  };

  void EvictOldest();
  void Admit(double y);

  std::vector<Entry> ring_;
  size_t head_ = 0;
  size_t entries_ = 0;
  size_t present_ = 0;
  OrderStatMultiset slopes_;
  size_t positive_ = 0;
  size_t negative_ = 0;
};

/// \brief Sliding window with tie-averaged ranks, for incremental Spearman.
///
/// Maintains the window's sorted order across slides; Ranks() yields the
/// 1-based tie-averaged ranks in window (oldest-first) order, bit-identical
/// to RankWithTies on the same sequence, without re-sorting. Spearman's rho
/// is then PearsonCorrelation(x.Ranks(), y.Ranks()) — the same kernel the
/// batch path ends in.
class SlidingRankWindow {
 public:
  void Reset(size_t capacity);

  void Push(double value);

  size_t size() const { return size_; }

  /// Ranks in window order; cached until the next Push. O(W log W)
  /// compares on first read after a slide, no allocation in steady state.
  const std::vector<double>& Ranks();

 private:
  std::vector<double> ring_;  ///< fixed size == capacity after Reset
  size_t head_ = 0;
  size_t size_ = 0;
  std::vector<double> sorted_;
  std::vector<double> ranks_;
  std::vector<double> rank_by_pos_;  ///< rank per sorted position (scratch)
  bool ranks_valid_ = false;
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_INCREMENTAL_H_
