// Spearman rank correlation (Section 3.2.2 of the paper).
//
// The dependence between resource waits/utilization and latency in a
// database engine is monotonic but rarely linear, so Pearson correlation on
// raw values is a poor fit. Spearman's rho — Pearson on the *ranks* — detects
// any monotonic relationship, and ranking inherently bounds the influence of
// outliers.

#ifndef DBSCALE_STATS_SPEARMAN_H_
#define DBSCALE_STATS_SPEARMAN_H_

#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

/// Fractional ranks (1-based) with ties assigned their average rank.
std::vector<double> RankWithTies(const std::vector<double>& values);

/// Pearson product-moment correlation of two equally-sized samples.
/// Returns 0 when either sample has zero variance.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Spearman's rho in [-1, 1]: Pearson correlation of the tie-adjusted ranks.
/// Requires >= 3 points.
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_SPEARMAN_H_
