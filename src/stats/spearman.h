// Spearman rank correlation (Section 3.2.2 of the paper).
//
// The dependence between resource waits/utilization and latency in a
// database engine is monotonic but rarely linear, so Pearson correlation on
// raw values is a poor fit. Spearman's rho — Pearson on the *ranks* — detects
// any monotonic relationship, and ranking inherently bounds the influence of
// outliers.

#ifndef DBSCALE_STATS_SPEARMAN_H_
#define DBSCALE_STATS_SPEARMAN_H_

#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

namespace detail {

/// Average rank (1-based) assigned to the tie group occupying sorted
/// positions [first, last] (0-based, inclusive). Shared by the batch
/// ranking and the incremental sliding-rank window so tie handling is
/// identical by construction.
double TieAveragedRank(size_t first, size_t last);

}  // namespace detail

/// Fractional ranks (1-based) with ties assigned their average rank.
std::vector<double> RankWithTies(const std::vector<double>& values);

/// Rank into a caller-provided buffer (no allocation beyond buffer growth).
/// `order` is an internal sort buffer the caller just keeps alive.
void RankWithTiesInto(const std::vector<double>& values,
                      std::vector<size_t>& order, std::vector<double>& ranks);

/// Pearson product-moment correlation of two equally-sized samples.
/// Returns 0 when either sample has zero variance.
[[nodiscard]] Result<double> PearsonCorrelation(const std::vector<double>& x,
                                                const std::vector<double>& y);

/// Reusable buffers for SpearmanCorrelation; one per caller thread.
struct SpearmanScratch {
  std::vector<size_t> order;
  std::vector<double> rank_x;
  std::vector<double> rank_y;
};

/// Spearman's rho in [-1, 1]: Pearson correlation of the tie-adjusted ranks.
/// Requires >= 3 points. With a scratch the call performs no allocations
/// beyond scratch growth.
[[nodiscard]] Result<double> SpearmanCorrelation(
    const std::vector<double>& x, const std::vector<double>& y,
    SpearmanScratch* scratch = nullptr);

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_SPEARMAN_H_
