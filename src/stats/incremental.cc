#include "src/stats/incremental.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/stats/robust.h"
#include "src/stats/spearman.h"

namespace dbscale::stats {

namespace {

/// Deepest tree the erase path stack must hold: even at the Theil-Sen point
/// cap (~8.4M slopes) a fan-32/min-11 B+-tree is under 8 levels.
constexpr size_t kMaxTreeDepth = 16;

}  // namespace

// ---------------------------------------------------------------------------
// SlopeArena
// ---------------------------------------------------------------------------

void SlopeArena::Reset(size_t value_capacity) {
  // Worst-case node count: every non-root node keeps >= SlopeArena::kMin entries, so
  // leaves number at most value_capacity / SlopeArena::kMin and each internal level
  // shrinks by another factor SlopeArena::kMin; value_capacity / 8 over-covers the
  // geometric series, + 16 covers the root chain and transient splits.
  const size_t node_budget = value_capacity / 8 + 16;
  DBSCALE_DCHECK(node_budget < static_cast<size_t>(kNil));
  nodes_.clear();
  // One-time sizing: every node the engine will ever need, up front.
  nodes_.resize(node_budget);   // dbscale-lint: allow(alloc-hot-path)
  free_.clear();
  free_.reserve(node_budget);   // dbscale-lint: allow(alloc-hot-path)
  // Popped from the back, so nodes are handed out in index order 0, 1, ...
  for (size_t i = node_budget; i > 0; --i) {
    free_.push_back(static_cast<uint32_t>(i - 1));
  }
  live_ = 0;
}

uint32_t SlopeArena::Allocate(bool leaf) {
  uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    // Undersized Reset; cold growth keeps the structure correct.
    index = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{});  // dbscale-lint: allow(alloc-hot-path)
  }
  Node& n = nodes_[index];
  n.entries = 0;
  n.leaf = leaf;
  ++live_;
  return index;
}

void SlopeArena::Free(uint32_t index) {
  DBSCALE_DCHECK(live_ > 0);
  free_.push_back(index);
  --live_;
}

// ---------------------------------------------------------------------------
// OrderStatMultiset
// ---------------------------------------------------------------------------

void OrderStatMultiset::Reset(SlopeArena* arena) {
  DBSCALE_DCHECK(arena != nullptr);
  arena_ = arena;
  root_ = SlopeArena::kNil;
  total_ = 0;
}

size_t OrderStatMultiset::CountLess(const Node& n, double value) {
  // Branch-free scan the compiler vectorizes; at SlopeArena::kFan == 32 the whole key
  // array is four cache lines.
  size_t c = 0;
  for (size_t i = 0; i < n.entries; ++i) c += n.keys[i] < value ? 1 : 0;
  return c;
}

size_t OrderStatMultiset::CountLessEq(const Node& n, double value) {
  size_t c = 0;
  for (size_t i = 0; i < n.entries; ++i) c += n.keys[i] <= value ? 1 : 0;
  return c;
}

void OrderStatMultiset::SplitChild(uint32_t parent, size_t slot) {
  // Allocate first: cold growth may move the node pool, so references are
  // taken only afterwards.
  const uint32_t left = NodeAt(parent).child[slot];
  const uint32_t right = arena_->Allocate(NodeAt(left).leaf);
  Node& p = NodeAt(parent);
  Node& l = NodeAt(left);
  Node& r = NodeAt(right);
  DBSCALE_DCHECK(l.entries == SlopeArena::kFan && p.entries < SlopeArena::kFan);

  constexpr size_t kHalf = SlopeArena::kFan / 2;
  r.entries = static_cast<uint16_t>(SlopeArena::kFan - kHalf);
  std::memcpy(r.keys, l.keys + kHalf, (SlopeArena::kFan - kHalf) * sizeof(double));
  uint32_t moved = 0;
  if (l.leaf) {
    moved = static_cast<uint32_t>(SlopeArena::kFan - kHalf);
  } else {
    std::memcpy(r.child, l.child + kHalf, (SlopeArena::kFan - kHalf) * sizeof(uint32_t));
    std::memcpy(r.child_total, l.child_total + kHalf,
                (SlopeArena::kFan - kHalf) * sizeof(uint32_t));
    for (size_t i = 0; i < r.entries; ++i) moved += r.child_total[i];
  }
  l.entries = static_cast<uint16_t>(kHalf);

  // Open slot + 1 in the parent for the new right half.
  const size_t tail = p.entries - slot - 1;
  std::memmove(p.keys + slot + 2, p.keys + slot + 1, tail * sizeof(double));
  std::memmove(p.child + slot + 2, p.child + slot + 1,
               tail * sizeof(uint32_t));
  std::memmove(p.child_total + slot + 2, p.child_total + slot + 1,
               tail * sizeof(uint32_t));
  p.keys[slot + 1] = p.keys[slot];  // right half keeps the combined max
  p.child[slot + 1] = right;
  p.child_total[slot + 1] = moved;
  p.keys[slot] = NodeMax(l);
  p.child_total[slot] -= moved;
  ++p.entries;
}

void OrderStatMultiset::FillChild(uint32_t parent, size_t* slot) {
  // No allocation on this path (merges only free), so references hold.
  Node& p = NodeAt(parent);
  size_t s = *slot;

  // Borrow one entry from the right sibling when it has entries to spare.
  if (s + 1 < p.entries && NodeAt(p.child[s + 1]).entries > SlopeArena::kMin) {
    Node& c = NodeAt(p.child[s]);
    Node& rs = NodeAt(p.child[s + 1]);
    uint32_t moved = 1;
    c.keys[c.entries] = rs.keys[0];
    if (!c.leaf) {
      moved = rs.child_total[0];
      c.child[c.entries] = rs.child[0];
      c.child_total[c.entries] = moved;
      std::memmove(rs.child, rs.child + 1,
                   (rs.entries - 1) * sizeof(uint32_t));
      std::memmove(rs.child_total, rs.child_total + 1,
                   (rs.entries - 1) * sizeof(uint32_t));
    }
    std::memmove(rs.keys, rs.keys + 1, (rs.entries - 1) * sizeof(double));
    ++c.entries;
    --rs.entries;
    p.keys[s] = NodeMax(c);
    p.child_total[s] += moved;
    p.child_total[s + 1] -= moved;
    return;
  }

  // Borrow the last entry of the left sibling.
  if (s > 0 && NodeAt(p.child[s - 1]).entries > SlopeArena::kMin) {
    Node& c = NodeAt(p.child[s]);
    Node& ls = NodeAt(p.child[s - 1]);
    uint32_t moved = 1;
    std::memmove(c.keys + 1, c.keys, c.entries * sizeof(double));
    c.keys[0] = ls.keys[ls.entries - 1];
    if (!c.leaf) {
      moved = ls.child_total[ls.entries - 1];
      std::memmove(c.child + 1, c.child, c.entries * sizeof(uint32_t));
      std::memmove(c.child_total + 1, c.child_total,
                   c.entries * sizeof(uint32_t));
      c.child[0] = ls.child[ls.entries - 1];
      c.child_total[0] = moved;
    }
    ++c.entries;
    --ls.entries;
    p.keys[s - 1] = NodeMax(ls);
    p.child_total[s] += moved;
    p.child_total[s - 1] -= moved;
    return;
  }

  // Both siblings sit at minimum occupancy: merge with one of them. The
  // merged node holds at most 2 * SlopeArena::kMin + 1 <= SlopeArena::kFan entries.
  const size_t a = s + 1 < p.entries ? s : s - 1;  // merge child[a], child[a+1]
  const uint32_t left = p.child[a];
  const uint32_t right = p.child[a + 1];
  Node& l = NodeAt(left);
  Node& r = NodeAt(right);
  std::memcpy(l.keys + l.entries, r.keys, r.entries * sizeof(double));
  if (!l.leaf) {
    std::memcpy(l.child + l.entries, r.child, r.entries * sizeof(uint32_t));
    std::memcpy(l.child_total + l.entries, r.child_total,
                r.entries * sizeof(uint32_t));
  }
  l.entries = static_cast<uint16_t>(l.entries + r.entries);
  p.keys[a] = p.keys[a + 1];
  p.child_total[a] += p.child_total[a + 1];
  const size_t tail = p.entries - a - 2;
  std::memmove(p.keys + a + 1, p.keys + a + 2, tail * sizeof(double));
  std::memmove(p.child + a + 1, p.child + a + 2, tail * sizeof(uint32_t));
  std::memmove(p.child_total + a + 1, p.child_total + a + 2,
               tail * sizeof(uint32_t));
  --p.entries;
  arena_->Free(right);
  *slot = a;
}

void OrderStatMultiset::Insert(double value) {
  if (root_ == SlopeArena::kNil) {
    root_ = arena_->Allocate(/*leaf=*/true);
  }
  if (NodeAt(root_).entries == SlopeArena::kFan) {
    // Grow the tree: new internal root over the old one, then split. The
    // preemptive split on the way down is what keeps every insert a single
    // root-to-leaf pass with no upward cascade.
    const uint32_t old_root = root_;
    const uint32_t new_root = arena_->Allocate(/*leaf=*/false);
    Node& nr = NodeAt(new_root);
    nr.entries = 1;
    nr.child[0] = old_root;
    nr.child_total[0] = static_cast<uint32_t>(total_);
    nr.keys[0] = NodeMax(NodeAt(old_root));
    root_ = new_root;
    SplitChild(new_root, 0);
  }
  uint32_t t = root_;
  for (;;) {
    if (NodeAt(t).leaf) {
      Node& n = NodeAt(t);
      const size_t pos = CountLessEq(n, value);
      std::memmove(n.keys + pos + 1, n.keys + pos,
                   (n.entries - pos) * sizeof(double));
      n.keys[pos] = value;
      ++n.entries;
      break;
    }
    size_t slot = CountLess(NodeAt(t), value);
    if (slot == NodeAt(t).entries) --slot;  // beyond max: extend last child
    if (NodeAt(NodeAt(t).child[slot]).entries == SlopeArena::kFan) {
      SplitChild(t, slot);  // may grow the pool; re-read the node after
      if (value > NodeAt(t).keys[slot]) ++slot;
    }
    Node& n = NodeAt(t);
    n.child_total[slot] += 1;
    if (value > n.keys[slot]) n.keys[slot] = value;
    t = n.child[slot];
  }
  ++total_;
}

bool OrderStatMultiset::Erase(double value) {
  if (root_ == SlopeArena::kNil) return false;
  struct PathEntry {
    uint32_t node;
    uint32_t slot;
  };
  PathEntry path[kMaxTreeDepth];
  size_t depth = 0;

  uint32_t t = root_;
  while (!NodeAt(t).leaf) {
    size_t slot = CountLess(NodeAt(t), value);
    if (slot == NodeAt(t).entries) return false;  // beyond max: absent
    if (NodeAt(NodeAt(t).child[slot]).entries <= SlopeArena::kMin) {
      // Boost the child above minimum before descending so the removal
      // itself can never underflow a node — single downward pass.
      FillChild(t, &slot);
      if (t == root_ && NodeAt(root_).entries == 1) {
        root_ = NodeAt(root_).child[0];
        arena_->Free(t);
        t = root_;
        continue;  // re-route from the collapsed root
      }
      slot = CountLess(NodeAt(t), value);  // entries shifted; re-route
      DBSCALE_DCHECK(slot < NodeAt(t).entries);
    }
    DBSCALE_DCHECK(depth < kMaxTreeDepth);
    path[depth++] = {t, static_cast<uint32_t>(slot)};
    t = NodeAt(t).child[slot];
  }

  Node& leaf = NodeAt(t);
  const size_t pos = CountLess(leaf, value);
  if (pos == leaf.entries || leaf.keys[pos] != value) return false;
  std::memmove(leaf.keys + pos, leaf.keys + pos + 1,
               (leaf.entries - pos - 1) * sizeof(double));
  --leaf.entries;
  --total_;
  if (leaf.entries == 0) {
    // Only the root may empty out: descents keep every other node > SlopeArena::kMin.
    DBSCALE_DCHECK(t == root_ && depth == 0);
    arena_->Free(t);
    root_ = SlopeArena::kNil;
    return true;
  }
  // One upward pass over the recorded path: shrink the subtree counts and
  // refresh the max keys (the removed value may have been a subtree max).
  for (size_t i = depth; i > 0; --i) {
    Node& pn = NodeAt(path[i - 1].node);
    const uint32_t s = path[i - 1].slot;
    pn.child_total[s] -= 1;
    pn.keys[s] = NodeMax(NodeAt(pn.child[s]));
  }
  return true;
}

double OrderStatMultiset::Kth(size_t k) const {
  DBSCALE_DCHECK(k < total_);
  uint32_t t = root_;
  for (;;) {
    const Node& n = NodeAt(t);
    if (n.leaf) return n.keys[k];
    size_t slot = 0;
    while (k >= n.child_total[slot]) {
      k -= n.child_total[slot];
      ++slot;
    }
    t = n.child[slot];
  }
}

// ---------------------------------------------------------------------------
// SlidingOrderStats
// ---------------------------------------------------------------------------

void SlidingOrderStats::Reset(size_t capacity) {
  DBSCALE_DCHECK(capacity >= 1);
  ring_.clear();
  ring_.resize(capacity);       // dbscale-lint: allow(alloc-hot-path)
  head_ = 0;
  entries_ = 0;
  sorted_.clear();
  sorted_.reserve(capacity);    // dbscale-lint: allow(alloc-hot-path)
  mad_scratch_.clear();
  mad_scratch_.reserve(capacity);  // dbscale-lint: allow(alloc-hot-path)
}

void SlidingOrderStats::Push(double value) {
  PushEntry(Entry{value, true});
}

void SlidingOrderStats::PushAbsent() { PushEntry(Entry{}); }

void SlidingOrderStats::PushEntry(Entry e) {
  const size_t cap = ring_.size();
  if (entries_ == cap) {
    const Entry& old = ring_[head_];
    if (old.present) RemoveSorted(old.value);
    head_ = (head_ + 1) % cap;
    --entries_;
  }
  ring_[(head_ + entries_) % cap] = e;
  ++entries_;
  if (e.present) InsertSorted(e.value);
}

void SlidingOrderStats::InsertSorted(double value) {
  // Within the capacity Reset reserved: a memmove, never an allocation.
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), value),
                 value);
}

void SlidingOrderStats::RemoveSorted(double value) {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), value);
  DBSCALE_DCHECK(it != sorted_.end() && *it == value);
  sorted_.erase(it);
}

double SlidingOrderStats::Median() const { return Percentile(50.0); }

double SlidingOrderStats::Percentile(double p) const {
  // PercentileSorted shares its placement and interpolation kernels with
  // PercentileInPlace, so this read is bit-identical to the batch path on
  // the same value multiset.
  return PercentileSorted(sorted_, p);
}

Result<double> SlidingOrderStats::Mad() {
  if (sorted_.empty()) {
    return Status::InvalidArgument("MAD of empty sample");
  }
  // MAD is O(W) inherently — every deviation changes when the median moves —
  // so delegate to the batch kernel on a capacity-retaining copy; the
  // result depends only on the value multiset, hence bit-identical.
  mad_scratch_.assign(sorted_.begin(), sorted_.end());
  return MadInPlace(mad_scratch_);
}

// ---------------------------------------------------------------------------
// IncrementalTheilSen
// ---------------------------------------------------------------------------

void IncrementalTheilSen::Reset(size_t capacity, SlopeArena* arena) {
  DBSCALE_DCHECK(capacity >= 1 && capacity <= kMaxTheilSenPoints);
  ring_.clear();
  ring_.resize(capacity);  // dbscale-lint: allow(alloc-hot-path)
  head_ = 0;
  entries_ = 0;
  present_ = 0;
  slopes_.Reset(arena);
  positive_ = 0;
  negative_ = 0;
}

void IncrementalTheilSen::Push(double y) {
  if (entries_ == ring_.size()) EvictOldest();
  Admit(y);
  ring_[(head_ + entries_) % ring_.size()] = Entry{y, true};
  ++entries_;
  ++present_;
}

void IncrementalTheilSen::PushAbsent() {
  if (entries_ == ring_.size()) EvictOldest();
  ring_[(head_ + entries_) % ring_.size()] = Entry{};
  ++entries_;
}

void IncrementalTheilSen::EvictOldest() {
  const size_t cap = ring_.size();
  const Entry old = ring_[head_];
  head_ = (head_ + 1) % cap;
  --entries_;
  if (!old.present) return;
  // The departing present point had filtered index 0, so its slope with
  // the point now at filtered index k is (y_k - y_old) / (k - 0) — the
  // exact expression the batch pass evaluates for that pair (pairwise
  // slopes depend only on index differences, which slides preserve, and
  // window-sized integers are exact doubles). Recomputing it reproduces
  // the stored node's bits, so Erase finds it.
  size_t k = 1;
  size_t pos = head_;  // conditional wrap: no per-element integer division
  for (size_t i = 0; i < entries_; ++i) {
    const Entry& e = ring_[pos];
    pos = pos + 1 == cap ? 0 : pos + 1;
    if (!e.present) continue;
    const double dx = static_cast<double>(k) - 0.0;
    const double slope = (e.value - old.value) / dx;
    bool erased = slopes_.Erase(slope);
    DBSCALE_DCHECK(erased);
    (void)erased;
    if (slope > 0.0) {
      --positive_;
    } else if (slope < 0.0) {
      --negative_;
    }
    ++k;
  }
  --present_;
}

void IncrementalTheilSen::Admit(double y) {
  const size_t cap = ring_.size();
  // The arriving point takes filtered index m = present_; pair it with
  // every surviving present point at filtered index k < m.
  const double xj = static_cast<double>(present_);
  size_t k = 0;
  size_t pos = head_;
  for (size_t i = 0; i < entries_; ++i) {
    const Entry& e = ring_[pos];
    pos = pos + 1 == cap ? 0 : pos + 1;
    if (!e.present) continue;
    const double dx = xj - static_cast<double>(k);
    const double slope = (y - e.value) / dx;
    slopes_.Insert(slope);
    if (slope > 0.0) {
      ++positive_;
    } else if (slope < 0.0) {
      ++negative_;
    }
    ++k;
  }
}

Result<TrendResult> IncrementalTheilSen::Fit(const TheilSenEstimator& estimator,
                                             TheilSenScratch* scratch) const {
  DBSCALE_DCHECK(scratch != nullptr);
  Status config = estimator.Validate();
  if (!config.ok()) return config;
  if (present_ < 3) {
    return Status::InvalidArgument("Theil-Sen needs at least 3 points");
  }
  const size_t m = slopes_.size();
  DBSCALE_DCHECK(m == present_ * (present_ - 1) / 2);

  TrendResult result;
  // Median of the slope multiset via the shared placement/interpolation
  // kernels: the same two order statistics MedianInPlace selects, blended
  // by the same machine code.
  const PercentilePlacement pos = PlacePercentile(m, 50.0);
  const double lo = slopes_.Kth(pos.lo);
  const double hi = pos.hi == pos.lo ? lo : slopes_.Kth(pos.hi);
  result.slope = InterpolateOrderStats(lo, hi, pos.frac);

  std::vector<double>& intercepts = scratch->intercepts;
  intercepts.clear();
  intercepts.reserve(present_);  // dbscale-lint: allow(alloc-hot-path)
  const size_t cap = ring_.size();
  size_t k = 0;
  size_t pos_idx = head_;
  for (size_t i = 0; i < entries_; ++i) {
    const Entry& e = ring_[pos_idx];
    pos_idx = pos_idx + 1 == cap ? 0 : pos_idx + 1;
    if (!e.present) continue;
    intercepts.push_back(
        detail::InterceptAt(e.value, static_cast<double>(k), result.slope));
    ++k;
  }
  DBSCALE_ASSIGN_OR_RETURN(result.intercept, MedianInPlace(intercepts));

  detail::ClassifySignAgreement(positive_, negative_, m,
                                estimator.accept_fraction(), &result);
  return result;
}

// ---------------------------------------------------------------------------
// SlidingRankWindow
// ---------------------------------------------------------------------------

void SlidingRankWindow::Reset(size_t capacity) {
  DBSCALE_DCHECK(capacity >= 1);
  ring_.clear();
  ring_.resize(capacity);    // dbscale-lint: allow(alloc-hot-path)
  head_ = 0;
  size_ = 0;
  sorted_.clear();
  sorted_.reserve(capacity);  // dbscale-lint: allow(alloc-hot-path)
  ranks_.clear();
  ranks_.reserve(capacity);   // dbscale-lint: allow(alloc-hot-path)
  rank_by_pos_.clear();
  rank_by_pos_.reserve(capacity);  // dbscale-lint: allow(alloc-hot-path)
  ranks_valid_ = false;
}

void SlidingRankWindow::Push(double value) {
  const size_t cap = ring_.size();
  if (size_ == cap) {
    const double old = ring_[head_];
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), old);
    DBSCALE_DCHECK(it != sorted_.end() && *it == old);
    sorted_.erase(it);
    head_ = (head_ + 1) % cap;
    --size_;
  }
  ring_[(head_ + size_) % cap] = value;
  ++size_;
  // Within the capacity Reset reserved: a memmove, never an allocation.
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), value),
                 value);
  ranks_valid_ = false;
}

const std::vector<double>& SlidingRankWindow::Ranks() {
  if (ranks_valid_) return ranks_;
  ranks_.resize(size_);        // dbscale-lint: allow(alloc-hot-path)
  rank_by_pos_.resize(size_);  // dbscale-lint: allow(alloc-hot-path)
  // One sweep over the sorted window resolves every tie run: positions
  // [first, last] of equal values all take TieAveragedRank(first, last),
  // the kernel RankWithTiesInto uses, so tie handling is identical by
  // construction. Each window element then needs a single binary search
  // (to `first`) instead of a lower/upper-bound pair.
  for (size_t first = 0; first < size_;) {
    size_t last = first;
    while (last + 1 < size_ && sorted_[last + 1] == sorted_[first]) ++last;
    const double rank = detail::TieAveragedRank(first, last);
    for (size_t j = first; j <= last; ++j) rank_by_pos_[j] = rank;
    first = last + 1;
  }
  const size_t cap = ring_.size();
  size_t pos = head_;
  for (size_t i = 0; i < size_; ++i) {
    const double v = ring_[pos];
    pos = pos + 1 == cap ? 0 : pos + 1;
    const size_t first = static_cast<size_t>(
        std::lower_bound(sorted_.begin(), sorted_.end(), v) - sorted_.begin());
    ranks_[i] = rank_by_pos_[first];
  }
  ranks_valid_ = true;
  return ranks_;
}

}  // namespace dbscale::stats
