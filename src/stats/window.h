// Fixed-capacity time-series window over telemetry samples.
//
// The telemetry manager computes robust aggregates, trends, and correlations
// over sliding windows (minutes to hours of 5-second samples). TimedWindow
// is the ring buffer those computations read from.

#ifndef DBSCALE_STATS_WINDOW_H_
#define DBSCALE_STATS_WINDOW_H_

#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/common/sim_time.h"

namespace dbscale::stats {

/// A (timestamp, value) observation.
struct TimedValue {
  SimTime time;
  double value = 0.0;
};

/// \brief Ring buffer of timestamped observations with a fixed capacity;
/// the oldest observation is dropped when full.
class TimedWindow {
 public:
  explicit TimedWindow(size_t capacity) : capacity_(capacity) {
    DBSCALE_CHECK(capacity > 0);
    buffer_.reserve(capacity);
  }

  void Add(SimTime time, double value);
  void Clear();

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  size_t capacity() const { return capacity_; }

  /// Observations in insertion (time) order, oldest first.
  std::vector<TimedValue> Snapshot() const;

  /// Values only (time order), optionally restricted to observations at or
  /// after `since`.
  std::vector<double> Values() const;
  std::vector<double> ValuesSince(SimTime since) const;

  /// Times (in seconds) and values of observations at or after `since`,
  /// shaped for regression input.
  void SeriesSince(SimTime since, std::vector<double>* times_sec,
                   std::vector<double>* values) const;

  /// Most recent observation. Requires !empty().
  const TimedValue& Latest() const;

 private:
  size_t capacity_;
  std::vector<TimedValue> buffer_;  // ring storage
  size_t head_ = 0;                 // index of oldest element when full
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_WINDOW_H_
