#include "src/stats/spearman.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dbscale::stats {

namespace detail {

double TieAveragedRank(size_t first, size_t last) {
  return (static_cast<double>(first + 1) + static_cast<double>(last + 1)) /
         2.0;
}

}  // namespace detail

// Allocating convenience wrapper; hot callers use RankWithTiesInto.
std::vector<double> RankWithTies(  // dbscale-lint: allow(alloc-hot-path)
    const std::vector<double>& values) {
  std::vector<size_t> order;   // dbscale-lint: allow(alloc-hot-path)
  std::vector<double> ranks;   // dbscale-lint: allow(alloc-hot-path)
  RankWithTiesInto(values, order, ranks);
  return ranks;
}

void RankWithTiesInto(const std::vector<double>& values,
                      std::vector<size_t>& order,
                      std::vector<double>& ranks) {
  const size_t n = values.size();
  // Grows the caller's scratch once; steady-state calls reuse capacity.
  order.resize(n);  // dbscale-lint: allow(alloc-hot-path)
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  ranks.assign(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Items order[i..j] are tied; assign the average of ranks i+1 .. j+1.
    double avg_rank = detail::TieAveragedRank(i, j);
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y sizes differ");
  }
  if (x.size() < 3) {
    return Status::InvalidArgument("correlation needs at least 3 points");
  }
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    // A constant series is uncorrelated with everything by convention here;
    // the caller treats 0 as "no signal".
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y,
                                   SpearmanScratch* scratch) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y sizes differ");
  }
  if (x.size() < 3) {
    return Status::InvalidArgument("correlation needs at least 3 points");
  }
  SpearmanScratch local;
  if (scratch == nullptr) scratch = &local;
  RankWithTiesInto(x, scratch->order, scratch->rank_x);
  RankWithTiesInto(y, scratch->order, scratch->rank_y);
  return PearsonCorrelation(scratch->rank_x, scratch->rank_y);
}

}  // namespace dbscale::stats
