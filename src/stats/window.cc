#include "src/stats/window.h"

namespace dbscale::stats {

void TimedWindow::Add(SimTime time, double value) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(TimedValue{time, value});
  } else {
    buffer_[head_] = TimedValue{time, value};
    head_ = (head_ + 1) % capacity_;
  }
}

void TimedWindow::Clear() {
  buffer_.clear();
  head_ = 0;
}

std::vector<TimedValue> TimedWindow::Snapshot() const {
  std::vector<TimedValue> out;
  out.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(head_ + i) % buffer_.size()]);
  }
  return out;
}

std::vector<double> TimedWindow::Values() const {
  std::vector<double> out;
  out.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(head_ + i) % buffer_.size()].value);
  }
  return out;
}

std::vector<double> TimedWindow::ValuesSince(SimTime since) const {
  std::vector<double> out;
  for (size_t i = 0; i < buffer_.size(); ++i) {
    const TimedValue& tv = buffer_[(head_ + i) % buffer_.size()];
    if (tv.time >= since) out.push_back(tv.value);
  }
  return out;
}

void TimedWindow::SeriesSince(SimTime since, std::vector<double>* times_sec,
                              std::vector<double>* values) const {
  times_sec->clear();
  values->clear();
  for (size_t i = 0; i < buffer_.size(); ++i) {
    const TimedValue& tv = buffer_[(head_ + i) % buffer_.size()];
    if (tv.time >= since) {
      times_sec->push_back(tv.time.ToSeconds());
      values->push_back(tv.value);
    }
  }
}

const TimedValue& TimedWindow::Latest() const {
  DBSCALE_CHECK(!buffer_.empty());
  if (buffer_.size() < capacity_) return buffer_.back();
  return buffer_[(head_ + buffer_.size() - 1) % buffer_.size()];
}

}  // namespace dbscale::stats
