#include "src/stats/robust.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace dbscale::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

// Allocating convenience wrapper; hot callers use MedianInPlace.
// dbscale-lint: allow(alloc-hot-path)
Result<double> Median(std::vector<double> values) {
  return MedianInPlace(values);
}

PercentilePlacement PlacePercentile(size_t n, double p) {
  DBSCALE_DCHECK(n >= 1);
  DBSCALE_DCHECK(p >= 0.0 && p <= 100.0);
  PercentilePlacement out;
  double pos = p / 100.0 * static_cast<double>(n - 1);
  out.lo = static_cast<size_t>(pos);
  out.hi = std::min(out.lo + 1, n - 1);
  out.frac = pos - static_cast<double>(out.lo);
  return out;
}

double InterpolateOrderStats(double lo_value, double hi_value, double frac) {
  return lo_value * (1.0 - frac) + hi_value * frac;
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  DBSCALE_DCHECK(!sorted.empty());
  DBSCALE_DCHECK(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  PercentilePlacement pos = PlacePercentile(sorted.size(), p);
  return InterpolateOrderStats(sorted[pos.lo], sorted[pos.hi], pos.frac);
}

// Allocating convenience wrapper; hot callers use PercentileInPlace.
// dbscale-lint: allow(alloc-hot-path)
Result<double> Percentile(std::vector<double> values, double p) {
  return PercentileInPlace(values, p);
}

Result<double> PercentileInPlace(std::vector<double>& values, double p) {
  if (values.empty()) {
    return Status::InvalidArgument("Percentile of empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    return Status::OutOfRange("percentile must be in [0, 100]");
  }
  if (values.size() == 1) return values[0];
  // Mirror PercentileSorted's interpolation exactly: select the lo-th order
  // statistic, then take the minimum of the upper partition as the hi-th.
  PercentilePlacement pos = PlacePercentile(values.size(), p);
  auto lo_it = values.begin() + static_cast<ptrdiff_t>(pos.lo);
  std::nth_element(values.begin(), lo_it, values.end());
  double lo_value = *lo_it;
  double hi_value =
      pos.hi == pos.lo ? lo_value : *std::min_element(lo_it + 1, values.end());
  return InterpolateOrderStats(lo_value, hi_value, pos.frac);
}

Result<double> MedianInPlace(std::vector<double>& values) {
  return PercentileInPlace(values, 50.0);
}

Result<double> Mad(const std::vector<double>& values) {
  // Allocating convenience wrapper; hot callers use MadInPlace.
  std::vector<double> scratch(values);  // dbscale-lint: allow(alloc-hot-path)
  return MadInPlace(scratch);
}

Result<double> MadInPlace(std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("MAD of empty sample");
  }
  // MedianInPlace only permutes, so the multiset survives for the
  // deviation pass.
  DBSCALE_ASSIGN_OR_RETURN(double med, MedianInPlace(values));
  for (double& v : values) v = std::fabs(v - med);
  DBSCALE_ASSIGN_OR_RETURN(double mad, MedianInPlace(values));
  // 1.4826 makes MAD a consistent estimator of sigma for normal data.
  return 1.4826 * mad;
}

// Sorting copy by design: TrimmedMean is report-path only, never hot.
// dbscale-lint: allow(alloc-hot-path)
Result<double> TrimmedMean(std::vector<double> values, double trim_fraction) {
  if (values.empty()) {
    return Status::InvalidArgument("TrimmedMean of empty sample");
  }
  if (trim_fraction < 0.0 || trim_fraction >= 0.5) {
    return Status::OutOfRange("trim_fraction must be in [0, 0.5)");
  }
  std::sort(values.begin(), values.end());
  size_t k = static_cast<size_t>(trim_fraction *
                                 static_cast<double>(values.size()));
  size_t lo = k;
  size_t hi = values.size() - k;
  DBSCALE_CHECK(hi > lo);
  double sum = 0.0;
  for (size_t i = lo; i < hi; ++i) sum += values[i];
  return sum / static_cast<double>(hi - lo);
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace dbscale::stats
