#include "src/stats/cdf.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stats/robust.h"

namespace dbscale::stats {

// Sink argument by design: the CDF takes ownership of the sample.
// dbscale-lint: allow(alloc-hot-path)
EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void EmpiricalCdf::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Result<double> EmpiricalCdf::FractionAtOrBelow(double value) const {
  if (samples_.empty()) {
    return Status::InvalidArgument("empty CDF");
  }
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), value);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

Result<double> EmpiricalCdf::ValueAtPercentile(double p) const {
  if (samples_.empty()) {
    return Status::InvalidArgument("empty CDF");
  }
  if (p < 0.0 || p > 100.0) {
    return Status::OutOfRange("percentile must be in [0, 100]");
  }
  EnsureSorted();
  return PercentileSorted(samples_, p);
}

// Allocating convenience wrapper; hot callers use CurvePointsInto.
Result<std::vector<std::pair<double, double>>> EmpiricalCdf::CurvePoints(
    size_t num_points) const {
  std::vector<std::pair<double, double>> points;  // dbscale-lint: allow(alloc-hot-path)
  Status status = CurvePointsInto(num_points, points);
  if (!status.ok()) return status;
  return points;
}

Status EmpiricalCdf::CurvePointsInto(
    size_t num_points, std::vector<std::pair<double, double>>& out) const {
  if (samples_.empty()) {
    return Status::InvalidArgument("empty CDF");
  }
  if (num_points < 2) {
    return Status::InvalidArgument("need at least 2 curve points");
  }
  EnsureSorted();
  out.clear();
  // Grows the caller's scratch once; steady-state calls reuse capacity.
  out.reserve(num_points);  // dbscale-lint: allow(alloc-hot-path)
  for (size_t i = 0; i < num_points; ++i) {
    double frac = static_cast<double>(i) /
                  static_cast<double>(num_points - 1);
    size_t idx = std::min(
        static_cast<size_t>(frac * static_cast<double>(samples_.size())),
        samples_.size() - 1);
    out.emplace_back(samples_[idx],
                     static_cast<double>(idx + 1) /
                         static_cast<double>(samples_.size()));
  }
  return Status::OK();
}

LatencyHistogram::LatencyHistogram(double min_value, double max_value,
                                   int buckets_per_decade)
    : min_value_(min_value), log_min_(std::log10(min_value)) {
  DBSCALE_CHECK(min_value > 0.0 && max_value > min_value);
  DBSCALE_CHECK(buckets_per_decade > 0);
  bucket_width_log_ = 1.0 / static_cast<double>(buckets_per_decade);
  double decades = std::log10(max_value) - log_min_;
  size_t n = static_cast<size_t>(std::ceil(decades * buckets_per_decade)) + 1;
  buckets_.assign(n, 0);
}

size_t LatencyHistogram::BucketFor(double value) const {
  if (value <= min_value_) return 0;
  double offset = (std::log10(value) - log_min_) / bucket_width_log_;
  size_t idx = static_cast<size_t>(offset);
  return std::min(idx, buckets_.size() - 1);
}

double LatencyHistogram::BucketUpper(size_t index) const {
  return std::pow(10.0, log_min_ + bucket_width_log_ *
                            static_cast<double>(index + 1));
}

void LatencyHistogram::Add(double value) {
  value = std::max(value, 0.0);
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  max_seen_ = std::max(max_seen_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  DBSCALE_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  max_seen_ = 0.0;
}

double LatencyHistogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  int64_t target = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::max<int64_t>(target, 1);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::min(BucketUpper(i), max_seen_);
    }
  }
  return max_seen_;
}

}  // namespace dbscale::stats
