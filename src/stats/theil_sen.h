// Theil-Sen robust trend estimation (Section 3.2.1 of the paper).
//
// Least-squares regression has a breakdown point of 0: one large outlier
// moves the fitted slope arbitrarily. The Theil-Sen estimator — the median
// of the O(n^2) pairwise slopes — has a breakdown point of ~29%, needs no
// tuning parameters, and is cheap at telemetry-window sizes.
//
// A trend is only *accepted* when at least `accept_fraction` (the paper's
// alpha = 70%) of the pairwise slopes agree in sign; otherwise the data is
// treated as trendless noise.

#ifndef DBSCALE_STATS_THEIL_SEN_H_
#define DBSCALE_STATS_THEIL_SEN_H_

#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

/// Direction of an accepted trend.
enum class TrendDirection { kNone, kIncreasing, kDecreasing };

const char* TrendDirectionToString(TrendDirection d);

/// Outcome of a Theil-Sen fit.
struct TrendResult {
  /// Median pairwise slope (units of y per unit of x).
  double slope = 0.0;
  /// Median intercept: median(y_i - slope * x_i).
  double intercept = 0.0;
  /// Fraction of pairwise slopes that are strictly positive / negative.
  double fraction_positive = 0.0;
  double fraction_negative = 0.0;
  /// True when the sign-agreement test passed.
  bool significant = false;
  /// Direction when significant, kNone otherwise.
  TrendDirection direction = TrendDirection::kNone;
};

/// \brief Theil-Sen estimator with a sign-agreement significance test.
class TheilSenEstimator {
 public:
  /// \param accept_fraction fraction (0.5, 1.0] of pairwise slopes that must
  ///        share a sign for a trend to be declared significant. The paper
  ///        uses 0.70.
  explicit TheilSenEstimator(double accept_fraction = 0.70);

  /// Fits y against x. Requires at least 3 points and matching sizes;
  /// pairs with duplicate x values contribute no slope.
  Result<TrendResult> Fit(const std::vector<double>& x,
                          const std::vector<double>& y) const;

  /// Convenience overload with x = 0, 1, ..., n-1 (evenly spaced samples).
  Result<TrendResult> FitSequence(const std::vector<double>& y) const;

  double accept_fraction() const { return accept_fraction_; }

 private:
  double accept_fraction_;
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_THEIL_SEN_H_
