// Theil-Sen robust trend estimation (Section 3.2.1 of the paper).
//
// Least-squares regression has a breakdown point of 0: one large outlier
// moves the fitted slope arbitrarily. The Theil-Sen estimator — the median
// of the O(n^2) pairwise slopes — has a breakdown point of ~29%, needs no
// tuning parameters, and is cheap at telemetry-window sizes.
//
// A trend is only *accepted* when at least `accept_fraction` (the paper's
// alpha = 70%) of the pairwise slopes agree in sign; otherwise the data is
// treated as trendless noise.

#ifndef DBSCALE_STATS_THEIL_SEN_H_
#define DBSCALE_STATS_THEIL_SEN_H_

#include <cstddef>
#include <vector>

#include "src/common/result.h"

namespace dbscale::stats {

/// Hard cap on the number of points per fit. The pairwise-slope pass needs
/// n*(n-1)/2 doubles of scratch — quadratic in the window — so an unbounded
/// n would let a misconfigured window silently demand gigabytes (at the cap
/// the slope buffer is ~67 MB). Telemetry trend windows are tens to a few
/// hundred samples; anything beyond the cap is a configuration error and
/// Fit returns InvalidArgument.
inline constexpr std::size_t kMaxTheilSenPoints = 4096;

/// Direction of an accepted trend.
enum class TrendDirection { kNone, kIncreasing, kDecreasing };

const char* TrendDirectionToString(TrendDirection d);

/// Outcome of a Theil-Sen fit.
struct TrendResult {
  /// Median pairwise slope (units of y per unit of x).
  double slope = 0.0;
  /// Median intercept: median(y_i - slope * x_i).
  double intercept = 0.0;
  /// Fraction of pairwise slopes that are strictly positive / negative.
  double fraction_positive = 0.0;
  double fraction_negative = 0.0;
  /// True when the sign-agreement test passed.
  bool significant = false;
  /// Direction when significant, kNone otherwise.
  TrendDirection direction = TrendDirection::kNone;
};

/// Reusable buffers for the O(n^2) pairwise-slope computation. One scratch
/// per caller thread; hand the same instance to every Fit call so the
/// buffers are allocated once per simulation instead of per interval.
///
/// Memory bound: `slopes` grows to n*(n-1)/2 doubles for the largest window
/// ever fitted — quadratic in the window size, capped by kMaxTheilSenPoints
/// (Fit rejects larger inputs). The incremental sliding path
/// (stats/incremental.h) instead keeps its pairwise slopes in a single
/// engine-wide SlopeArena sized once, shared by every tracked series.
struct TheilSenScratch {
  std::vector<double> slopes;
  std::vector<double> intercepts;
};

namespace detail {

/// Intercept of one point given the fitted slope: y - slope * x. Out of
/// line on purpose: batch and incremental paths call the one definition so
/// their intercept medians stay bit-identical under FP contraction.
double InterceptAt(double y, double x, double slope);

/// Applies the alpha sign-agreement test: fills fraction_positive /
/// fraction_negative / significant / direction from the slope-sign counts.
/// Shared by the batch fit and the incremental engine.
void ClassifySignAgreement(std::size_t positive, std::size_t negative,
                           std::size_t total_slopes, double accept_fraction,
                           TrendResult* result);

}  // namespace detail

/// \brief Theil-Sen estimator with a sign-agreement significance test.
///
/// Thread-compatible: a const estimator may be shared across threads, but
/// each thread must bring its own TheilSenScratch.
class TheilSenEstimator {
 public:
  /// \param accept_fraction fraction (0.5, 1.0] of pairwise slopes that must
  ///        share a sign for a trend to be declared significant. The paper
  ///        uses 0.70. Validated here, once; an out-of-range value makes
  ///        every Fit return the error.
  explicit TheilSenEstimator(double accept_fraction = 0.70);

  /// Fits y against x. Requires at least 3 points and matching sizes;
  /// pairs with duplicate x values contribute no slope. With a scratch the
  /// call performs no allocations beyond scratch growth.
  Result<TrendResult> Fit(const std::vector<double>& x,
                          const std::vector<double>& y,
                          TheilSenScratch* scratch = nullptr) const;

  /// Fit with implicit x = 0, 1, ..., n-1 (evenly spaced samples). The x
  /// sequence is never materialized.
  Result<TrendResult> FitSequence(const std::vector<double>& y,
                                  TheilSenScratch* scratch = nullptr) const;

  double accept_fraction() const { return accept_fraction_; }

  /// Constructor-time validation outcome of accept_fraction.
  Status Validate() const { return config_status_; }

 private:
  /// x == nullptr means implicit x_i = i.
  Result<TrendResult> FitImpl(const std::vector<double>* x,
                              const std::vector<double>& y,
                              TheilSenScratch* scratch) const;

  double accept_fraction_;
  Status config_status_;
};

}  // namespace dbscale::stats

#endif  // DBSCALE_STATS_THEIL_SEN_H_
