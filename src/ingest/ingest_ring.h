// IngestRing: fixed-capacity, allocation-free MPSC ring for WireSamples.
//
// The ring is the boundary between sample arrival (many producer threads,
// one per collector shard) and billing-interval evaluation (one drainer
// thread inside ScalerService). It is a bounded Vyukov-style sequence ring
// specialized to a single consumer:
//
//   * power-of-two slot count; each slot carries an atomic sequence number
//     `seq` and a WireSample payload;
//   * producers claim a position with a CAS on `enqueue_pos_`, write the
//     payload, then publish it with a release store of seq = pos + 1;
//   * the single consumer reads `seq` with acquire, copies the payload,
//     and recycles the slot with a release store of seq = pos + capacity.
//
// Memory-ordering contract: the payload write happens-before the
// producer's release store of seq, and the consumer's acquire load of seq
// happens-before its payload read — so the payload handoff is a proper
// release/acquire edge and the ring is data-race-free (TSan-verified).
// `dequeue_pos_` is written by the one consumer thread only — that single
// writer is what makes this MPSC rather than MPMC; it is stored relaxed-
// atomically solely so ApproxDepth may read it from other threads.
//
// Backpressure policy: TryPush on a full ring REJECTS — it increments
// `rejected_` and returns false without blocking, spinning, or silently
// dropping. The producer decides what to do (count and move on, retry
// later, shed load); the counter makes every rejection observable. This
// mirrors the telemetry fault model's stance: lost samples must surface as
// gaps the signal-window coverage check can see, never as blocking in the
// collection path.
//
// Per-producer FIFO: a producer finishes push k before starting push k+1,
// so its samples occupy increasing positions and drain in publish order.
// Samples of different producers interleave arbitrarily — ScalerService's
// per-tenant routing is interleaving-invariant by construction (each
// tenant's samples come from one producer).

#ifndef DBSCALE_INGEST_INGEST_RING_H_
#define DBSCALE_INGEST_INGEST_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/result.h"
#include "src/ingest/wire_sample.h"

namespace dbscale::ingest {

struct IngestRingOptions {
  /// Slot count; must be a power of two >= 2. Sized for the worst burst
  /// the drain cadence must absorb: capacity / peak-samples-per-sec is the
  /// longest the drainer may stall before rejections start.
  size_t capacity = 1 << 16;

  Status Validate() const;
};

/// \brief Bounded MPSC ring. Many producers call TryPush concurrently; ONE
/// thread at a time calls TryPop/PopBatch. All memory is allocated at
/// construction; push and pop are allocation-free.
class IngestRing {
 public:
  explicit IngestRing(IngestRingOptions options);

  IngestRing(const IngestRing&) = delete;
  IngestRing& operator=(const IngestRing&) = delete;

  /// Publishes one sample. Returns false (and counts the rejection) when
  /// the ring is full. Safe to call from any number of threads.
  bool TryPush(const WireSample& sample);

  /// Pops the oldest sample into `*out`. Returns false when empty.
  /// Single-consumer only.
  bool TryPop(WireSample* out);

  /// Pops up to `max` samples into `out[0..n)`, oldest first; returns n.
  /// Equivalent to n successful TryPops (the batched form exists so the
  /// drainer amortizes the per-call overhead, not for different
  /// semantics). Single-consumer only.
  size_t PopBatch(WireSample* out, size_t max);

  size_t capacity() const { return mask_ + 1; }

  /// Pushes rejected because the ring was full (monotone; relaxed read —
  /// exact once producers are quiescent).
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Samples currently buffered. Approximate while producers are active
  /// (the two positions are read at different instants); exact when
  /// quiescent.
  size_t ApproxDepth() const;

 private:
  struct Slot {
    std::atomic<uint64_t> seq;
    WireSample sample;
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;

  /// Producers contend here; padded away from the consumer's position so
  /// pushes and pops do not false-share a cache line.
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  /// Mutated by the single consumer only; relaxed atomics, no ordering
  /// role (the seq fields carry all synchronization).
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  alignas(64) std::atomic<uint64_t> rejected_{0};
};

}  // namespace dbscale::ingest

#endif  // DBSCALE_INGEST_INGEST_RING_H_
