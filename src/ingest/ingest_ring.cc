#include "src/ingest/ingest_ring.h"

#include "src/common/check.h"

namespace dbscale::ingest {

Status IngestRingOptions::Validate() const {
  if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
    return Status::InvalidArgument(
        "IngestRingOptions.capacity must be a power of two >= 2");
  }
  return Status::OK();
}

IngestRing::IngestRing(IngestRingOptions options) {
  DBSCALE_CHECK(options.Validate().ok());
  mask_ = options.capacity - 1;
  slots_ = std::make_unique<Slot[]>(options.capacity);
  for (size_t i = 0; i < options.capacity; ++i) {
    // Slot i is free for the producer that claims position i.
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

// dbscale-hot: the producer publish path — one call per telemetry sample
// across the whole fleet; must stay allocation-free and non-blocking.
bool IngestRing::TryPush(const WireSample& sample) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      // Slot is free for this position; claim it.
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        slot.sample = sample;
        // Release: the payload write above happens-before any consumer
        // that acquires this seq value.
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failed: `pos` was reloaded; retry at the new position.
    } else if (dif < 0) {
      // The slot still holds an unconsumed sample from one lap ago: the
      // ring is full. Reject with a counter — never block, never drop
      // silently.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      // Another producer claimed this position; advance.
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

// dbscale-hot: the drainer pop path; allocation-free.
bool IngestRing::TryPop(WireSample* out) {
  const uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Slot& slot = slots_[pos & mask_];
  const uint64_t seq = slot.seq.load(std::memory_order_acquire);
  const intptr_t dif =
      static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
  if (dif < 0) return false;  // producer has not published this slot yet
  // Acquire above pairs with the producer's release store: the payload
  // read below sees the fully written sample.
  *out = slot.sample;
  // Recycle the slot for the producer one lap ahead.
  slot.seq.store(pos + mask_ + 1, std::memory_order_release);
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  return true;
}

// dbscale-hot: the batched drain path; allocation-free.
size_t IngestRing::PopBatch(WireSample* out, size_t max) {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  size_t n = 0;
  while (n < max) {
    Slot& slot = slots_[pos & mask_];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif < 0) break;
    out[n++] = slot.sample;
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    ++pos;
  }
  dequeue_pos_.store(pos, std::memory_order_relaxed);
  return n;
}

size_t IngestRing::ApproxDepth() const {
  const uint64_t enq = enqueue_pos_.load(std::memory_order_relaxed);
  const uint64_t deq = dequeue_pos_.load(std::memory_order_relaxed);
  return enq >= deq ? static_cast<size_t>(enq - deq) : 0;
}

}  // namespace dbscale::ingest
