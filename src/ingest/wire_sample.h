// WireSample: the daemon's wire-facing telemetry record.
//
// When the scaler runs as a service, samples arrive from container hosts,
// not from the simulator's in-process collector. The wire struct therefore
// mirrors what a real container host exports — the porto per-container
// stat surface as enumerated by ytsaurus's EStatField (CPU / Memory / IO /
// Network groups) — rather than our internal TelemetrySample layout. Every
// payload field below is annotated with the EStatField it corresponds to;
// fields with no container-host counterpart (engine-internal wait classes,
// request latency aggregates) are grouped separately and documented as
// such — porto cannot see inside the database engine.
//
// The mapping to TelemetrySample is lossless and arithmetic-free in both
// directions: each wire field carries exactly one sample field's bit
// pattern, so ToTelemetrySample(MakeWireSample(t, s)) == s bitwise. That
// bit-exactness is what lets service-mode decision digests be compared
// against sim-loop digests at all.
//
// WireSample is trivially copyable by design: ring slots copy it with
// plain assignment on the hot push/pop path, and the MPSC ring's
// release/acquire protocol (ingest_ring.h) is only correct for types
// without user-defined copy semantics.

#ifndef DBSCALE_INGEST_WIRE_SAMPLE_H_
#define DBSCALE_INGEST_WIRE_SAMPLE_H_

#include <cstdint>
#include <type_traits>

#include "src/telemetry/sample.h"

namespace dbscale::ingest {

/// \brief One sampling period of one tenant's container, as exported by
/// the container host plus the engine's own wait/latency counters.
struct WireSample {
  // --- Routing header (daemon-level, not part of the host stat surface) ---
  /// Fleet-wide tenant identity; the service routes on this.
  uint64_t tenant_id = 0;
  /// Which producer (collector shard / host agent) published the sample.
  uint32_t producer_id = 0;
  /// Reserved; keeps the header 8-byte aligned.
  uint32_t flags = 0;
  /// Per-producer monotone sequence number (0, 1, 2, ... per producer).
  /// The service asserts monotonicity per producer on the drain side.
  uint64_t producer_seq = 0;
  /// Sampling period bounds, microseconds since epoch (SimTime::ToMicros —
  /// int64 microseconds round-trip losslessly).
  int64_t period_start_us = 0;
  int64_t period_end_us = 0;

  // --- CPU group (EStatField: CpuUsage, CpuLimit, CpuWait) ---
  /// CpuUsage over CpuLimit as a percentage (utilization_pct[kCpu]).
  double cpu_usage_pct = 0.0;
  /// CpuLimit, in cores (allocation.cpu_cores).
  double cpu_limit_cores = 0.0;
  /// CpuWait: runnable-but-not-scheduled wait, ms (wait_ms[kCpu]).
  double cpu_wait_ms = 0.0;

  // --- Memory group (EStatField: Rss, AnonMemoryUsage, MemoryLimit,
  //     MajorPageFaults) ---
  /// MemoryUsage over MemoryLimit as a percentage
  /// (utilization_pct[kMemory]).
  double memory_usage_pct = 0.0;
  /// Rss: memory the engine actually holds, MB (memory_used_mb).
  double rss_mb = 0.0;
  /// AnonMemoryUsage analog: the active working set the workload needs,
  /// MB (memory_active_mb).
  double anon_memory_mb = 0.0;
  /// MemoryLimit, MB (allocation.memory_mb).
  double memory_limit_mb = 0.0;
  /// MajorPageFaults analog: data-page reads that missed the buffer pool
  /// and went to disk (physical_reads).
  int64_t major_page_faults = 0;

  // --- IO group (EStatField: IOReadOps/IOOps over IOOpsLimit,
  //     IOWaitTime) ---
  /// IOOps over IOOpsLimit as a percentage (utilization_pct[kDiskIo]).
  double io_usage_pct = 0.0;
  /// IOOpsLimit, IOPS (allocation.disk_iops).
  double io_ops_limit = 0.0;
  /// IOWaitTime: data-page I/O queueing, ms (wait_ms[kDiskIo]).
  double io_wait_ms = 0.0;

  // --- Log-write group (EStatField: IOWriteByte over IOBytesLimit) ---
  /// Log-write bandwidth used over IOBytesLimit as a percentage
  /// (utilization_pct[kLogIo]).
  double log_usage_pct = 0.0;
  /// IOBytesLimit for the log device, MB/s (allocation.log_mbps).
  double log_limit_mbps = 0.0;
  /// Log-write queueing, ms (wait_ms[kLogIo]).
  double log_wait_ms = 0.0;

  // --- Engine wait classes with no EStatField counterpart: the container
  //     host sees the cgroup, not the engine's lock/latch/grant queues ---
  double lock_wait_ms = 0.0;         ///< wait_ms[kLock]
  double latch_wait_ms = 0.0;        ///< wait_ms[kLatch]
  double memory_grant_wait_ms = 0.0; ///< wait_ms[kMemory]
  double buffer_pool_wait_ms = 0.0;  ///< wait_ms[kBufferPool]
  double system_wait_ms = 0.0;       ///< wait_ms[kSystem]

  // --- Request/latency group (engine-level; porto's nearest analog is
  //     NetRxPackets/NetTxPackets, which count packets, not queries) ---
  int64_t requests_started = 0;
  int64_t requests_completed = 0;
  double latency_avg_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Catalog id of the container the allocation limits describe.
  int32_t container_id = 0;
  int32_t reserved = 0;
};

static_assert(std::is_trivially_copyable_v<WireSample>,
              "ring slots copy WireSample by plain assignment");
static_assert(std::is_standard_layout_v<WireSample>,
              "WireSample is a wire format");

/// Packs `sample` for tenant `tenant_id` onto the wire. Bit-exact: no
/// arithmetic, every field is a plain copy. producer_id / producer_seq are
/// left zero — the producer stamps them at publish time.
WireSample MakeWireSample(uint64_t tenant_id,
                          const telemetry::TelemetrySample& sample);

/// Unpacks the wire payload back into the internal sample layout.
/// Inverse of MakeWireSample: round trips are bitwise identity.
telemetry::TelemetrySample ToTelemetrySample(const WireSample& wire);

}  // namespace dbscale::ingest

#endif  // DBSCALE_INGEST_WIRE_SAMPLE_H_
