#include "src/ingest/wire_sample.h"

#include "src/container/container.h"
#include "src/telemetry/wait_class.h"

namespace dbscale::ingest {

using container::ResourceKind;
using telemetry::WaitClass;

namespace {
constexpr size_t Ri(ResourceKind kind) { return static_cast<size_t>(kind); }
constexpr size_t Wi(WaitClass wc) { return static_cast<size_t>(wc); }
}  // namespace

// dbscale-hot: runs once per published sample on the producer path.
WireSample MakeWireSample(uint64_t tenant_id,
                          const telemetry::TelemetrySample& sample) {
  WireSample w;
  w.tenant_id = tenant_id;
  w.period_start_us = sample.period_start.ToMicros();
  w.period_end_us = sample.period_end.ToMicros();

  w.cpu_usage_pct = sample.utilization_pct[Ri(ResourceKind::kCpu)];
  w.cpu_limit_cores = sample.allocation.cpu_cores;
  w.cpu_wait_ms = sample.wait_ms[Wi(WaitClass::kCpu)];

  w.memory_usage_pct = sample.utilization_pct[Ri(ResourceKind::kMemory)];
  w.rss_mb = sample.memory_used_mb;
  w.anon_memory_mb = sample.memory_active_mb;
  w.memory_limit_mb = sample.allocation.memory_mb;
  w.major_page_faults = sample.physical_reads;

  w.io_usage_pct = sample.utilization_pct[Ri(ResourceKind::kDiskIo)];
  w.io_ops_limit = sample.allocation.disk_iops;
  w.io_wait_ms = sample.wait_ms[Wi(WaitClass::kDiskIo)];

  w.log_usage_pct = sample.utilization_pct[Ri(ResourceKind::kLogIo)];
  w.log_limit_mbps = sample.allocation.log_mbps;
  w.log_wait_ms = sample.wait_ms[Wi(WaitClass::kLogIo)];

  w.lock_wait_ms = sample.wait_ms[Wi(WaitClass::kLock)];
  w.latch_wait_ms = sample.wait_ms[Wi(WaitClass::kLatch)];
  w.memory_grant_wait_ms = sample.wait_ms[Wi(WaitClass::kMemory)];
  w.buffer_pool_wait_ms = sample.wait_ms[Wi(WaitClass::kBufferPool)];
  w.system_wait_ms = sample.wait_ms[Wi(WaitClass::kSystem)];

  w.requests_started = sample.requests_started;
  w.requests_completed = sample.requests_completed;
  w.latency_avg_ms = sample.latency_avg_ms;
  w.latency_p95_ms = sample.latency_p95_ms;
  w.latency_max_ms = sample.latency_max_ms;

  w.container_id = sample.container_id;
  return w;
}

// dbscale-hot: runs once per drained sample on the drainer route path.
telemetry::TelemetrySample ToTelemetrySample(const WireSample& wire) {
  telemetry::TelemetrySample s;
  s.period_start = SimTime::FromMicros(wire.period_start_us);
  s.period_end = SimTime::FromMicros(wire.period_end_us);

  s.utilization_pct[Ri(ResourceKind::kCpu)] = wire.cpu_usage_pct;
  s.utilization_pct[Ri(ResourceKind::kMemory)] = wire.memory_usage_pct;
  s.utilization_pct[Ri(ResourceKind::kDiskIo)] = wire.io_usage_pct;
  s.utilization_pct[Ri(ResourceKind::kLogIo)] = wire.log_usage_pct;

  s.wait_ms[Wi(WaitClass::kCpu)] = wire.cpu_wait_ms;
  s.wait_ms[Wi(WaitClass::kDiskIo)] = wire.io_wait_ms;
  s.wait_ms[Wi(WaitClass::kLogIo)] = wire.log_wait_ms;
  s.wait_ms[Wi(WaitClass::kLock)] = wire.lock_wait_ms;
  s.wait_ms[Wi(WaitClass::kLatch)] = wire.latch_wait_ms;
  s.wait_ms[Wi(WaitClass::kMemory)] = wire.memory_grant_wait_ms;
  s.wait_ms[Wi(WaitClass::kBufferPool)] = wire.buffer_pool_wait_ms;
  s.wait_ms[Wi(WaitClass::kSystem)] = wire.system_wait_ms;

  s.requests_started = wire.requests_started;
  s.requests_completed = wire.requests_completed;
  s.latency_avg_ms = wire.latency_avg_ms;
  s.latency_p95_ms = wire.latency_p95_ms;
  s.latency_max_ms = wire.latency_max_ms;
  s.memory_used_mb = wire.rss_mb;
  s.memory_active_mb = wire.anon_memory_mb;
  s.physical_reads = wire.major_page_faults;

  s.allocation.cpu_cores = wire.cpu_limit_cores;
  s.allocation.memory_mb = wire.memory_limit_mb;
  s.allocation.disk_iops = wire.io_ops_limit;
  s.allocation.log_mbps = wire.log_limit_mbps;
  s.container_id = wire.container_id;
  return s;
}

}  // namespace dbscale::ingest
