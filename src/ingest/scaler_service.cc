#include "src/ingest/scaler_service.h"

#include <algorithm>
#include <cstdint>

#include "src/common/check.h"
#include "src/fault/fault_plan.h"

namespace dbscale::ingest {

namespace {
/// Sentinel in producer_next_seq_: no sample seen from this producer yet.
constexpr uint64_t kNoSeqYet = UINT64_MAX;
}  // namespace

Status ScalerServiceOptions::Validate() const {
  if (store_retention == 0) {
    return Status::InvalidArgument("store_retention must be >= 1");
  }
  if (samples_per_interval == 0) {
    return Status::InvalidArgument("samples_per_interval must be >= 1");
  }
  if (max_drain_batch == 0) {
    return Status::InvalidArgument("max_drain_batch must be >= 1");
  }
  if (max_producers == 0) {
    return Status::InvalidArgument("max_producers must be >= 1");
  }
  if (decision_latency_sink != nullptr && timer == nullptr) {
    return Status::InvalidArgument(
        "decision_latency_sink requires a timer to fill it");
  }
  return Status::OK();
}

ScalerService::ScalerService(IngestRing* ring, ScalerServiceOptions options,
                             ThreadPool* pool, obs::Observability* ob)
    : ring_(ring),
      options_(std::move(options)),
      pool_(pool),
      ob_(ob),
      manager_(options_.telemetry) {
  DBSCALE_CHECK(options_.Validate().ok());
  DBSCALE_CHECK(manager_.Validate().ok());
  if (ob_ != nullptr) {
    metrics_ = IngestMetrics::Register(&ob_->registry());
    ob_->AttachPrimary();
    sink_ = ob_->PrimarySink();
  }
}

Status ScalerService::AddTenant(
    uint64_t tenant_id, std::unique_ptr<scaler::ScalingPolicy> policy,
    const container::ContainerSpec& initial) {
  if (policy == nullptr) {
    return Status::InvalidArgument("AddTenant: policy must not be null");
  }
  auto [it, inserted] = tenants_.try_emplace(
      tenant_id, TenantState(options_.store_retention));
  if (!inserted) {
    return Status::AlreadyExists("AddTenant: duplicate tenant id");
  }
  TenantState& t = it->second;
  t.id = tenant_id;
  t.policy = std::move(policy);
  t.current = initial;
  return Status::OK();
}

void ScalerService::EnsureBuffers() {
  if (batch_.size() != options_.max_drain_batch) {
    batch_.resize(options_.max_drain_batch);
    carry_a_.reserve(options_.max_drain_batch);
    carry_b_.reserve(options_.max_drain_batch);
  }
  if (sized_tenants_ != tenants_.size()) {
    sized_tenants_ = tenants_.size();
    slots_.resize(sized_tenants_);
    compute_ns_.resize(sized_tenants_);
    due_.reserve(sized_tenants_);
  }
  if (producer_next_seq_.size() != options_.max_producers) {
    producer_next_seq_.assign(options_.max_producers, kNoSeqYet);
  }
}

// dbscale-hot: first pass over every drained batch; allocation-free.
void ScalerService::CheckProducerSeqs(const WireSample* samples, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const WireSample& w = samples[i];
    if (w.producer_id >= producer_next_seq_.size()) {
      ++counters_.unknown_producer;
      continue;
    }
    uint64_t& next = producer_next_seq_[w.producer_id];
    if (next != kNoSeqYet && w.producer_seq != next) {
      // Producers consume a sequence number only on an accepted push and
      // the ring never reorders one producer's samples, so anything but
      // the consecutive next value is a protocol violation.
      ++counters_.seq_violations;
      sink_.metrics.Add(metrics_.seq_violations_total, 1.0);
    }
    next = w.producer_seq + 1;
  }
}

// dbscale-hot: the batch drain loop — pop, route in rounds, evaluate.
// Steady-state allocation-free on the pop/route path (decision evaluation
// may allocate inside policies, e.g. the audit trail).
size_t ScalerService::DrainOnce() {
  DBSCALE_CHECK(ring_ != nullptr);
  EnsureBuffers();
  const size_t n = ring_->PopBatch(batch_.data(), batch_.size());
  ++counters_.drains;
  counters_.drained += n;

  obs::Sink sink = sink_;
  if (ob_ != nullptr) {
    ob_->trace().BeginInterval(static_cast<int>(counters_.drains),
                               SimTime::FromMicros(max_period_end_us_));
    sink = sink_.Under(ob_->trace().root());
  }
  const obs::SpanId drain_span = sink.trace.Start(
      "ingest.drain", SimTime::FromMicros(max_period_end_us_));
  sink.metrics.Add(metrics_.drains_total, 1.0);
  sink.metrics.Add(metrics_.samples_drained_total,
                   static_cast<double>(n));
  sink.metrics.Observe(metrics_.drain_batch_size, static_cast<double>(n));
  sink.metrics.Set(metrics_.ring_depth,
                   static_cast<double>(ring_->ApproxDepth()));
  sink.metrics.Set(metrics_.ring_rejected_total,
                   static_cast<double>(ring_->rejected()));

  if (n > 0) {
    CheckProducerSeqs(batch_.data(), n);
    ProcessBatch(batch_.data(), n, sink.Under(drain_span));
  }
  sink.trace.Attr(drain_span, "drained", static_cast<double>(n));
  sink.trace.End(drain_span, SimTime::FromMicros(max_period_end_us_));
  if (ob_ != nullptr) {
    ob_->trace().EndInterval(SimTime::FromMicros(max_period_end_us_));
  }
  return n;
}

size_t ScalerService::DrainAll() {
  size_t total = 0;
  for (;;) {
    const size_t n = DrainOnce();
    if (n == 0) return total;
    total += n;
  }
}

// dbscale-hot: rounds-based routing with a carry buffer. Every sample of a
// tenant whose decision is pending parks until that decision is taken, so
// store content at each decision matches the sim loop exactly.
void ScalerService::ProcessBatch(const WireSample* samples, size_t n,
                                 const obs::Sink& sink) {
  ++round_;
  carry_a_.clear();
  for (size_t i = 0; i < n; ++i) RouteOrPark(samples[i], carry_a_);
  EvaluateDue(sink);
  while (!carry_a_.empty()) {
    ++round_;
    carry_b_.clear();
    for (const WireSample& w : carry_a_) RouteOrPark(w, carry_b_);
    EvaluateDue(sink);
    carry_a_.swap(carry_b_);
  }
}

// dbscale-hot: per-sample routing; allocation-free (park/due push_backs
// stay within capacity reserved by EnsureBuffers).
void ScalerService::RouteOrPark(const WireSample& wire,
                                std::vector<WireSample>& park) {
  TenantState* t = FindTenant(wire.tenant_id);
  if (t == nullptr) {
    ++counters_.unknown_tenant;
    sink_.metrics.Add(metrics_.samples_unknown_tenant_total, 1.0);
    return;
  }
  if (t->due || t->parked_round == round_) {
    t->parked_round = round_;
    park.push_back(wire);
    return;
  }
  telemetry::TelemetrySample sample = ToTelemetrySample(wire);
  if (!fault::SampleLooksValid(sample)) {
    // Ingestion guard: non-finite telemetry never reaches a store (same
    // contract as the sim loop's store-side check).
    ++counters_.invalid;
    sink_.metrics.Add(metrics_.samples_invalid_total, 1.0);
    return;
  }
  if (!t->store.empty() &&
      sample.period_end < t->store.back().period_end) {
    ++counters_.out_of_order;
    sink_.metrics.Add(metrics_.samples_out_of_order_total, 1.0);
    return;
  }
  t->store.Append(sample);
  t->last_period_end_us = wire.period_end_us;
  if (wire.period_end_us > max_period_end_us_) {
    max_period_end_us_ = wire.period_end_us;
  }
  ++t->samples_in_interval;
  ++counters_.routed;
  sink_.metrics.Add(metrics_.samples_routed_total, 1.0);
  if (t->samples_in_interval >= options_.samples_per_interval) {
    t->due = true;
    due_.push_back(t);
  }
}

void ScalerService::EvaluateDue(const obs::Sink& sink) {
  const size_t n = due_.size();
  if (n == 0) return;
  // Tenant-order merge: the fold below must not depend on arrival order.
  std::sort(due_.begin(), due_.end(),
            [](const TenantState* a, const TenantState* b) {
              return a->id < b->id;
            });
  ++counters_.eval_rounds;
  const SimTime now = SimTime::FromMicros(max_period_end_us_);
  const obs::SpanId span = sink.trace.Start("decide.batch", now);
  sink.metrics.Observe(metrics_.decide_batch_size, static_cast<double>(n));

  uint64_t (*timer)() = options_.timer;
  const auto prepare = [this, timer](int64_t idx) {
    const size_t i = static_cast<size_t>(idx);
    TenantState* t = due_[i];
    scaler::DecisionSlot& slot = slots_[i];
    const uint64_t t0 = timer != nullptr ? timer() : 0;
    slot.policy = t->policy.get();
    // The exact sim-loop decision input: the boundary clock is the
    // interval's last sample period_end, billing follows the container in
    // effect, and resize feedback carries last interval's outcome.
    slot.input.now = SimTime::FromMicros(t->last_period_end_us);
    slot.input.signals =
        manager_.Compute(t->store, slot.input.now, &t->scratch);
    slot.input.current = t->current;
    slot.input.interval_index = t->interval_index;
    slot.input.charged_cost = t->current.price_per_interval;
    slot.input.actuation = t->feedback;
    // Workers must not share the drainer's primary shard; the service's
    // instruments live at the drain/decide stages instead.
    slot.input.obs = obs::Sink{};
    compute_ns_[i] = timer != nullptr ? timer() - t0 : 0;
  };
  if (pool_ == nullptr || pool_->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) prepare(static_cast<int64_t>(i));
  } else {
    pool_->ParallelFor(0, static_cast<int64_t>(n), prepare);
  }

  scaler::DecideBatch(slots_.data(), n, pool_, timer);

  // Serial fold in tenant order: digests, container state, feedback.
  for (size_t i = 0; i < n; ++i) {
    TenantState* t = due_[i];
    const scaler::ScalingDecision& d = slots_[i].decision;
    // Every policy must state why it decided (same acceptance contract as
    // the sim loop).
    DBSCALE_CHECK(d.explanation.set());
    t->digest.I32(t->interval_index);
    t->digest.I32(d.target.id);
    t->digest.I32(static_cast<int32_t>(d.explanation.code));
    t->digest.Dbl(d.memory_limit_mb.has_value() ? *d.memory_limit_mb
                                                : -1.0);
    t->feedback = scaler::ActuationFeedback{};
    if (d.target.id != t->current.id) {
      t->current = d.target;
      t->feedback.phase = scaler::ActuationPhase::kApplied;
      t->feedback.target = t->current;
      t->feedback.attempt = 1;
    }
    ++t->interval_index;
    t->samples_in_interval = 0;
    t->due = false;
    ++counters_.decisions;
    if (timer != nullptr && options_.decision_latency_sink != nullptr) {
      options_.decision_latency_sink->push_back(compute_ns_[i] +
                                                slots_[i].decide_ns);
    }
  }
  sink.metrics.Add(metrics_.decisions_total, static_cast<double>(n));
  sink.trace.Attr(span, "tenants", static_cast<double>(n));
  sink.trace.End(span, now);
  due_.clear();
}

void ScalerService::OfferDirect(const WireSample& sample) {
  EnsureBuffers();
  ++counters_.drained;
  CheckProducerSeqs(&sample, 1);
  ++round_;
  carry_a_.clear();
  RouteOrPark(sample, carry_a_);
  EvaluateDue(sink_);
  // Direct feed evaluates the moment a tenant is due, so a sample can
  // never land on a tenant with a pending decision.
  DBSCALE_CHECK(carry_a_.empty());
}

uint64_t ScalerService::Digest() const {
  fleet::Fnv64Stream d;
  for (const auto& [id, t] : tenants_) {
    d.U64(id);
    d.U64(static_cast<uint64_t>(t.interval_index));
    d.U64(t.digest.value);
  }
  return d.value;
}

uint64_t ScalerService::TenantDigest(uint64_t tenant_id) const {
  const TenantState* t = FindTenant(tenant_id);
  return t != nullptr ? t->digest.value : 0;
}

const container::ContainerSpec* ScalerService::CurrentContainer(
    uint64_t tenant_id) const {
  const TenantState* t = FindTenant(tenant_id);
  return t != nullptr ? &t->current : nullptr;
}

int ScalerService::IntervalIndex(uint64_t tenant_id) const {
  const TenantState* t = FindTenant(tenant_id);
  return t != nullptr ? t->interval_index : -1;
}

ScalerService::TenantState* ScalerService::FindTenant(uint64_t tenant_id) {
  const auto it = tenants_.find(tenant_id);
  return it != tenants_.end() ? &it->second : nullptr;
}

const ScalerService::TenantState* ScalerService::FindTenant(
    uint64_t tenant_id) const {
  const auto it = tenants_.find(tenant_id);
  return it != tenants_.end() ? &it->second : nullptr;
}

}  // namespace dbscale::ingest
