#include "src/ingest/producer.h"

#include "src/common/check.h"

namespace dbscale::ingest {

IngestProducer::IngestProducer(IngestRing* ring, uint32_t producer_id,
                               fault::FaultPlan* plan)
    : ring_(ring), plan_(plan), producer_id_(producer_id) {
  DBSCALE_CHECK(ring != nullptr);
}

// dbscale-hot: one call per collected sample; allocation-free.
PublishOutcome IngestProducer::Publish(
    uint64_t tenant_id, const telemetry::TelemetrySample& sample) {
  if (plan_ == nullptr || !plan_->enabled()) {
    return Push(MakeWireSample(tenant_id, sample));
  }
  switch (plan_->NextSampleFault()) {
    case fault::SampleFault::kDrop:
      ++dropped_;
      return PublishOutcome::kDropped;
    case fault::SampleFault::kNan: {
      telemetry::TelemetrySample corrupted = sample;
      plan_->CorruptSample(fault::SampleFault::kNan, &corrupted);
      ++corrupted_;
      // Published corrupted: the service's ingestion guard is the line of
      // defense, same as the sim loop's store-side check.
      return Push(MakeWireSample(tenant_id, corrupted));
    }
    case fault::SampleFault::kOutlier: {
      telemetry::TelemetrySample corrupted = sample;
      plan_->CorruptSample(fault::SampleFault::kOutlier, &corrupted);
      ++corrupted_;
      return Push(MakeWireSample(tenant_id, corrupted));
    }
    case fault::SampleFault::kStale:
      if (have_good_) {
        // Stale read: previous good payload under the current period.
        telemetry::TelemetrySample stale = last_good_;
        stale.period_start = sample.period_start;
        stale.period_end = sample.period_end;
        ++stale_;
        return Push(MakeWireSample(tenant_id, stale));
      }
      [[fallthrough]];  // no previous payload: behaves like kNone
    case fault::SampleFault::kNone:
      last_good_ = sample;
      have_good_ = true;
      return Push(MakeWireSample(tenant_id, sample));
  }
  return PublishOutcome::kDropped;  // unreachable
}

// dbscale-hot: stamps identity and pushes; allocation-free.
PublishOutcome IngestProducer::Push(const WireSample& wire) {
  WireSample stamped = wire;
  stamped.producer_id = producer_id_;
  stamped.producer_seq = next_seq_;
  if (!ring_->TryPush(stamped)) {
    ++rejected_;
    return PublishOutcome::kRejected;
  }
  ++next_seq_;
  ++published_;
  return PublishOutcome::kPublished;
}

}  // namespace dbscale::ingest
