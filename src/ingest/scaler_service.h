// ScalerService: the scaling stack as a long-lived daemon.
//
// The simulator calls TelemetryManager::Compute and Policy::Decide
// synchronously at each billing-interval boundary. The service decouples
// the two halves of that loop: producers push WireSamples into the
// IngestRing as they arrive; the drainer (this class) pops them in
// batches, routes each to its tenant's sliding-window store (reusing the
// incremental signal engine), and evaluates billing-interval decisions in
// tenant batches over the deterministic ThreadPool.
//
// Equivalence contract — service-mode decisions are bit-identical to
// sim-loop decisions for the same per-tenant sample sequence:
//
//   1. A tenant's decision at interval k is a pure function of its own
//      store content (first k * samples_per_interval samples), its policy
//      state (itself a fold over its first k decisions), and its resize
//      feedback (a fold over the same decisions). Nothing is shared
//      across tenants.
//   2. Routing evaluates a tenant the moment its samples_per_interval-th
//      sample of the interval lands, BEFORE appending any later sample of
//      that tenant — drained batches that straddle an interval boundary
//      are processed in rounds, parking a due tenant's excess samples in
//      a carry buffer until its decision is taken. So the store content
//      at each decision is exactly the sim loop's.
//   3. Batched evaluation (scaler::DecideBatch) writes per-slot results
//      and the service folds them in tenant order, so batch slicing and
//      thread count cannot reorder any tenant-visible effect.
//
// Hence the per-tenant decision digest — and the tenant-order chained
// service digest — is invariant to producer interleaving, drain batch
// size, rounds slicing, and DBSCALE_NUM_THREADS; tests assert this
// against a direct-feed serial reference and against sim::Simulation.
//
// Threading: ALL service methods are drainer-thread-only. Producers touch
// only IngestRing::TryPush. Observability recording happens on the
// drainer thread into the primary shard; the parallel evaluation region
// hands policies a null sink (per-worker shards are the fleet runner's
// business; the service's instruments live at the drain/decide stages).

#ifndef DBSCALE_INGEST_SCALER_SERVICE_H_
#define DBSCALE_INGEST_SCALER_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/container/container.h"
#include "src/fleet/fleet_aggregate.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/metrics.h"
#include "src/ingest/wire_sample.h"
#include "src/obs/pipeline.h"
#include "src/scaler/batch_eval.h"
#include "src/scaler/policy.h"
#include "src/telemetry/manager.h"
#include "src/telemetry/store.h"

namespace dbscale::ingest {

struct ScalerServiceOptions {
  /// Signal-window configuration shared by every tenant.
  telemetry::TelemetryManagerOptions telemetry;
  /// Per-tenant store retention (samples).
  size_t store_retention = 4096;
  /// Samples that make up one billing interval; the tenant's decision is
  /// evaluated when the interval's last sample lands (now = its
  /// period_end, matching the sim loop's boundary clock).
  size_t samples_per_interval = 60;
  /// Max samples popped per DrainOnce.
  size_t max_drain_batch = 1024;
  /// Producer ids must be < this (fixed-size sequence table so the drain
  /// path stays allocation-free).
  size_t max_producers = 64;
  /// Optional monotone-ns reader (e.g. steady clock, supplied by benches
  /// — src/ingest/ itself is wall-clock-free) used to time per-decision
  /// latency. Null disables timing. Results never depend on it.
  uint64_t (*timer)() = nullptr;
  /// When `timer` is set, Compute+Decide ns per decision are appended
  /// here (caller owns capacity management).
  std::vector<uint64_t>* decision_latency_sink = nullptr;

  Status Validate() const;
};

/// Drain-side counters (drainer-thread-only reads/writes).
struct IngestCounters {
  uint64_t drains = 0;           ///< DrainOnce calls
  uint64_t drained = 0;          ///< samples popped off the ring
  uint64_t routed = 0;           ///< samples appended to a tenant store
  uint64_t invalid = 0;          ///< ingestion-guard rejections
  uint64_t unknown_tenant = 0;
  uint64_t unknown_producer = 0;
  uint64_t seq_violations = 0;   ///< producer-seq monotonicity breaks
  uint64_t out_of_order = 0;     ///< per-tenant period-clock regressions
  uint64_t decisions = 0;
  uint64_t eval_rounds = 0;      ///< batched evaluations (decide.batch spans)
};

/// \brief The drainer: routes ring samples to per-tenant state and runs
/// batched decision evaluation. Single-threaded driver; parallelism lives
/// inside the evaluation stage.
class ScalerService {
 public:
  /// \param ring ingest ring to drain (may be null when only the
  ///        direct-feed path is used; not owned).
  /// \param pool evaluation pool (null = serial; not owned).
  /// \param ob   optional observability bundle; when set the service
  ///        registers its instruments and records drain/decide metrics
  ///        and `ingest.drain`/`decide.batch` spans (not owned).
  ScalerService(IngestRing* ring, ScalerServiceOptions options,
                ThreadPool* pool = nullptr, obs::Observability* ob = nullptr);

  ScalerService(const ScalerService&) = delete;
  ScalerService& operator=(const ScalerService&) = delete;

  /// Registers a tenant before feeding begins. The policy is the tenant's
  /// decision maker (AutoScaler in production, anything for tests);
  /// `initial` is the container in effect before the first decision.
  Status AddTenant(uint64_t tenant_id,
                   std::unique_ptr<scaler::ScalingPolicy> policy,
                   const container::ContainerSpec& initial);

  /// Pops one batch off the ring, routes it, evaluates every tenant that
  /// completed a billing interval. Returns samples drained (0 = ring was
  /// empty). Never blocks.
  size_t DrainOnce();

  /// DrainOnce until the ring is empty; returns total samples drained.
  size_t DrainAll();

  /// Direct-feed reference path: routes one sample bypassing the ring and
  /// evaluates immediately when the tenant's interval completes. This is
  /// the sim-loop shape (sample arrival synchronous with evaluation);
  /// tests compare its digest against the ring+batch path.
  void OfferDirect(const WireSample& sample);

  /// Tenant-order chained digest over every tenant's decision stream
  /// (target id, explanation code, memory override per interval).
  /// Bit-identical across producer/thread counts and batch sizes for the
  /// same per-tenant sample sequences.
  uint64_t Digest() const;

  /// Per-tenant decision-stream digest (0 for unknown tenants).
  uint64_t TenantDigest(uint64_t tenant_id) const;

  const IngestCounters& counters() const { return counters_; }
  /// Container currently in effect for a tenant (null if unknown).
  const container::ContainerSpec* CurrentContainer(uint64_t tenant_id) const;
  /// Completed billing intervals for a tenant (-1 if unknown).
  int IntervalIndex(uint64_t tenant_id) const;
  size_t num_tenants() const { return tenants_.size(); }
  const ScalerServiceOptions& options() const { return options_; }

 private:
  struct TenantState {
    uint64_t id = 0;
    telemetry::TelemetryStore store;
    telemetry::SignalScratch scratch;
    std::unique_ptr<scaler::ScalingPolicy> policy;
    container::ContainerSpec current;
    scaler::ActuationFeedback feedback;
    int interval_index = 0;
    size_t samples_in_interval = 0;
    int64_t last_period_end_us = 0;
    bool due = false;
    /// Round stamp: samples of a tenant that already parked one sample
    /// this round must park too (per-tenant FIFO through the rounds).
    uint64_t parked_round = 0;
    fleet::Fnv64Stream digest;

    explicit TenantState(size_t retention) : store(retention) {}
  };

  /// (Re)sizes scratch buffers when the tenant set or options changed;
  /// no-op (and allocation-free) in steady state.
  void EnsureBuffers();
  /// First pass over a drained batch: producer-seq monotonicity.
  void CheckProducerSeqs(const WireSample* samples, size_t n);
  /// Routes batch samples in rounds with a carry buffer (see header
  /// comment, point 2), evaluating due tenants between rounds.
  void ProcessBatch(const WireSample* samples, size_t n,
                    const obs::Sink& sink);
  /// Routes one sample or parks it into `park` when its tenant has a
  /// pending decision. Appends newly due tenants to due_.
  void RouteOrPark(const WireSample& wire, std::vector<WireSample>& park);
  /// Batched Compute+Decide over due_ in tenant order; folds digests,
  /// applies targets, resets interval counters.
  void EvaluateDue(const obs::Sink& sink);

  TenantState* FindTenant(uint64_t tenant_id);
  const TenantState* FindTenant(uint64_t tenant_id) const;

  IngestRing* ring_;
  ScalerServiceOptions options_;
  ThreadPool* pool_;
  obs::Observability* ob_;
  obs::Sink sink_;  ///< drainer-thread recording; null when ob_ is null
  IngestMetrics metrics_{};
  telemetry::TelemetryManager manager_;

  std::map<uint64_t, TenantState> tenants_;
  IngestCounters counters_;
  uint64_t round_ = 0;
  int64_t max_period_end_us_ = 0;  ///< span clock (latest sample seen)

  // Drain scratch (sized by EnsureBuffers; no steady-state growth).
  std::vector<WireSample> batch_;
  std::vector<WireSample> carry_a_;
  std::vector<WireSample> carry_b_;
  std::vector<TenantState*> due_;
  std::vector<scaler::DecisionSlot> slots_;
  std::vector<uint64_t> compute_ns_;
  std::vector<uint64_t> producer_next_seq_;
  size_t sized_tenants_ = 0;
};

}  // namespace dbscale::ingest

#endif  // DBSCALE_INGEST_SCALER_SERVICE_H_
