// Instrument schema of the ingest/drain path. Registered late (like
// engine::EngineMetrics and the scaler decision counters) so existing
// PipelineMetrics consumers are untouched; call AttachPrimary() after
// registering and before recording.

#ifndef DBSCALE_INGEST_METRICS_H_
#define DBSCALE_INGEST_METRICS_H_

#include "src/obs/metrics.h"

namespace dbscale::ingest {

/// Instrument ids for the scaler-as-a-service surface. All recording is
/// done by the single drainer thread, so the primary shard is safe.
struct IngestMetrics {
  obs::MetricId samples_drained_total;
  obs::MetricId samples_routed_total;
  obs::MetricId samples_invalid_total;      ///< ingestion-guard rejections
  obs::MetricId samples_out_of_order_total; ///< per-tenant time regressions
  obs::MetricId samples_unknown_tenant_total;
  obs::MetricId seq_violations_total;  ///< producer-seq monotonicity breaks
  obs::MetricId ring_rejected_total;   ///< gauge mirror of the ring counter
  obs::MetricId ring_depth;            ///< gauge, sampled at each drain
  obs::MetricId drains_total;
  obs::MetricId decisions_total;
  obs::MetricId drain_batch_size;      ///< histogram
  obs::MetricId decide_batch_size;     ///< histogram

  /// Registers (idempotently) every ingest instrument on `registry`.
  static IngestMetrics Register(obs::MetricRegistry* registry);
};

}  // namespace dbscale::ingest

#endif  // DBSCALE_INGEST_METRICS_H_
