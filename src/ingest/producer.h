// IngestProducer: the collector-side publisher of WireSamples.
//
// One producer models one collector shard / host agent: it packs internal
// TelemetrySamples onto the wire, stamps its producer id and a per-producer
// monotone sequence number, and pushes into the shared IngestRing. The
// telemetry fault model (src/fault/) is applied HERE, at the producer
// edge, exactly as the simulator applies it at its ingestion site:
//
//   * kDrop    — the sample never reaches the ring (counted);
//   * kNan     — pushed corrupted; the service's ingestion guard rejects
//                it (the gap is exercised through the validity check, not
//                around it);
//   * kOutlier — pushed with inflated latency/wait figures (the robust
//                aggregates absorb it);
//   * kStale   — the previous good payload is replayed under the current
//                sample's period bounds.
//
// Fault draws consume the plan's RNG in sample order, so a producer-edge
// fault stream is bit-identical to the same plan driven by the sim loop.
//
// A producer is single-threaded state (sequence counter, last-good
// payload); give each producer thread its own instance. Many instances
// may share one ring.

#ifndef DBSCALE_INGEST_PRODUCER_H_
#define DBSCALE_INGEST_PRODUCER_H_

#include <cstdint>

#include "src/fault/fault_plan.h"
#include "src/ingest/ingest_ring.h"
#include "src/ingest/wire_sample.h"

namespace dbscale::ingest {

/// How one Publish call resolved.
enum class PublishOutcome : uint8_t {
  kPublished,  ///< pushed into the ring (possibly corrupted or stale)
  kDropped,    ///< consumed by a kDrop telemetry fault; nothing pushed
  kRejected    ///< the ring was full; the sample was not delivered
};

/// \brief Single-threaded wire publisher with optional producer-edge
/// telemetry-fault injection.
class IngestProducer {
 public:
  /// \param ring   shared MPSC ring (not owned; must outlive the producer)
  /// \param producer_id  stamped on every published sample
  /// \param plan   optional telemetry fault source (not owned); nullptr or
  ///               a null plan injects nothing.
  IngestProducer(IngestRing* ring, uint32_t producer_id,
                 fault::FaultPlan* plan = nullptr);

  /// Packs and publishes one sample for `tenant_id`. Sequence numbers are
  /// consumed only by successful pushes, so the drain side sees a strictly
  /// consecutive 0,1,2,... stream per producer.
  PublishOutcome Publish(uint64_t tenant_id,
                         const telemetry::TelemetrySample& sample);

  uint32_t producer_id() const { return producer_id_; }
  /// Samples successfully pushed into the ring.
  uint64_t published() const { return published_; }
  /// Samples consumed by kDrop faults.
  uint64_t dropped() const { return dropped_; }
  /// Samples the ring rejected (backpressure).
  uint64_t rejected() const { return rejected_; }
  /// Samples pushed with kNan/kOutlier corruption applied.
  uint64_t corrupted() const { return corrupted_; }
  /// Samples replayed stale.
  uint64_t stale() const { return stale_; }

 private:
  PublishOutcome Push(const WireSample& wire);

  IngestRing* ring_;
  fault::FaultPlan* plan_;
  uint32_t producer_id_;
  uint64_t next_seq_ = 0;

  telemetry::TelemetrySample last_good_{};
  bool have_good_ = false;

  uint64_t published_ = 0;
  uint64_t dropped_ = 0;
  uint64_t rejected_ = 0;
  uint64_t corrupted_ = 0;
  uint64_t stale_ = 0;
};

}  // namespace dbscale::ingest

#endif  // DBSCALE_INGEST_PRODUCER_H_
