#include "src/ingest/metrics.h"

namespace dbscale::ingest {

IngestMetrics IngestMetrics::Register(obs::MetricRegistry* registry) {
  obs::MetricRegistry& r = *registry;
  IngestMetrics m;
  m.samples_drained_total = r.Counter(
      "dbscale_ingest_samples_drained_total",
      "Wire samples popped off the ingest ring by the drainer");
  m.samples_routed_total = r.Counter(
      "dbscale_ingest_samples_routed_total",
      "Samples appended to a tenant's sliding-window store");
  m.samples_invalid_total = r.Counter(
      "dbscale_ingest_samples_invalid_total",
      "Samples rejected by the ingestion guard (non-finite figures)");
  m.samples_out_of_order_total = r.Counter(
      "dbscale_ingest_samples_out_of_order_total",
      "Samples discarded for regressing a tenant's period clock");
  m.samples_unknown_tenant_total = r.Counter(
      "dbscale_ingest_samples_unknown_tenant_total",
      "Samples for tenants the service does not know");
  m.seq_violations_total = r.Counter(
      "dbscale_ingest_seq_violations_total",
      "Producer-sequence monotonicity violations seen at drain");
  m.ring_rejected_total = r.Gauge(
      "dbscale_ingest_ring_rejected_total",
      "Ring-full push rejections (monotone ring counter, mirrored)");
  m.ring_depth = r.Gauge(
      "dbscale_ingest_ring_depth",
      "Samples buffered in the ring, sampled at each drain");
  m.drains_total = r.Counter(
      "dbscale_ingest_drains_total", "DrainOnce invocations");
  m.decisions_total = r.Counter(
      "dbscale_ingest_decisions_total",
      "Billing-interval decisions evaluated by the service");
  m.drain_batch_size = r.Histogram(
      "dbscale_ingest_drain_batch_size",
      "Samples per drained batch",
      obs::HistogramSpec::Exponential(1.0, 2.0, 12));
  m.decide_batch_size = r.Histogram(
      "dbscale_ingest_decide_batch_size",
      "Due tenants per batched decision evaluation",
      obs::HistogramSpec::Exponential(1.0, 2.0, 12));
  return m;
}

}  // namespace dbscale::ingest
