// Asynchronous resize lifecycle driven by a FaultPlan.
//
// The actuation channel between a scaling decision and the engine:
// Begin(target) issues a resize whose fate and latency come from the
// FaultPlan; Tick() advances one billing interval and resolves due
// resizes. Null plans resolve every Begin immediately as kApplied, which
// is exactly the pre-fault-layer synchronous behavior.
//
// The actuator models one channel: at most one resize is in flight. It is
// shared by the DES harness (sim/simulation.cc) and the fleet model
// (fleet/fleet_sim.cc) so both layers age and resolve resizes the same way.

#ifndef DBSCALE_FAULT_ACTUATOR_H_
#define DBSCALE_FAULT_ACTUATOR_H_

#include <cstdint>

#include "src/container/catalog.h"
#include "src/fault/fault_plan.h"

namespace dbscale::fault {

/// Lifecycle state reported by Begin()/Tick().
enum class ResizeEventKind : uint8_t {
  kNone,     ///< nothing in flight / nothing resolved
  kPending,  ///< resize in flight, not yet due
  kApplied,  ///< resize completed; the caller applies the target now
  kFailed,   ///< transient failure revealed; the caller may retry
  kRejected  ///< permanent rejection, reported at Begin()
};

const char* ResizeEventKindToString(ResizeEventKind kind);

struct ResizeEvent {
  ResizeEventKind kind = ResizeEventKind::kNone;
  container::ContainerSpec target;
  /// 1-based attempt number toward this target (consecutive Begins for the
  /// same container id count up; a new target resets to 1).
  int attempt = 0;
};

/// \brief One-resize-at-a-time actuation channel.
class ResizeActuator {
 public:
  /// `plan` is borrowed and must outlive the actuator; a null *plan
  /// object* (default-constructed FaultPlan) gives fault-free actuation.
  explicit ResizeActuator(FaultPlan* plan);

  /// Issues a resize. Must not be called while pending(). Returns
  /// kApplied / kFailed when the draw resolves within the issuing interval
  /// (latency 0), kRejected on permanent rejection, kPending otherwise.
  /// `extra_latency_intervals` is added on top of the fault plan's latency
  /// draw (the host layer's migration copy + cutover downtime); rejection
  /// is still immediate.
  ResizeEvent Begin(const container::ContainerSpec& target,
                    int extra_latency_intervals = 0);

  /// Advances one billing interval. Returns kNone when idle, kPending
  /// while latency remains, and kApplied / kFailed when the in-flight
  /// resize resolves this interval.
  ResizeEvent Tick();

  bool pending() const { return pending_; }
  const container::ContainerSpec& target() const { return target_; }
  /// Intervals until the in-flight resize resolves (0 when idle); the host
  /// layer reads it to place the migration blackout window.
  int remaining_intervals() const { return pending_ ? remaining_intervals_ : 0; }

  /// Lifetime counters (drill-down / smoke assertions).
  uint64_t begins() const { return begins_; }
  uint64_t applied() const { return applied_; }
  uint64_t failed() const { return failed_; }
  uint64_t rejected() const { return rejected_; }

  /// \brief The channel's resumable position (fleet checkpoint format).
  /// Captures the in-flight resize and the attempt tracking; the lifetime
  /// counters above are diagnostics and intentionally excluded.
  struct State {
    bool pending = false;
    /// Catalog rung of the in-flight target (-1 when none); the catalog is
    /// config, so the spec is re-derived on restore rather than stored.
    int target_rung = -1;
    ResizeFate fate = ResizeFate::kApplied;
    int remaining_intervals = 0;
    int attempt = 0;
    int last_target_id = -1;
  };

  State SaveState() const;
  /// Restores a SaveState()d position. `catalog` must be the catalog the
  /// saved target rungs refer to.
  void RestoreState(const State& state, const container::Catalog& catalog);

 private:
  ResizeEvent Resolve();

  FaultPlan* plan_;
  bool pending_ = false;
  container::ContainerSpec target_;
  ResizeFate fate_ = ResizeFate::kApplied;
  int remaining_intervals_ = 0;
  int attempt_ = 0;
  int last_target_id_ = -1;

  uint64_t begins_ = 0;
  uint64_t applied_ = 0;
  uint64_t failed_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace dbscale::fault

#endif  // DBSCALE_FAULT_ACTUATOR_H_
