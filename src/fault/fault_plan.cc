#include "src/fault/fault_plan.h"

#include <cmath>
#include <limits>

namespace dbscale::fault {

namespace {

[[nodiscard]] Status CheckProbability(const char* name, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::InvalidArgument(
        std::string(name) + " must be a probability in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

bool FaultPlanOptions::enabled() const {
  return resize.failure_probability > 0.0 ||
         resize.rejection_probability > 0.0 ||
         resize.max_latency_intervals > 0 ||
         telemetry.drop_probability > 0.0 ||
         telemetry.nan_probability > 0.0 ||
         telemetry.outlier_probability > 0.0 ||
         telemetry.stale_probability > 0.0;
}

Status FaultPlanOptions::Validate() const {
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("resize.failure_probability",
                       resize.failure_probability));
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("resize.rejection_probability",
                       resize.rejection_probability));
  if (resize.failure_probability + resize.rejection_probability > 1.0) {
    return Status::InvalidArgument(
        "resize failure + rejection probabilities exceed 1");
  }
  if (resize.min_latency_intervals < 0 ||
      resize.max_latency_intervals < resize.min_latency_intervals) {
    return Status::InvalidArgument(
        "resize latency range must satisfy 0 <= min <= max");
  }
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("telemetry.drop_probability",
                       telemetry.drop_probability));
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("telemetry.nan_probability",
                       telemetry.nan_probability));
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("telemetry.outlier_probability",
                       telemetry.outlier_probability));
  DBSCALE_RETURN_IF_ERROR(
      CheckProbability("telemetry.stale_probability",
                       telemetry.stale_probability));
  if (telemetry.drop_probability + telemetry.nan_probability +
          telemetry.outlier_probability + telemetry.stale_probability >
      1.0) {
    return Status::InvalidArgument(
        "telemetry fault probabilities sum beyond 1");
  }
  if (telemetry.outlier_probability > 0.0 &&
      telemetry.outlier_factor <= 1.0) {
    return Status::InvalidArgument("outlier_factor must be > 1");
  }
  return Status::OK();
}

const char* SampleFaultToString(SampleFault fault) {
  switch (fault) {
    case SampleFault::kNone:
      return "none";
    case SampleFault::kDrop:
      return "drop";
    case SampleFault::kNan:
      return "nan";
    case SampleFault::kOutlier:
      return "outlier";
    case SampleFault::kStale:
      return "stale";
  }
  return "?";
}

// Options are validated by the owning simulation before any draw is made
// (Simulation::Run / FleetSimulation::Run call options.fault.Validate()).
// dbscale-lint: allow(options-validate)
FaultPlan::FaultPlan(const FaultPlanOptions& options, Rng rng)
    : options_(options), rng_(rng), enabled_(options.enabled()) {}

ResizeFaultDraw FaultPlan::NextResizeFault() {
  ResizeFaultDraw draw;
  if (!enabled_) return draw;
  // Fixed draw shape per attempt — one fate uniform, one latency draw when
  // the range is randomized — so the fault stream depends only on the call
  // sequence, never on which branch a previous attempt took.
  const double u = rng_.NextDouble();
  if (u < options_.resize.rejection_probability) {
    draw.fate = ResizeFate::kRejected;
  } else if (u < options_.resize.rejection_probability +
                     options_.resize.failure_probability) {
    draw.fate = ResizeFate::kTransientFailure;
  }
  const ResizeFaultOptions& r = options_.resize;
  draw.latency_intervals =
      r.max_latency_intervals > r.min_latency_intervals
          ? static_cast<int>(rng_.UniformInt(r.min_latency_intervals,
                                             r.max_latency_intervals))
          : r.min_latency_intervals;
  if (draw.fate == ResizeFate::kRejected) draw.latency_intervals = 0;
  return draw;
}

SampleFault FaultPlan::NextSampleFault() {
  if (!enabled_) return SampleFault::kNone;
  const TelemetryFaultOptions& t = options_.telemetry;
  // One uniform partitioned over the fault kinds: cheap (one draw per
  // sample on the hot collection path) and order-stable.
  const double u = rng_.NextDouble();
  double edge = t.drop_probability;
  if (u < edge) return SampleFault::kDrop;
  edge += t.nan_probability;
  if (u < edge) return SampleFault::kNan;
  edge += t.outlier_probability;
  if (u < edge) return SampleFault::kOutlier;
  edge += t.stale_probability;
  if (u < edge) return SampleFault::kStale;
  return SampleFault::kNone;
}

void FaultPlan::CorruptSample(SampleFault fault,
                              telemetry::TelemetrySample* sample) const {
  switch (fault) {
    case SampleFault::kNan: {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      sample->latency_avg_ms = nan;
      sample->latency_p95_ms = nan;
      sample->utilization_pct[0] = nan;
      return;
    }
    case SampleFault::kOutlier: {
      const double f = options_.telemetry.outlier_factor;
      sample->latency_avg_ms *= f;
      sample->latency_p95_ms *= f;
      sample->latency_max_ms *= f;
      for (double& w : sample->wait_ms) w *= f;
      return;
    }
    case SampleFault::kNone:
    case SampleFault::kDrop:
    case SampleFault::kStale:
      return;
  }
}

bool SampleLooksValid(const telemetry::TelemetrySample& sample) {
  for (double u : sample.utilization_pct) {
    if (!std::isfinite(u)) return false;
  }
  for (double w : sample.wait_ms) {
    if (!std::isfinite(w)) return false;
  }
  return std::isfinite(sample.latency_avg_ms) &&
         std::isfinite(sample.latency_p95_ms) &&
         std::isfinite(sample.latency_max_ms) &&
         std::isfinite(sample.memory_used_mb) &&
         std::isfinite(sample.memory_active_mb);
}

}  // namespace dbscale::fault
