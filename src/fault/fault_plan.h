// Deterministic fault injection for the closed scaling loop.
//
// The paper's Auto runs against a real DaaS where container resizes take
// time and can fail, and where telemetry arrives late, noisy, or not at
// all. A FaultPlan is the seeded source of those imperfections:
//
//   * resize faults    — actuation latency (in billing intervals, fixed or
//                        uniformly randomized), transient failures revealed
//                        only after the latency elapses, and permanent
//                        rejections reported immediately;
//   * telemetry faults — dropped samples, NaN-corrupted samples (rejected
//                        by the ingestion guard), outlier samples (absorbed
//                        by the robust aggregates), and stale reads that
//                        replay the previous sample.
//
// All draws flow through one Rng forked from the harness's root generator
// (per tenant in the fleet), so fault sequences are reproducible bit-for-
// bit from the seed and independent of thread count. A default-constructed
// (null) FaultPlan never draws and injects nothing, which keeps unfaulted
// runs bit-identical to a build without this subsystem.

#ifndef DBSCALE_FAULT_FAULT_PLAN_H_
#define DBSCALE_FAULT_FAULT_PLAN_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/telemetry/sample.h"

namespace dbscale::fault {

/// Faults on the resize actuation channel.
struct ResizeFaultOptions {
  /// Probability a resize fails transiently (after its latency elapses);
  /// the caller may retry.
  double failure_probability = 0.0;
  /// Probability a resize is rejected outright (reported immediately;
  /// retrying the same target is pointless until conditions change).
  double rejection_probability = 0.0;
  /// Actuation latency in billing intervals, drawn uniformly from
  /// [min, max]. 0/0 applies resizes within the issuing interval (the
  /// pre-fault-layer behavior).
  int min_latency_intervals = 0;
  int max_latency_intervals = 0;
};

/// Faults on the telemetry collection channel.
struct TelemetryFaultOptions {
  /// Probability a sample is dropped (never reaches the store).
  double drop_probability = 0.0;
  /// Probability a sample arrives NaN-corrupted. The ingestion guard
  /// rejects it, so the net effect is a gap like a drop — but exercised
  /// through the validity check rather than around it.
  double nan_probability = 0.0;
  /// Probability a sample's latency/wait figures are inflated by
  /// `outlier_factor` (interference spikes the robust medians absorb).
  double outlier_probability = 0.0;
  double outlier_factor = 8.0;
  /// Probability the collector returns the previous sample again (stale
  /// read) instead of fresh counters.
  double stale_probability = 0.0;
};

/// The full fault profile; all-zero (the default) means no faults.
struct FaultPlanOptions {
  ResizeFaultOptions resize;
  TelemetryFaultOptions telemetry;

  /// True when any fault can fire. A disabled plan must never draw from
  /// the RNG, so enabling it later cannot perturb existing streams.
  bool enabled() const;
  /// Probability/range sanity checks.
  Status Validate() const;
};

/// How a resize attempt ultimately resolves (drawn at issue time; a
/// transient failure is only *revealed* after the latency elapses).
enum class ResizeFate : uint8_t { kApplied, kTransientFailure, kRejected };

struct ResizeFaultDraw {
  ResizeFate fate = ResizeFate::kApplied;
  int latency_intervals = 0;
};

/// Fault injected into one telemetry sample.
enum class SampleFault : uint8_t { kNone, kDrop, kNan, kOutlier, kStale };

const char* SampleFaultToString(SampleFault fault);

/// \brief Seeded fault source. Default-constructed plans are null: enabled()
/// is false, no method draws, and every resize applies cleanly.
class FaultPlan {
 public:
  FaultPlan() = default;
  /// `options` should be Validate()d by the caller; the rng is typically a
  /// Fork() of the harness's root generator.
  FaultPlan(const FaultPlanOptions& options, Rng rng);

  bool enabled() const { return enabled_; }
  const FaultPlanOptions& options() const { return options_; }

  /// Draws the fate of the next resize attempt. Null plans return
  /// {kApplied, 0} without touching the RNG.
  ResizeFaultDraw NextResizeFault();

  /// Draws the fault (if any) for the next telemetry sample. One uniform
  /// draw per call; null plans return kNone without touching the RNG.
  SampleFault NextSampleFault();

  /// Applies kNan / kOutlier corruption to `sample` in place; other kinds
  /// are no-ops (the caller handles drop/stale at the ingestion site).
  void CorruptSample(SampleFault fault,
                     telemetry::TelemetrySample* sample) const;

  /// Generator position, for the fleet checkpoint format. Restoring it on
  /// a plan built from the same options resumes the exact fault stream.
  Rng::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Rng::State& state) { rng_.RestoreState(state); }

 private:
  FaultPlanOptions options_;
  Rng rng_{0};
  bool enabled_ = false;
};

/// Ingestion guard: true when every figure in the sample is finite. NaN
/// telemetry must never reach the store — a single NaN poisons medians,
/// trends, and correlations downstream.
bool SampleLooksValid(const telemetry::TelemetrySample& sample);

}  // namespace dbscale::fault

#endif  // DBSCALE_FAULT_FAULT_PLAN_H_
