#include "src/fault/actuator.h"

#include "src/common/check.h"

namespace dbscale::fault {

const char* ResizeEventKindToString(ResizeEventKind kind) {
  switch (kind) {
    case ResizeEventKind::kNone:
      return "none";
    case ResizeEventKind::kPending:
      return "pending";
    case ResizeEventKind::kApplied:
      return "applied";
    case ResizeEventKind::kFailed:
      return "failed";
    case ResizeEventKind::kRejected:
      return "rejected";
  }
  return "?";
}

ResizeActuator::ResizeActuator(FaultPlan* plan) : plan_(plan) {
  DBSCALE_CHECK(plan != nullptr);
}

ResizeEvent ResizeActuator::Begin(const container::ContainerSpec& target,
                                  int extra_latency_intervals) {
  DBSCALE_CHECK(!pending_);
  DBSCALE_CHECK(extra_latency_intervals >= 0);
  ++begins_;
  attempt_ = target.id == last_target_id_ ? attempt_ + 1 : 1;
  last_target_id_ = target.id;
  target_ = target;

  const ResizeFaultDraw draw = plan_->NextResizeFault();
  if (draw.fate == ResizeFate::kRejected) {
    ++rejected_;
    return ResizeEvent{ResizeEventKind::kRejected, target_, attempt_};
  }
  fate_ = draw.fate;
  remaining_intervals_ = draw.latency_intervals + extra_latency_intervals;
  if (remaining_intervals_ == 0) return Resolve();
  pending_ = true;
  return ResizeEvent{ResizeEventKind::kPending, target_, attempt_};
}

ResizeEvent ResizeActuator::Tick() {
  if (!pending_) return ResizeEvent{};
  --remaining_intervals_;
  if (remaining_intervals_ > 0) {
    return ResizeEvent{ResizeEventKind::kPending, target_, attempt_};
  }
  pending_ = false;
  return Resolve();
}

ResizeActuator::State ResizeActuator::SaveState() const {
  State s;
  s.pending = pending_;
  s.target_rung = last_target_id_ >= 0 ? target_.base_rung : -1;
  s.fate = fate_;
  s.remaining_intervals = remaining_intervals_;
  s.attempt = attempt_;
  s.last_target_id = last_target_id_;
  return s;
}

void ResizeActuator::RestoreState(const State& state,
                                  const container::Catalog& catalog) {
  pending_ = state.pending;
  target_ = state.target_rung >= 0 ? catalog.rung(state.target_rung)
                                   : container::ContainerSpec{};
  fate_ = state.fate;
  remaining_intervals_ = state.remaining_intervals;
  attempt_ = state.attempt;
  last_target_id_ = state.last_target_id;
}

ResizeEvent ResizeActuator::Resolve() {
  if (fate_ == ResizeFate::kApplied) {
    ++applied_;
    return ResizeEvent{ResizeEventKind::kApplied, target_, attempt_};
  }
  ++failed_;
  return ResizeEvent{ResizeEventKind::kFailed, target_, attempt_};
}

}  // namespace dbscale::fault
